//! # safer-kernel — reproduction of "An Incremental Path Towards a Safer
//! # OS Kernel" (HotOS '21)
//!
//! This facade crate re-exports the whole workspace. Start here:
//!
//! - [`core`] (`sk-core`) — the paper's contribution: the incremental-
//!   safety interface framework (modularity → type safety → ownership
//!   safety → functional correctness).
//! - [`ksim`] (`sk-ksim`) — the simulated kernel substrate.
//! - [`legacy`] (`sk-legacy`) — the emulated C idioms being retired.
//! - [`vfs`] (`sk-vfs`) — the VFS layer, with both legacy and modular
//!   backend interfaces, and the abstract file-system model.
//! - [`fs_legacy`] (`sk-fs-legacy`) — cext4, the Step-0 file system.
//! - [`fs_safe`] (`sk-fs-safe`) — rsfs, the journaled safe file system.
//! - [`netstack`] (`sk-netstack`) — the socket layer, coupled and modular.
//! - [`cvedb`] (`sk-cvedb`) — the Figure 2 bug study.
//! - [`faultgen`] (`sk-faultgen`) — the empirical prevention study.
//!
//! Run `cargo run --example quickstart` for a guided tour; see DESIGN.md
//! for the experiment index and EXPERIMENTS.md for paper-vs-measured
//! results.

pub use sk_core as core;
pub use sk_cvedb as cvedb;
pub use sk_faultgen as faultgen;
pub use sk_fs_legacy as fs_legacy;
pub use sk_fs_safe as fs_safe;
pub use sk_ksim as ksim;
pub use sk_legacy as legacy;
pub use sk_netstack as netstack;
pub use sk_vfs as vfs;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _ = crate::ksim::SimClock::new();
        let _ = crate::legacy::LegacyCtx::new();
        let _ = crate::core::Registry::new();
        let _ = crate::vfs::FsModel::new();
    }
}
