//! Property-based contracts for the sharded op lock: striping must be
//! invisible. The sharded build and the global-lock build (one stripe)
//! run the same seeded workload and must produce identical abstract
//! state before and after recovery; the sharded build must preserve the
//! async fsync-watermark crash contract; and multi-inode operations must
//! keep acquiring their stripes in ascending index order (lockdep's
//! same-class rank check turns a reverted sort into a recorded
//! violation, not a flaky deadlock).

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use safer_kernel::core::spec::crash::{crash_images, judge_with_floor, CrashPolicy};
use safer_kernel::core::spec::Refines;
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs, DEFAULT_OP_STRIPES};
use safer_kernel::ksim::block::{
    BlockDevice, CrashDevice, DeviceStats, PendingWrite, RamDisk, BLOCK_SIZE,
};
use safer_kernel::ksim::errno::KResult;
use safer_kernel::ksim::lock::{LockRegistry, Violation};
use safer_kernel::vfs::modular::FileSystem;

/// One step of the seeded workload. File indices map to a small fixed
/// universe split across two directories, so rename crosses directories
/// (two op-lock stripes) about half the time and name collisions are
/// frequent.
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write(u8, u8, u16),
    Unlink(u8),
    Rename(u8, u8),
    Fsync(u8),
    Sync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let file = 0u8..6;
    prop_oneof![
        file.clone().prop_map(Op::Create),
        (file.clone(), any::<u8>(), 0u16..3000).prop_map(|(f, b, o)| Op::Write(f, b, o)),
        file.clone().prop_map(Op::Unlink),
        (file.clone(), 0u8..6).prop_map(|(a, b)| Op::Rename(a, b)),
        file.prop_map(Op::Fsync),
        Just(Op::Sync),
    ]
}

/// Workspace: root plus two directories; file `i` lives in `dirs[i % 2]`.
struct Space {
    fs: Rsfs,
    dirs: [u64; 2],
}

impl Space {
    fn dir(&self, f: u8) -> u64 {
        self.dirs[(f % 2) as usize]
    }

    fn name(f: u8) -> String {
        format!("f{f}")
    }

    /// Applies one op, returning a device-independent outcome summary so
    /// two builds can be compared step by step.
    fn apply(&self, op: &Op) -> Result<(), i32> {
        let as_code = |r: KResult<()>| r.map_err(|e| e as i32);
        match op {
            Op::Create(f) => as_code(self.fs.create(self.dir(*f), &Self::name(*f)).map(|_| ())),
            Op::Write(f, byte, off) => {
                let ino = match self.fs.lookup(self.dir(*f), &Self::name(*f)) {
                    Ok(i) => i,
                    Err(e) => return Err(e as i32),
                };
                as_code(
                    self.fs
                        .write(ino, u64::from(*off), &[*byte; 96])
                        .map(|_| ()),
                )
            }
            Op::Unlink(f) => as_code(self.fs.unlink(self.dir(*f), &Self::name(*f))),
            Op::Rename(a, b) => as_code(self.fs.rename(
                self.dir(*a),
                &Self::name(*a),
                self.dir(*b),
                &Self::name(*b),
            )),
            Op::Fsync(f) => {
                let ino = match self.fs.lookup(self.dir(*f), &Self::name(*f)) {
                    Ok(i) => i,
                    Err(e) => return Err(e as i32),
                };
                as_code(self.fs.fsync(ino))
            }
            Op::Sync => as_code(self.fs.sync()),
        }
    }
}

fn mount_space(dev: Arc<dyn BlockDevice>, stripes: usize) -> Space {
    Rsfs::mkfs(&dev, 256, 64).unwrap();
    let fs = Rsfs::mount_with_stripes(
        Arc::clone(&dev),
        JournalMode::Async,
        LockRegistry::new(),
        stripes,
    )
    .unwrap();
    let root = fs.root_ino();
    let dirs = [fs.mkdir(root, "da").unwrap(), fs.mkdir(root, "db").unwrap()];
    Space { fs, dirs }
}

/// Captures the pending-write set at each flush barrier (same tap the
/// crash-recovery suite uses), so crash images can be cut per interval.
struct Tap {
    inner: Arc<CrashDevice<Arc<RamDisk>>>,
    intervals: Mutex<Vec<Vec<PendingWrite>>>,
}

impl BlockDevice for Tap {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }
    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        self.inner.read_block(blkno, buf)
    }
    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        self.inner.write_block(blkno, buf)
    }
    fn flush(&self) -> KResult<()> {
        self.intervals.lock().push(self.inner.pending_writes());
        self.inner.flush()
    }
    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sharded build and the global-lock build are observationally
    /// identical: same per-op outcomes, same abstract state, and — after
    /// a sync and a recovery remount — same post-recovery state.
    #[test]
    fn sharded_and_global_lock_builds_agree(
        ops in prop::collection::vec(op_strategy(), 1..32)
    ) {
        let dev_s: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
        let dev_g: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
        let sharded = mount_space(Arc::clone(&dev_s), DEFAULT_OP_STRIPES);
        let global = mount_space(Arc::clone(&dev_g), 1);

        for (i, op) in ops.iter().enumerate() {
            let rs = sharded.apply(op);
            let rg = global.apply(op);
            prop_assert_eq!(&rs, &rg, "step {}: {:?}", i, op);
        }
        prop_assert_eq!(sharded.fs.abstraction(), global.fs.abstraction());

        // Post-recovery equality: sync both, drop the mounts, remount
        // (which always runs journal recovery) and compare again.
        sharded.fs.sync().unwrap();
        global.fs.sync().unwrap();
        drop(sharded);
        drop(global);
        let rs = Rsfs::mount(dev_s, JournalMode::Async).unwrap();
        let rg = Rsfs::mount(dev_g, JournalMode::Async).unwrap();
        prop_assert_eq!(rs.abstraction(), rg.abstraction());
    }

    /// The fsync-watermark crash contract survives sharding: for every
    /// crash image cut at or after the schedule's last fsync barrier,
    /// recovery lands on a history prefix that includes everything the
    /// fsync made durable.
    #[test]
    fn sharded_build_preserves_fsync_watermark(
        prefix in prop::collection::vec(op_strategy(), 1..10),
        suffix in prop::collection::vec(op_strategy(), 1..6),
    ) {
        let ram = Arc::new(RamDisk::new(2048));
        let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
        let tap = Arc::new(Tap { inner: crash, intervals: Mutex::new(Vec::new()) });
        let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
        Rsfs::mkfs(&tap_dyn, 128, 64).unwrap();
        let fs = Rsfs::mount_with_stripes(
            tap_dyn,
            JournalMode::Async,
            LockRegistry::new(),
            DEFAULT_OP_STRIPES,
        )
        .unwrap();
        let root = fs.root_ino();
        let dirs = [fs.mkdir(root, "da").unwrap(), fs.mkdir(root, "db").unwrap()];
        fs.sync().unwrap();
        let space = Space { fs, dirs };

        let base = ram.snapshot();
        tap.intervals.lock().clear();

        let mut models = vec![space.fs.abstraction()];
        for op in &prefix {
            let _ = space.apply(op);
            models.push(space.fs.abstraction());
        }
        // The durability point under test: everything up to here must
        // survive any crash at or after this barrier.
        let anchor = space.fs.create(space.dirs[0], "anchor").unwrap();
        models.push(space.fs.abstraction());
        space.fs.write(anchor, 0, b"pinned by fsync").unwrap();
        models.push(space.fs.abstraction());
        let watermark = models.len() - 1;
        space.fs.fsync(anchor).unwrap();
        let n_fsync = tap.intervals.lock().len();
        prop_assert!(n_fsync > 0, "fsync must flush the running transaction");

        for op in &suffix {
            let _ = space.apply(op);
            models.push(space.fs.abstraction());
        }
        space.fs.sync().unwrap();

        let mut intervals = tap.intervals.lock().clone();
        intervals.push(tap.inner.pending_writes());

        let mut applied = base;
        for (idx, interval) in intervals.iter().enumerate() {
            let floor = if idx >= n_fsync { watermark } else { 0 };
            for (i, img) in crash_images(&applied, interval, BLOCK_SIZE, CrashPolicy::Prefixes)
                .into_iter()
                .enumerate()
            {
                let scratch = Arc::new(RamDisk::new(2048));
                scratch.restore(&img).unwrap();
                let recovered = Rsfs::mount(scratch, JournalMode::Async)
                    .map_err(|e| TestCaseError::fail(format!("interval {idx} image {i}: mount {e:?}")))?;
                let m = recovered.abstraction();
                if let Err(why) = judge_with_floor(&models, floor, &m) {
                    return Err(TestCaseError::fail(format!("interval {idx} image {i}: {why}")));
                }
            }
            for w in interval {
                let off = w.blkno as usize * BLOCK_SIZE;
                applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
            }
        }
    }
}

/// Revert-fails guard for the ascending stripe acquisition in
/// `Txn::begin`: cross-directory renames in *both* directions mean some
/// rename's (olddir, newdir) stripe pair arrives in descending index
/// order, so if the ascending sort were removed, the blocking same-class
/// acquisition would violate lockdep's strictly-increasing-rank rule and
/// land here as a `SameClassNesting` finding — deterministically, without
/// having to hit the actual ABBA deadlock window.
#[test]
fn cross_directory_renames_acquire_stripes_in_ascending_order() {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
    Rsfs::mkfs(&dev, 256, 64).unwrap();
    let registry = LockRegistry::new();
    let fs = Arc::new(
        Rsfs::mount_with_stripes(
            dev,
            JournalMode::Async,
            Arc::clone(&registry),
            DEFAULT_OP_STRIPES,
        )
        .unwrap(),
    );
    let root = fs.root_ino();
    // Eight directories spread over the stripe hash: every ordered pair
    // is exercised below, so both ascending and descending (olddir,
    // newdir) stripe pairs occur many times.
    let dirs: Vec<u64> = (0..8)
        .map(|d| fs.mkdir(root, &format!("d{d}")).unwrap())
        .collect();
    for (d, &dir) in dirs.iter().enumerate() {
        fs.create(dir, &format!("seed{d}")).unwrap();
    }

    // Deterministic single-threaded sweep: rename a file from every
    // directory into every other and back. Each hop holds both
    // directories' stripes in one transaction.
    for a in 0..dirs.len() {
        for b in 0..dirs.len() {
            if a == b {
                continue;
            }
            fs.rename(dirs[a], &format!("seed{a}"), dirs[b], "hop")
                .unwrap();
            fs.rename(dirs[b], "hop", dirs[a], &format!("seed{a}"))
                .unwrap();
        }
    }

    // Concurrent opposing traffic: pairs of threads rename between the
    // same two directories in opposite directions. Unordered blocking
    // acquisition would be an ABBA deadlock; ordered acquisition makes
    // this complete and leaves the lockdep graph clean.
    let mut workers = Vec::new();
    for t in 0..4usize {
        let fs = Arc::clone(&fs);
        let (da, db) = (dirs[t], dirs[(t + 4) % 8]);
        workers.push(std::thread::spawn(move || {
            let (src, dst) = if t % 2 == 0 { (da, db) } else { (db, da) };
            let name = format!("w{t}");
            fs.create(src, &name).unwrap();
            for _ in 0..64 {
                fs.rename(src, &name, dst, &name).unwrap();
                fs.rename(dst, &name, src, &name).unwrap();
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }

    let findings: Vec<Violation> = registry
        .violations()
        .into_iter()
        .filter(|v| !matches!(v, Violation::UnlockedFieldAccess { .. }))
        .collect();
    assert!(findings.is_empty(), "lockdep findings: {findings:?}");
}
