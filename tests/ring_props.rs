//! Integration: the typed submission/completion ring over the VFS.
//!
//! Three contracts under test:
//!
//! - **ownership round-trip** — every buffer a client moves into the
//!   ring comes back exactly once in its CQE, on success and on failure
//!   (including a poisoned/EROFS journal), across arbitrary submitter
//!   interleavings;
//! - **structural backpressure** — a slow disk blocks *submitters* on a
//!   full ring (and stalls reactor admission on journal log pressure)
//!   instead of ballooning the running transaction, with lockdep clean
//!   across the reactor path;
//! - **CQE crash contract** — ops acknowledged through the ring obey the
//!   token-order-prefix + fsync-watermark contract: recovery lands on a
//!   chunk-boundary prefix of the submission order that includes
//!   everything an fsync SQE covered.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use safer_kernel::core::spec::crash::{crash_images, judge_with_floor, CrashPolicy};
use safer_kernel::core::spec::Refines;
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{
    BlockDevice, CrashDevice, DeviceStats, DiskFaultConfig, FaultyDisk, PendingWrite, RamDisk,
    BLOCK_SIZE,
};
use safer_kernel::ksim::errno::KResult;
use safer_kernel::vfs::modular::{BatchOp, BatchReply, FileSystem};
use safer_kernel::vfs::ring::{Ring, RingReactor, RingThrottle};

fn mount_over_faulty(blocks: u64, mode: JournalMode) -> (Arc<FaultyDisk<Arc<RamDisk>>>, Arc<Rsfs>) {
    let ram = Arc::new(RamDisk::new(blocks));
    let faulty = Arc::new(FaultyDisk::new(
        Arc::clone(&ram),
        DiskFaultConfig::default(),
        7,
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 128, 64).unwrap();
    let fs = Arc::new(Rsfs::mount(dev, mode).unwrap());
    (faulty, fs)
}

/// A write buffer tagged so the round-trip check can match submissions
/// to returns: client id and sequence in the first bytes.
fn tagged_buf(client: u64, seq: u64) -> Vec<u8> {
    let mut b = vec![0u8; 512];
    b[0..8].copy_from_slice(&client.to_le_bytes());
    b[8..16].copy_from_slice(&seq.to_le_bytes());
    b
}

fn buf_tag(b: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(b[0..8].try_into().unwrap()),
        u64::from_le_bytes(b[8..16].try_into().unwrap()),
    )
}

/// Deterministic single-reactor check: a mixed batch through the rsfs
/// batch-staging path matches per-call semantics, and a failing op rolls
/// back alone while its neighbors commit.
#[test]
fn mixed_batch_matches_per_call_semantics() {
    let (_faulty, fs) = mount_over_faulty(2048, JournalMode::Async);
    let root = fs.root_ino();
    let ring = Arc::new(Ring::new(fs.lock_registry(), 32));

    let t1 = ring
        .submit(BatchOp::Create {
            dir: root,
            name: "a".into(),
        })
        .unwrap();
    // Duplicate create: must fail with EEXIST *inside* the batch without
    // poisoning its neighbors.
    let t2 = ring
        .submit(BatchOp::Create {
            dir: root,
            name: "a".into(),
        })
        .unwrap();
    let t3 = ring
        .submit(BatchOp::Create {
            dir: root,
            name: "b".into(),
        })
        .unwrap();
    assert_eq!(ring.drain_once(&*fs), 3);

    let ino_a = match ring.wait(t1).reply {
        BatchReply::Create(Ok(ino)) => ino,
        other => panic!("create a: {other:?}"),
    };
    assert!(matches!(
        ring.wait(t2).reply,
        BatchReply::Create(Err(safer_kernel::ksim::errno::Errno::EEXIST))
    ));
    assert!(matches!(ring.wait(t3).reply, BatchReply::Create(Ok(_))));

    // Write then read in the same batch: the read must observe the
    // write through the chunk overlay.
    let tw = ring
        .submit(BatchOp::Write {
            ino: ino_a,
            off: 0,
            data: b"through the overlay".to_vec(),
        })
        .unwrap();
    let tr = ring
        .submit(BatchOp::Read {
            ino: ino_a,
            off: 0,
            buf: vec![0u8; 19],
        })
        .unwrap();
    let tu = ring
        .submit(BatchOp::Unlink {
            dir: root,
            name: "b".into(),
        })
        .unwrap();
    assert_eq!(ring.drain_once(&*fs), 3);
    match ring.wait(tw).reply {
        BatchReply::Write { result, buf } => {
            assert_eq!(result, Ok(19));
            assert_eq!(&buf, b"through the overlay");
        }
        other => panic!("write: {other:?}"),
    }
    match ring.wait(tr).reply {
        BatchReply::Read { result, buf } => {
            assert_eq!(result, Ok(19));
            assert_eq!(&buf, b"through the overlay");
        }
        other => panic!("read: {other:?}"),
    }
    assert!(matches!(ring.wait(tu).reply, BatchReply::Unlink(Ok(()))));

    // State agrees with the per-call view.
    assert_eq!(fs.lookup(root, "a"), Ok(ino_a));
    assert!(fs.lookup(root, "b").is_err());
    assert_eq!(fs.getattr(ino_a).unwrap().size, 19);
    assert!(fs.lock_registry().violations().is_empty());
}

/// A poisoned (aborted, EROFS) journal fails CQEs cleanly: buffers come
/// back, nothing is acknowledged, and later submissions are refused.
/// PerOp mode makes the chunk commit itself touch the device, so the
/// armed fault aborts the journal mid-chunk and every already-staged
/// reply in the chunk must be rewritten to the commit error.
#[test]
fn poisoned_journal_fails_cqes_without_leaking_buffers() {
    let (faulty, fs) = mount_over_faulty(2048, JournalMode::PerOp);
    let root = fs.root_ino();
    let ring = Arc::new(Ring::new(fs.lock_registry(), 64));
    let ino = fs.create(root, "f").unwrap();
    fs.sync().unwrap();

    // Fail the next device write: the first journal record write aborts
    // the journal, and every op staged behind it is refused with EROFS.
    faulty.fail_nth_write(0);

    let mut tickets = Vec::new();
    for seq in 0..8u64 {
        tickets.push(
            ring.submit(BatchOp::Write {
                ino,
                off: seq * 512,
                data: tagged_buf(1, seq),
            })
            .unwrap(),
        );
    }
    let tf = ring.submit(BatchOp::Fsync { ino }).unwrap();
    ring.drain_once(&*fs);

    // The fsync hit the armed write fault: it must report the failure.
    assert!(
        matches!(ring.wait(tf).reply, BatchReply::Fsync(Err(_))),
        "fsync over a failing journal record must not claim durability"
    );
    // Every write buffer comes back, tagged as submitted; results are
    // failures (the chunk never became durable) — no silent acks, no
    // leaked buffers.
    let mut seen = Vec::new();
    for t in tickets {
        match ring.wait(t).reply {
            BatchReply::Write { result, buf } => {
                assert!(result.is_err(), "acked a write in an aborted chunk");
                seen.push(buf_tag(&buf));
            }
            other => panic!("write reply: {other:?}"),
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, (0..8u64).map(|s| (1, s)).collect::<Vec<_>>());

    // Later submissions against the sticky-EROFS journal also fail
    // cleanly with the buffer returned.
    let t = ring
        .submit(BatchOp::Write {
            ino,
            off: 0,
            data: tagged_buf(2, 0),
        })
        .unwrap();
    ring.drain_once(&*fs);
    match ring.wait(t).reply {
        BatchReply::Write { result, buf } => {
            assert!(result.is_err());
            assert_eq!(buf_tag(&buf), (2, 0));
        }
        other => panic!("reply: {other:?}"),
    }
    assert!(fs.journal().unwrap().is_aborted());
    assert!(fs.lock_registry().violations().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Ownership round-trip under arbitrary interleavings: N submitter
    /// threads race a reactor; every buffer moved into the ring returns
    /// exactly once, whether its op succeeded, failed individually, or
    /// was refused by a journal that aborted mid-run.
    #[test]
    fn buffer_ownership_round_trips_exactly_once(
        clients in 2usize..5,
        ops_per_client in 4u64..16,
        depth in prop_oneof![Just(1usize), Just(8), Just(32)],
        fail_write_at in prop_oneof![Just(None), (5u64..40).prop_map(Some)],
    ) {
        let (faulty, fs) = mount_over_faulty(4096, JournalMode::Async);
        let root = fs.root_ino();
        let ring = Arc::new(Ring::new(fs.lock_registry(), depth));
        let fs_dyn: Arc<dyn FileSystem> = Arc::clone(&fs) as Arc<dyn FileSystem>;
        let relieve_fs = Arc::clone(&fs);
        let pressure_fs = Arc::clone(&fs);
        let reactor = RingReactor::spawn(
            Arc::clone(&ring),
            fs_dyn,
            Some(RingThrottle {
                pressure: Box::new(move || {
                    pressure_fs.journal().map_or(0.0, |j| j.log_pressure())
                }),
                relieve: Box::new(move || {
                    let _ = relieve_fs.commit_running();
                    let _ = relieve_fs.checkpoint(usize::MAX);
                }),
                threshold: 0.5,
            }),
        );
        if let Some(n) = fail_write_at {
            faulty.fail_nth_write(n);
        }

        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let client = c as u64;
                    let mut returned = Vec::new();
                    let mut read_bufs = 0usize;
                    let mut tickets = Vec::new();
                    for seq in 0..ops_per_client {
                        // A mixed, per-client-deterministic op stream.
                        match seq % 5 {
                            0 => tickets.push(ring.submit(BatchOp::Create {
                                dir: 1,
                                name: format!("c{client}s{seq}"),
                            })),
                            1 | 2 => tickets.push(ring.submit(BatchOp::Write {
                                ino: 1 + 1, // may or may not exist; failure is fine
                                off: (client * ops_per_client + seq) * 512,
                                data: tagged_buf(client, seq),
                            })),
                            3 => tickets.push(ring.submit(BatchOp::Read {
                                ino: 2,
                                off: 0,
                                buf: vec![0u8; 256],
                            })),
                            _ => tickets.push(ring.submit(BatchOp::Fsync { ino: 1 })),
                        }
                    }
                    for t in tickets {
                        let t = t.expect("ring not shut down during the run");
                        match ring.wait(t).reply {
                            BatchReply::Write { buf, .. } => returned.push(buf_tag(&buf)),
                            BatchReply::Read { buf, .. } => {
                                assert_eq!(buf.len(), 256, "read buffer resized");
                                read_bufs += 1;
                            }
                            _ => {}
                        }
                    }
                    (client, returned, read_bufs)
                })
            })
            .collect();

        let mut all_returned = Vec::new();
        let mut total_reads = 0usize;
        for h in handles {
            let (client, returned, reads) = h.join().unwrap();
            // This client's write buffers: one per write it submitted,
            // each tagged with its own id — exactly-once, no swaps.
            let mut expect: Vec<(u64, u64)> = (0..ops_per_client)
                .filter(|s| s % 5 == 1 || s % 5 == 2)
                .map(|s| (client, s))
                .collect();
            let mut got = returned.clone();
            expect.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, expect, "client {} buffer set", client);
            all_returned.extend(returned);
            total_reads += reads;
        }
        let writes_per_client =
            (0..ops_per_client).filter(|s| s % 5 == 1 || s % 5 == 2).count();
        let reads_per_client = (0..ops_per_client).filter(|s| s % 5 == 3).count();
        prop_assert_eq!(all_returned.len(), clients * writes_per_client);
        prop_assert_eq!(total_reads, clients * reads_per_client);

        reactor.join();
        let stats = ring.stats();
        prop_assert_eq!(stats.submitted, stats.completed, "every SQE got a CQE");
        prop_assert!(fs.lock_registry().violations().is_empty(),
            "lockdep: {:?}", fs.lock_registry().violations());
        let _ = root;
    }
}

/// Structural backpressure: with a slow disk behind the journal, client
/// threads block on the full ring and the reactor stalls admission on
/// log pressure — the running transaction stays bounded — while lockdep
/// stays clean across the whole submit/reactor/relieve path.
#[test]
fn slow_disk_backpressure_blocks_submitters() {
    let ram = Arc::new(RamDisk::new(4096));
    let faulty = Arc::new(FaultyDisk::new(
        Arc::clone(&ram),
        DiskFaultConfig::default(),
        11,
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 128, 64).unwrap();
    let fs = Arc::new(Rsfs::mount(dev, JournalMode::Async).unwrap());
    let root = fs.root_ino();
    let ino = fs.create(root, "pressure").unwrap();
    fs.sync().unwrap();
    // Now make every device write slow: journal records and checkpoints
    // crawl, so relief takes real time and admission must stall.
    faulty.set_config(DiskFaultConfig {
        write_delay_ns: 100_000,
        ..DiskFaultConfig::default()
    });

    let ring = Arc::new(Ring::new(fs.lock_registry(), 8));
    let fs_dyn: Arc<dyn FileSystem> = Arc::clone(&fs) as Arc<dyn FileSystem>;
    let relieve_fs = Arc::clone(&fs);
    let pressure_fs = Arc::clone(&fs);
    let reactor = RingReactor::spawn(
        Arc::clone(&ring),
        fs_dyn,
        Some(RingThrottle {
            pressure: Box::new(move || pressure_fs.journal().map_or(0.0, |j| j.log_pressure())),
            relieve: Box::new(move || {
                let _ = relieve_fs.commit_running();
                let _ = relieve_fs.checkpoint(usize::MAX);
            }),
            threshold: 0.25,
        }),
    );

    let done = Arc::new(AtomicBool::new(false));
    // Sample journal pressure while the clients run: the running
    // transaction must stay bounded by the stage-path ceiling — growth
    // lands in *blocked submitters*, not staged state.
    let sampler = {
        let fs = Arc::clone(&fs);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut max_pressure = 0.0f32;
            while !done.load(Ordering::Relaxed) {
                if let Some(j) = fs.journal() {
                    max_pressure = max_pressure.max(j.log_pressure());
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            max_pressure
        })
    };

    let clients: Vec<_> = (0..6u64)
        .map(|c| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut tickets = Vec::new();
                for seq in 0..24u64 {
                    tickets.push(
                        ring.submit(BatchOp::Write {
                            ino: 2,
                            off: ((c * 24 + seq) % 32) * 512,
                            data: tagged_buf(c, seq),
                        })
                        .unwrap(),
                    );
                }
                for t in tickets {
                    let cqe = ring.wait(t);
                    assert!(matches!(cqe.reply, BatchReply::Write { .. }));
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let max_pressure = sampler.join().unwrap();
    reactor.join();

    let stats = ring.stats();
    assert!(
        stats.sq_full_blocks > 0,
        "144 submissions over a depth-8 ring on a slow disk never blocked a submitter"
    );
    assert!(
        stats.throttle_stalls > 0,
        "log pressure never stalled reactor admission"
    );
    // The stage path force-commits at fraction 1.0, so staged state is
    // structurally bounded: pressure can never run away past the ceiling.
    assert!(
        max_pressure <= 1.25,
        "running transaction outgrew its ceiling: {max_pressure}"
    );
    assert!(
        fs.lock_registry().violations().is_empty(),
        "lockdep: {:?}",
        fs.lock_registry().violations()
    );
    let _ = ino;
}

/// Captures the pending-write set at each flush barrier (local copy of
/// the crash_recovery harness tap).
struct Tap {
    inner: Arc<CrashDevice<Arc<RamDisk>>>,
    intervals: Mutex<Vec<Vec<PendingWrite>>>,
}

impl BlockDevice for Tap {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }
    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        self.inner.read_block(blkno, buf)
    }
    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        self.inner.write_block(blkno, buf)
    }
    fn flush(&self) -> KResult<()> {
        self.intervals.lock().push(self.inner.pending_writes());
        self.inner.flush()
    }
    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

/// CQE crash contract: drive the async_fsync watermark schedule entirely
/// through ring SQEs (fsync as an SQE, acting as the durability point)
/// and enumerate crash images. Every recovered state must be a valid
/// prefix of the submission order, and images cut at or after the fsync
/// barrier must include everything the fsync covered.
#[test]
fn ring_acked_ops_obey_the_fsync_watermark_contract() {
    let ram = Arc::new(RamDisk::new(2048));
    let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
    let tap = Arc::new(Tap {
        inner: crash,
        intervals: Mutex::new(Vec::new()),
    });
    let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&tap_dyn, 128, 64).unwrap();
    let fs = Rsfs::mount(tap_dyn, JournalMode::Async).unwrap();
    let root = fs.root_ino();
    let ring = Ring::new(fs.lock_registry(), 32);

    let base = ram.snapshot();
    tap.intervals.lock().clear();

    // Chunked submission order: [create f1, write f1] — fsync SQE —
    // [create f2, write f2] — sync. Each drained batch chunk is one
    // journal member, so recovered states are chunk-boundary prefixes.
    let mut models = vec![fs.abstraction()];
    let t1 = ring
        .submit(BatchOp::Create {
            dir: root,
            name: "f1".into(),
        })
        .unwrap();
    let f1_data = b"must survive the ring fsync".to_vec();
    let t2 = ring
        .submit(BatchOp::Write {
            ino: 2,
            off: 0,
            data: f1_data.clone(),
        })
        .unwrap();
    ring.drain_once(&fs);
    let f1 = match ring.wait(t1).reply {
        BatchReply::Create(Ok(ino)) => ino,
        other => panic!("create f1: {other:?}"),
    };
    assert!(matches!(
        ring.wait(t2).reply,
        BatchReply::Write { result: Ok(_), .. }
    ));
    models.push(fs.abstraction());
    let watermark = models.len() - 1;
    assert!(
        tap.intervals.lock().is_empty(),
        "ring staging reached the device before the durability point"
    );

    // The durability point, as an SQE.
    let tf = ring.submit(BatchOp::Fsync { ino: f1 }).unwrap();
    ring.drain_once(&fs);
    assert!(matches!(ring.wait(tf).reply, BatchReply::Fsync(Ok(()))));
    let n_fsync = tap.intervals.lock().len();
    assert!(n_fsync > 0, "fsync SQE must flush the running transaction");

    let t3 = ring
        .submit(BatchOp::Create {
            dir: root,
            name: "f2".into(),
        })
        .unwrap();
    let t4 = ring
        .submit(BatchOp::Write {
            ino: 3,
            off: 0,
            data: b"after the barrier".to_vec(),
        })
        .unwrap();
    ring.drain_once(&fs);
    assert!(matches!(ring.wait(t3).reply, BatchReply::Create(Ok(_))));
    assert!(matches!(
        ring.wait(t4).reply,
        BatchReply::Write { result: Ok(_), .. }
    ));
    models.push(fs.abstraction());
    fs.sync().unwrap();

    let mut intervals = tap.intervals.lock().clone();
    intervals.push(tap.inner.pending_writes());

    let mut checked = 0;
    let mut post_fsync = 0;
    let mut failures = Vec::new();
    let mut applied = base;
    for (idx, interval) in intervals.iter().enumerate() {
        let floor = if idx >= n_fsync { watermark } else { 0 };
        for (i, img) in crash_images(&applied, interval, BLOCK_SIZE, CrashPolicy::Subsets)
            .into_iter()
            .enumerate()
        {
            checked += 1;
            if floor > 0 {
                post_fsync += 1;
            }
            let scratch = Arc::new(RamDisk::new(2048));
            scratch.restore(&img).unwrap();
            let scratch_dyn: Arc<dyn BlockDevice> = scratch;
            match Rsfs::mount(Arc::clone(&scratch_dyn), JournalMode::Async) {
                Ok(recovered) => {
                    let m = recovered.abstraction();
                    if let Err(why) = judge_with_floor(&models, floor, &m) {
                        failures.push(format!("interval {idx} image {i}: {why}"));
                    }
                    match safer_kernel::fs_safe::fsck(&*scratch_dyn) {
                        Ok(r) if r.is_clean() => {}
                        Ok(r) => failures
                            .push(format!("interval {idx} image {i}: fsck {:?}", r.findings)),
                        Err(e) => {
                            failures.push(format!("interval {idx} image {i}: fsck failed {e}"))
                        }
                    }
                }
                Err(e) => failures.push(format!("interval {idx} image {i}: mount failed {e}")),
            }
        }
        for w in interval {
            let off = w.blkno as usize * BLOCK_SIZE;
            applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
        }
    }
    assert!(checked >= 10, "checked {checked}");
    assert!(post_fsync >= 5, "post-fsync images {post_fsync}");
    assert!(failures.is_empty(), "{failures:?}");
}
