//! Integration: crash consistency of the journaled file system, checked
//! exhaustively across crash points and adversarially with device faults.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use safer_kernel::core::spec::crash::{crash_images, judge_with_floor, CrashPolicy};
use safer_kernel::core::spec::Refines;
use safer_kernel::fs_safe::journal::{Journal, RecoveryOutcome};
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{
    BlockDevice, CrashDevice, DeviceStats, PendingWrite, RamDisk, BLOCK_SIZE,
};
use safer_kernel::ksim::errno::KResult;
use safer_kernel::vfs::modular::FileSystem;

/// Captures the pending-write set at each flush barrier.
struct Tap {
    inner: Arc<CrashDevice<Arc<RamDisk>>>,
    intervals: Mutex<Vec<Vec<PendingWrite>>>,
}

impl BlockDevice for Tap {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }
    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        self.inner.read_block(blkno, buf)
    }
    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        self.inner.write_block(blkno, buf)
    }
    fn flush(&self) -> KResult<()> {
        self.intervals.lock().push(self.inner.pending_writes());
        self.inner.flush()
    }
    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

struct Harness {
    ram: Arc<RamDisk>,
    tap: Arc<Tap>,
    fs: Rsfs,
}

fn harness_with(mode: JournalMode) -> Harness {
    let ram = Arc::new(RamDisk::new(2048));
    let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
    let tap = Arc::new(Tap {
        inner: crash,
        intervals: Mutex::new(Vec::new()),
    });
    let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&tap_dyn, 128, 64).unwrap();
    let fs = Rsfs::mount(tap_dyn, mode).unwrap();
    Harness { ram, tap, fs }
}

fn harness() -> Harness {
    harness_with(JournalMode::PerOp)
}

/// Snapshot → op → enumerate crash points → recover each → judge against
/// the operation's pre/post models.
fn run_op_and_check(
    h: &Harness,
    op: impl FnOnce(&Rsfs),
    policy: CrashPolicy,
) -> (usize, Vec<String>) {
    let pre = h.fs.abstraction();
    let base = h.ram.snapshot();
    h.tap.intervals.lock().clear();
    op(&h.fs);
    let post = h.fs.abstraction();
    let intervals = h.tap.intervals.lock().clone();

    let mut checked = 0;
    let mut failures = Vec::new();
    let mut applied = base;
    for interval in &intervals {
        for (i, img) in crash_images(&applied, interval, BLOCK_SIZE, policy)
            .into_iter()
            .enumerate()
        {
            checked += 1;
            let scratch = Arc::new(RamDisk::new(2048));
            scratch.restore(&img).unwrap();
            let scratch_dyn: Arc<dyn BlockDevice> = scratch;
            match Rsfs::mount(Arc::clone(&scratch_dyn), JournalMode::PerOp) {
                Ok(recovered) => {
                    let m = recovered.abstraction();
                    if m != pre && m != post {
                        failures.push(format!("crash image {i}: {m:?}"));
                    }
                    // The recovered image must also be structurally sound.
                    match safer_kernel::fs_safe::fsck(&*scratch_dyn) {
                        Ok(report) if report.is_clean() => {}
                        Ok(report) => failures.push(format!(
                            "crash image {i}: fsck findings {:?}",
                            report.findings
                        )),
                        Err(e) => failures.push(format!("crash image {i}: fsck failed {e}")),
                    }
                }
                Err(e) => failures.push(format!("crash image {i}: mount failed {e}")),
            }
        }
        for w in interval {
            let off = w.blkno as usize * BLOCK_SIZE;
            applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
        }
    }
    (checked, failures)
}

#[test]
fn create_is_atomic_across_all_prefix_crashes() {
    let h = harness();
    let (checked, failures) = run_op_and_check(
        &h,
        |fs| {
            fs.create(fs.root_ino(), "atomic").unwrap();
        },
        CrashPolicy::Prefixes,
    );
    assert!(checked >= 5, "checked {checked}");
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn overwrite_is_atomic_across_all_prefix_crashes() {
    let h = harness();
    let ino = h.fs.create(h.fs.root_ino(), "f").unwrap();
    h.fs.write(ino, 0, b"old-old-old-old").unwrap();
    let (checked, failures) = run_op_and_check(
        &h,
        |fs| {
            fs.write(ino, 0, b"NEW-NEW-NEW-NEW").unwrap();
        },
        CrashPolicy::Prefixes,
    );
    assert!(checked >= 5, "checked {checked}");
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn rename_is_atomic_even_under_write_reordering() {
    let h = harness();
    h.fs.create(h.fs.root_ino(), "src").unwrap();
    let (checked, failures) = run_op_and_check(
        &h,
        |fs| {
            fs.rename(fs.root_ino(), "src", fs.root_ino(), "dst")
                .unwrap();
        },
        CrashPolicy::Subsets,
    );
    assert!(checked >= 16, "checked {checked}");
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn unlink_is_atomic_across_subset_crashes() {
    let h = harness();
    let ino = h.fs.create(h.fs.root_ino(), "doomed").unwrap();
    h.fs.write(ino, 0, &vec![7u8; 5000]).unwrap();
    let (checked, failures) = run_op_and_check(
        &h,
        |fs| {
            fs.unlink(fs.root_ino(), "doomed").unwrap();
        },
        CrashPolicy::Subsets,
    );
    assert!(checked >= 16, "checked {checked}");
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn multi_op_sequence_each_op_atomic() {
    let h = harness();
    // Check a chain of operations, each against its own pre/post pair.
    type FsOp = Box<dyn Fn(&Rsfs)>;
    let ops: Vec<FsOp> = vec![
        Box::new(|fs: &Rsfs| {
            fs.mkdir(fs.root_ino(), "dir").unwrap();
        }),
        Box::new(|fs: &Rsfs| {
            let d = fs.lookup(fs.root_ino(), "dir").unwrap();
            fs.create(d, "f").unwrap();
        }),
        Box::new(|fs: &Rsfs| {
            let d = fs.lookup(fs.root_ino(), "dir").unwrap();
            let f = fs.lookup(d, "f").unwrap();
            fs.write(f, 0, b"chained").unwrap();
        }),
    ];
    let mut total = 0;
    for op in ops {
        let (checked, failures) = run_op_and_check(&h, |fs| op(fs), CrashPolicy::Prefixes);
        assert!(failures.is_empty(), "{failures:?}");
        total += checked;
    }
    assert!(total >= 15, "checked {total}");
}

#[test]
fn journal_discards_commit_corrupted_by_bitrot() {
    // Adversarial: corrupt the journaled payload after commit, rewind the
    // journal superblock, and verify recovery refuses to replay garbage.
    let ram = Arc::new(RamDisk::new(2048));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 128, 64).unwrap();
    let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).unwrap();
    fs.create(fs.root_ino(), "x").unwrap();
    fs.sync().unwrap(); // checkpoint: homes durable, jsb tail advanced
    drop(fs);
    // Journal geometry from the layout: last 64 blocks, jsb first.
    let jstart = 2048 - 64;
    // Rewind the jsb (tail_seq and tail_off) to claim the checkpointed
    // txn is still pending, as if the crash hit before the tail advanced.
    let mut jsb = vec![0u8; BLOCK_SIZE];
    dev.read_block(jstart, &mut jsb).unwrap();
    let seq = u64::from_le_bytes(jsb[4..12].try_into().unwrap());
    jsb[4..12].copy_from_slice(&(seq - 1).to_le_bytes());
    jsb[12..20].copy_from_slice(&0u64.to_le_bytes());
    ram.write_block(jstart, &jsb).unwrap();
    // Corrupt the journaled payload.
    let mut payload = vec![0u8; BLOCK_SIZE];
    ram.read_block(jstart + 2, &mut payload).unwrap();
    payload[17] ^= 0xFF;
    ram.write_block(jstart + 2, &payload).unwrap();
    let outcome = Journal::recover(&dev, jstart, 64).unwrap();
    assert_eq!(outcome, RecoveryOutcome::DiscardedTorn);
    // And the file system still mounts, with the committed state intact
    // (the home blocks were already checkpointed before the corruption).
    let fs = Rsfs::mount(dev, JournalMode::PerOp).unwrap();
    assert!(fs.lookup(fs.root_ino(), "x").is_ok());
}

#[test]
fn multiblock_write_is_atomic_across_torn_sector_crashes() {
    // Torn policy: the crash may land mid-write, leaving only the first k
    // sectors of a block. The journal's record format must make every
    // such image recover to pre or post — never a half-replayed write.
    let h = harness();
    let ino = h.fs.create(h.fs.root_ino(), "torn").unwrap();
    h.fs.write(ino, 0, &vec![0xAAu8; 3 * BLOCK_SIZE]).unwrap();
    h.fs.sync().unwrap();
    let (checked, failures) = run_op_and_check(
        &h,
        |fs| {
            fs.write(ino, 0, &vec![0x55u8; 3 * BLOCK_SIZE]).unwrap();
        },
        CrashPolicy::Torn,
    );
    // Each pending write contributes sectors_per_block images, so a
    // multi-block commit yields far more crash points than Prefixes.
    assert!(checked >= 30, "checked {checked}");
    assert!(failures.is_empty(), "{failures:?}");
}

/// Runs a commit→checkpoint schedule on a fresh rsfs and enumerates
/// `policy` crash images at every flush barrier, judging each recovered
/// state against the set of models the schedule passed through.
fn rsfs_schedule_and_check(policy: CrashPolicy) -> (usize, Vec<String>) {
    let h = harness();
    let base = h.ram.snapshot();
    h.tap.intervals.lock().clear();
    let root = h.fs.root_ino();

    let mut models = vec![h.fs.abstraction()];
    let ino = h.fs.create(root, "sched").unwrap();
    models.push(h.fs.abstraction());
    h.fs.write(ino, 0, b"commit then checkpoint").unwrap();
    models.push(h.fs.abstraction());
    // The checkpoint: homes written, tail advanced. Crashing inside it
    // must still recover the full history (the log replays idempotently).
    h.fs.sync().unwrap();
    let intervals = h.tap.intervals.lock().clone();
    assert!(
        intervals.len() >= 3,
        "expected commit, commit, checkpoint barriers, got {}",
        intervals.len()
    );

    let mut checked = 0;
    let mut failures = Vec::new();
    let mut applied = base;
    for interval in &intervals {
        for (i, img) in crash_images(&applied, interval, BLOCK_SIZE, policy)
            .into_iter()
            .enumerate()
        {
            checked += 1;
            let scratch = Arc::new(RamDisk::new(2048));
            scratch.restore(&img).unwrap();
            let scratch_dyn: Arc<dyn BlockDevice> = scratch;
            match Rsfs::mount(Arc::clone(&scratch_dyn), JournalMode::PerOp) {
                Ok(recovered) => {
                    let m = recovered.abstraction();
                    if !models.contains(&m) {
                        failures.push(format!("image {i}: off-history state {m:?}"));
                    }
                    match safer_kernel::fs_safe::fsck(&*scratch_dyn) {
                        Ok(r) if r.is_clean() => {}
                        Ok(r) => failures.push(format!("image {i}: fsck {:?}", r.findings)),
                        Err(e) => failures.push(format!("image {i}: fsck failed {e}")),
                    }
                }
                Err(e) => failures.push(format!("image {i}: mount failed {e}")),
            }
        }
        for w in interval {
            let off = w.blkno as usize * BLOCK_SIZE;
            applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
        }
    }
    (checked, failures)
}

#[test]
fn rsfs_commit_then_checkpoint_schedule_subsets() {
    let (checked, failures) = rsfs_schedule_and_check(CrashPolicy::Subsets);
    assert!(checked >= 32, "checked {checked}");
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn rsfs_commit_then_checkpoint_schedule_torn() {
    let (checked, failures) = rsfs_schedule_and_check(CrashPolicy::Torn);
    assert!(checked >= 30, "checked {checked}");
    assert!(failures.is_empty(), "{failures:?}");
}

/// Async-commit schedule with an fsync in the middle: stage two ops, fsync
/// (the durability barrier), stage two more, then sync. Every crash image
/// cut from an interval at or after the fsync barrier must recover to a
/// history prefix that *includes* the fsync'd data — the refined contract
/// the async pipeline promises — while earlier images may land anywhere on
/// the history. Returns (checked, post_fsync_checked, failures).
fn async_fsync_schedule_and_check(policy: CrashPolicy) -> (usize, usize, Vec<String>) {
    let h = harness_with(JournalMode::Async);
    let base = h.ram.snapshot();
    h.tap.intervals.lock().clear();
    let root = h.fs.root_ino();

    let mut models = vec![h.fs.abstraction()];
    let f1 = h.fs.create(root, "f1").unwrap();
    models.push(h.fs.abstraction());
    h.fs.write(f1, 0, b"must survive fsync").unwrap();
    models.push(h.fs.abstraction());
    let watermark = models.len() - 1;
    // Staging alone must not have touched the device: the op path is
    // decoupled from durability.
    assert!(
        h.tap.intervals.lock().is_empty(),
        "async staging reached the device before the durability point"
    );
    h.fs.fsync(f1).unwrap();
    let n_fsync = h.tap.intervals.lock().len();
    assert!(n_fsync > 0, "fsync must flush the running transaction");

    let f2 = h.fs.create(root, "f2").unwrap();
    models.push(h.fs.abstraction());
    h.fs.write(f2, 0, b"after the barrier").unwrap();
    models.push(h.fs.abstraction());
    h.fs.sync().unwrap(); // commit the second running txn and checkpoint

    let mut intervals = h.tap.intervals.lock().clone();
    intervals.push(h.tap.inner.pending_writes());

    let mut checked = 0;
    let mut post_fsync = 0;
    let mut failures = Vec::new();
    let mut applied = base;
    for (idx, interval) in intervals.iter().enumerate() {
        // Intervals at or after the fsync barrier start from a base where
        // everything fsync flushed is durable: the watermark applies.
        let floor = if idx >= n_fsync { watermark } else { 0 };
        for (i, img) in crash_images(&applied, interval, BLOCK_SIZE, policy)
            .into_iter()
            .enumerate()
        {
            checked += 1;
            if floor > 0 {
                post_fsync += 1;
            }
            let scratch = Arc::new(RamDisk::new(2048));
            scratch.restore(&img).unwrap();
            let scratch_dyn: Arc<dyn BlockDevice> = scratch;
            match Rsfs::mount(Arc::clone(&scratch_dyn), JournalMode::Async) {
                Ok(recovered) => {
                    let m = recovered.abstraction();
                    if let Err(why) = judge_with_floor(&models, floor, &m) {
                        failures.push(format!("interval {idx} image {i}: {why}"));
                    }
                    match safer_kernel::fs_safe::fsck(&*scratch_dyn) {
                        Ok(r) if r.is_clean() => {}
                        Ok(r) => failures
                            .push(format!("interval {idx} image {i}: fsck {:?}", r.findings)),
                        Err(e) => {
                            failures.push(format!("interval {idx} image {i}: fsck failed {e}"))
                        }
                    }
                }
                Err(e) => failures.push(format!("interval {idx} image {i}: mount failed {e}")),
            }
        }
        for w in interval {
            let off = w.blkno as usize * BLOCK_SIZE;
            applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
        }
    }
    (checked, post_fsync, failures)
}

#[test]
fn async_fsync_watermark_holds_across_prefix_crashes() {
    let (checked, post_fsync, failures) = async_fsync_schedule_and_check(CrashPolicy::Prefixes);
    assert!(checked >= 10, "checked {checked}");
    assert!(post_fsync >= 5, "post-fsync images {post_fsync}");
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn async_fsync_watermark_holds_across_subset_crashes() {
    let (checked, post_fsync, failures) = async_fsync_schedule_and_check(CrashPolicy::Subsets);
    assert!(checked >= 32, "checked {checked}");
    assert!(post_fsync >= 16, "post-fsync images {post_fsync}");
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn async_fsync_watermark_holds_across_torn_sector_crashes() {
    let (checked, post_fsync, failures) = async_fsync_schedule_and_check(CrashPolicy::Torn);
    assert!(checked >= 20, "checked {checked}");
    assert!(post_fsync >= 10, "post-fsync images {post_fsync}");
    assert!(failures.is_empty(), "{failures:?}");
}

/// Revert-fails guard for the watermark schedule: simulate a broken
/// pipeline whose fsync claims the durability point without committing
/// the running transaction. A crash right after the claimed fsync then
/// recovers to the pre-staging state, and the judge must refuse that
/// image — if this test ever finds the judge accepting it, the suite
/// above has lost its power to catch fsync'd-data loss.
#[test]
fn watermark_judge_catches_an_fsync_that_does_not_commit() {
    let h = harness_with(JournalMode::Async);
    let base = h.ram.snapshot();
    h.tap.intervals.lock().clear();
    let root = h.fs.root_ino();

    let mut models = vec![h.fs.abstraction()];
    let f1 = h.fs.create(root, "f1").unwrap();
    models.push(h.fs.abstraction());
    h.fs.write(f1, 0, b"claimed durable, never committed")
        .unwrap();
    models.push(h.fs.abstraction());
    let watermark = models.len() - 1;

    // The revert under test: the durability point is claimed (watermark
    // recorded) but `commit_running` never runs — no journal record, no
    // barrier, nothing pending in the write cache.
    assert!(h.tap.intervals.lock().is_empty());
    assert!(h.tap.inner.pending_writes().is_empty());

    // Crash now: the device still holds the pre-staging image.
    let scratch = Arc::new(RamDisk::new(2048));
    scratch.restore(&base).unwrap();
    let scratch_dyn: Arc<dyn BlockDevice> = scratch;
    let recovered = Rsfs::mount(scratch_dyn, JournalMode::Async).unwrap();
    let why = judge_with_floor(&models, watermark, &recovered.abstraction())
        .expect_err("the judge accepted an image that lost fsync'd data");
    assert!(why.contains("watermark"), "{why}");
}

/// cext4 has no journal, so post-crash images cannot be held to the
/// pre/post-model judgement — the baseline promise is only that a crash
/// image either mounts and a bounded, cycle-guarded tree walk
/// terminates, or is refused with a clean errno (no panic, no loop).
fn cext4_recovers_or_refuses(img: &[u8]) -> Result<(), String> {
    use safer_kernel::fs_legacy::{BugKnobs, Cext4};
    use safer_kernel::legacy::LegacyCtx;

    let scratch = Arc::new(RamDisk::new(2048));
    scratch.restore(img).unwrap();
    let dev: Arc<dyn BlockDevice> = scratch;
    let fs = match Cext4::mount(dev, LegacyCtx::new(), Arc::new(BugKnobs::none())) {
        Ok(fs) => fs,
        Err(_) => return Ok(()), // clean refusal: acceptable for the baseline
    };
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![fs.root_ino()];
    let mut steps = 0usize;
    while let Some(dir) = stack.pop() {
        if !seen.insert(dir) {
            continue;
        }
        steps += 1;
        if steps > 10_000 {
            return Err("tree walk did not terminate".into());
        }
        // Errors while walking a corrupt tree are fine; hangs are not.
        if let Ok(entries) = fs.readdir_inner(dir) {
            for (_, ino) in entries {
                stack.push(ino);
            }
        }
    }
    Ok(())
}

#[test]
fn cext4_commit_then_sync_schedule_subsets_never_wedges() {
    use safer_kernel::fs_legacy::{BugKnobs, Cext4};
    use safer_kernel::legacy::LegacyCtx;

    let ram = Arc::new(RamDisk::new(2048));
    let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
    let tap = Arc::new(Tap {
        inner: crash,
        intervals: Mutex::new(Vec::new()),
    });
    let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
    Cext4::mkfs(&tap_dyn, 128).unwrap();
    let base = ram.snapshot();
    tap.intervals.lock().clear();
    let fs = Cext4::mount(tap_dyn, LegacyCtx::new(), Arc::new(BugKnobs::none())).unwrap();

    // The legacy analogue of commit→checkpoint: mutate, sync, mutate, sync.
    let root = fs.root_ino();
    let p = fs.create_errptr(root, "a", 0o100644).check().unwrap();
    let a = fs
        .ctx()
        .vp_take::<safer_kernel::vfs::inode::InodeNo>(p, "test")
        .unwrap();
    fs.write_range(a, 0, &vec![1u8; BLOCK_SIZE + 17]).unwrap();
    fs.sync_inner().unwrap();
    let p = fs.create_errptr(root, "b", 0o100644).check().unwrap();
    let _ = fs
        .ctx()
        .vp_take::<safer_kernel::vfs::inode::InodeNo>(p, "test");
    fs.sync_inner().unwrap();
    let intervals = tap.intervals.lock().clone();
    assert!(!intervals.is_empty());

    let mut checked = 0;
    let mut failures = Vec::new();
    let mut applied = base;
    for interval in &intervals {
        for (i, img) in crash_images(&applied, interval, BLOCK_SIZE, CrashPolicy::Subsets)
            .into_iter()
            .enumerate()
        {
            checked += 1;
            if let Err(why) = cext4_recovers_or_refuses(&img) {
                failures.push(format!("image {i}: {why}"));
            }
        }
        for w in interval {
            let off = w.blkno as usize * BLOCK_SIZE;
            applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
        }
    }
    assert!(checked >= 16, "checked {checked}");
    assert!(failures.is_empty(), "{failures:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: any single mutating operation, chosen and parameterized
    /// randomly, is crash-atomic across all prefix crash points.
    #[test]
    fn random_single_op_is_crash_atomic(
        which in 0u8..5,
        name in "[a-z]{1,8}",
        data in prop::collection::vec(any::<u8>(), 1..300),
        off in 0u64..4096,
    ) {
        let h = harness();
        // Seed state so unlink/rename/truncate have something to act on.
        let seeded = h.fs.create(h.fs.root_ino(), "seed").unwrap();
        h.fs.write(seeded, 0, b"seed-content").unwrap();

        let (checked, failures) = run_op_and_check(
            &h,
            |fs| {
                let root = fs.root_ino();
                match which {
                    0 => {
                        fs.create(root, &name).unwrap();
                    }
                    1 => {
                        fs.mkdir(root, &name).unwrap();
                    }
                    2 => {
                        fs.write(seeded, off, &data).unwrap();
                    }
                    3 => {
                        fs.rename(root, "seed", root, &name).unwrap();
                    }
                    _ => {
                        fs.unlink(root, "seed").unwrap();
                    }
                }
            },
            CrashPolicy::Prefixes,
        );
        prop_assert!(checked > 0);
        prop_assert!(failures.is_empty(), "{:?}", failures);
    }

    /// Property: with checkpoints deferred (no sync), a crash at *every*
    /// write prefix — including mid-way through a group-commit record —
    /// recovers to exactly some prefix of the operation history: the
    /// journal replays every durably committed transaction in sequence
    /// order and discards the torn tail, never yielding a state outside
    /// the op chain.
    #[test]
    fn deferred_group_commits_recover_to_an_op_prefix(
        plan in prop::collection::vec((0u8..3, 1usize..400), 3..7),
    ) {
        let h = harness();
        let base = h.ram.snapshot();
        h.tap.intervals.lock().clear();
        let root = h.fs.root_ino();
        let mut models = vec![h.fs.abstraction()];
        let mut live: Vec<String> = Vec::new();
        for (k, (kind, len)) in plan.iter().enumerate() {
            match kind {
                1 if !live.is_empty() => {
                    let name = &live[k % live.len()];
                    let ino = h.fs.lookup(root, name).unwrap();
                    h.fs.write(ino, 0, &vec![k as u8; *len]).unwrap();
                }
                2 if !live.is_empty() => {
                    let name = live.remove(k % live.len());
                    h.fs.unlink(root, &name).unwrap();
                }
                _ => {
                    let name = format!("f{k}");
                    h.fs.create(root, &name).unwrap();
                    live.push(name);
                }
            }
            models.push(h.fs.abstraction());
        }
        // Deliberately NO sync(): every transaction sits committed but
        // un-checkpointed, so recovery must replay a multi-txn journal.
        let mut intervals = h.tap.intervals.lock().clone();
        intervals.push(h.tap.inner.pending_writes());

        let mut checked = 0usize;
        let mut applied = base;
        let mut last_img = None;
        for interval in &intervals {
            for img in crash_images(&applied, interval, BLOCK_SIZE, CrashPolicy::Prefixes) {
                checked += 1;
                let scratch = Arc::new(RamDisk::new(2048));
                scratch.restore(&img).unwrap();
                let scratch_dyn: Arc<dyn BlockDevice> = scratch;
                let recovered = Rsfs::mount(Arc::clone(&scratch_dyn), JournalMode::PerOp)
                    .expect("mount after crash");
                let m = recovered.abstraction();
                prop_assert!(
                    models.contains(&m),
                    "recovered state is not a prefix of the op history: {m:?}"
                );
                let report = safer_kernel::fs_safe::fsck(&*scratch_dyn).unwrap();
                prop_assert!(report.is_clean(), "{:?}", report.findings);
                last_img = Some(img);
            }
            for w in interval {
                let off = w.blkno as usize * BLOCK_SIZE;
                applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
            }
        }
        prop_assert!(checked >= plan.len(), "only {checked} crash points");
        // The final crash point (everything durable) must recover the
        // complete history — the committed prefix is ALL of it.
        let full = last_img.expect("at least one crash image");
        let scratch = Arc::new(RamDisk::new(2048));
        scratch.restore(&full).unwrap();
        let scratch_dyn: Arc<dyn BlockDevice> = scratch;
        let recovered = Rsfs::mount(scratch_dyn, JournalMode::PerOp).unwrap();
        prop_assert!(recovered.abstraction() == *models.last().unwrap());
    }

    /// Property: under the async pipeline, a random op plan with an fsync
    /// at a random position recovers — at every prefix crash point — to a
    /// history prefix, and every crash point at or after the fsync barrier
    /// recovers to a prefix that includes the fsync'd watermark state.
    #[test]
    fn async_random_plan_with_fsync_respects_the_watermark(
        plan in prop::collection::vec((0u8..3, 1usize..300), 3..7),
        fsync_pick in 0usize..6,
    ) {
        let h = harness_with(JournalMode::Async);
        let base = h.ram.snapshot();
        h.tap.intervals.lock().clear();
        let root = h.fs.root_ino();
        let mut models = vec![h.fs.abstraction()];
        let mut live: Vec<String> = Vec::new();
        let fsync_at = fsync_pick % plan.len();
        let mut watermark = 0usize;
        let mut n_fsync = 0usize;
        for (k, (kind, len)) in plan.iter().enumerate() {
            match kind {
                1 if !live.is_empty() => {
                    let name = &live[k % live.len()];
                    let ino = h.fs.lookup(root, name).unwrap();
                    h.fs.write(ino, 0, &vec![k as u8; *len]).unwrap();
                }
                2 if !live.is_empty() => {
                    let name = live.remove(k % live.len());
                    h.fs.unlink(root, &name).unwrap();
                }
                _ => {
                    let name = format!("f{k}");
                    h.fs.create(root, &name).unwrap();
                    live.push(name);
                }
            }
            models.push(h.fs.abstraction());
            if k == fsync_at {
                // The durability barrier: everything staged so far must
                // survive any later crash.
                h.fs.fsync(root).unwrap();
                watermark = models.len() - 1;
                n_fsync = h.tap.intervals.lock().len();
            }
        }
        prop_assert!(n_fsync > 0, "fsync produced no flush barrier");
        let mut intervals = h.tap.intervals.lock().clone();
        intervals.push(h.tap.inner.pending_writes());

        let mut checked = 0usize;
        let mut applied = base;
        for (idx, interval) in intervals.iter().enumerate() {
            let floor = if idx >= n_fsync { watermark } else { 0 };
            for img in crash_images(&applied, interval, BLOCK_SIZE, CrashPolicy::Prefixes) {
                checked += 1;
                let scratch = Arc::new(RamDisk::new(2048));
                scratch.restore(&img).unwrap();
                let scratch_dyn: Arc<dyn BlockDevice> = scratch;
                let recovered = Rsfs::mount(Arc::clone(&scratch_dyn), JournalMode::Async)
                    .expect("mount after crash");
                let m = recovered.abstraction();
                prop_assert!(
                    judge_with_floor(&models, floor, &m).is_ok(),
                    "interval {idx}: {:?} (plan {plan:?} fsync_at {fsync_at} n_fsync {n_fsync} interval_lens {:?})",
                    judge_with_floor(&models, floor, &m),
                    intervals.iter().map(|iv| iv.len()).collect::<Vec<_>>()
                );
                let report = safer_kernel::fs_safe::fsck(&*scratch_dyn).unwrap();
                prop_assert!(report.is_clean(), "{:?}", report.findings);
            }
            for w in interval {
                let off = w.blkno as usize * BLOCK_SIZE;
                applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
            }
        }
        prop_assert!(checked > 0);
    }
}
