//! Integration: the safe/unverified boundary machinery working together —
//! ownership contracts across a shim, axiomatic device models underneath a
//! verified-style module, and the ledger seeing everything.

use std::sync::Arc;

use safer_kernel::core::ownership::{Access, ContractTracker, Owned};
use safer_kernel::core::shim::Boundary;
use safer_kernel::core::spec::AxiomaticDevice;
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, FaultConfig, FaultyDevice, RamDisk};
use safer_kernel::ksim::errno::Errno;
use safer_kernel::legacy::{BugClass, BugLedger, LegacyCtx};
use safer_kernel::vfs::modular::FileSystem;
use safer_kernel::vfs::shim::{export_legacy, LegacyFsAdapter};

#[test]
fn safe_fs_runs_on_an_axiomatically_checked_device() {
    // A verified-style module must state its assumptions about the block
    // layer; the axiomatic wrapper checks them at runtime. rsfs on top of
    // an honest device never trips an axiom.
    let axio = Arc::new(AxiomaticDevice::new(
        Arc::new(RamDisk::new(2048)) as Arc<dyn BlockDevice>
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&axio) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 128, 64).unwrap();
    let fs = Rsfs::mount(dev, JournalMode::PerOp).unwrap();
    let root = fs.root_ino();
    let f = fs.create(root, "file").unwrap();
    fs.write(f, 0, &vec![9u8; 10_000]).unwrap();
    let mut buf = vec![0u8; 10_000];
    fs.read(f, 0, &mut buf).unwrap();
    fs.unlink(root, "file").unwrap();
    assert!(axio.is_clean(), "axioms: {:?}", axio.violations());
}

#[test]
fn axioms_catch_a_corrupting_device_under_the_fs() {
    // The same module on bit-rotting hardware: the axiomatic model is what
    // distinguishes "the verified fs is buggy" from "the substrate broke
    // its contract" (§4.4's diagnosis problem).
    let faulty = FaultyDevice::new(
        Arc::new(RamDisk::new(2048)) as Arc<dyn BlockDevice>,
        FaultConfig {
            corruption_rate: 0.3,
            ..FaultConfig::default()
        },
        1234,
    );
    let axio = Arc::new(AxiomaticDevice::new(faulty));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&axio) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 128, 64).unwrap();
    // Mount may or may not succeed depending on which blocks rot; either
    // way, any read-back mismatch must be attributed to the device.
    if let Ok(fs) = Rsfs::mount(dev, JournalMode::None) {
        let root = fs.root_ino();
        for i in 0..10 {
            let _ = fs.create(root, &format!("f{i}"));
            if let Ok(ino) = fs.lookup(root, &format!("f{i}")) {
                let _ = fs.write(ino, 0, &vec![i as u8; 5000]);
                let mut buf = vec![0u8; 5000];
                let _ = fs.read(ino, 0, &mut buf);
            }
        }
    }
    assert!(
        !axio.is_clean(),
        "30% corruption must trip the read-after-write axiom"
    );
    assert!(axio
        .violations()
        .iter()
        .all(|v| v.axiom == "A1" || v.axiom == "A2"));
}

#[test]
fn ownership_contract_enforced_across_a_legacy_boundary() {
    // A buffer crosses from a safe caller to a "legacy" callee module.
    // The shim registers the loan with the tracker; the legacy side's
    // accesses are validated dynamically (§4.3's restricted sharing for
    // unverified code).
    let ledger = Arc::new(BugLedger::new());
    let tracker = Arc::new(ContractTracker::with_ledger(Arc::clone(&ledger)));
    let boundary = Boundary::with_tracker("safe->legacy", Arc::clone(&tracker));

    // Model 2: exclusive loan to the legacy module for the call duration.
    let mut buffer = Owned::new(vec![0u8; 64]);
    let obj = tracker.register("caller");
    tracker.lend_exclusive(obj, "caller", "legacy_module");

    // During the loan, the caller must not touch it...
    assert!(!tracker.access(obj, "caller", Access::Read));
    // ...while the callee mutates through the boundary.
    let r = boundary.cross_checked(
        |t| t.access(obj, "legacy_module", Access::Write),
        || {
            buffer.lend_exclusive()[0] = 42;
            Ok(())
        },
    );
    assert_eq!(r, Ok(()));
    tracker.return_exclusive(obj, "legacy_module");
    assert!(tracker.access(obj, "caller", Access::Read));
    assert_eq!(buffer[0], 42);

    // A rogue late access by the legacy module is refused at the boundary
    // and lands in the same ledger as the memory-safety detections.
    let r: Result<(), Errno> =
        boundary.cross_checked(|t| t.access(obj, "legacy_module", Access::Write), || Ok(()));
    assert_eq!(r, Err(Errno::EACCES));
    assert_eq!(boundary.stats().validation_failures(), 1);
    assert_eq!(
        ledger.count(BugClass::DataRace),
        2,
        "caller-during-loan + rogue access"
    );
}

#[test]
fn double_shim_roundtrip_preserves_behaviour() {
    // Safe fs → legacy ops table → modular adapter: two marshalling shims.
    // Everything still behaves identically to the direct path.
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(2048));
    Rsfs::mkfs(&dev, 128, 64).unwrap();
    let direct: Arc<dyn FileSystem> =
        Arc::new(Rsfs::mount(Arc::clone(&dev), JournalMode::None).unwrap());
    let ctx = LegacyCtx::new();
    let ops = Arc::new(export_legacy(Arc::clone(&direct), &ctx));
    let shimmed = LegacyFsAdapter::new(ops, ctx.clone());

    let root = shimmed.root_ino();
    let f = shimmed.create(root, "through-two-shims").unwrap();
    assert_eq!(shimmed.write(f, 3, b"abc").unwrap(), 3);
    let mut buf = vec![0u8; 6];
    assert_eq!(shimmed.read(f, 0, &mut buf).unwrap(), 6);
    assert_eq!(&buf, b"\0\0\0abc");
    let attr = shimmed.getattr(f).unwrap();
    assert_eq!(attr.size, 6);
    let entries = shimmed.readdir(root).unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].name, "through-two-shims");
    shimmed
        .rename(root, "through-two-shims", root, "renamed")
        .unwrap();
    shimmed
        .truncate(shimmed.lookup(root, "renamed").unwrap(), 2)
        .unwrap();
    shimmed.unlink(root, "renamed").unwrap();
    assert_eq!(shimmed.lookup(root, "renamed"), Err(Errno::ENOENT));
    shimmed.sync().unwrap();
    let stat = shimmed.statfs().unwrap();
    assert!(stat.blocks_free > 0);

    // Both marshalling directions ran; crossings were counted.
    assert!(shimmed.boundary().stats().crossings() >= 10);
    // The shim freed every ERR_PTR carrier it took; no leaks.
    assert_eq!(ctx.arena.live_count(), 0, "shim leaked marshalling objects");
    assert!(ctx.ledger.is_clean());
}

#[test]
fn errptr_marshalling_errors_cross_faithfully() {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(2048));
    Rsfs::mkfs(&dev, 128, 64).unwrap();
    let direct: Arc<dyn FileSystem> =
        Arc::new(Rsfs::mount(Arc::clone(&dev), JournalMode::None).unwrap());
    let ctx = LegacyCtx::new();
    let ops = Arc::new(export_legacy(Arc::clone(&direct), &ctx));
    let shimmed = LegacyFsAdapter::new(ops, ctx);

    let root = shimmed.root_ino();
    assert_eq!(shimmed.lookup(root, "missing"), Err(Errno::ENOENT));
    assert_eq!(shimmed.getattr(9999), Err(Errno::EINVAL));
    shimmed.create(root, "x").unwrap();
    assert_eq!(shimmed.create(root, "x"), Err(Errno::EEXIST));
    assert_eq!(shimmed.rmdir(root, "x"), Err(Errno::ENOTDIR));
}
