//! Integration: the roadmap ledger earns its levels from *actual checker
//! runs*, not assertions by fiat — §3's "incremental benefit for
//! incremental work" with the evidence wired to the machinery that
//! produces it.

use std::sync::Arc;

use safer_kernel::core::modularity::Registry;
use safer_kernel::core::roadmap::{Roadmap, SafetyLevel};
use safer_kernel::core::spec::{RefinementChecker, Refines};
use safer_kernel::fs_legacy::{cext4_ops, BugKnobs, Cext4};
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, RamDisk};
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::vfs::modular::{fs_abstraction, FileSystem};
use safer_kernel::vfs::path::FS_INTERFACE;
use safer_kernel::vfs::shim::LegacyFsAdapter;
use safer_kernel::vfs::spec::FsModel;

struct Abstracted<'a>(&'a dyn FileSystem);
impl Refines<FsModel> for Abstracted<'_> {
    fn abstraction(&self) -> FsModel {
        fs_abstraction(self.0)
    }
}

/// Runs a small refinement-checked workload; returns the counterexample
/// count (0 = the evidence for a FunctionallyVerified certification).
fn refinement_evidence(fs: &dyn FileSystem) -> usize {
    let mut sys = Abstracted(fs);
    let mut chk: RefinementChecker<FsModel> = RefinementChecker::new();
    let root = fs.root_ino();
    let ino = chk.step(
        &mut sys,
        "create",
        |s| s.0.create(root, "cert"),
        |pre, post, r| r.is_ok() && pre.create("/cert").map(|m| m == *post).unwrap_or(false),
    );
    let ino = ino.unwrap_or(0);
    let _ = chk.step(
        &mut sys,
        "write",
        |s| s.0.write(ino, 3, b"evidence"),
        |pre, post, r| {
            r.is_ok()
                && pre
                    .write("/cert", 3, b"evidence")
                    .map(|m| m == *post)
                    .unwrap_or(false)
        },
    );
    let _ = chk.step(
        &mut sys,
        "unlink",
        |s| s.0.unlink(root, "cert"),
        |pre, post, r| r.is_ok() && pre.unlink("/cert").map(|m| m == *post).unwrap_or(false),
    );
    chk.violations().len()
}

#[test]
fn levels_are_earned_by_running_the_checkers() {
    // Phase 1: legacy module. The registry swap test is the Modular
    // evidence; the refinement run over the legacy module *also* passes
    // (cext4 is semantically correct), but Type/Ownership cannot be
    // certified — its interface is the void-pointer one — so the effective
    // level stays Modular: the chain has a gap, exactly as the paper's
    // staircase requires.
    let registry = Registry::new();
    let roadmap = Roadmap::new();

    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(2048));
    Cext4::mkfs(&dev, 128).unwrap();
    let ctx = LegacyCtx::new();
    let cext4 = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
    let legacy: Arc<dyn FileSystem> =
        Arc::new(LegacyFsAdapter::new(Arc::new(cext4_ops(cext4)), ctx));
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", Arc::clone(&legacy))
        .unwrap();
    roadmap.track(FS_INTERFACE, "cext4");
    roadmap
        .certify(
            FS_INTERFACE,
            SafetyLevel::Modular,
            "registered behind the registry",
        )
        .unwrap();
    let legacy_violations = refinement_evidence(&*legacy);
    assert_eq!(legacy_violations, 0, "cext4 is correct, just not safe");
    roadmap
        .certify(
            FS_INTERFACE,
            SafetyLevel::FunctionallyVerified,
            "refinement run: 0 counterexamples",
        )
        .unwrap();
    // The gap (no TypeSafe/OwnershipSafe) caps the effective level.
    assert_eq!(roadmap.level_of(FS_INTERFACE), SafetyLevel::Modular);

    // Phase 2: swap in rsfs and re-earn the whole chain with evidence.
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(2048));
    Rsfs::mkfs(&dev, 128, 64).unwrap();
    let rsfs: Arc<dyn FileSystem> = Arc::new(Rsfs::mount(dev, JournalMode::PerOp).unwrap());
    registry
        .replace::<dyn FileSystem>(FS_INTERFACE, "rsfs", Arc::clone(&rsfs))
        .unwrap();
    roadmap.replaced(FS_INTERFACE, "rsfs").unwrap();
    assert_eq!(roadmap.level_of(FS_INTERFACE), SafetyLevel::Modular);

    roadmap
        .certify(
            FS_INTERFACE,
            SafetyLevel::TypeSafe,
            "interface carries no void*/ERR_PTR; typed write tokens",
        )
        .unwrap();
    roadmap
        .certify(
            FS_INTERFACE,
            SafetyLevel::OwnershipSafe,
            "#![forbid(unsafe_code)]; sharing models in signatures",
        )
        .unwrap();
    let safe_violations = refinement_evidence(&*rsfs);
    assert_eq!(safe_violations, 0);
    roadmap
        .certify(
            FS_INTERFACE,
            SafetyLevel::FunctionallyVerified,
            "refinement run: 0 counterexamples",
        )
        .unwrap();
    assert_eq!(
        roadmap.level_of(FS_INTERFACE),
        SafetyLevel::FunctionallyVerified
    );
    let rows = roadmap.summary();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1, "rsfs");
}

#[test]
fn a_buggy_replacement_fails_to_earn_verification() {
    use safer_kernel::faultgen::semantic::{SemanticBug, SemanticFaultFs};

    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(2048));
    Rsfs::mkfs(&dev, 128, 64).unwrap();
    let buggy = SemanticFaultFs::new(
        Rsfs::mount(dev, JournalMode::PerOp).unwrap(),
        SemanticBug::WriteIgnoresOffset,
    );
    // The certification gate: the checker produces counterexamples, so
    // FunctionallyVerified is simply not earned.
    let violations = refinement_evidence(&buggy);
    assert!(violations > 0, "the buggy module must fail certification");
}
