//! The composed-scenario corpus: cross-subsystem fault scenarios driven
//! from ONE `ScenarioEngine` seed each.
//!
//! Every harness in a scenario — the faulty disk, the faulty link, the
//! crash-point sampler, the workload schedule — draws from streams derived
//! from the single engine seed, and every injected fault lands in the
//! engine's shared trace. A failing scenario therefore replays exactly
//! from `SCENARIO=<name> SCENARIO_SEED=<seed>`, and the corpus runner
//! prints the failing seed plus the trace tail so CI failures arrive
//! with their own reproduction recipe.
//!
//! The scenarios compose faults the single-subsystem suites cannot
//! express: a crash sampled mid-checkpoint while a TCP retransmit storm
//! is in flight, disk EIO inside a ring batch commit with an fsync
//! watermark to honor, torn writes under log-pressure throttling, a
//! lossy link during a live cext4→rsfs migration.

use super::*;

use std::panic::{catch_unwind, AssertUnwindSafe};

use parking_lot::Mutex;
use safer_kernel::core::spec::crash::{judge_with_floor, sample_crash_image, CrashPolicy};
use safer_kernel::fs_safe::fsck;
use safer_kernel::ksim::block::{
    CrashDevice, DeviceStats, DiskFaultConfig, FaultyDisk, PendingWrite, BLOCK_SIZE,
};
use safer_kernel::ksim::errno::{Errno, KResult};
use safer_kernel::ksim::scenario::{subsys, ScenarioEngine};
use safer_kernel::ksim::time::SimClock;
use safer_kernel::netstack::fault::{FaultConfig as LinkFaultConfig, FaultyLink};
use safer_kernel::netstack::modular_stack::{register_families, ModularStack};
use safer_kernel::netstack::spec::StreamChecker;
use safer_kernel::netstack::tcp::{TcpListener, TcpPcb, TcpState, DEFAULT_RTO_NS};
use safer_kernel::netstack::wire::{Link, Side};
use safer_kernel::vfs::inode::FileType;
use safer_kernel::vfs::migrate::{MigratePhase, Migrator};
use safer_kernel::vfs::modular::{BatchOp, BatchReply};
use safer_kernel::vfs::ring::{Ring, RingReactor, RingThrottle};

// ---------------------------------------------------------------------------
// Shared scenario plumbing
// ---------------------------------------------------------------------------

/// A scenario takes the engine (already seeded) and returns a verdict.
/// Panics inside a scenario are caught by the runner and reported with
/// the same seed + trace tail as a verdict failure.
pub type ScenarioFn = fn(&Arc<ScenarioEngine>) -> Result<(), String>;

/// The corpus: name → scenario. Every entry runs in CI across the sweep
/// seeds; `SCENARIO`/`SCENARIO_SEED` env vars replay one entry.
pub const CORPUS: &[(&str, ScenarioFn)] = &[
    (
        "crash_mid_checkpoint_retransmit_storm",
        crash_mid_checkpoint_retransmit_storm,
    ),
    (
        "eio_ring_batch_commit_fsync_watermark",
        eio_ring_batch_commit_fsync_watermark,
    ),
    (
        "torn_write_under_log_pressure",
        torn_write_under_log_pressure,
    ),
    ("lossy_link_during_migration", lossy_link_during_migration),
    ("hot_swap_under_faults", hot_swap_under_faults),
    ("net_scale_1k_lossy", net_scale_1k_lossy),
    ("eio_mid_checkpoint_recovery", eio_mid_checkpoint_recovery),
    ("corrupt_reads_remount_storm", corrupt_reads_remount_storm),
    ("multi_reactor_eio_swap", multi_reactor_eio_swap),
];

/// Seeds swept by the CI corpus run. A seed that ever fails gets pinned
/// as its own regression test (see the `pinned` module below) so reverts
/// of the corresponding fix fail loudly.
const SWEEP_SEEDS: &[u64] = &[1, 2, 3];

/// Captures the pending-write set at each flush barrier (the same tap
/// the crash_recovery suite uses, local to this corpus).
struct Tap {
    inner: Arc<CrashDevice<Arc<RamDisk>>>,
    intervals: Mutex<Vec<Vec<PendingWrite>>>,
}

impl BlockDevice for Tap {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }
    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        self.inner.read_block(blkno, buf)
    }
    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        self.inner.write_block(blkno, buf)
    }
    fn flush(&self) -> KResult<()> {
        self.intervals.lock().push(self.inner.pending_writes());
        self.inner.flush()
    }
    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

fn apply_interval(img: &mut [u8], interval: &[PendingWrite]) {
    for w in interval {
        let off = w.blkno as usize * BLOCK_SIZE;
        img[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
    }
}

fn mount_image(
    img: &[u8],
    blocks: u64,
    mode: JournalMode,
) -> Result<(Rsfs, Arc<dyn BlockDevice>), String> {
    let scratch = Arc::new(RamDisk::new(blocks));
    scratch.restore(img).map_err(|e| format!("restore: {e}"))?;
    let dev: Arc<dyn BlockDevice> = scratch;
    let fs = Rsfs::mount(Arc::clone(&dev), mode)
        .map_err(|e| format!("crash image failed to mount: {e}"))?;
    Ok((fs, dev))
}

/// A TCP pair over an engine-backed faulty link, pumped in explicit
/// rounds so scenarios can interleave network traffic with disk work at
/// deterministic points.
struct NetPair {
    link: FaultyLink,
    clock: Arc<SimClock>,
    a: TcpPcb,
    listener: TcpListener,
    b: Option<TcpPcb>,
    chk: StreamChecker,
    chunks: Vec<Vec<u8>>,
    submitted: usize,
}

impl NetPair {
    fn new(engine: &Arc<ScenarioEngine>, cfg: LinkFaultConfig, chunks: Vec<Vec<u8>>) -> NetPair {
        let link = FaultyLink::on_engine(cfg, engine);
        let clock = Arc::clone(engine.clock());
        let mut a = TcpPcb::new(1000, 100);
        let listener = TcpListener::new(80, 8, 9000);
        link.send(Side::A, &a.connect(80, 0));
        NetPair {
            link,
            clock,
            a,
            listener,
            b: None,
            chk: StreamChecker::new(),
            chunks,
            submitted: 0,
        }
    }

    fn round(&mut self) {
        self.clock.advance(DEFAULT_RTO_NS / 4);
        let now = self.clock.now_ns();
        while let Ok(Some(pkt)) = self.link.recv(Side::B) {
            let responses = match self.b.as_mut() {
                Some(pcb) => pcb.on_packet(&pkt, now),
                None => self.listener.on_packet(&pkt, now),
            };
            for r in responses {
                self.link.send(Side::B, &r);
            }
        }
        if self.b.is_none() {
            self.b = self.listener.accept();
        }
        while let Ok(Some(pkt)) = self.link.recv(Side::A) {
            for r in self.a.on_packet(&pkt, now) {
                self.link.send(Side::A, &r);
            }
        }
        if self.submitted < self.chunks.len() && self.a.state == TcpState::Established {
            let chunk = self.chunks[self.submitted].clone();
            self.chk.on_send(&chunk);
            for p in self.a.send(&chunk, now) {
                self.link.send(Side::A, &p);
            }
            self.submitted += 1;
        }
        if let Some(pcb) = self.b.as_mut() {
            let got = pcb.take_received();
            if !got.is_empty() {
                self.chk.on_deliver(&got);
            }
        }
        for p in self.a.tick(now) {
            self.link.send(Side::A, &p);
        }
        let server_ticks = match self.b.as_mut() {
            Some(pcb) => pcb.tick(now),
            None => self.listener.tick(now),
        };
        for p in server_ticks {
            self.link.send(Side::B, &p);
        }
    }

    fn done(&self) -> bool {
        (self.submitted == self.chunks.len()
            && self.chk.model().is_complete()
            && self.a.all_acked())
            || self.a.is_failed()
            || self.b.as_ref().is_some_and(|p| p.is_failed())
    }

    /// Pumps until completion/clean failure or the round budget runs out,
    /// then renders the prefix-delivery verdict.
    fn finish(mut self, budget: usize) -> Result<(), String> {
        for _ in 0..budget {
            if self.done() {
                break;
            }
            self.round();
        }
        if !self.chk.is_clean() {
            return Err(format!(
                "net: prefix delivery violated: {:?}",
                self.chk.violations()
            ));
        }
        if !self.done() {
            return Err(format!(
                "net: stream neither completed nor failed cleanly \
                 (submitted {}/{}, retransmits {})",
                self.submitted,
                self.chunks.len(),
                self.a.counters.retransmits
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Scenario 1: crash mid-checkpoint + retransmit storm
// ---------------------------------------------------------------------------

/// A journaled rsfs takes a workload while a TCP pair on the same engine
/// clock fights a 30%-drop retransmit storm. The engine picks a flush
/// interval — including the final checkpoint — and samples a torn crash
/// image there; recovery must land on the op history with a clean fsck,
/// and the byte stream must still complete or fail cleanly.
fn crash_mid_checkpoint_retransmit_storm(engine: &Arc<ScenarioEngine>) -> Result<(), String> {
    let ws = engine.stream(subsys::WORKLOAD);
    let crash_stream = engine.stream(subsys::CRASH);

    let mut net = NetPair::new(
        engine,
        LinkFaultConfig {
            drop: 0.30,
            duplicate: 0.10,
            reorder: 0.20,
            corrupt: 0.05,
            delay: 0.10,
            delay_ns: DEFAULT_RTO_NS / 4,
        },
        (0..4).map(|i| vec![i as u8 + 1; 700]).collect(),
    );

    let ram = Arc::new(RamDisk::new(2048));
    let crash_dev = Arc::new(CrashDevice::new(Arc::clone(&ram)));
    let tap = Arc::new(Tap {
        inner: crash_dev,
        intervals: Mutex::new(Vec::new()),
    });
    let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&tap_dyn, 128, 64).map_err(|e| format!("mkfs: {e}"))?;
    let fs = Rsfs::mount(tap_dyn, JournalMode::PerOp).map_err(|e| format!("mount: {e}"))?;
    let base = ram.snapshot();
    tap.intervals.lock().clear();

    let root = fs.root_ino();
    let mut models = vec![fs.abstraction()];
    let mut live: Vec<String> = Vec::new();
    for k in 0..10u32 {
        match ws.gen_range(0..3u32) {
            0 if !live.is_empty() => {
                let name = &live[ws.gen_range(0..live.len())];
                let ino = fs.lookup(root, name).map_err(|e| format!("lookup: {e}"))?;
                let len = ws.gen_range(1..900usize);
                ws.emit(format!("op write {name} len={len}"));
                fs.write(ino, 0, &vec![k as u8; len])
                    .map_err(|e| format!("write: {e}"))?;
            }
            1 if live.len() > 1 => {
                let name = live.remove(ws.gen_range(0..live.len()));
                ws.emit(format!("op unlink {name}"));
                fs.unlink(root, &name).map_err(|e| format!("unlink: {e}"))?;
            }
            _ => {
                let name = format!("f{k}");
                ws.emit(format!("op create {name}"));
                fs.create(root, &name).map_err(|e| format!("create: {e}"))?;
                live.push(name);
            }
        }
        models.push(fs.abstraction());
        // The retransmit storm rages between every pair of fs ops.
        for _ in 0..6 {
            net.round();
        }
    }
    // The checkpoint the crash may land inside.
    fs.sync().map_err(|e| format!("sync: {e}"))?;

    let intervals = tap.intervals.lock().clone();
    if intervals.is_empty() {
        return Err("no flush barriers recorded".into());
    }
    let idx = ws.gen_range(0..intervals.len());
    ws.emit(format!("crash at interval {idx}/{}", intervals.len()));
    let mut applied = base;
    for interval in &intervals[..idx] {
        apply_interval(&mut applied, interval);
    }
    let img = sample_crash_image(
        &applied,
        &intervals[idx],
        BLOCK_SIZE,
        CrashPolicy::Torn,
        &crash_stream,
    );

    let (recovered, dev) = mount_image(&img, 2048, JournalMode::PerOp)?;
    let m = recovered.abstraction();
    if !models.contains(&m) {
        return Err(format!("crash image recovered off-history: {m:?}"));
    }
    let report = fsck(&*dev).map_err(|e| format!("fsck failed: {e}"))?;
    if !report.is_clean() {
        return Err(format!(
            "fsck findings on crash image: {:?}",
            report.findings
        ));
    }

    net.finish(4000)
}

// ---------------------------------------------------------------------------
// Scenario 2: EIO during ring batch commit + fsync watermark
// ---------------------------------------------------------------------------

/// A single submitter drives a mixed op stream through the typed ring
/// while the engine's disk stream injects transient write/flush EIO into
/// the journal underneath the reactor. Successful replies advance a
/// model history; successful fsyncs advance the durability watermark.
/// At the end the engine samples a crash image from the volatile cache:
/// recovery must land on the history at or above the watermark, and the
/// whole run must be lockdep-clean with every buffer returned.
fn eio_ring_batch_commit_fsync_watermark(engine: &Arc<ScenarioEngine>) -> Result<(), String> {
    let ws = engine.stream(subsys::WORKLOAD);
    let crash_stream = engine.stream(subsys::CRASH);

    let ram = Arc::new(RamDisk::new(4096));
    let crash_dev = Arc::new(CrashDevice::new(Arc::clone(&ram)));
    let faulty = Arc::new(FaultyDisk::on_engine(
        Arc::clone(&crash_dev),
        DiskFaultConfig::default(),
        engine,
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 256, 64).map_err(|e| format!("mkfs: {e}"))?;
    let fs = Arc::new(Rsfs::mount(dev, JournalMode::Async).map_err(|e| format!("mount: {e}"))?);
    let root = fs.root_ino();
    let base_file = fs
        .create(root, "base")
        .map_err(|e| format!("create base: {e}"))?;
    fs.sync().map_err(|e| format!("initial sync: {e}"))?;
    faulty.set_config(DiskFaultConfig {
        write_eio: 0.01,
        flush_eio: 0.005,
        ..DiskFaultConfig::default()
    });

    let ring = Arc::new(Ring::new(fs.lock_registry(), 16));
    let fs_dyn: Arc<dyn FileSystem> = Arc::clone(&fs) as Arc<dyn FileSystem>;
    let pressure_fs = Arc::clone(&fs);
    let relieve_fs = Arc::clone(&fs);
    let reactor = RingReactor::spawn(
        Arc::clone(&ring),
        fs_dyn,
        Some(RingThrottle {
            pressure: Box::new(move || pressure_fs.journal().map_or(0.0, |j| j.log_pressure())),
            relieve: Box::new(move || {
                let _ = relieve_fs.commit_running();
                let _ = relieve_fs.checkpoint(usize::MAX);
            }),
            threshold: 0.5,
        }),
    );

    let mut models = vec![fs.abstraction()];
    let mut watermark = 0usize;
    let mut live: Vec<String> = Vec::new();
    let mut verdict = Ok(());
    for k in 0..80u32 {
        let pick = ws.gen_range(0..8u32);
        let (op, mutating, is_fsync) = match pick {
            0 => {
                let name = format!("r{k}");
                (BatchOp::Create { dir: root, name }, true, false)
            }
            1 if !live.is_empty() => {
                let name = live.remove(ws.gen_range(0..live.len()));
                (BatchOp::Unlink { dir: root, name }, true, false)
            }
            2..=4 => (
                BatchOp::Write {
                    ino: base_file,
                    off: ws.gen_range(0..4u64) * 1024,
                    data: vec![k as u8; 1024],
                },
                true,
                false,
            ),
            5 => (
                BatchOp::Read {
                    ino: base_file,
                    off: ws.gen_range(0..4u64) * 1024,
                    buf: vec![0u8; 1024],
                },
                false,
                false,
            ),
            _ => (BatchOp::Fsync { ino: base_file }, false, true),
        };
        let created = matches!(&op, BatchOp::Create { .. }).then(|| format!("r{k}"));
        let ticket = match ring.submit(op) {
            Ok(t) => t,
            Err(_) => {
                verdict = Err(format!("ring refused op {k} with depth available"));
                break;
            }
        };
        let mut reply = ring.wait(ticket).reply;
        let ok = reply.result().is_ok();
        if let Some(buf) = reply.take_buf() {
            if buf.len() != 1024 {
                verdict = Err(format!("op {k}: buffer came back resized to {}", buf.len()));
                break;
            }
        } else if matches!(reply, BatchReply::Write { .. } | BatchReply::Read { .. }) {
            verdict = Err(format!("op {k}: buffer lost"));
            break;
        }
        if ok {
            if let Some(name) = created {
                live.push(name);
            }
            if mutating {
                models.push(fs.abstraction());
            }
            if is_fsync {
                watermark = models.len() - 1;
                ws.emit(format!("fsync watermark={watermark}"));
            }
        }
    }
    reactor.join();

    let stats = ring.stats();
    if stats.submitted != stats.completed {
        return Err(format!(
            "accepted SQEs without CQEs: {} submitted, {} completed",
            stats.submitted, stats.completed
        ));
    }
    verdict?;

    let aborted = fs.journal().is_some_and(|j| j.is_aborted());
    if !aborted {
        let m = fs.abstraction();
        if m != *models.last().unwrap() {
            return Err("live state diverged from the successful-op model".into());
        }
    }

    // Power-cut now: sample one reachable image from the volatile cache.
    let base = ram.snapshot();
    let pending = faulty.inner().pending_writes();
    let img = sample_crash_image(
        &base,
        &pending,
        BLOCK_SIZE,
        CrashPolicy::Prefixes,
        &crash_stream,
    );
    let (recovered, dev) = mount_image(&img, 4096, JournalMode::Async)?;
    let m = recovered.abstraction();
    judge_with_floor(&models, watermark, &m).map_err(|why| format!("crash image: {why}"))?;
    let report = fsck(&*dev).map_err(|e| format!("fsck failed: {e}"))?;
    if !report.is_clean() {
        return Err(format!(
            "fsck findings on crash image: {:?}",
            report.findings
        ));
    }

    let violations = fs.lock_registry().violations();
    if !violations.is_empty() {
        return Err(format!("lockdep findings: {violations:?}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scenario 3: torn writes under log-pressure throttling
// ---------------------------------------------------------------------------

/// A deliberately tiny journal keeps log pressure high so the op path
/// runs leader-duty commits, while the disk stream silently tears a
/// fraction of writes — the hardware breaking its sector-atomicity
/// contract without a power cut. Then the power cut happens anyway.
/// The promise under betrayal is structural: the crash image mounts or
/// refuses cleanly, fsck terminates, recovery never panics or wedges —
/// and if no tear was actually injected, recovery is exact.
fn torn_write_under_log_pressure(engine: &Arc<ScenarioEngine>) -> Result<(), String> {
    let ws = engine.stream(subsys::WORKLOAD);
    let crash_stream = engine.stream(subsys::CRASH);

    let ram = Arc::new(RamDisk::new(2048));
    let crash_dev = Arc::new(CrashDevice::new(Arc::clone(&ram)));
    let faulty = Arc::new(FaultyDisk::on_engine(
        Arc::clone(&crash_dev),
        DiskFaultConfig::default(),
        engine,
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
    // 16 journal blocks: a handful of fat writes fills the log and forces
    // the throttling path (leader-duty commits on the op path).
    Rsfs::mkfs(&dev, 128, 16).map_err(|e| format!("mkfs: {e}"))?;
    let fs = Rsfs::mount(dev, JournalMode::Async).map_err(|e| format!("mount: {e}"))?;
    let root = fs.root_ino();
    let mut models = vec![fs.abstraction()];
    faulty.set_config(DiskFaultConfig {
        torn_write: 0.08,
        ..DiskFaultConfig::default()
    });

    let mut live: Vec<String> = Vec::new();
    let mut max_pressure = 0.0f32;
    for k in 0..40u32 {
        let r = if live.is_empty() || ws.gen_range(0..3u32) == 0 {
            let name = format!("f{k}");
            let r = fs.create(root, &name).map(|_| ());
            if r.is_ok() {
                live.push(name);
            }
            r
        } else {
            let name = &live[ws.gen_range(0..live.len())];
            let len = ws.gen_range(256..2800usize);
            fs.lookup(root, name)
                .and_then(|ino| fs.write(ino, 0, &vec![k as u8; len]))
                .map(|_| ())
        };
        if let Some(j) = fs.journal() {
            let p = j.log_pressure();
            if p > max_pressure {
                max_pressure = p;
                if p > 0.5 {
                    ws.emit(format!("log_pressure {p:.2}"));
                }
            }
        }
        match r {
            Ok(()) => models.push(fs.abstraction()),
            // Sticky EROFS after a detected failure is a legal outcome;
            // the state must simply stop changing.
            Err(_) if fs.abstraction() == *models.last().unwrap() => {}
            Err(e) => {
                return Err(format!("failed op {k} ({e}) mutated the live state"));
            }
        }
    }

    // Power cut with the cache full — no sync.
    let tears = faulty.injected().torn_writes;
    ws.emit(format!("power cut, {tears} torn writes injected"));
    let base = ram.snapshot();
    let pending = crash_dev.pending_writes();
    let img = sample_crash_image(
        &base,
        &pending,
        BLOCK_SIZE,
        CrashPolicy::Prefixes,
        &crash_stream,
    );
    drop(fs);

    match mount_image(&img, 2048, JournalMode::Async) {
        Ok((recovered, dev)) => {
            let report = fsck(&*dev).map_err(|e| format!("fsck failed: {e}"))?;
            if tears == 0 {
                let m = recovered.abstraction();
                if !models.contains(&m) {
                    return Err(format!(
                        "no tears injected, yet recovery is off-history: {m:?}"
                    ));
                }
                if !report.is_clean() {
                    return Err(format!(
                        "no tears injected, yet fsck found: {:?}",
                        report.findings
                    ));
                }
            }
            // With tears the image may be arbitrarily damaged; mounting and
            // a terminating fsck (clean or with findings) is the contract.
        }
        // A clean mount refusal on a torn image is acceptable...
        Err(why) if tears > 0 => {
            ws.emit(format!("mount refused: {why}"));
        }
        // ...but with no tears injected the image is an ordinary crash
        // image and must mount.
        Err(why) => return Err(why),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scenario 4: lossy link during migration
// ---------------------------------------------------------------------------

/// The mid-workload migration soak with a TCP retransmit fight running on
/// the same engine: a cext4→rsfs hot swap at half-time while an
/// adversarial link drops a quarter of all frames. The tree, the model,
/// and the implementation must agree after the swap and at the end; the
/// byte stream must complete or fail cleanly; lockdep stays clean.
fn lossy_link_during_migration(engine: &Arc<ScenarioEngine>) -> Result<(), String> {
    let ws = engine.stream(subsys::WORKLOAD);

    let mut net = NetPair::new(
        engine,
        LinkFaultConfig {
            drop: 0.25,
            duplicate: 0.10,
            reorder: 0.15,
            corrupt: 0.05,
            delay: 0.10,
            delay_ns: DEFAULT_RTO_NS / 4,
        },
        (0..3).map(|i| vec![0x40 + i as u8; 900]).collect(),
    );

    let legacy = make_cext4();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", Arc::clone(&legacy))
        .map_err(|e| format!("register: {e:?}"))?;
    let locks = safer_kernel::ksim::lock::LockRegistry::new();
    let vfs = Vfs::mount_with_lockdep(&registry, Arc::clone(&locks))
        .map_err(|e| format!("vfs mount: {e}"))?;
    let mut model = FsModel::new();
    // The workload RNG derives from the engine seed through the workload
    // stream, so the whole scenario still replays from the one seed.
    let mut rng = StdRng::seed_from_u64(ws.gen_u64());

    for step in 0..60 {
        model = random_op(&vfs, model, &mut rng);
        net.round();
        net.round();
        if step == 29 {
            ws.emit("migrate cext4 -> rsfs".to_string());
            let report = Migrator::new(&vfs, &registry)
                .swap("rsfs", make_rsfs())
                .map_err(|e| format!("swap: {e:?}"))?;
            ws.emit(format!(
                "swap done files={} dirs={} bytes={}",
                report.copied_files, report.copied_dirs, report.copied_bytes
            ));
            if vfs.abstraction() != model {
                return Err("post-swap state diverged from the model".into());
            }
        }
    }
    model
        .check_invariant()
        .map_err(|e| format!("model invariant: {e}"))?;
    if vfs.abstraction() != model {
        return Err("final state diverged from the model".into());
    }
    if vfs.fs_handle().swap_count() != 1 {
        return Err(format!(
            "expected 1 swap, saw {}",
            vfs.fs_handle().swap_count()
        ));
    }
    let violations = locks.violations();
    if !violations.is_empty() {
        return Err(format!("lockdep findings: {violations:?}"));
    }
    net.finish(4000)
}

// ---------------------------------------------------------------------------
// Scenario 4c: hot swap under faults — the CI swap-under-load soak entry
// ---------------------------------------------------------------------------

/// Two live generation swaps (cext4 → rsfs → cext4) through the
/// [`Migrator`] while a transient-EIO disk backs the safe generation and
/// a lossy link runs a TCP fight on the same engine. The faults land
/// *mid-handoff*: the forward copy writes through the faulty disk, and
/// the backward quiesce drains the faulty generation's journal through
/// it. A handoff that hits EIO must abort cleanly — old generation still
/// authoritative, live state untouched — and a bounded retry must land
/// both swaps. Handoff phases go through the engine's `swap` stream, so
/// `SCENARIO=hot_swap_under_faults SCENARIO_SEED=<n>` replays the whole
/// dance byte-identically, aborts included.
fn hot_swap_under_faults(engine: &Arc<ScenarioEngine>) -> Result<(), String> {
    let ws = engine.stream(subsys::WORKLOAD);
    let sw = engine.stream(subsys::SWAP);

    let mut net = NetPair::new(
        engine,
        LinkFaultConfig {
            drop: 0.20,
            duplicate: 0.05,
            reorder: 0.10,
            corrupt: 0.05,
            delay: 0.10,
            delay_ns: DEFAULT_RTO_NS / 4,
        },
        (0..3).map(|i| vec![0x60 + i as u8; 700]).collect(),
    );

    let legacy = make_cext4();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", Arc::clone(&legacy))
        .map_err(|e| format!("register: {e:?}"))?;
    let locks = safer_kernel::ksim::lock::LockRegistry::new();
    let vfs = Vfs::mount_with_lockdep(&registry, Arc::clone(&locks))
        .map_err(|e| format!("vfs mount: {e}"))?;
    let mut model = FsModel::new();
    let mut rng = StdRng::seed_from_u64(ws.gen_u64());

    // Phase 1: build up state on the legacy generation.
    for _ in 0..20 {
        model = random_op(&vfs, model, &mut rng);
        net.round();
    }

    // Forward swap. The target rsfs is mounted clean, then its disk goes
    // hot — so every EIO fires inside the handoff (tree copy, final
    // commit), never during mkfs/mount. Each attempt gets a fresh
    // target: a failed copy leaves scribbles behind, and a failed commit
    // may leave a sticky journal abort.
    let mut forward_landed = false;
    for attempt in 0..8u32 {
        let ram = Arc::new(RamDisk::new(8192));
        {
            let dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as Arc<dyn BlockDevice>;
            Rsfs::mkfs(&dev, 512, 64).map_err(|e| format!("mkfs: {e}"))?;
        }
        let faulty = Arc::new(FaultyDisk::on_engine(
            Arc::clone(&ram),
            DiskFaultConfig::default(),
            engine,
        ));
        let next: Arc<dyn FileSystem> = Arc::new(
            Rsfs::mount(
                Arc::clone(&faulty) as Arc<dyn BlockDevice>,
                JournalMode::PerOp,
            )
            .map_err(|e| format!("mount: {e}"))?,
        );
        faulty.set_config(DiskFaultConfig {
            write_eio: 0.004,
            flush_eio: 0.002,
            ..DiskFaultConfig::default()
        });
        let pre = vfs.abstraction();
        match Migrator::new(&vfs, &registry)
            .with_observer(|p: MigratePhase| sw.emit(format!("fwd a{attempt} {p:?}")))
            .swap("rsfs", next)
        {
            Ok(report) => {
                sw.emit(format!(
                    "fwd landed a{attempt} files={} dirs={} bytes={}",
                    report.copied_files, report.copied_dirs, report.copied_bytes
                ));
                forward_landed = true;
            }
            Err(e) => {
                sw.emit(format!("fwd abort a{attempt} {e:?}"));
                if vfs.fs_handle().impl_name() != "cext4" {
                    return Err("aborted swap left a half-switched generation".into());
                }
                if vfs.abstraction() != pre {
                    return Err("aborted swap mutated the live state".into());
                }
                net.round();
            }
        }
        if forward_landed {
            break;
        }
    }
    if !forward_landed {
        return Err("forward swap never landed within 8 attempts".into());
    }
    if vfs.abstraction() != model {
        return Err("post-forward-swap state diverged from the model".into());
    }

    // The safe generation's disk stays hot while the link keeps
    // fighting; the workload pauses (its generation would see EIO), the
    // network does not.
    for _ in 0..6 {
        net.round();
    }

    // Backward swap (rollback direction): now the *old* generation is
    // the faulty one, so the EIO risk sits in quiesce — the journal
    // drain and checkpoint write through the faulty disk.
    let mut back_landed = false;
    for attempt in 0..8u32 {
        let next = make_cext4();
        let pre = vfs.abstraction();
        match Migrator::new(&vfs, &registry)
            .with_observer(|p: MigratePhase| sw.emit(format!("back a{attempt} {p:?}")))
            .swap("cext4", next)
        {
            Ok(report) => {
                sw.emit(format!(
                    "back landed a{attempt} files={} dirs={}",
                    report.copied_files, report.copied_dirs
                ));
                back_landed = true;
            }
            Err(e) => {
                sw.emit(format!("back abort a{attempt} {e:?}"));
                if vfs.fs_handle().impl_name() != "rsfs" {
                    return Err("aborted rollback left a half-switched generation".into());
                }
                if vfs.abstraction() != pre {
                    return Err("aborted rollback mutated the live state".into());
                }
                net.round();
            }
        }
        if back_landed {
            break;
        }
    }
    if !back_landed {
        return Err("backward swap never landed within 8 attempts".into());
    }

    // Phase 2: the workload resumes on the rolled-back generation and
    // the model must still track exactly.
    for _ in 0..20 {
        model = random_op(&vfs, model, &mut rng);
        net.round();
    }
    model
        .check_invariant()
        .map_err(|e| format!("model invariant: {e}"))?;
    if vfs.abstraction() != model {
        return Err("final state diverged from the model".into());
    }
    if vfs.fs_handle().swap_count() != 2 {
        return Err(format!(
            "aborted attempts must not count as swaps: saw {}",
            vfs.fs_handle().swap_count()
        ));
    }
    if vfs.gate().swaps() != 2 {
        return Err(format!(
            "gate counted {} swaps, expected 2",
            vfs.gate().swaps()
        ));
    }
    let violations = locks.violations();
    if !violations.is_empty() {
        return Err(format!("lockdep findings: {violations:?}"));
    }
    net.finish(4000)
}

// ---------------------------------------------------------------------------
// Scenario 4b: server-scale accept path — 1k connections over a lossy link
// ---------------------------------------------------------------------------

/// One listener, a thousand concurrent clients, a lossy link, one seed.
/// Clients connect in staggered waves (the accept queue must absorb the
/// bursts without dropping handshakes it admitted), each pushes one
/// payload, and the verdict demands every connection is accepted, every
/// byte arrives, no client conn fails, and the sharded demux stays
/// lockdep-clean end to end. This is the CI `net-scale` soak entry:
/// `SCENARIO=net_scale_1k_lossy SCENARIO_SEED=<n>` replays it exactly.
fn net_scale_1k_lossy(engine: &Arc<ScenarioEngine>) -> Result<(), String> {
    const CONNS: usize = 1000;
    const WAVE: usize = 250;
    const PAYLOAD: usize = 200;

    let ws = engine.stream(subsys::WORKLOAD);
    let link = Arc::new(FaultyLink::on_engine(
        LinkFaultConfig {
            drop: 0.05,
            duplicate: 0.02,
            reorder: 0.05,
            corrupt: 0.01,
            delay: 0.05,
            delay_ns: DEFAULT_RTO_NS / 4,
        },
        engine,
    ));
    let clock = Arc::clone(engine.clock());
    let registry = Arc::new(Registry::new());
    register_families(&registry).map_err(|e| format!("register: {e:?}"))?;
    let locks = safer_kernel::ksim::lock::LockRegistry::new();
    let a = ModularStack::with_lockdep(
        Arc::clone(&registry),
        Side::A,
        link.clone(),
        Arc::clone(&clock),
        Arc::clone(&locks),
    );
    let b = ModularStack::with_lockdep(
        registry,
        Side::B,
        link.clone(),
        Arc::clone(&clock),
        Arc::clone(&locks),
    );

    let server = b
        .socket("tcp", 80)
        .map_err(|e| format!("server socket: {e}"))?;
    b.listen_backlog(server, CONNS)
        .map_err(|e| format!("listen: {e}"))?;

    let mut clients: Vec<u64> = Vec::with_capacity(CONNS);
    let mut submitted = vec![false; CONNS];
    let mut got: Vec<usize> = Vec::new();
    let mut conns: Vec<u64> = Vec::new();
    let mut delivered = 0usize;

    for _round in 0..600 {
        // Staggered connect wave: the accept queue sees bursts, not a
        // trickle, so backlog handling is actually exercised.
        for _ in 0..WAVE {
            let i = clients.len();
            if i >= CONNS {
                break;
            }
            let port = 2000 + i as u16;
            let fd = a.socket("tcp", port).map_err(|e| format!("socket: {e}"))?;
            a.connect(fd, 80).map_err(|e| format!("connect {i}: {e}"))?;
            clients.push(fd);
        }
        a.pump().map_err(|e| format!("client pump: {e}"))?;
        b.pump().map_err(|e| format!("server pump: {e}"))?;
        while let Some(c) = b.accept(server).map_err(|e| format!("accept: {e}"))? {
            conns.push(c);
            got.push(0);
        }
        for (i, &fd) in clients.iter().enumerate() {
            if !submitted[i] && a.send(fd, 80, &[(i % 251) as u8; PAYLOAD]).is_ok() {
                submitted[i] = true;
            }
        }
        for (slot, &c) in conns.iter().enumerate() {
            if let Ok(data) = b.recv(c) {
                got[slot] += data.len();
                delivered += data.len();
            }
        }
        if delivered == CONNS * PAYLOAD && conns.len() == CONNS {
            break;
        }
        clock.advance(DEFAULT_RTO_NS / 2);
        a.tick();
        b.tick();
    }

    let failed = clients
        .iter()
        .filter(|&&fd| a.conn_failed(fd).unwrap_or(false))
        .count();
    ws.emit(format!(
        "net_scale: accepted={} delivered={delivered} failed={failed}",
        conns.len()
    ));
    if conns.len() != CONNS {
        return Err(format!("accepted {}/{CONNS} connections", conns.len()));
    }
    if failed != 0 {
        return Err(format!("{failed} client connections failed"));
    }
    if delivered != CONNS * PAYLOAD {
        return Err(format!("delivered {delivered}/{} bytes", CONNS * PAYLOAD));
    }
    if let Some(short) = got.iter().position(|&g| g != PAYLOAD) {
        return Err(format!(
            "connection {short} delivered {} of {PAYLOAD} bytes",
            got[short]
        ));
    }
    let violations = locks.violations();
    if !violations.is_empty() {
        return Err(format!("lockdep findings: {violations:?}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scenario 5: transient EIO across commit + checkpoint, then recovery
// ---------------------------------------------------------------------------

/// Per-op journaling with transient write/flush EIO armed across the
/// whole run, periodic checkpoints included. Failed ops must leave the
/// live state untouched; checkpoints must stay retryable; and whatever
/// the journal's fate — healthy or sticky-EROFS abort — the durable
/// state must recover onto the successful-op history at or above the
/// last successful sync.
fn eio_mid_checkpoint_recovery(engine: &Arc<ScenarioEngine>) -> Result<(), String> {
    let ws = engine.stream(subsys::WORKLOAD);

    let ram = Arc::new(RamDisk::new(2048));
    let faulty = Arc::new(FaultyDisk::on_engine(
        Arc::clone(&ram),
        DiskFaultConfig::default(),
        engine,
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 128, 64).map_err(|e| format!("mkfs: {e}"))?;
    let fs =
        Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).map_err(|e| format!("mount: {e}"))?;
    let root = fs.root_ino();
    let mut models = vec![fs.abstraction()];
    let mut floor = 0usize;
    faulty.set_config(DiskFaultConfig {
        write_eio: 0.015,
        flush_eio: 0.01,
        ..DiskFaultConfig::default()
    });

    let mut live: Vec<String> = Vec::new();
    for k in 0..40u32 {
        let r = match ws.gen_range(0..3u32) {
            0 if !live.is_empty() => {
                let name = &live[ws.gen_range(0..live.len())];
                let len = ws.gen_range(1..1200usize);
                fs.lookup(root, name)
                    .and_then(|ino| fs.write(ino, 0, &vec![k as u8; len]))
                    .map(|_| ())
            }
            1 if live.len() > 1 => {
                let idx = ws.gen_range(0..live.len());
                let name = live[idx].clone();
                let r = fs.unlink(root, &name).map(|_| ());
                if r.is_ok() {
                    live.remove(idx);
                }
                r
            }
            _ => {
                let name = format!("f{k}");
                let r = fs.create(root, &name).map(|_| ());
                if r.is_ok() {
                    live.push(name);
                }
                r
            }
        };
        match r {
            Ok(()) => models.push(fs.abstraction()),
            Err(e) => {
                if fs.abstraction() != *models.last().unwrap() {
                    return Err(format!("failed op {k} ({e}) mutated the live state"));
                }
            }
        }
        if k % 10 == 9 {
            // Checkpoint under fire: EIO here must be retryable, and a
            // success establishes a durability floor.
            for attempt in 0..3 {
                match fs.sync() {
                    Ok(()) => {
                        floor = models.len() - 1;
                        ws.emit(format!("sync ok attempt={attempt} floor={floor}"));
                        break;
                    }
                    Err(e) => ws.emit(format!("sync attempt={attempt} failed: {e}")),
                }
            }
        }
    }

    let aborted = fs.journal().is_some_and(|j| j.is_aborted());
    faulty.set_config(DiskFaultConfig::default());
    if !aborted {
        // Faults disarmed: the retryable paths must now go through.
        fs.sync()
            .map_err(|e| format!("post-run sync with no faults: {e}"))?;
        if fs.abstraction() != *models.last().unwrap() {
            return Err("healthy journal, but live state diverged from the model".into());
        }
        let report = fsck(&*dev).map_err(|e| format!("fsck failed: {e}"))?;
        if !report.is_clean() {
            return Err(format!("fsck findings: {:?}", report.findings));
        }
    } else {
        ws.emit("journal aborted; remounting".to_string());
        drop(fs);
        let recovered = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp)
            .map_err(|e| format!("remount: {e}"))?;
        let m = recovered.abstraction();
        judge_with_floor(&models, floor, &m).map_err(|why| format!("remount: {why}"))?;
        let report = fsck(&*dev).map_err(|e| format!("fsck failed: {e}"))?;
        if !report.is_clean() {
            return Err(format!("fsck findings after abort: {:?}", report.findings));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scenario 6: corrupt reads during a remount storm
// ---------------------------------------------------------------------------

/// Bitrot on the read path while the file system is repeatedly mounted,
/// walked, checked, and dropped. Corruption is transient (the medium is
/// intact; reads lie), so every storm iteration must either mount and
/// walk without panicking or refuse cleanly — and once the lying stops,
/// the original state must come back exactly.
fn corrupt_reads_remount_storm(engine: &Arc<ScenarioEngine>) -> Result<(), String> {
    let ws = engine.stream(subsys::WORKLOAD);

    let ram = Arc::new(RamDisk::new(2048));
    let faulty = Arc::new(FaultyDisk::on_engine(
        Arc::clone(&ram),
        DiskFaultConfig::default(),
        engine,
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 128, 64).map_err(|e| format!("mkfs: {e}"))?;
    let expected = {
        let fs =
            Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).map_err(|e| format!("mount: {e}"))?;
        let root = fs.root_ino();
        let d = fs.mkdir(root, "d").map_err(|e| format!("mkdir: {e}"))?;
        for k in 0..6u32 {
            let ino = fs
                .create(if k % 2 == 0 { root } else { d }, &format!("f{k}"))
                .map_err(|e| format!("create: {e}"))?;
            fs.write(ino, 0, &vec![k as u8; 700])
                .map_err(|e| format!("write: {e}"))?;
        }
        fs.sync().map_err(|e| format!("sync: {e}"))?;
        fs.abstraction()
    };

    faulty.set_config(DiskFaultConfig {
        read_corrupt: 0.03,
        read_eio: 0.01,
        ..DiskFaultConfig::default()
    });
    for round in 0..6u32 {
        match Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp) {
            Ok(fs) => {
                // Walk the tree; errors from lying reads are fine, hangs
                // and panics are not.
                let mut stack = vec![fs.root_ino()];
                let mut seen = std::collections::HashSet::new();
                let mut steps = 0usize;
                while let Some(dir) = stack.pop() {
                    if !seen.insert(dir) {
                        continue;
                    }
                    steps += 1;
                    if steps > 10_000 {
                        return Err(format!("round {round}: tree walk did not terminate"));
                    }
                    if let Ok(entries) = fs.readdir(dir) {
                        for e in entries {
                            match fs.getattr(e.ino) {
                                Ok(attr) if attr.ftype == FileType::Directory => stack.push(e.ino),
                                Ok(attr) => {
                                    let mut buf = vec![0u8; attr.size as usize];
                                    let _ = fs.read(e.ino, 0, &mut buf);
                                }
                                Err(_) => {}
                            }
                        }
                    }
                }
                ws.emit(format!("round {round}: mounted, walked {steps} dirs"));
            }
            Err(e) => {
                ws.emit(format!("round {round}: clean mount refusal ({e})"));
            }
        }
        // fsck under bitrot must terminate: clean, findings, or EIO.
        match fsck(&*dev) {
            Ok(_) | Err(_) => {}
        }
    }

    faulty.set_config(DiskFaultConfig::default());
    let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp)
        .map_err(|e| format!("clean remount after the storm: {e}"))?;
    if fs.abstraction() != expected {
        return Err("transient read corruption left a permanent state change".into());
    }
    let report = fsck(&*dev).map_err(|e| format!("fsck failed: {e}"))?;
    if !report.is_clean() {
        return Err(format!(
            "fsck findings after the storm: {:?}",
            report.findings
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scenario 9: a 4-reactor pool under transient EIO while a hot swap quiesces
// ---------------------------------------------------------------------------

/// Four work-stealing reactors drain one ring while the live
/// generation's disk throws transient write/flush EIO and a hot swap
/// tries to quiesce through it. The workload keeps exactly one op in
/// flight, so even with four racing reactors the device-op order — and
/// therefore every engine-drawn fault — is deterministic and the trace
/// replays byte-identically.
///
/// In async journal mode the staging path touches no device, so every
/// workload op must succeed even with faults hot; the EIO window lands
/// precisely where this scenario aims it: inside the swap's quiesce
/// (journal drain + checkpoint through the faulty disk). Two outcomes
/// are legal per seed, both deterministic: the swap lands within eight
/// attempts (then the copied tree must match the mirror and a clean
/// phase 2 must see zero failed ops), or a record-write EIO sticky-
/// aborts generation 1 and every attempt must refuse cleanly —
/// generation unchanged, nothing half-switched.
fn multi_reactor_eio_swap(engine: &Arc<ScenarioEngine>) -> Result<(), String> {
    let ws = engine.stream(subsys::WORKLOAD);
    let sw = engine.stream(subsys::SWAP);

    // Generation 1 on a faulty disk; faults stay off through mkfs,
    // mount, and the base-file prefill so initial state is clean.
    let ram = Arc::new(RamDisk::new(8192));
    let faulty = Arc::new(FaultyDisk::on_engine(
        Arc::clone(&ram),
        DiskFaultConfig::default(),
        engine,
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 512, 64).map_err(|e| format!("mkfs: {e}"))?;
    let gen1 = Arc::new(Rsfs::mount(dev, JournalMode::Async).map_err(|e| format!("mount: {e}"))?);
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(
            FS_INTERFACE,
            "rsfs",
            Arc::clone(&gen1) as Arc<dyn FileSystem>,
        )
        .map_err(|e| format!("register: {e:?}"))?;
    let locks = safer_kernel::ksim::lock::LockRegistry::new();
    let vfs =
        Vfs::mount_with_lockdep(&registry, Arc::clone(&locks)).map_err(|e| format!("vfs: {e}"))?;
    let root = gen1.root_ino();
    let base = gen1
        .create(root, "base")
        .map_err(|e| format!("create base: {e}"))?;
    let mut base_img = vec![0u8; 4096];
    gen1.write(base, 0, &base_img)
        .map_err(|e| format!("prefill base: {e}"))?;
    gen1.sync().map_err(|e| format!("initial sync: {e}"))?;

    let ring = Arc::new(Ring::new(&locks, 16));
    let pool = RingReactor::spawn_gated_pool(
        Arc::clone(&ring),
        vfs.fs_handle().clone(),
        vfs.gate(),
        None,
        4,
    );

    faulty.set_config(DiskFaultConfig {
        write_eio: 0.05,
        flush_eio: 0.02,
        ..DiskFaultConfig::default()
    });

    // One op in flight at a time: submit, then wait, so the four
    // reactors race only for the claim, never for device order.
    let one = |op: BatchOp| -> Result<BatchReply, String> {
        let ticket = ring
            .submit(op)
            .map_err(|op| format!("ring refused {op:?} while live"))?;
        Ok(ring.wait(ticket).reply)
    };

    // Phase 1: mixed traffic with the EIO window open. Async staging
    // never reaches the device, so every op must succeed.
    let mut live: Vec<u32> = Vec::new();
    for k in 0..40u32 {
        let pick = ws.gen_range(0..8u32);
        let reply = match pick {
            0..=2 => {
                live.push(k);
                one(BatchOp::Create {
                    dir: root,
                    name: format!("r{k}"),
                })?
            }
            3 if !live.is_empty() => {
                let gone = live.remove(ws.gen_range(0..live.len() as u32) as usize);
                one(BatchOp::Unlink {
                    dir: root,
                    name: format!("r{gone}"),
                })?
            }
            4 | 5 => {
                let off = (k % 4) as usize * 1024;
                base_img[off..off + 1024].fill(k as u8);
                one(BatchOp::Write {
                    ino: base,
                    off: off as u64,
                    data: vec![k as u8; 1024],
                })?
            }
            _ => one(BatchOp::Read {
                ino: base,
                off: u64::from(ws.gen_range(0..4u32)) * 1024,
                buf: vec![0u8; 1024],
            })?,
        };
        if let Err(e) = reply.result() {
            // One legal failure: the staging op itself ran a log-pressure
            // commit, the record write EIO'd, and the journal sticky-
            // aborted — from then on mutations report EROFS. Anything
            // else is a real bug.
            if e == Errno::EROFS && gen1.journal().is_some_and(|j| j.is_aborted()) {
                ws.emit(format!("op {k}: pressure commit EIO'd, journal aborted"));
                break;
            }
            return Err(format!("phase-1 op {k} failed under async staging: {e}"));
        }
    }

    // The hot swap: quiesce drains the journal and checkpoints through
    // the faulty disk — this is where the EIO lands. Each attempt gets
    // a fresh, clean target.
    let pre = vfs.abstraction();
    let mut landed = false;
    for attempt in 0..8u32 {
        let ram2 = Arc::new(RamDisk::new(8192));
        {
            let d: Arc<dyn BlockDevice> = Arc::clone(&ram2) as Arc<dyn BlockDevice>;
            Rsfs::mkfs(&d, 512, 64).map_err(|e| format!("mkfs2: {e}"))?;
        }
        let next: Arc<dyn FileSystem> = Arc::new(
            Rsfs::mount(ram2 as Arc<dyn BlockDevice>, JournalMode::Async)
                .map_err(|e| format!("mount2: {e}"))?,
        );
        match Migrator::new(&vfs, &registry)
            .with_ring(&ring)
            .with_observer(|p: MigratePhase| sw.emit(format!("a{attempt} {p:?}")))
            .swap("rsfs2", next)
        {
            Ok(report) => {
                sw.emit(format!(
                    "landed a{attempt} files={} dirs={} bytes={}",
                    report.copied_files, report.copied_dirs, report.copied_bytes
                ));
                landed = true;
                break;
            }
            Err(e) => {
                sw.emit(format!("abort a{attempt} {e:?}"));
                if vfs.fs_handle().impl_name() != "rsfs" {
                    return Err("aborted swap left a half-switched generation".into());
                }
                if vfs.abstraction() != pre {
                    return Err("aborted swap mutated the live state".into());
                }
            }
        }
    }

    if landed {
        // Faults die with the detached generation; everything after the
        // swap runs on the clean target and must be flawless.
        let handle = vfs.fs_handle().get();
        let root2 = handle.root_ino();
        let base2 = handle
            .lookup(root2, "base")
            .map_err(|e| format!("base lost in transfer: {e}"))?;
        for &k in &live {
            handle
                .lookup(root2, &format!("r{k}"))
                .map_err(|e| format!("r{k} lost in transfer: {e}"))?;
        }
        for c in 0..4usize {
            match one(BatchOp::Read {
                ino: base2,
                off: (c * 1024) as u64,
                buf: vec![0u8; 1024],
            })? {
                BatchReply::Read { result, buf } => {
                    result.map_err(|e| format!("post-swap read chunk {c}: {e}"))?;
                    if buf != base_img[c * 1024..(c + 1) * 1024] {
                        return Err(format!("base chunk {c} transferred wrong"));
                    }
                }
                other => return Err(format!("read came back as {other:?}")),
            }
        }
        // Phase 2: the reactor pool keeps serving the new generation;
        // zero failed ops, fsync included (the clean journal flushes).
        for k in 100..120u32 {
            let reply = match ws.gen_range(0..4u32) {
                0 => one(BatchOp::Create {
                    dir: root2,
                    name: format!("r{k}"),
                })?,
                1 => one(BatchOp::Write {
                    ino: base2,
                    off: u64::from(k % 4) * 1024,
                    data: vec![k as u8; 1024],
                })?,
                2 => one(BatchOp::Fsync { ino: base2 })?,
                _ => one(BatchOp::Read {
                    ino: base2,
                    off: u64::from(k % 4) * 1024,
                    buf: vec![0u8; 1024],
                })?,
            };
            if let Err(e) = reply.result() {
                return Err(format!(
                    "phase-2 op {k} failed on the clean generation: {e}"
                ));
            }
        }
        if vfs.fs_handle().swap_count() != 1 || vfs.gate().swaps() != 1 {
            return Err("swap landed but the counters disagree".into());
        }
    } else {
        // Deterministic alternate outcome: a record-write EIO during
        // quiesce sticky-aborted generation 1. The loop above already
        // proved every attempt refused cleanly; record which door this
        // seed took so the trace documents it.
        if !gen1.journal().is_some_and(|j| j.is_aborted()) {
            return Err("swap never landed yet the journal is healthy".into());
        }
        sw.emit("gen1 sticky-aborted; swap refused cleanly on all attempts".to_string());
    }

    for r in pool {
        r.join();
    }
    let stats = ring.stats();
    if stats.submitted != stats.completed {
        return Err(format!(
            "accepted SQEs without CQEs: {} submitted, {} completed",
            stats.submitted, stats.completed
        ));
    }
    let violations = locks.violations();
    if !violations.is_empty() {
        return Err(format!("lockdep findings: {violations:?}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The corpus runner + replay/determinism tests
// ---------------------------------------------------------------------------

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

/// Runs one scenario at one seed; on failure prints the seed, the
/// verdict, the exact replay command, and the trace tail.
fn run_one(name: &str, f: ScenarioFn, seed: u64) -> Result<(), String> {
    let engine = ScenarioEngine::new(seed);
    let verdict = match catch_unwind(AssertUnwindSafe(|| f(&engine))) {
        Ok(v) => v,
        Err(p) => Err(format!("panic: {}", panic_text(p))),
    };
    if let Err(why) = &verdict {
        eprintln!("SCENARIO-FAIL scenario={name} seed={seed}");
        eprintln!("  verdict: {why}");
        eprintln!(
            "  replay: SCENARIO={name} SCENARIO_SEED={seed} \
             cargo test --test soak scenarios::scenario_corpus -- --nocapture"
        );
        eprintln!("  trace tail ({} events total):", engine.trace_len());
        eprintln!("{}", engine.trace_tail(40));
    }
    verdict
}

/// The CI corpus sweep: every scenario across the sweep seeds. Override
/// with `SCENARIO=<name>` and/or `SCENARIO_SEED=<seed>` to replay one
/// failure — the trace is byte-identical run to run (proved below).
#[test]
fn scenario_corpus() {
    let only = std::env::var("SCENARIO").ok();
    let seed_override = std::env::var("SCENARIO_SEED")
        .ok()
        .map(|s| s.parse::<u64>().expect("SCENARIO_SEED must be a u64"));
    let seeds: Vec<u64> = seed_override.map_or_else(|| SWEEP_SEEDS.to_vec(), |s| vec![s]);

    let mut failures = Vec::new();
    for (name, f) in CORPUS {
        if only.as_deref().is_some_and(|o| !name.contains(o)) {
            continue;
        }
        for &seed in &seeds {
            if run_one(name, *f, seed).is_err() {
                failures.push(format!("{name} seed={seed}"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "scenario corpus failures (replay each with SCENARIO/SCENARIO_SEED): {failures:?}"
    );
}

/// Satellite: seed-unification. One engine seed drives the disk stream,
/// the link stream, and the crash sampler at once, and two runs with the
/// same seed produce byte-identical combined traces.
#[test]
fn one_seed_drives_disk_link_and_crash_byte_identically() {
    let run = || {
        let engine = ScenarioEngine::new(0xABCD);
        let disk = FaultyDisk::on_engine(
            RamDisk::new(32),
            DiskFaultConfig {
                write_eio: 0.2,
                torn_write: 0.3,
                read_corrupt: 0.2,
                ..DiskFaultConfig::default()
            },
            &engine,
        );
        let link = FaultyLink::on_engine(LinkFaultConfig::adversarial(100), &engine);
        let crash_stream = engine.stream(subsys::CRASH);
        let block = vec![7u8; BLOCK_SIZE];
        let mut outcomes = Vec::new();
        let mut p = safer_kernel::netstack::packet::Packet::new(
            safer_kernel::netstack::packet::proto::UDP,
            1,
            2,
        );
        p.payload = vec![9u8; 64];
        for i in 0..32u64 {
            outcomes.push(disk.write_block(i % 32, &block).is_ok());
            link.send(Side::A, &p);
            let mut buf = vec![0u8; BLOCK_SIZE];
            outcomes.push(disk.read_block(i % 32, &mut buf).is_ok());
        }
        let pending = vec![PendingWrite {
            blkno: 3,
            data: vec![1u8; BLOCK_SIZE],
        }];
        let img = sample_crash_image(
            &vec![0u8; 32 * BLOCK_SIZE],
            &pending,
            BLOCK_SIZE,
            CrashPolicy::Torn,
            &crash_stream,
        );
        (outcomes, img, engine.trace_text())
    };
    let (a, b) = (run(), run());
    // All three subsystems appear in the one trace...
    for tag in ["disk+", "link+", "crash+"] {
        assert!(a.2.contains(tag), "missing {tag} events in:\n{}", a.2);
    }
    // ...and the trace (plus every outcome) is byte-identical.
    assert_eq!(a, b);
}

/// Satellite: trace replay. Every corpus scenario, re-run from the same
/// engine seed, reproduces the identical event trace AND verdict —
/// determinism itself is under test, cross-subsystem.
#[test]
fn every_scenario_replays_trace_and_verdict_byte_identically() {
    for (name, f) in CORPUS {
        let run = || {
            let engine = ScenarioEngine::new(0x5EED);
            let verdict = catch_unwind(AssertUnwindSafe(|| f(&engine)))
                .unwrap_or_else(|p| Err(format!("panic: {}", panic_text(p))));
            (
                format!("{verdict:?}"),
                engine.trace_len(),
                engine.trace_text(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.0, b.0, "{name}: verdict diverged between identical seeds");
        assert_eq!(
            (a.1, &a.2),
            (b.1, &b.2),
            "{name}: trace diverged between identical seeds"
        );
    }
}

// ---------------------------------------------------------------------------
// Pinned regressions: bugs the corpus surfaced, fixed in product code.
// Each carries the exact seed that found it so a revert fails loudly.
// ---------------------------------------------------------------------------

/// Bug found by `eio_mid_checkpoint_recovery` seeds 1 and 3: a failed
/// per-op commit publishes its block images into shared cache buffers
/// before journal durability. The rollback path invalidated its blocks,
/// but `invalidate_blocks` spares Delay-pinned buffers — so any block
/// *also* pinned by an earlier committed-but-uncheckpointed transaction
/// (inode table, bitmaps, the parent directory: the common case) kept
/// the failed op's content, and the op's mutation stayed visible to
/// readers despite the EIO it returned.
///
/// This is the deterministic distillation: op 1 commits and stays
/// uncheckpointed (pinning the shared metadata blocks), op 2's journal
/// record write EIOs. The failed create must vanish from the live state.
/// Fix: `Txn::commit`'s failure path now restores still-pinned buffers
/// to the journal's newest committed image (`Journal::committed_image`).
#[test]
fn pinned_failed_commit_must_not_clobber_blocks_pinned_by_earlier_txns() {
    let engine = ScenarioEngine::new(0x0B06);
    let faulty = Arc::new(FaultyDisk::on_engine(
        Arc::new(RamDisk::new(512)),
        DiskFaultConfig::default(),
        &engine,
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 64, 32).unwrap();
    let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).unwrap();
    let root = fs.root_ino();

    // Op 1: committed but never checkpointed — its Delay pins on the
    // inode bitmap, inode table, and root directory blocks stay held.
    fs.create(root, "alpha").unwrap();
    let pre = fs.abstraction();

    // Op 2: the very next device write is its journal record — EIO.
    faulty.fail_nth_write(0);
    let err = fs.create(root, "beta");
    assert!(err.is_err(), "create under a failed record write must fail");

    // The failed op shares every metadata block with op 1, so none of
    // its published images could be invalidated — they must have been
    // rolled back to op 1's committed images instead.
    assert!(
        fs.lookup(root, "beta").is_err(),
        "failed create is visible in the live directory"
    );
    assert_eq!(
        fs.abstraction(),
        pre,
        "failed commit mutated the live state"
    );
}

/// PINNED: SCENARIO=multi_reactor_eio_swap SCENARIO_SEED=3 — the seed
/// where the swap's first quiesce attempt EIOs (clean refusal: state
/// intact, generation unswitched) and the retry lands, so one run
/// exercises the whole contract: 4 work-stealing reactors stay coherent
/// through a failed and then a successful SwapGate handshake, the copied
/// tree matches the mirror, and phase 2 sees zero failed ops.
#[test]
fn pinned_multi_reactor_eio_swap_seed_3() {
    run_one("multi_reactor_eio_swap", multi_reactor_eio_swap, 3).unwrap();
}

/// PINNED: SCENARIO=eio_mid_checkpoint_recovery SCENARIO_SEED=1 — first
/// seed that surfaced the shared-pin rollback bug (trace: `disk+30
/// write_eio blk=2010`, a journal record write; op 4's create stayed
/// visible after its EIO).
#[test]
fn pinned_eio_mid_checkpoint_recovery_seed_1() {
    run_one(
        "eio_mid_checkpoint_recovery",
        eio_mid_checkpoint_recovery,
        1,
    )
    .unwrap();
}

/// PINNED: SCENARIO=eio_mid_checkpoint_recovery SCENARIO_SEED=3 — same
/// bug reached through the other door: two syncs succeed, then a flush
/// EIO (`disk+186 flush_eio`) fails the commit *barrier* rather than the
/// record write, exercising the rollback after a durable-looking write.
#[test]
fn pinned_eio_mid_checkpoint_recovery_seed_3() {
    run_one(
        "eio_mid_checkpoint_recovery",
        eio_mid_checkpoint_recovery,
        3,
    )
    .unwrap();
}
