//! Soak: a long randomized workload across the whole stack, with the
//! implementation hot-swapped back and forth *mid-workload* while the
//! model keeps tracking — the paper's incremental world in one test.

mod scenarios;

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safer_kernel::core::modularity::Registry;
use safer_kernel::core::spec::Refines;
use safer_kernel::fs_legacy::{cext4_ops, BugKnobs, Cext4};
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, RamDisk};
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::vfs::migrate::Migrator;
use safer_kernel::vfs::modular::FileSystem;
use safer_kernel::vfs::path::{Vfs, FS_INTERFACE};
use safer_kernel::vfs::shim::LegacyFsAdapter;
use safer_kernel::vfs::spec::FsModel;

fn make_cext4() -> Arc<dyn FileSystem> {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
    Cext4::mkfs(&dev, 512).unwrap();
    let ctx = LegacyCtx::new();
    let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
    Arc::new(LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx))
}

fn make_rsfs() -> Arc<dyn FileSystem> {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
    Rsfs::mkfs(&dev, 512, 64).unwrap();
    Arc::new(Rsfs::mount(dev, JournalMode::PerOp).unwrap())
}

/// One random op against both the VFS and the model; results must agree.
fn random_op(vfs: &Vfs, model: FsModel, rng: &mut StdRng) -> FsModel {
    let dirs = ["", "/d0", "/d1"];
    let dir = dirs[rng.gen_range(0..dirs.len())];
    let name = format!("f{}", rng.gen_range(0..12));
    let path = format!("{dir}/{name}");
    let norm = safer_kernel::vfs::spec::normalize(&path).unwrap();
    match rng.gen_range(0..7) {
        0 => {
            let sys = vfs.create(&path);
            let spec = model.create(&norm);
            assert_eq!(sys.is_ok(), spec.is_ok(), "create {path}");
            spec.unwrap_or(model)
        }
        1 => {
            let data: Vec<u8> = (0..rng.gen_range(1..400)).map(|_| rng.gen()).collect();
            let off = rng.gen_range(0..2000u64);
            let sys = vfs.write_file(&path, off, &data);
            let spec = model.write(&norm, off, &data);
            assert_eq!(sys.is_ok(), spec.is_ok(), "write {path}");
            spec.unwrap_or(model)
        }
        2 => {
            let sys = vfs.unlink(&path);
            let spec = model.unlink(&norm);
            assert_eq!(sys.is_ok(), spec.is_ok(), "unlink {path}");
            spec.unwrap_or(model)
        }
        3 => {
            let d = format!("/d{}", rng.gen_range(0..2));
            let sys = vfs.mkdir(&d);
            let spec = model.mkdir(&d);
            assert_eq!(sys.is_ok(), spec.is_ok(), "mkdir {d}");
            spec.unwrap_or(model)
        }
        4 => {
            let to = format!(
                "{}/g{}",
                dirs[rng.gen_range(0..dirs.len())],
                rng.gen_range(0..12)
            );
            let to_norm = safer_kernel::vfs::spec::normalize(&to).unwrap();
            let sys = vfs.rename(&path, &to);
            let spec = model.rename(&norm, &to_norm);
            assert_eq!(sys.is_ok(), spec.is_ok(), "rename {path} -> {to}");
            spec.unwrap_or(model)
        }
        5 => {
            let size = rng.gen_range(0..3000u64);
            let sys = vfs.truncate(&path, size);
            let spec = model.truncate(&norm, size);
            assert_eq!(sys.is_ok(), spec.is_ok(), "truncate {path}");
            spec.unwrap_or(model)
        }
        _ => {
            let sys = vfs.read_file(&path);
            let spec = model.read(&norm, 0, usize::MAX / 2);
            assert_eq!(sys.is_ok(), spec.is_ok(), "read {path}");
            if let (Ok(a), Ok(b)) = (&sys, &spec) {
                assert_eq!(a, b, "read {path} content");
            }
            model
        }
    }
}

/// Async-commit soak: four op threads stage into the running transaction
/// while a live kupdate-style timer thread concurrently drives
/// `commit_running` + `checkpoint_all`, with the file system's own lockdep
/// registry watching every acquisition. The timer path must add no
/// acquires-after edges that close a cycle — the same guarantee the
/// per-op path already proves — and the final tree must be exactly the
/// surviving files.
#[test]
fn async_commit_soak_with_live_timer_is_lockdep_clean() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
    Rsfs::mkfs(&dev, 512, 64).unwrap();
    let fs = Arc::new(Rsfs::mount(dev, JournalMode::Async).unwrap());
    let locks = Arc::clone(fs.lock_registry());

    // The ksim workqueue runs inline under a SimClock and cannot race, so
    // the soak uses a real thread as the kupdate stand-in: its lock
    // acquisitions genuinely interleave with op staging and fsync.
    let stop = Arc::new(AtomicBool::new(false));
    let timer = {
        let fs = Arc::clone(&fs);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                fs.commit_running().unwrap();
                if let Some(j) = fs.journal() {
                    j.checkpoint_all().unwrap();
                }
                thread::yield_now();
            }
        })
    };

    let mut workers = Vec::new();
    for t in 0..4u32 {
        let fs = Arc::clone(&fs);
        workers.push(thread::spawn(move || {
            let root = fs.root_ino();
            for i in 0..60u32 {
                let name = format!("t{t}-f{i}");
                let ino = fs.create(root, &name).unwrap();
                fs.write(ino, 0, format!("payload {t}/{i}").as_bytes())
                    .unwrap();
                if i % 8 == 7 {
                    fs.fsync(ino).unwrap();
                }
                if i % 16 == 15 {
                    fs.unlink(root, &name).unwrap();
                }
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    timer.join().unwrap();
    fs.sync().unwrap();

    // Each thread created 60 files and unlinked 3 (i = 15, 31, 47).
    assert_eq!(fs.readdir(fs.root_ino()).unwrap().len(), 4 * 57);
    let stats = fs.journal().unwrap().stats();
    assert!(stats.stages > 0, "ops must stage, not sync-commit");
    assert!(stats.batches > 0, "the timer/fsync path must commit");
    assert!(
        locks.violations().is_empty(),
        "async commit soak must be lockdep-clean: {:?}",
        locks.violations()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// 300 random ops with 3 hot swaps in the middle; the tree, the model,
    /// and the implementation agree at every step and at the end.
    #[test]
    fn soak_with_mid_workload_migrations(seed in any::<u64>()) {
        let legacy = make_cext4();
        let registry = Registry::new();
        registry
            .register::<dyn FileSystem>(FS_INTERFACE, "cext4", Arc::clone(&legacy))
            .unwrap();
        // Lockdep rides along on the VFS layer (the mounted file systems
        // run their own enabled registries internally).
        let locks = safer_kernel::ksim::lock::LockRegistry::new();
        let vfs = Vfs::mount_with_lockdep(&registry, Arc::clone(&locks)).unwrap();
        let mut model = FsModel::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut on_safe = false;

        for step in 0..300 {
            model = random_op(&vfs, model, &mut rng);
            if step % 100 == 99 {
                // Migrate to the other generation, mid-workload, through
                // the live-replacement protocol.
                let next: Arc<dyn FileSystem> = if on_safe { make_cext4() } else { make_rsfs() };
                let impl_name: &'static str = if on_safe { "cext4" } else { "rsfs" };
                Migrator::new(&vfs, &registry).swap(impl_name, next).unwrap();
                on_safe = !on_safe;
                prop_assert_eq!(vfs.abstraction(), model.clone(), "post-swap step {}", step);
            }
        }
        model.check_invariant().expect("model invariant");
        prop_assert_eq!(vfs.abstraction(), model);
        prop_assert_eq!(vfs.fs_handle().swap_count(), 3);
        prop_assert!(
            locks.violations().is_empty(),
            "migration soak must be lockdep-clean: {:?}",
            locks.violations()
        );
    }
}

/// Ring soak, the CI configuration: 8 clients push a mixed
/// create/write/read/fsync/unlink stream through one typed ring whose
/// reactor feeds an async-mode rsfs over a `FaultyDisk` injecting
/// transient write/flush EIO — with the lockdep registry live across
/// the whole submit/reactor/journal path. Ops are allowed to fail (the
/// journal may even abort to EROFS mid-run); what must hold is the
/// structural contract: every accepted SQE completes, every moved-in
/// buffer comes back, and the run produces zero lock-order findings.
#[test]
fn ring_soak_over_transient_eio_is_lockdep_clean() {
    use safer_kernel::ksim::block::{DiskFaultConfig, FaultyDisk};
    use safer_kernel::vfs::modular::{BatchOp, BatchReply};
    use safer_kernel::vfs::ring::{Ring, RingReactor, RingThrottle};

    const CLIENTS: u64 = 8;
    const OPS_EACH: u64 = 200;
    let ram = Arc::new(RamDisk::new(8192));
    let faulty = Arc::new(FaultyDisk::new(
        Arc::clone(&ram),
        DiskFaultConfig::default(),
        0x51_50_4B,
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 512, 64).unwrap();
    let fs = Arc::new(Rsfs::mount(dev, JournalMode::Async).unwrap());
    let root = fs.root_ino();
    let bases: Vec<u64> = (0..CLIENTS)
        .map(|c| fs.create(root, &format!("base{c}")).unwrap())
        .collect();
    fs.sync().unwrap();
    // Faults go live only after the formatted, mounted state exists.
    faulty.set_config(DiskFaultConfig {
        write_eio: 0.002,
        flush_eio: 0.001,
        ..DiskFaultConfig::default()
    });

    let ring = Arc::new(Ring::new(fs.lock_registry(), 64));
    let fs_dyn: Arc<dyn FileSystem> = Arc::clone(&fs) as Arc<dyn FileSystem>;
    let pressure_fs = Arc::clone(&fs);
    let relieve_fs = Arc::clone(&fs);
    let reactor = RingReactor::spawn(
        Arc::clone(&ring),
        fs_dyn,
        Some(RingThrottle {
            pressure: Box::new(move || pressure_fs.journal().map_or(0.0, |j| j.log_pressure())),
            relieve: Box::new(move || {
                let _ = relieve_fs.commit_running();
                let _ = relieve_fs.checkpoint(usize::MAX);
            }),
            threshold: 0.5,
        }),
    );

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let ring = Arc::clone(&ring);
            let base = bases[c as usize];
            std::thread::spawn(move || {
                let mut write_bufs = 0u64;
                let mut returned = 0u64;
                for k in 0..OPS_EACH {
                    let op = match k % 8 {
                        0 => BatchOp::Create {
                            dir: 1,
                            name: format!("c{c}k{k}"),
                        },
                        4 => BatchOp::Unlink {
                            dir: 1,
                            name: format!("c{c}k{}", k - 4),
                        },
                        7 => BatchOp::Fsync { ino: base },
                        2 | 6 => BatchOp::Read {
                            ino: base,
                            off: (k % 4) * 1024,
                            buf: vec![0u8; 1024],
                        },
                        _ => {
                            write_bufs += 1;
                            BatchOp::Write {
                                ino: base,
                                off: (k % 4) * 1024,
                                data: vec![c as u8; 1024],
                            }
                        }
                    };
                    let ticket = ring.submit(op).expect("ring live during soak");
                    // Window 1: the soak is about fault interleavings,
                    // not throughput.
                    match ring.wait(ticket).reply {
                        BatchReply::Write { buf, .. } => {
                            assert_eq!(buf.len(), 1024, "write buffer came back resized");
                            returned += 1;
                        }
                        BatchReply::Read { buf, .. } => {
                            assert_eq!(buf.len(), 1024, "read buffer came back resized");
                        }
                        _ => {}
                    }
                }
                assert_eq!(returned, write_bufs, "a write buffer leaked");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    reactor.join();

    let stats = ring.stats();
    assert_eq!(
        stats.submitted, stats.completed,
        "accepted SQEs without CQEs"
    );
    assert_eq!(stats.submitted, CLIENTS * OPS_EACH);
    let violations = fs.lock_registry().violations();
    assert!(violations.is_empty(), "lockdep findings: {violations:#?}");
}
