//! Pinned regression tests promoted from `tests/*.proptest-regressions`.
//!
//! A proptest shrink file replays silently inside its property — useful,
//! but invisible: nothing names the bug, and deleting the file deletes
//! the coverage. Every `cc` hash recorded in a regressions file gets an
//! explicit named test here (annotated `// PINNED: cc <hash>`) that
//! replays the shrunk case deterministically, and the guard test at the
//! bottom fails CI whenever a regressions file records a shrink with no
//! matching pinned test.

use std::sync::Arc;

use safer_kernel::core::modularity::Registry;
use safer_kernel::core::spec::Refines;
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, RamDisk};
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::netstack::packet::{flags, proto, Packet};
use safer_kernel::netstack::spec::StreamChecker;
use safer_kernel::netstack::tcp::{TcpListener, TcpPcb, TcpState, DEFAULT_RTO_NS};
use safer_kernel::netstack::wire::{Side, Wire, WireFaults};
use safer_kernel::vfs::modular::FileSystem;
use safer_kernel::vfs::path::{Vfs, FS_INTERFACE};
use safer_kernel::vfs::shim::LegacyFsAdapter;
use safer_kernel::vfs::spec::{normalize, FsModel};

// ---------------------------------------------------------------------------
// netstack_props: tcp_prefix_delivery_under_arbitrary_faults shrinks
// ---------------------------------------------------------------------------

/// The prefix-delivery driver from `netstack_props`, with plain asserts
/// so each pinned case reports under its own name.
fn prefix_delivery_case(seed: u64, loss: f64, duplicate: f64, chunks: &[Vec<u8>]) {
    let wire = Arc::new(Wire::with_faults(WireFaults { loss, duplicate }, seed));
    let mut a = TcpPcb::new(1000, 100);
    let mut listener = TcpListener::new(80, 8, 9000);
    let mut b: Option<TcpPcb> = None;
    wire.send(Side::A, &a.connect(80, 0));
    let mut chk = StreamChecker::new();
    let mut submitted = 0usize;
    let mut now = 0u64;
    for _round in 0..3000 {
        now += DEFAULT_RTO_NS / 4;
        while let Ok(Some(pkt)) = wire.recv(Side::B) {
            let responses = match b.as_mut() {
                Some(pcb) => pcb.on_packet(&pkt, now),
                None => listener.on_packet(&pkt, now),
            };
            for r in responses {
                wire.send(Side::B, &r);
            }
            if b.is_none() {
                b = listener.accept();
            }
        }
        while let Ok(Some(pkt)) = wire.recv(Side::A) {
            for r in a.on_packet(&pkt, now) {
                wire.send(Side::A, &r);
            }
        }
        if submitted < chunks.len() && a.state == TcpState::Established {
            chk.on_send(&chunks[submitted]);
            for p in a.send(&chunks[submitted], now) {
                wire.send(Side::A, &p);
            }
            submitted += 1;
        }
        if let Some(pcb) = b.as_mut() {
            let got = pcb.take_received();
            if !got.is_empty() {
                chk.on_deliver(&got);
            }
        }
        assert!(chk.is_clean(), "{:?}", chk.violations());
        chk.model()
            .check_invariant()
            .expect("stream model invariant");
        if submitted == chunks.len() && chk.model().is_complete() && a.all_acked() {
            break;
        }
        if a.is_failed() || b.as_ref().is_some_and(|p| p.is_failed()) {
            break;
        }
        for p in a.tick(now) {
            wire.send(Side::A, &p);
        }
        for p in listener.tick(now) {
            wire.send(Side::B, &p);
        }
        if let Some(pcb) = b.as_mut() {
            for p in pcb.tick(now) {
                wire.send(Side::B, &p);
            }
        }
    }
    assert!(
        chk.model().is_complete() || a.is_failed() || b.as_ref().is_some_and(|p| p.is_failed()),
        "stream neither completed nor failed cleanly"
    );
}

// PINNED: cc 5d1e6f0a9c44b8e2c07a3b61d2f98c4e71a0d35b86e4f217c9358d0ab1462e93
// shrinks to data = [0], rst_after = 0 — a blind RST with seq 0 killed a
// synchronized connection before the rcv_nxt window check ran.
#[test]
fn blind_rst_with_seq_zero_must_not_kill_a_synchronized_connection() {
    let wire = Arc::new(Wire::new());
    let mut a = TcpPcb::new(1000, 100);
    let mut listener = TcpListener::new(80, 8, 9000);
    let mut b: Option<TcpPcb> = None;
    wire.send(Side::A, &a.connect(80, 0));
    let data = [0u8]; // the shrunk payload
    let mut now = 0u64;
    for round in 0..8 {
        now += 1;
        while let Ok(Some(pkt)) = wire.recv(Side::B) {
            let responses = match b.as_mut() {
                Some(pcb) => pcb.on_packet(&pkt, now),
                None => listener.on_packet(&pkt, now),
            };
            for r in responses {
                wire.send(Side::B, &r);
            }
            if b.is_none() {
                b = listener.accept();
            }
        }
        while let Ok(Some(pkt)) = wire.recv(Side::A) {
            for r in a.on_packet(&pkt, now) {
                wire.send(Side::A, &r);
            }
        }
        if round == 1 {
            for p in a.send(&data, now) {
                wire.send(Side::A, &p);
            }
        }
        if round == 2 {
            // rst_after = 0: the attack lands as soon as data flowed.
            // rcv_nxt is now ISS+1+len, so seq 0 is out of window; the
            // historical bug honoured it anyway.
            let pcb = b.as_mut().expect("listener accepted the connection");
            assert_ne!(pcb.rcv_nxt, 0, "payload must have advanced rcv_nxt");
            let mut rst = Packet::new(proto::TCP, 1000, 80);
            rst.flags = flags::RST;
            rst.seq = 0;
            pcb.on_packet(&rst, now);
        }
    }
    let mut b = b.expect("listener accepted the connection");
    assert_eq!(b.take_received(), &data, "delivery survives the blind RST");
    assert_eq!(
        b.state,
        TcpState::Established,
        "blind out-of-window RST must be ignored"
    );
    assert_eq!(b.counters.resets_received, 0, "blind RSTs are not counted");

    // Control: a genuinely in-window RST still kills the connection.
    let mut rst = Packet::new(proto::TCP, 1000, 80);
    rst.flags = flags::RST;
    rst.seq = b.rcv_nxt;
    b.on_packet(&rst, now);
    assert_eq!(b.state, TcpState::Closed);
    assert_eq!(b.counters.resets_received, 1);
}

// PINNED: cc 0c47fb92e8a15d63b7d90412ffae68c52e3b1d7a40c8569f1e2d84a6035c7b18
// shrinks to seed = 3, chunks = [[7; 500]; 4] — out-of-order reassembly
// entries covered by a cumulative ACK were never purged, wedging
// reassembly after sequence wraparound. Loss plus duplication is what
// populated the ooo map in the shrunk schedule.
#[test]
fn ooo_entries_covered_by_a_cumulative_ack_are_purged() {
    prefix_delivery_case(3, 0.3, 0.2, &vec![vec![7u8; 500]; 4]);
}

// PINNED: cc 81b3d4c6a25e90f71c6a85d3042efb19d7c2a40e63f58b1490de7a2c5163f08d
// shrinks to seed = 42, loss = 0.5, duplicate = 0.0, chunks = [[0]] —
// retry-budget exhaustion left in_flight populated and ticked forever
// instead of reporting a clean connection failure.
#[test]
fn retry_budget_exhaustion_reports_a_clean_failure() {
    prefix_delivery_case(42, 0.5, 0.0, &[vec![0u8]]);
}

// ---------------------------------------------------------------------------
// refinement_props: rsfs_refines_the_model shrink
// ---------------------------------------------------------------------------

fn mount_rsfs() -> Vfs {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
    Rsfs::mkfs(&dev, 256, 64).unwrap();
    let fs = Rsfs::mount(dev, JournalMode::PerOp).unwrap();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "rsfs", Arc::new(fs) as Arc<dyn FileSystem>)
        .unwrap();
    Vfs::mount(&registry).unwrap()
}

fn mount_cext4() -> Vfs {
    use safer_kernel::fs_legacy::{cext4_ops, BugKnobs, Cext4};
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
    Cext4::mkfs(&dev, 256).unwrap();
    let ctx = LegacyCtx::new();
    let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
    let adapter = LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx);
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(
            FS_INTERFACE,
            "cext4",
            Arc::new(adapter) as Arc<dyn FileSystem>,
        )
        .unwrap();
    Vfs::mount(&registry).unwrap()
}

// PINNED: cc a6a2328a27b6a432442ae906080c160f83bb2a4da4a0e376485220871035715e
// shrinks to ops = [Mkdir("/c"), Rename("/c", "/c/z")] — renaming a
// directory into its own subtree must fail on both generations exactly
// as the model rejects it, instead of orphaning the subtree.
#[test]
fn rename_into_own_subtree_is_rejected_like_the_model() {
    for (label, vfs) in [("rsfs", mount_rsfs()), ("cext4", mount_cext4())] {
        let mut model = FsModel::new();
        vfs.mkdir("/c").unwrap();
        model = model.mkdir(&normalize("/c").unwrap()).unwrap();

        let sys = vfs.rename("/c", "/c/z");
        let spec = model.rename(&normalize("/c").unwrap(), &normalize("/c/z").unwrap());
        assert_eq!(
            sys.is_ok(),
            spec.is_ok(),
            "{label}: rename /c -> /c/z: {sys:?} vs {spec:?}"
        );
        assert!(sys.is_err(), "{label}: rename into own subtree must fail");

        // The failed rename must leave the tree exactly where the model
        // says it is: /c present, /c/z absent.
        model.check_invariant().expect("model invariant");
        assert_eq!(
            vfs.abstraction(),
            model,
            "{label}: state after rejected rename"
        );
        assert!(vfs.mkdir("/c").is_err(), "{label}: /c still exists");
        assert!(
            vfs.read_file("/c/z").is_err(),
            "{label}: /c/z was never created"
        );
    }
}

// ---------------------------------------------------------------------------
// The guard: no shrink file entry without a pinned test
// ---------------------------------------------------------------------------

const SELF_SOURCE: &str = include_str!("pinned_regressions.rs");

/// Every `cc <hash>` recorded in `tests/*.proptest-regressions` must have
/// a matching `// PINNED: cc <hash>` annotation in this file. A new
/// proptest shrink therefore fails CI until someone promotes it into a
/// named, documented regression test above.
#[test]
fn every_recorded_shrink_has_a_pinned_test() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests");
    let mut recorded = 0usize;
    for entry in std::fs::read_dir(dir).expect("read tests/") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("proptest-regressions") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read regressions file");
        for line in text.lines() {
            let Some(rest) = line.trim().strip_prefix("cc ") else {
                continue;
            };
            let hash = rest.split_whitespace().next().unwrap_or_default();
            recorded += 1;
            assert!(
                SELF_SOURCE.contains(&format!("PINNED: cc {hash}")),
                "{} records shrink `cc {hash}` but tests/pinned_regressions.rs has no \
                 `// PINNED: cc {hash}` test — promote the shrink before landing it",
                path.display()
            );
        }
    }
    assert!(
        recorded >= 4,
        "expected the known recorded shrinks to be found (got {recorded})"
    );
}
