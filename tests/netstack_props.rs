//! Property tests for the network stack: packet codec totality and the
//! TCP prefix-delivery specification under arbitrary wire behaviour.

use std::sync::Arc;

use proptest::prelude::*;
use safer_kernel::netstack::packet::{flags, proto, Packet, HEADER_LEN, MAX_PAYLOAD};
use safer_kernel::netstack::spec::StreamChecker;
use safer_kernel::netstack::tcp::{TcpPcb, TcpState, DEFAULT_RTO_NS};
use safer_kernel::netstack::wire::{Side, Wire, WireFaults};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode/decode is the identity on valid packets.
    #[test]
    fn packet_codec_roundtrips(
        p in (0u8..3, any::<u8>(), any::<u16>(), any::<u16>(), any::<u32>(), any::<u32>(),
              prop::collection::vec(any::<u8>(), 0..MAX_PAYLOAD))
            .prop_map(|(pr, fl, sp, dp, seq, ack, payload)| Packet {
                proto: [proto::TCP, proto::UDP, proto::AMP_CTRL][pr as usize],
                flags: fl,
                src_port: sp,
                dst_port: dp,
                seq,
                ack,
                payload,
            })
    ) {
        let bytes = p.encode();
        prop_assert_eq!(bytes.len(), HEADER_LEN + p.payload.len());
        prop_assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    /// The decoder is total: arbitrary bytes never panic, they parse or
    /// error.
    #[test]
    fn packet_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..1200)) {
        let _ = Packet::decode(&bytes);
    }

    /// The TCP engines refine the stream specification under arbitrary
    /// loss and duplication rates, and complete whenever the wire is not
    /// fully opaque.
    #[test]
    fn tcp_prefix_delivery_under_arbitrary_faults(
        seed in any::<u64>(),
        loss in 0.0f64..0.5,
        duplicate in 0.0f64..0.3,
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..800), 1..6),
    ) {
        let wire = Arc::new(Wire::with_faults(WireFaults { loss, duplicate }, seed));
        let mut a = TcpPcb::new(1000, 100);
        let mut b = TcpPcb::new(80, 9000);
        b.listen();
        wire.send(Side::A, &a.connect(80, 0));
        let mut chk = StreamChecker::new();
        let mut submitted = 0usize;
        let mut now = 0u64;
        for _round in 0..3000 {
            now += DEFAULT_RTO_NS / 4;
            while let Ok(Some(pkt)) = wire.recv(Side::B) {
                for r in b.on_packet(&pkt, now) {
                    wire.send(Side::B, &r);
                }
            }
            while let Ok(Some(pkt)) = wire.recv(Side::A) {
                for r in a.on_packet(&pkt, now) {
                    wire.send(Side::A, &r);
                }
            }
            if submitted < chunks.len() && a.state == TcpState::Established {
                chk.on_send(&chunks[submitted]);
                for p in a.send(&chunks[submitted], now) {
                    wire.send(Side::A, &p);
                }
                submitted += 1;
            }
            let got = b.take_received();
            if !got.is_empty() {
                chk.on_deliver(&got);
            }
            prop_assert!(chk.is_clean(), "{:?}", chk.violations());
            chk.model().check_invariant().map_err(TestCaseError::fail)?;
            if submitted == chunks.len() && chk.model().is_complete() && a.all_acked() {
                break;
            }
            for p in a.tick(now) {
                wire.send(Side::A, &p);
            }
            for p in b.tick(now) {
                wire.send(Side::B, &p);
            }
        }
        prop_assert!(chk.model().is_complete(), "stream did not complete");
    }

    /// RST at any point kills the connection without violating the
    /// delivered-prefix property (nothing un-delivers).
    #[test]
    fn rst_never_unwinds_delivered_bytes(
        data in prop::collection::vec(any::<u8>(), 1..2000),
        rst_after in 0usize..3,
    ) {
        let wire = Arc::new(Wire::new());
        let mut a = TcpPcb::new(1000, 100);
        let mut b = TcpPcb::new(80, 9000);
        b.listen();
        wire.send(Side::A, &a.connect(80, 0));
        let mut chk = StreamChecker::new();
        let mut now = 0;
        let mut delivered_before_rst = 0usize;
        for round in 0..20 {
            now += 1;
            while let Ok(Some(pkt)) = wire.recv(Side::B) {
                for r in b.on_packet(&pkt, now) {
                    wire.send(Side::B, &r);
                }
            }
            while let Ok(Some(pkt)) = wire.recv(Side::A) {
                for r in a.on_packet(&pkt, now) {
                    wire.send(Side::A, &r);
                }
            }
            if round == 1 {
                chk.on_send(&data);
                for p in a.send(&data, now) {
                    wire.send(Side::A, &p);
                }
            }
            let got = b.take_received();
            if !got.is_empty() {
                chk.on_deliver(&got);
            }
            if round == 2 + rst_after {
                let mut rst = Packet::new(proto::TCP, 1000, 80);
                rst.flags = flags::RST;
                b.on_packet(&rst, now);
                delivered_before_rst = chk.model().delivered;
            }
            prop_assert!(chk.is_clean());
        }
        // After the RST the receiver is dead; whatever was delivered stays
        // a valid prefix and never shrinks.
        prop_assert!(chk.model().delivered >= delivered_before_rst);
        prop_assert_eq!(b.state, TcpState::Closed);
    }
}
