//! Property tests for the network stack: packet codec totality, the
//! TCP prefix-delivery specification under arbitrary wire behaviour, and
//! the adversarial-link soak that both socket-layer generations must
//! survive.

use std::sync::Arc;

use proptest::prelude::*;
use safer_kernel::core::modularity::Registry;
use safer_kernel::ksim::time::SimClock;
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::netstack::fault::{FaultConfig, FaultyLink};
use safer_kernel::netstack::legacy_stack::LegacyStack;
use safer_kernel::netstack::modular_stack::{register_families, ModularStack};
use safer_kernel::netstack::packet::{flags, proto, Packet, HEADER_LEN, MAX_PAYLOAD};
use safer_kernel::netstack::spec::StreamChecker;
use safer_kernel::netstack::tcp::{TcpListener, TcpPcb, TcpState, DEFAULT_RTO_NS};
use safer_kernel::netstack::wire::{Side, Wire, WireFaults};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode/decode is the identity on valid packets.
    #[test]
    fn packet_codec_roundtrips(
        p in (0u8..3, any::<u8>(), any::<u16>(), any::<u16>(), any::<u32>(), any::<u32>(),
              prop::collection::vec(any::<u8>(), 0..MAX_PAYLOAD))
            .prop_map(|(pr, fl, sp, dp, seq, ack, payload)| Packet {
                proto: [proto::TCP, proto::UDP, proto::AMP_CTRL][pr as usize],
                flags: fl,
                src_port: sp,
                dst_port: dp,
                seq,
                ack,
                payload,
            })
    ) {
        let bytes = p.encode();
        prop_assert_eq!(bytes.len(), HEADER_LEN + p.payload.len());
        prop_assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    /// The decoder is total: arbitrary bytes never panic, they parse or
    /// error.
    #[test]
    fn packet_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..1200)) {
        let _ = Packet::decode(&bytes);
    }

    /// The TCP engines refine the stream specification under arbitrary
    /// loss and duplication rates: every delivery extends the prefix, and
    /// the connection either completes or fails cleanly (the retry budget
    /// is allowed to fire when the wire eats most frames).
    #[test]
    fn tcp_prefix_delivery_under_arbitrary_faults(
        seed in any::<u64>(),
        loss in 0.0f64..0.5,
        duplicate in 0.0f64..0.3,
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..800), 1..6),
    ) {
        let wire = Arc::new(Wire::with_faults(WireFaults { loss, duplicate }, seed));
        let mut a = TcpPcb::new(1000, 100);
        let mut listener = TcpListener::new(80, 8, 9000);
        let mut b: Option<TcpPcb> = None;
        wire.send(Side::A, &a.connect(80, 0));
        let mut chk = StreamChecker::new();
        let mut submitted = 0usize;
        let mut now = 0u64;
        for _round in 0..3000 {
            now += DEFAULT_RTO_NS / 4;
            while let Ok(Some(pkt)) = wire.recv(Side::B) {
                let responses = match b.as_mut() {
                    Some(pcb) => pcb.on_packet(&pkt, now),
                    None => listener.on_packet(&pkt, now),
                };
                for r in responses {
                    wire.send(Side::B, &r);
                }
            }
            if b.is_none() {
                b = listener.accept();
            }
            while let Ok(Some(pkt)) = wire.recv(Side::A) {
                for r in a.on_packet(&pkt, now) {
                    wire.send(Side::A, &r);
                }
            }
            if submitted < chunks.len() && a.state == TcpState::Established {
                chk.on_send(&chunks[submitted]);
                for p in a.send(&chunks[submitted], now) {
                    wire.send(Side::A, &p);
                }
                submitted += 1;
            }
            if let Some(pcb) = b.as_mut() {
                let got = pcb.take_received();
                if !got.is_empty() {
                    chk.on_deliver(&got);
                }
            }
            prop_assert!(chk.is_clean(), "{:?}", chk.violations());
            chk.model().check_invariant().map_err(TestCaseError::fail)?;
            if submitted == chunks.len() && chk.model().is_complete() && a.all_acked() {
                break;
            }
            if a.is_failed() || b.as_ref().is_some_and(|p| p.is_failed()) {
                break;
            }
            for p in a.tick(now) {
                wire.send(Side::A, &p);
            }
            let server_ticks = match b.as_mut() {
                Some(pcb) => pcb.tick(now),
                None => listener.tick(now),
            };
            for p in server_ticks {
                wire.send(Side::B, &p);
            }
        }
        prop_assert!(
            chk.model().is_complete()
                || a.is_failed()
                || b.as_ref().is_some_and(|p| p.is_failed()),
            "stream neither completed nor failed cleanly"
        );
    }

    /// RST at the receive edge kills the connection without violating the
    /// delivered-prefix property (nothing un-delivers). Blind RSTs with
    /// an out-of-window sequence number would be ignored, so the attack
    /// here is an in-window one.
    #[test]
    fn rst_never_unwinds_delivered_bytes(
        data in prop::collection::vec(any::<u8>(), 1..2000),
        rst_after in 0usize..3,
    ) {
        let wire = Arc::new(Wire::new());
        let mut a = TcpPcb::new(1000, 100);
        let mut listener = TcpListener::new(80, 8, 9000);
        let mut b: Option<TcpPcb> = None;
        wire.send(Side::A, &a.connect(80, 0));
        let mut chk = StreamChecker::new();
        let mut now = 0;
        let mut delivered_before_rst = 0usize;
        let mut rst_fired = false;
        for round in 0..20 {
            now += 1;
            while let Ok(Some(pkt)) = wire.recv(Side::B) {
                let responses = match b.as_mut() {
                    Some(pcb) => pcb.on_packet(&pkt, now),
                    None => listener.on_packet(&pkt, now),
                };
                for r in responses {
                    wire.send(Side::B, &r);
                }
            }
            if b.is_none() {
                b = listener.accept();
            }
            while let Ok(Some(pkt)) = wire.recv(Side::A) {
                for r in a.on_packet(&pkt, now) {
                    wire.send(Side::A, &r);
                }
            }
            if round == 1 {
                chk.on_send(&data);
                for p in a.send(&data, now) {
                    wire.send(Side::A, &p);
                }
            }
            if let Some(pcb) = b.as_mut() {
                let got = pcb.take_received();
                if !got.is_empty() {
                    chk.on_deliver(&got);
                }
                if round >= 2 + rst_after && !rst_fired {
                    let mut rst = Packet::new(proto::TCP, 1000, 80);
                    rst.flags = flags::RST;
                    rst.seq = pcb.rcv_nxt;
                    pcb.on_packet(&rst, now);
                    delivered_before_rst = chk.model().delivered;
                    rst_fired = true;
                }
            }
            prop_assert!(chk.is_clean());
        }
        // After the RST the receiver is dead; whatever was delivered stays
        // a valid prefix and never shrinks.
        let b = b.expect("handshake completed on the clean wire");
        prop_assert!(rst_fired);
        prop_assert!(chk.model().delivered >= delivered_before_rst);
        prop_assert_eq!(b.state, TcpState::Closed);
        prop_assert_eq!(b.counters.resets_received, 1);
    }
}

// ---------------------------------------------------------------------------
// The adversarial-link soak: both socket-layer generations over FaultyLink.
// ---------------------------------------------------------------------------

/// The least common denominator of the two socket layers, just enough to
/// drive a client/server soak generically. Both stacks expose the same
/// surface; only socket creation differs (protocol byte vs family name).
trait SoakStack {
    fn tcp_socket(&self, port: u16) -> u64;
    fn listen(&self, fd: u64);
    fn accept(&self, fd: u64) -> Option<u64>;
    fn connect(&self, fd: u64, port: u16);
    fn try_send(&self, fd: u64, dst: u16, data: &[u8]) -> bool;
    fn recv(&self, fd: u64) -> Vec<u8>;
    fn pump(&self);
    fn tick(&self);
    fn conn_failed(&self, fd: u64) -> bool;
    fn retransmits(&self, fd: u64) -> u64;
    fn reap(&self) -> usize;
}

impl SoakStack for LegacyStack {
    fn tcp_socket(&self, port: u16) -> u64 {
        self.socket(proto::TCP, port).unwrap()
    }
    fn listen(&self, fd: u64) {
        LegacyStack::listen(self, fd).unwrap()
    }
    fn accept(&self, fd: u64) -> Option<u64> {
        LegacyStack::accept(self, fd).unwrap()
    }
    fn connect(&self, fd: u64, port: u16) {
        LegacyStack::connect(self, fd, port).unwrap()
    }
    fn try_send(&self, fd: u64, dst: u16, data: &[u8]) -> bool {
        LegacyStack::send(self, fd, dst, data).is_ok()
    }
    fn recv(&self, fd: u64) -> Vec<u8> {
        LegacyStack::recv(self, fd).unwrap_or_default()
    }
    fn pump(&self) {
        LegacyStack::pump(self).unwrap();
    }
    fn tick(&self) {
        LegacyStack::tick(self)
    }
    fn conn_failed(&self, fd: u64) -> bool {
        LegacyStack::conn_failed(self, fd).unwrap_or(false)
    }
    fn retransmits(&self, fd: u64) -> u64 {
        self.tcp_counters(fd).map(|c| c.retransmits).unwrap_or(0)
    }
    fn reap(&self) -> usize {
        self.reap_closed()
    }
}

impl SoakStack for ModularStack {
    fn tcp_socket(&self, port: u16) -> u64 {
        self.socket("tcp", port).unwrap()
    }
    fn listen(&self, fd: u64) {
        ModularStack::listen(self, fd).unwrap()
    }
    fn accept(&self, fd: u64) -> Option<u64> {
        ModularStack::accept(self, fd).unwrap()
    }
    fn connect(&self, fd: u64, port: u16) {
        ModularStack::connect(self, fd, port).unwrap()
    }
    fn try_send(&self, fd: u64, dst: u16, data: &[u8]) -> bool {
        ModularStack::send(self, fd, dst, data).is_ok()
    }
    fn recv(&self, fd: u64) -> Vec<u8> {
        ModularStack::recv(self, fd).unwrap_or_default()
    }
    fn pump(&self) {
        ModularStack::pump(self).unwrap();
    }
    fn tick(&self) {
        ModularStack::tick(self)
    }
    fn conn_failed(&self, fd: u64) -> bool {
        ModularStack::conn_failed(self, fd).unwrap_or(false)
    }
    fn retransmits(&self, fd: u64) -> u64 {
        self.tcp_counters(fd).map(|c| c.retransmits).unwrap_or(0)
    }
    fn reap(&self) -> usize {
        self.reap_closed()
    }
}

/// The soak outcome for one generation: what the checker saw.
struct SoakOutcome {
    complete: bool,
    client_failed: bool,
    server_failed: bool,
    violations: Vec<String>,
    retransmits: u64,
}

/// Drives one client/server pair over the adversarial link until the byte
/// stream completes, a side reports clean failure, or the round budget
/// runs out.
fn soak<C: SoakStack, S: SoakStack>(
    client: &C,
    server: &S,
    clock: &SimClock,
    chunks: &[Vec<u8>],
) -> SoakOutcome {
    let sfd = server.tcp_socket(80);
    server.listen(sfd);
    let cfd = client.tcp_socket(4000);
    client.connect(cfd, 80);

    let mut chk = StreamChecker::new();
    let mut submitted = 0usize;
    let mut complete = false;
    let mut client_failed = false;
    let mut server_failed = false;
    let mut conn: Option<u64> = None;
    for _round in 0..6000 {
        client.pump();
        server.pump();
        if conn.is_none() {
            conn = server.accept(sfd);
        }
        if submitted < chunks.len() && client.try_send(cfd, 80, &chunks[submitted]) {
            chk.on_send(&chunks[submitted]);
            submitted += 1;
        }
        if let Some(c) = conn {
            let got = server.recv(c);
            if !got.is_empty() {
                chk.on_deliver(&got);
            }
        }
        if submitted == chunks.len() && chk.model().is_complete() {
            complete = true;
            break;
        }
        client_failed = client.conn_failed(cfd);
        server_failed = conn.map(|c| server.conn_failed(c)).unwrap_or(false);
        if client_failed || server_failed {
            // Clean failure: the delivered prefix freezes here. Stop
            // pumping — straggler duplicates of pre-failure segments may
            // still be in flight, but no *new* bytes may appear.
            chk.on_connection_failed();
            break;
        }
        clock.advance(DEFAULT_RTO_NS / 2);
        client.tick();
        server.tick();
    }
    let retransmits = client.retransmits(cfd);
    if client_failed {
        assert!(client.reap() >= 1, "failed client PCB must be reapable");
    }
    if server_failed {
        assert!(server.reap() >= 1, "failed server PCB must be reapable");
    }
    SoakOutcome {
        complete,
        client_failed,
        server_failed,
        violations: chk.violations().to_vec(),
        retransmits,
    }
}

fn assert_soak_outcome(out: &SoakOutcome, generation: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        out.violations.is_empty(),
        "{generation}: prefix-delivery violated: {:?}",
        out.violations
    );
    prop_assert!(
        out.complete || out.client_failed || out.server_failed,
        "{generation}: stream neither completed nor failed cleanly \
         (retransmits so far: {})",
        out.retransmits
    );
    Ok(())
}

proptest! {
    // The soak runs two whole stacks per case; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole soak: both socket-layer generations, pumping through a
    /// 20%-drop, duplicating, reordering, corrupting, delaying link, must
    /// deliver the byte stream exactly — or report a clean connection
    /// failure with the delivered prefix frozen. Never garbage, never
    /// silence.
    #[test]
    fn lossy_link_soak_both_generations(
        seed in any::<u64>(),
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..2500), 1..6),
    ) {
        let cfg = FaultConfig::adversarial(DEFAULT_RTO_NS / 4);

        // Generation 0: the legacy (void*-keyed) stack on both ends.
        let clock = Arc::new(SimClock::new());
        let link = Arc::new(FaultyLink::new(cfg, seed, Arc::clone(&clock)));
        let a = LegacyStack::new(LegacyCtx::new(), Side::A, link.clone(), Arc::clone(&clock));
        let b = LegacyStack::new(LegacyCtx::new(), Side::B, link.clone(), Arc::clone(&clock));
        let legacy_out = soak(&a, &b, &clock, &chunks);
        assert_soak_outcome(&legacy_out, "legacy")?;

        // Generation 1: the modular (typed-registry) stack on both ends,
        // over an identically-seeded link — same faults, same verdict.
        let clock = Arc::new(SimClock::new());
        let link = Arc::new(FaultyLink::new(cfg, seed, Arc::clone(&clock)));
        let registry = Arc::new(Registry::new());
        register_families(&registry).unwrap();
        // Lockdep rides along: both ends report into one enabled
        // acquires-after graph, and the soak must finish clean.
        let locks = safer_kernel::ksim::lock::LockRegistry::new();
        let a = ModularStack::with_lockdep(
            Arc::clone(&registry), Side::A, link.clone(), Arc::clone(&clock), Arc::clone(&locks));
        let b = ModularStack::with_lockdep(
            registry, Side::B, link.clone(), Arc::clone(&clock), Arc::clone(&locks));
        let modular_out = soak(&a, &b, &clock, &chunks);
        assert_soak_outcome(&modular_out, "modular")?;
        prop_assert!(
            locks.violations().is_empty(),
            "netstack soak must be lockdep-clean: {:?}",
            locks.violations()
        );

        // The engines are shared, the link is seeded: the two generations
        // must agree on the verdict for the same adversarial schedule.
        prop_assert_eq!(
            (legacy_out.complete, legacy_out.client_failed, legacy_out.server_failed),
            (modular_out.complete, modular_out.client_failed, modular_out.server_failed),
            "generations diverged on the same fault schedule"
        );
    }
}

/// Deterministic full-lifecycle check at the PCB level: handshake, data,
/// FIN/ACK teardown in both directions, TIME_WAIT expiry — both ends reach
/// `Closed` with nothing left in flight.
#[test]
fn full_lifecycle_reaches_closed_on_both_ends() {
    use safer_kernel::netstack::tcp::TIME_WAIT_NS;

    let wire = Arc::new(Wire::new());
    let mut a = TcpPcb::new(1000, 100);
    let mut listener = TcpListener::new(80, 8, 9000);
    let mut b: Option<TcpPcb> = None;
    wire.send(Side::A, &a.connect(80, 0));
    let mut now = 0u64;
    let mut b_done = false;
    for round in 0..60 {
        now += DEFAULT_RTO_NS / 4;
        while let Ok(Some(pkt)) = wire.recv(Side::B) {
            let responses = match b.as_mut() {
                Some(pcb) => pcb.on_packet(&pkt, now),
                None => listener.on_packet(&pkt, now),
            };
            for r in responses {
                wire.send(Side::B, &r);
            }
        }
        if b.is_none() {
            b = listener.accept();
        }
        while let Ok(Some(pkt)) = wire.recv(Side::A) {
            for r in a.on_packet(&pkt, now) {
                wire.send(Side::A, &r);
            }
        }
        if round == 2 {
            assert_eq!(a.state, TcpState::Established);
            for p in a.send(b"final words", now) {
                wire.send(Side::A, &p);
            }
        }
        if let Some(pcb) = b.as_mut() {
            if round == 6 {
                assert_eq!(pcb.take_received(), b"final words");
                // Active close from A; B responds, then closes its half.
                for fin in a.close(now) {
                    wire.send(Side::A, &fin);
                }
            }
            if !b_done && pcb.state == TcpState::CloseWait {
                for fin in pcb.close(now) {
                    wire.send(Side::B, &fin);
                }
                b_done = true;
            }
        }
        for p in a.tick(now) {
            wire.send(Side::A, &p);
        }
        let server_ticks = match b.as_mut() {
            Some(pcb) => pcb.tick(now),
            None => listener.tick(now),
        };
        for p in server_ticks {
            wire.send(Side::B, &p);
        }
        if a.state == TcpState::TimeWait && b.as_ref().is_some_and(|p| p.state == TcpState::Closed)
        {
            break;
        }
    }
    let b = b.expect("handshake completed");
    assert_eq!(b.state, TcpState::Closed, "passive closer fully closed");
    assert_eq!(a.state, TcpState::TimeWait, "active closer lingers");
    assert!(
        !a.is_failed() && !b.is_failed(),
        "orderly teardown, no failure"
    );
    // TIME_WAIT expires on the clock, not on traffic.
    now += TIME_WAIT_NS;
    assert!(a.tick(now).is_empty());
    assert_eq!(a.state, TcpState::Closed);
    assert!(a.is_defunct(), "expired PCB is reapable");
    assert_eq!(wire.in_flight(), 0, "no retransmission storm after close");
}

// ---------------------------------------------------------------------------
// Per-connection isolation under the sharded connection table.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One adversarial peer on the listener — corrupting its flow,
    /// RST-blasting it with arbitrary sequence numbers, or SYN-flooding
    /// the listen port from unbound ports — must not wedge, slow, or
    /// corrupt its neighbors: every well-behaved connection on the same
    /// listener still delivers its exact byte stream, and the whole run
    /// stays lockdep-clean.
    #[test]
    fn adversarial_peer_cannot_wedge_neighbors(
        mode in 0u8..3,
        adv_seqs in prop::collection::vec(any::<u32>(), 4..12),
    ) {
        let clock = Arc::new(SimClock::new());
        let wire = Arc::new(Wire::new());
        let registry = Arc::new(Registry::new());
        register_families(&registry).unwrap();
        let locks = safer_kernel::ksim::lock::LockRegistry::new();
        let a = ModularStack::with_lockdep(
            Arc::clone(&registry), Side::A, wire.clone(), Arc::clone(&clock),
            Arc::clone(&locks));
        let b = ModularStack::with_lockdep(
            registry, Side::B, wire.clone(), Arc::clone(&clock),
            Arc::clone(&locks));
        let server = b.socket("tcp", 80).unwrap();
        b.listen(server).unwrap();

        // Four well-behaved neighbors, each with a distinct byte pattern,
        // plus the adversary's own (initially legitimate) connection.
        let neighbors: Vec<(u64, u16, Vec<u8>)> = (0..4u16)
            .map(|i| {
                let port = 6000 + i;
                let fd = a.socket("tcp", port).unwrap();
                a.connect(fd, 80).unwrap();
                (fd, port, vec![0x10 + i as u8; 3000])
            })
            .collect();
        let adv = a.socket("tcp", 6666).unwrap();
        a.connect(adv, 80).unwrap();

        let mut submitted = vec![false; neighbors.len()];
        let mut conns: Vec<u64> = Vec::new();
        let mut received: std::collections::BTreeMap<u64, Vec<u8>> =
            std::collections::BTreeMap::new();
        for round in 0..60usize {
            a.pump().unwrap();
            b.pump().unwrap();
            while let Some(c) = b.accept(server).unwrap() {
                conns.push(c);
            }
            // The adversary misbehaves mid-transfer.
            if round == 3 {
                for (i, &seq) in adv_seqs.iter().enumerate() {
                    let mut pkt = Packet::new(proto::TCP, 6666, 80);
                    pkt.seq = seq;
                    match mode {
                        0 => {
                            // Corrupting: garbage segments on its own flow.
                            pkt.flags = flags::ACK;
                            pkt.payload = vec![0xFF; 50];
                        }
                        1 => {
                            // RST blast with arbitrary sequence numbers.
                            pkt.flags = flags::RST;
                        }
                        _ => {
                            // SYN flood from unbound ports: half-open
                            // children that never complete.
                            pkt.flags = flags::SYN;
                            pkt.src_port = 40000 + i as u16;
                        }
                    }
                    wire.send(Side::A, &pkt);
                }
            }
            for (i, (fd, _, payload)) in neighbors.iter().enumerate() {
                if !submitted[i] && a.send(*fd, 80, payload).is_ok() {
                    submitted[i] = true;
                }
            }
            for &c in &conns {
                if let Ok(got) = b.recv(c) {
                    received.entry(c).or_default().extend(got);
                }
            }
            let done = neighbors.iter().all(|(_, _, payload)| {
                received
                    .values()
                    .any(|v| v.len() == payload.len() && v[0] == payload[0])
            });
            if done && submitted.iter().all(|&s| s) {
                break;
            }
            clock.advance(DEFAULT_RTO_NS / 2);
            a.tick();
            b.tick();
        }

        // Every neighbor's stream arrived exactly: right length, right
        // bytes, on its own connection — the adversary corrupted nothing.
        for (fd, port, payload) in &neighbors {
            prop_assert!(
                !a.conn_failed(*fd).unwrap(),
                "neighbor on port {port} was wedged (mode {mode})"
            );
            let matching: Vec<&Vec<u8>> = received
                .values()
                .filter(|v| !v.is_empty() && v[0] == payload[0])
                .collect();
            prop_assert_eq!(
                matching.len(), 1,
                "exactly one server conn carries port {}'s pattern", port
            );
            prop_assert_eq!(
                matching[0], payload,
                "port {}'s stream delivered byte-exact", port
            );
        }
        prop_assert!(
            locks.violations().is_empty(),
            "isolation run must stay lockdep-clean: {:?}",
            locks.violations()
        );
    }
}
