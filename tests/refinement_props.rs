//! Property-based refinement: arbitrary operation sequences on both file
//! system generations must refine the abstract model.
//!
//! For every randomly generated op sequence, the test mirrors each VFS
//! call on the pure [`FsModel`]: success/failure must agree, and whenever
//! an operation succeeds the file system's abstraction must equal the
//! model — the paper's "each operation performed by the implementation is
//! a valid relation between the before- and after- model interpretations",
//! checked wholesale.

use std::sync::Arc;

use proptest::prelude::*;
use safer_kernel::core::modularity::Registry;
use safer_kernel::core::spec::Refines;
use safer_kernel::fs_legacy::{cext4_ops, BugKnobs, Cext4};
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, RamDisk};
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::vfs::modular::FileSystem;
use safer_kernel::vfs::path::{Vfs, FS_INTERFACE};
use safer_kernel::vfs::shim::LegacyFsAdapter;
use safer_kernel::vfs::spec::FsModel;

#[derive(Debug, Clone)]
enum Op {
    Create(String),
    Mkdir(String),
    Unlink(String),
    Rmdir(String),
    Write(String, u64, Vec<u8>),
    Truncate(String, u64),
    Rename(String, String),
    ReadCheck(String),
}

/// A small universe of paths, one and two levels deep, so collisions and
/// interesting errors are frequent.
fn path_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        prop::sample::select(vec!["/a", "/b", "/c", "/d"]).prop_map(String::from),
        prop::sample::select(vec!["/a/x", "/a/y", "/b/x", "/c/z"]).prop_map(String::from),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        path_strategy().prop_map(Op::Create),
        path_strategy().prop_map(Op::Mkdir),
        path_strategy().prop_map(Op::Unlink),
        path_strategy().prop_map(Op::Rmdir),
        (
            path_strategy(),
            0u64..5000,
            prop::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(p, o, d)| Op::Write(p, o, d)),
        (path_strategy(), 0u64..9000).prop_map(|(p, s)| Op::Truncate(p, s)),
        (path_strategy(), path_strategy()).prop_map(|(a, b)| Op::Rename(a, b)),
        path_strategy().prop_map(Op::ReadCheck),
    ]
}

/// Applies one op to both the VFS and the model, checking agreement.
fn apply(vfs: &Vfs, model: FsModel, op: &Op, label: &str) -> FsModel {
    use safer_kernel::vfs::spec::normalize;
    match op {
        Op::Create(p) => {
            let path = normalize(p).unwrap();
            let sys = vfs.create(p);
            let spec = model.create(&path);
            assert_eq!(
                sys.is_ok(),
                spec.is_ok(),
                "{label}: create {p}: {sys:?} vs {spec:?}"
            );
            spec.unwrap_or(model)
        }
        Op::Mkdir(p) => {
            let path = normalize(p).unwrap();
            let sys = vfs.mkdir(p);
            let spec = model.mkdir(&path);
            assert_eq!(sys.is_ok(), spec.is_ok(), "{label}: mkdir {p}");
            spec.unwrap_or(model)
        }
        Op::Unlink(p) => {
            let path = normalize(p).unwrap();
            let sys = vfs.unlink(p);
            let spec = model.unlink(&path);
            assert_eq!(sys.is_ok(), spec.is_ok(), "{label}: unlink {p}");
            spec.unwrap_or(model)
        }
        Op::Rmdir(p) => {
            let path = normalize(p).unwrap();
            let sys = vfs.rmdir(p);
            let spec = model.rmdir(&path);
            assert_eq!(sys.is_ok(), spec.is_ok(), "{label}: rmdir {p}");
            spec.unwrap_or(model)
        }
        Op::Write(p, off, data) => {
            let path = normalize(p).unwrap();
            let sys = vfs.write_file(p, *off, data);
            let spec = model.write(&path, *off, data);
            assert_eq!(sys.is_ok(), spec.is_ok(), "{label}: write {p}@{off}");
            spec.unwrap_or(model)
        }
        Op::Truncate(p, size) => {
            let sys = vfs.truncate(p, *size);
            let path = normalize(p).unwrap();
            let spec = model.truncate(&path, *size);
            assert_eq!(sys.is_ok(), spec.is_ok(), "{label}: truncate {p}");
            spec.unwrap_or(model)
        }
        Op::Rename(a, b) => {
            let pa = normalize(a).unwrap();
            let pb = normalize(b).unwrap();
            let sys = vfs.rename(a, b);
            let spec = model.rename(&pa, &pb);
            assert_eq!(
                sys.is_ok(),
                spec.is_ok(),
                "{label}: rename {a} -> {b}: {sys:?} vs {spec:?}"
            );
            spec.unwrap_or(model)
        }
        Op::ReadCheck(p) => {
            let path = normalize(p).unwrap();
            let sys = vfs.read_file(p);
            let spec = model.read(&path, 0, usize::MAX / 2);
            assert_eq!(sys.is_ok(), spec.is_ok(), "{label}: read {p}");
            if let (Ok(got), Ok(want)) = (&sys, &spec) {
                assert_eq!(got, want, "{label}: read {p} content");
            }
            model
        }
    }
}

fn mount_rsfs() -> Vfs {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
    Rsfs::mkfs(&dev, 256, 64).unwrap();
    let fs = Rsfs::mount(dev, JournalMode::PerOp).unwrap();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "rsfs", Arc::new(fs) as Arc<dyn FileSystem>)
        .unwrap();
    Vfs::mount(&registry).unwrap()
}

fn mount_cext4() -> Vfs {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
    Cext4::mkfs(&dev, 256).unwrap();
    let ctx = LegacyCtx::new();
    let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
    let adapter = LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx);
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(
            FS_INTERFACE,
            "cext4",
            Arc::new(adapter) as Arc<dyn FileSystem>,
        )
        .unwrap();
    Vfs::mount(&registry).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rsfs_refines_the_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let vfs = mount_rsfs();
        let mut model = FsModel::new();
        for op in &ops {
            model = apply(&vfs, model, op, "rsfs");
        }
        model.check_invariant().expect("model invariant");
        prop_assert_eq!(vfs.abstraction(), model);
    }

    #[test]
    fn cext4_refines_the_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let vfs = mount_cext4();
        let mut model = FsModel::new();
        for op in &ops {
            model = apply(&vfs, model, op, "cext4");
        }
        prop_assert_eq!(vfs.abstraction(), model);
    }

    #[test]
    fn both_generations_agree_with_each_other(
        ops in prop::collection::vec(op_strategy(), 1..30)
    ) {
        let safe = mount_rsfs();
        let legacy = mount_cext4();
        let mut m1 = FsModel::new();
        let mut m2 = FsModel::new();
        for op in &ops {
            m1 = apply(&safe, m1, op, "rsfs");
            m2 = apply(&legacy, m2, op, "cext4");
        }
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(safe.abstraction(), legacy.abstraction());
    }
}
