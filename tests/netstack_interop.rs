//! Integration: the two socket-layer generations interoperate on the wire.
//!
//! The roadmap replaces modules *one side at a time*: during migration a
//! legacy stack on one host talks to a modular stack on another. Both
//! speak the same wire format and the same TCP engine, so sessions must
//! work in both directions — including under loss.

use std::sync::Arc;

use safer_kernel::core::modularity::Registry;
use safer_kernel::ksim::time::SimClock;
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::netstack::legacy_stack::LegacyStack;
use safer_kernel::netstack::modular_stack::{register_families, ModularStack};
use safer_kernel::netstack::packet::proto;
use safer_kernel::netstack::tcp::DEFAULT_RTO_NS;
use safer_kernel::netstack::wire::{Link, Side, Wire, WireFaults};

fn modular(side: Side, wire: Arc<dyn Link>, clock: Arc<SimClock>) -> ModularStack {
    let registry = Arc::new(Registry::new());
    register_families(&registry).unwrap();
    ModularStack::new(registry, side, wire, clock)
}

#[test]
fn legacy_client_talks_to_modular_server() {
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let client_stack =
        LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
    let server_stack = modular(Side::B, wire.clone(), Arc::clone(&clock));

    let server = server_stack.socket("tcp", 80).unwrap();
    server_stack.listen(server).unwrap();
    let client = client_stack.socket(proto::TCP, 5555).unwrap();
    client_stack.connect(client, 80).unwrap();
    for _ in 0..6 {
        client_stack.pump().unwrap();
        server_stack.pump().unwrap();
    }
    let conn = server_stack
        .accept(server)
        .unwrap()
        .expect("handshake completed, child queued");
    client_stack.send(client, 80, b"GET /").unwrap();
    for _ in 0..4 {
        client_stack.pump().unwrap();
        server_stack.pump().unwrap();
    }
    assert_eq!(server_stack.recv(conn).unwrap(), b"GET /");
    server_stack.send(conn, 5555, b"200 OK").unwrap();
    for _ in 0..4 {
        client_stack.pump().unwrap();
        server_stack.pump().unwrap();
    }
    assert_eq!(client_stack.recv(client).unwrap(), b"200 OK");
}

#[test]
fn modular_client_talks_to_legacy_server() {
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let client_stack = modular(Side::A, wire.clone(), Arc::clone(&clock));
    let server_stack =
        LegacyStack::new(LegacyCtx::new(), Side::B, wire.clone(), Arc::clone(&clock));

    let server = server_stack.socket(proto::TCP, 80).unwrap();
    server_stack.listen(server).unwrap();
    let client = client_stack.socket("tcp", 7777).unwrap();
    client_stack.connect(client, 80).unwrap();
    for _ in 0..6 {
        client_stack.pump().unwrap();
        server_stack.pump().unwrap();
    }
    let conn = server_stack
        .accept(server)
        .unwrap()
        .expect("handshake completed, child queued");
    client_stack.send(client, 80, b"ping").unwrap();
    for _ in 0..4 {
        client_stack.pump().unwrap();
        server_stack.pump().unwrap();
    }
    assert_eq!(server_stack.recv(conn).unwrap(), b"ping");
}

#[test]
fn cross_generation_session_survives_loss() {
    let wire = Arc::new(Wire::with_faults(
        WireFaults {
            loss: 0.25,
            duplicate: 0.05,
        },
        99,
    ));
    let clock = Arc::new(SimClock::new());
    let a = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
    let b = modular(Side::B, wire.clone(), Arc::clone(&clock));

    let server = b.socket("tcp", 80).unwrap();
    b.listen(server).unwrap();
    let client = a.socket(proto::TCP, 2000).unwrap();
    a.connect(client, 80).unwrap();

    let payload = vec![0xABu8; 6000];
    let mut sent = false;
    let mut conn = None;
    let mut got = Vec::new();
    for round in 0..300 {
        a.pump().unwrap();
        b.pump().unwrap();
        if conn.is_none() {
            conn = b.accept(server).unwrap();
        }
        if !sent {
            // The legacy send path returns ENOTCONN until established.
            if a.send(client, 80, &payload).is_ok() {
                sent = true;
            }
        }
        if let Some(c) = conn {
            got.extend(b.recv(c).unwrap());
        }
        if got.len() >= payload.len() {
            break;
        }
        clock.advance(DEFAULT_RTO_NS / 2);
        a.tick();
        b.tick();
        assert!(round < 299, "session never completed under loss");
    }
    assert_eq!(got, payload, "retransmission healed the lossy link");
}

#[test]
fn connection_teardown_across_generations() {
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let a = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
    let b = modular(Side::B, wire.clone(), Arc::clone(&clock));
    let server = b.socket("tcp", 80).unwrap();
    b.listen(server).unwrap();
    let client = a.socket(proto::TCP, 3100).unwrap();
    a.connect(client, 80).unwrap();
    for _ in 0..6 {
        a.pump().unwrap();
        b.pump().unwrap();
    }
    let conn = b.accept(server).unwrap().expect("child accepted");
    a.send(client, 80, b"bye soon").unwrap();
    for _ in 0..4 {
        a.pump().unwrap();
        b.pump().unwrap();
    }
    assert_eq!(b.recv(conn).unwrap(), b"bye soon");
    // Active close on the legacy side; the modular side ACKs and closes.
    a.close(client).unwrap();
    for _ in 0..4 {
        a.pump().unwrap();
        b.pump().unwrap();
    }
    b.close(conn).unwrap();
    b.close(server).unwrap();
    for _ in 0..4 {
        a.pump().unwrap();
        b.pump().unwrap();
    }
    // All descriptors gone; further use is EBADF.
    assert!(a.recv(client).is_err());
    assert!(b.recv(conn).is_err());
    assert!(b.recv(server).is_err());
    // Wire drains to empty — no retransmission storm after teardown.
    for _ in 0..4 {
        a.pump().unwrap();
        b.pump().unwrap();
        a.tick();
        b.tick();
    }
    assert_eq!(wire.in_flight(), 0);
}

#[test]
fn udp_crosses_generations() {
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let a = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
    let b = modular(Side::B, wire.clone(), Arc::clone(&clock));
    let sa = a.socket(proto::UDP, 100).unwrap();
    let sb = b.socket("udp", 200).unwrap();
    a.send(sa, 200, b"legacy->modular").unwrap();
    b.pump().unwrap();
    assert_eq!(b.recv(sb).unwrap(), b"legacy->modular");
    b.send(sb, 100, b"modular->legacy").unwrap();
    a.pump().unwrap();
    assert_eq!(a.recv(sa).unwrap(), b"modular->legacy");
}

#[test]
fn the_coupling_bug_vanishes_on_the_migrated_side_only() {
    // One wire, one legacy side, one modular side. Generic-poll on a UDP
    // socket: type confusion on the legacy side, a correct answer on the
    // modular side — the per-module payoff of §3's incremental migration.
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let legacy = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
    let modular_side = modular(Side::B, wire.clone(), Arc::clone(&clock));

    let lu = legacy.socket(proto::UDP, 300).unwrap();
    let mu = modular_side.socket("udp", 400).unwrap();

    assert!(!(legacy.poll(lu).unwrap()));
    assert_eq!(
        legacy
            .ctx()
            .ledger
            .count(safer_kernel::legacy::BugClass::TypeConfusion),
        1,
        "legacy generic poll mis-cast the UDP pcb"
    );
    assert!(!(modular_side.poll(mu).unwrap()));
    // No ledger on the modular side — nothing to mis-cast.
}

#[test]
fn retry_exhaustion_is_reported_and_reaped_in_both_generations() {
    use safer_kernel::netstack::fault::{FaultConfig, FaultyLink};
    use safer_kernel::netstack::tcp::MAX_RETRIES;

    // A link that eats everything: the SYN can never get through, so the
    // client burns its whole retry budget and must report a clean failure
    // instead of retransmitting forever.
    let blackhole = FaultConfig {
        drop: 1.0,
        ..FaultConfig::default()
    };

    // Generation 0: legacy stack.
    let clock = Arc::new(SimClock::new());
    let link = Arc::new(FaultyLink::new(blackhole, 1, Arc::clone(&clock)));
    let a = LegacyStack::new(LegacyCtx::new(), Side::A, link.clone(), Arc::clone(&clock));
    let client = a.socket(proto::TCP, 2000).unwrap();
    a.connect(client, 80).unwrap();
    for _ in 0..(MAX_RETRIES + 2) {
        // Cover the widest backoff step so every tick is a real timeout.
        clock.advance(DEFAULT_RTO_NS << 7);
        a.tick();
        a.pump().unwrap();
    }
    assert!(
        a.conn_failed(client).unwrap(),
        "legacy client reports failure"
    );
    let c = a.tcp_counters(client).unwrap();
    assert_eq!(c.retransmits as u32, MAX_RETRIES, "budget fully spent");
    assert_eq!(a.reap_closed(), 1, "failed legacy PCB reaped");
    assert!(a.conn_failed(client).is_err(), "fd gone after reaping");

    // Generation 1: modular stack, same schedule, same verdict.
    let clock = Arc::new(SimClock::new());
    let link = Arc::new(FaultyLink::new(blackhole, 1, Arc::clone(&clock)));
    let b = modular(Side::B, link.clone(), Arc::clone(&clock));
    let client = b.socket("tcp", 2000).unwrap();
    b.connect(client, 80).unwrap();
    for _ in 0..(MAX_RETRIES + 2) {
        clock.advance(DEFAULT_RTO_NS << 7);
        b.tick();
        b.pump().unwrap();
    }
    assert!(
        b.conn_failed(client).unwrap(),
        "modular client reports failure"
    );
    let c = b.tcp_counters(client).unwrap();
    assert_eq!(c.retransmits as u32, MAX_RETRIES, "budget fully spent");
    assert_eq!(b.reap_closed(), 1, "failed modular PCB reaped");
    assert!(b.conn_failed(client).is_err(), "fd gone after reaping");
}

#[test]
fn syn_to_a_dead_port_draws_rst_in_both_directions() {
    // Satellite regression: unmatched TCP segments used to be silently
    // swallowed. A SYN to a port nobody listens on must come back as an
    // RST — from either generation — and the client must observe a clean
    // connection failure instead of burning its whole retry budget.
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let a = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
    let b = modular(Side::B, wire.clone(), Arc::clone(&clock));

    // Modular client -> dead port on the legacy server.
    let mc = b.socket("tcp", 9100).unwrap();
    b.connect(mc, 4242).unwrap();
    for _ in 0..4 {
        b.pump().unwrap();
        a.pump().unwrap();
    }
    assert_eq!(a.demux_resets(), 1, "legacy demux sent exactly one RST");
    assert!(
        b.conn_failed(mc).unwrap(),
        "modular client saw the RST and failed cleanly"
    );

    // Legacy client -> dead port on the modular server.
    let lc = a.socket(proto::TCP, 9200).unwrap();
    a.connect(lc, 4343).unwrap();
    for _ in 0..4 {
        a.pump().unwrap();
        b.pump().unwrap();
    }
    assert_eq!(b.demux_resets(), 1, "modular demux sent exactly one RST");
    assert!(
        a.conn_failed(lc).unwrap(),
        "legacy client saw the RST and failed cleanly"
    );
}

#[test]
fn orderly_close_survives_loss_across_generations() {
    use safer_kernel::netstack::fault::{FaultConfig, FaultyLink};
    use safer_kernel::netstack::tcp::TcpState;

    // Satellite regression: the old close path dropped the PCB the moment
    // the app hung up, so a lost FIN-ACK left the peer retransmitting at
    // a ghost. Under 25% loss the full FIN/ACK exchange must still land,
    // with a legacy closer on one side and a modular closer on the other.
    let cfg = FaultConfig {
        drop: 0.25,
        ..FaultConfig::default()
    };
    let clock = Arc::new(SimClock::new());
    let link = Arc::new(FaultyLink::new(cfg, 11, Arc::clone(&clock)));
    let a = LegacyStack::new(LegacyCtx::new(), Side::A, link.clone(), Arc::clone(&clock));
    let b = modular(Side::B, link.clone(), Arc::clone(&clock));

    let server = b.socket("tcp", 80).unwrap();
    b.listen(server).unwrap();
    let client = a.socket(proto::TCP, 3300).unwrap();
    a.connect(client, 80).unwrap();

    let mut conn = None;
    let mut closed = false;
    for _ in 0..400 {
        a.pump().unwrap();
        b.pump().unwrap();
        if conn.is_none() {
            conn = b.accept(server).unwrap();
        }
        if let (false, Some(c)) = (closed, conn) {
            if a.tcp_state(client).unwrap() == TcpState::Established {
                a.close(client).unwrap();
                b.close(c).unwrap();
                closed = true;
            }
        }
        clock.advance(DEFAULT_RTO_NS / 2);
        a.tick();
        b.tick();
        a.reap_closed();
        b.reap_closed();
        // Teardown is complete when every connection PCB is reaped: the
        // legacy arena is empty and only the listener survives modular-side.
        if closed && a.live_objects() == 0 && b.live_sockets() == 1 {
            break;
        }
    }
    assert!(closed, "session never established under loss");
    assert_eq!(
        a.live_objects(),
        0,
        "legacy closer reaped its PCB after the full FIN handshake"
    );
    assert_eq!(
        b.live_sockets(),
        1,
        "modular side kept only the listener after teardown"
    );
    assert!(
        a.conn_failed(client).is_err() && b.conn_failed(conn.unwrap()).is_err(),
        "both descriptors are gone"
    );
    assert!(link.stats().dropped > 0, "the link really was lossy");
}

#[test]
fn per_connection_counters_surface_in_both_generations() {
    use safer_kernel::netstack::fault::{FaultConfig, FaultyLink};

    // A moderately lossy adversarial link: the session completes, and the
    // work it took shows up in the per-connection counters on both sides.
    let cfg = FaultConfig {
        drop: 0.25,
        duplicate: 0.15,
        reorder: 0.20,
        ..FaultConfig::default()
    };
    let clock = Arc::new(SimClock::new());
    let link = Arc::new(FaultyLink::new(cfg, 7, Arc::clone(&clock)));
    let a = LegacyStack::new(LegacyCtx::new(), Side::A, link.clone(), Arc::clone(&clock));
    let b = modular(Side::B, link.clone(), Arc::clone(&clock));

    let server = b.socket("tcp", 80).unwrap();
    b.listen(server).unwrap();
    let client = a.socket(proto::TCP, 2100).unwrap();
    a.connect(client, 80).unwrap();

    let payload = vec![0x5Au8; 8000];
    let mut sent = false;
    let mut conn = None;
    let mut got = Vec::new();
    for round in 0..400 {
        a.pump().unwrap();
        b.pump().unwrap();
        if conn.is_none() {
            conn = b.accept(server).unwrap();
        }
        if !sent && a.send(client, 80, &payload).is_ok() {
            sent = true;
        }
        if let Some(c) = conn {
            got.extend(b.recv(c).unwrap());
        }
        if got.len() >= payload.len() {
            break;
        }
        clock.advance(DEFAULT_RTO_NS / 2);
        a.tick();
        b.tick();
        assert!(round < 399, "session never completed under loss");
    }
    assert_eq!(got, payload);
    let ca = a.tcp_counters(client).unwrap();
    let cb = b.tcp_counters(conn.expect("child accepted")).unwrap();
    assert!(ca.retransmits > 0, "loss forced retransmission: {ca:?}");
    assert!(
        cb.dup_acks_dropped + cb.ooo_buffered + ca.dup_acks_dropped > 0,
        "duplication/reordering left a trace: {ca:?} {cb:?}"
    );
    assert_eq!(
        ca.resets_received + cb.resets_received,
        0,
        "no resets in a clean run"
    );
    assert!(link.stats().dropped > 0, "the link really was lossy");
}
