//! Integration: the VFS layer over both file system generations.
//!
//! The same suite runs against rsfs (mounted directly) and cext4 (mounted
//! through the legacy shim) — the workloads must behave identically, which
//! is the paper's requirement that replacement be behaviour-preserving.

use std::sync::Arc;

use safer_kernel::core::modularity::Registry;
use safer_kernel::fs_legacy::{cext4_ops, BugKnobs, Cext4};
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, RamDisk};
use safer_kernel::ksim::errno::Errno;
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::vfs::inode::FileType;
use safer_kernel::vfs::modular::FileSystem;
use safer_kernel::vfs::path::{Vfs, FS_INTERFACE};
use safer_kernel::vfs::shim::LegacyFsAdapter;

fn mount_rsfs() -> Vfs {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Rsfs::mkfs(&dev, 256, 64).unwrap();
    let fs = Rsfs::mount(dev, JournalMode::PerOp).unwrap();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "rsfs", Arc::new(fs) as Arc<dyn FileSystem>)
        .unwrap();
    Vfs::mount(&registry).unwrap()
}

fn mount_cext4() -> Vfs {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Cext4::mkfs(&dev, 256).unwrap();
    let ctx = LegacyCtx::new();
    let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
    let adapter = LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx);
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(
            FS_INTERFACE,
            "cext4",
            Arc::new(adapter) as Arc<dyn FileSystem>,
        )
        .unwrap();
    Vfs::mount(&registry).unwrap()
}

fn all_mounts() -> Vec<(&'static str, Vfs)> {
    vec![("rsfs", mount_rsfs()), ("cext4", mount_cext4())]
}

#[test]
fn basic_tree_operations_match_across_generations() {
    for (name, vfs) in all_mounts() {
        vfs.mkdir("/dir")
            .unwrap_or_else(|e| panic!("{name}: mkdir {e}"));
        vfs.create("/dir/file").unwrap();
        vfs.write_file("/dir/file", 0, b"payload").unwrap();
        assert_eq!(vfs.read_file("/dir/file").unwrap(), b"payload", "{name}");
        let attr = vfs.stat("/dir/file").unwrap();
        assert_eq!(attr.size, 7, "{name}");
        assert_eq!(attr.ftype, FileType::Regular, "{name}");
        assert_eq!(vfs.stat("/dir").unwrap().ftype, FileType::Directory);
        let names: Vec<String> = vfs
            .readdir("/")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["dir"], "{name}");
    }
}

#[test]
fn error_codes_match_across_generations() {
    for (name, vfs) in all_mounts() {
        assert_eq!(vfs.stat("/missing"), Err(Errno::ENOENT), "{name}");
        vfs.create("/f").unwrap();
        assert_eq!(vfs.create("/f"), Err(Errno::EEXIST), "{name}");
        assert_eq!(vfs.rmdir("/f").unwrap_err(), Errno::ENOTDIR, "{name}");
        vfs.mkdir("/d").unwrap();
        vfs.create("/d/child").unwrap();
        assert_eq!(vfs.rmdir("/d"), Err(Errno::ENOTEMPTY), "{name}");
        assert_eq!(vfs.unlink("/d"), Err(Errno::EISDIR), "{name}");
        assert_eq!(vfs.read_file("/d"), Err(Errno::EISDIR), "{name}");
        assert_eq!(vfs.open("/d"), Err(Errno::EISDIR), "{name}");
    }
}

#[test]
fn fd_api_sequential_io() {
    for (name, vfs) in all_mounts() {
        vfs.create("/log").unwrap();
        let fd = vfs.open("/log").unwrap();
        assert_eq!(vfs.write(fd, b"hello ").unwrap(), 6, "{name}");
        assert_eq!(vfs.write(fd, b"world").unwrap(), 5, "{name}");
        vfs.seek(fd, 0).unwrap();
        let mut buf = [0u8; 16];
        let n = vfs.read(fd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello world", "{name}");
        // Sequential read continues from the cursor.
        let n2 = vfs.read(fd, &mut buf).unwrap();
        assert_eq!(n2, 0, "{name}: EOF");
        vfs.close(fd).unwrap();
        assert_eq!(vfs.read(fd, &mut buf), Err(Errno::EBADF), "{name}");
        assert_eq!(vfs.close(fd), Err(Errno::EBADF), "{name}");
    }
}

#[test]
fn open_flags_enforced() {
    use safer_kernel::vfs::path::OpenFlags;
    for (name, vfs) in all_mounts() {
        vfs.create("/log").unwrap();
        vfs.write_file("/log", 0, b"start:").unwrap();

        // Read-only descriptor refuses writes.
        let ro = vfs.open_with("/log", OpenFlags::RDONLY).unwrap();
        assert_eq!(vfs.write(ro, b"nope"), Err(Errno::EBADF), "{name}");
        let mut buf = [0u8; 6];
        assert_eq!(vfs.read(ro, &mut buf).unwrap(), 6, "{name}");
        vfs.close(ro).unwrap();

        // Append descriptor always writes at EOF, whatever the cursor.
        let ap = vfs.open_with("/log", OpenFlags::APPEND).unwrap();
        vfs.seek(ap, 0).unwrap();
        vfs.write(ap, b"one").unwrap();
        vfs.seek(ap, 1).unwrap();
        vfs.write(ap, b"two").unwrap();
        vfs.close(ap).unwrap();
        assert_eq!(vfs.read_file("/log").unwrap(), b"start:onetwo", "{name}");
    }
}

#[test]
fn deep_paths_resolve_with_dcache() {
    for (name, vfs) in all_mounts() {
        vfs.mkdir("/a").unwrap();
        vfs.mkdir("/a/b").unwrap();
        vfs.mkdir("/a/b/c").unwrap();
        vfs.create("/a/b/c/leaf").unwrap();
        vfs.write_file("/a/b/c/leaf", 0, b"deep").unwrap();
        // Warm the dcache, then resolve again.
        assert_eq!(vfs.read_file("/a/b/c/leaf").unwrap(), b"deep", "{name}");
        let hits_before = vfs.dcache().stats().hits;
        assert_eq!(vfs.read_file("/a/b/c/leaf").unwrap(), b"deep", "{name}");
        assert!(
            vfs.dcache().stats().hits > hits_before,
            "{name}: dcache used"
        );
        // Normalization: dots and double slashes.
        assert_eq!(
            vfs.read_file("//a/./b/c/../c/leaf").unwrap(),
            b"deep",
            "{name}"
        );
    }
}

#[test]
fn unlink_invalidates_dcache() {
    for (name, vfs) in all_mounts() {
        vfs.create("/victim").unwrap();
        vfs.stat("/victim").unwrap(); // cached
        vfs.unlink("/victim").unwrap();
        assert_eq!(vfs.stat("/victim"), Err(Errno::ENOENT), "{name}");
        // Re-creating under the same name must resolve to the new file.
        vfs.create("/victim").unwrap();
        vfs.write_file("/victim", 0, b"new").unwrap();
        assert_eq!(vfs.read_file("/victim").unwrap(), b"new", "{name}");
    }
}

#[test]
fn rename_across_directories() {
    for (name, vfs) in all_mounts() {
        vfs.mkdir("/src").unwrap();
        vfs.mkdir("/dst").unwrap();
        vfs.create("/src/f").unwrap();
        vfs.write_file("/src/f", 0, b"moving").unwrap();
        vfs.rename("/src/f", "/dst/g").unwrap();
        assert_eq!(vfs.stat("/src/f"), Err(Errno::ENOENT), "{name}");
        assert_eq!(vfs.read_file("/dst/g").unwrap(), b"moving", "{name}");
    }
}

#[test]
fn truncate_and_sparse_files() {
    for (name, vfs) in all_mounts() {
        vfs.create("/sparse").unwrap();
        // Write past a hole.
        vfs.write_file("/sparse", 10_000, b"tail").unwrap();
        let data = vfs.read_file("/sparse").unwrap();
        assert_eq!(data.len(), 10_004, "{name}");
        assert!(
            data[..10_000].iter().all(|&b| b == 0),
            "{name}: hole is zeros"
        );
        assert_eq!(&data[10_000..], b"tail", "{name}");
        vfs.truncate("/sparse", 3).unwrap();
        assert_eq!(vfs.stat("/sparse").unwrap().size, 3, "{name}");
    }
}

#[test]
fn statfs_reflects_usage() {
    for (name, vfs) in all_mounts() {
        let before = vfs.statfs().unwrap();
        vfs.create("/hog").unwrap();
        vfs.write_file("/hog", 0, &vec![1u8; 8 * 4096]).unwrap();
        let after = vfs.statfs().unwrap();
        assert!(after.blocks_free < before.blocks_free, "{name}");
        assert_eq!(after.inodes_free, before.inodes_free - 1, "{name}");
        vfs.unlink("/hog").unwrap();
        let freed = vfs.statfs().unwrap();
        assert_eq!(freed.blocks_free, before.blocks_free, "{name}");
        assert_eq!(freed.inodes_free, before.inodes_free, "{name}");
    }
}

#[test]
fn many_files_in_one_directory() {
    for (name, vfs) in all_mounts() {
        for i in 0..100 {
            vfs.create(&format!("/f{i:03}")).unwrap();
        }
        let mut names: Vec<String> = vfs
            .readdir("/")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        names.sort();
        assert_eq!(names.len(), 100, "{name}");
        assert_eq!(names[0], "f000", "{name}");
        assert_eq!(names[99], "f099", "{name}");
        // Delete every other one and re-list.
        for i in (0..100).step_by(2) {
            vfs.unlink(&format!("/f{i:03}")).unwrap();
        }
        assert_eq!(vfs.readdir("/").unwrap().len(), 50, "{name}");
    }
}
