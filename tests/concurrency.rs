//! Integration: shared-memory concurrency (§4.4's "Concurrent Verified
//! Components").
//!
//! The paper notes that layering concurrency on top of a single-threaded
//! verification can be done safely — e.g. "outsourcing a side-effect-free
//! computation by passing a reference to an immutable data structure is a
//! meta-logically safe extension of a sequential verification result."
//! These tests exercise exactly that pattern: many threads hammer the file
//! systems and the stacks; afterwards the *sequentially verified*
//! refinement relation is checked on the quiesced state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use safer_kernel::core::spec::Refines;
use safer_kernel::fs_legacy::{cext4_ops, BugKnobs, Cext4};
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, RamDisk};
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::vfs::modular::{fs_abstraction, FileSystem};
use safer_kernel::vfs::shim::LegacyFsAdapter;
use safer_kernel::vfs::spec::FsModel;

fn concurrent_workload(fs: Arc<dyn FileSystem>, threads: usize, files_per_thread: usize) {
    let mut handles = Vec::new();
    for t in 0..threads {
        let fs = Arc::clone(&fs);
        handles.push(thread::spawn(move || {
            let root = fs.root_ino();
            for i in 0..files_per_thread {
                let name = format!("t{t}f{i}");
                let ino = fs.create(root, &name).expect("create");
                let payload = vec![(t * 16 + i) as u8; 500 + i * 37];
                fs.write(ino, 0, &payload).expect("write");
                let mut buf = vec![0u8; payload.len()];
                let n = fs.read(ino, 0, &mut buf).expect("read");
                assert_eq!(&buf[..n], &payload[..], "t{t} f{i} read-back");
                if i % 3 == 0 {
                    fs.unlink(root, &name).expect("unlink");
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
}

/// The expected quiesced model: every thread's surviving files.
fn expected_model(threads: usize, files_per_thread: usize) -> FsModel {
    let mut model = FsModel::new();
    for t in 0..threads {
        for i in 0..files_per_thread {
            if i % 3 == 0 {
                continue;
            }
            let path = format!("/t{t}f{i}");
            let payload = vec![(t * 16 + i) as u8; 500 + i * 37];
            model = model
                .create(&path)
                .unwrap()
                .write(&path, 0, &payload)
                .unwrap();
        }
    }
    model
}

#[test]
fn rsfs_survives_concurrent_writers_and_still_refines() {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
    Rsfs::mkfs(&dev, 256, 64).unwrap();
    let fs = Arc::new(Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).unwrap());
    concurrent_workload(Arc::clone(&fs) as Arc<dyn FileSystem>, 4, 12);
    assert_eq!(fs.abstraction(), expected_model(4, 12));
    assert!(
        fs.lock_registry().violations().is_empty(),
        "no discipline violations under concurrency"
    );
    // And the on-disk state is structurally sound.
    fs.sync().unwrap();
    let report = safer_kernel::fs_safe::fsck(&*dev).unwrap();
    assert!(report.is_clean(), "{:?}", report.findings);
}

/// The storage-hot-path stress test: eight writers hammer the journaled
/// fs, then every layer's accounting must reconcile — the quiesced state
/// refines the model (no lost updates), per-shard cache stats sum to the
/// aggregate, the journal batched at least as tightly as it committed,
/// and the checkpointed image is fsck-clean.
#[test]
fn rsfs_eight_thread_stress_stats_consistent_no_lost_updates() {
    const THREADS: usize = 8;
    const FILES: usize = 16;
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(16384));
    Rsfs::mkfs(&dev, 512, 128).unwrap();
    let fs = Arc::new(Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).unwrap());
    concurrent_workload(Arc::clone(&fs) as Arc<dyn FileSystem>, THREADS, FILES);

    // No lost updates: the quiesced state is exactly the model.
    assert_eq!(fs.abstraction(), expected_model(THREADS, FILES));
    assert!(fs.lock_registry().violations().is_empty());

    // Stats consistency: shard counters sum to the aggregate snapshot
    // (taken quiesced, so no in-flight increments can skew it).
    let total = fs.cache().stats();
    let per_shard = fs.cache().shard_stats();
    assert!(per_shard.len() > 1, "cache is striped");
    assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), total.hits);
    assert_eq!(
        per_shard.iter().map(|s| s.misses).sum::<u64>(),
        total.misses
    );
    assert_eq!(
        per_shard.iter().map(|s| s.writebacks).sum::<u64>(),
        total.writebacks
    );
    assert_eq!(
        per_shard.iter().map(|s| s.evictions).sum::<u64>(),
        total.evictions
    );
    assert!(total.hits + total.misses > 0);
    assert!(
        fs.cache().validate_all().is_empty(),
        "buffer flags stay legal"
    );

    // Journal accounting: every mutating op committed; group commit never
    // needs more batches than commits; everything journaled got sequenced.
    let js = fs.journal().unwrap().stats();
    let min_ops = (THREADS * FILES * 2) as u64; // create + write, at least
    assert!(js.commits >= min_ops, "commits {} < {min_ops}", js.commits);
    assert!(js.batches <= js.commits);
    assert!(js.blocks_journaled >= js.commits);

    // Quiesce fully and check the on-disk image.
    fs.sync().unwrap();
    assert_eq!(fs.journal().unwrap().pending_checkpoints(), 0);
    let report = safer_kernel::fs_safe::fsck(&*dev).unwrap();
    assert!(report.is_clean(), "{:?}", report.findings);
}

/// Eight threads increment disjoint byte slots of the same shared blocks
/// through a deliberately tiny cache, so hits, misses, evictions and
/// writebacks all interleave. Dirtiness transfers to in-flight IO at
/// snapshot time — if any update were lost the final counts would be
/// short.
#[test]
fn buffer_cache_concurrent_increments_lose_no_updates() {
    const THREADS: usize = 8;
    const INCS: usize = 300;
    const HOT_BLOCKS: u64 = 16;
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(64));
    let cache = Arc::new(safer_kernel::ksim::buffer::BufferCache::with_shards(
        Arc::clone(&dev),
        8, // capacity < working set: constant eviction + writeback churn
        4,
    ));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let cache = Arc::clone(&cache);
        handles.push(thread::spawn(move || {
            for i in 0..INCS {
                let blk = (i as u64 * 3) % HOT_BLOCKS;
                let buf = cache.bread(blk).expect("bread");
                buf.write(|d| d[t] = d[t].wrapping_add(1));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cache.sync_all().unwrap();

    // Replay the visit sequence to get the expected per-block count.
    let mut expected = [0u8; HOT_BLOCKS as usize];
    for i in 0..INCS {
        expected[((i as u64 * 3) % HOT_BLOCKS) as usize] += 1;
    }
    for blk in 0..HOT_BLOCKS {
        let mut out = vec![0u8; 4096];
        dev.read_block(blk, &mut out).unwrap();
        for (t, slot) in out.iter().take(THREADS).enumerate() {
            assert_eq!(
                *slot, expected[blk as usize],
                "block {blk} slot {t}: lost update"
            );
        }
    }
    let s = cache.stats();
    assert!(s.evictions > 0, "the cache actually churned");
    assert!(s.writebacks > 0);
}

#[test]
fn cext4_survives_concurrent_writers_and_still_refines() {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
    Cext4::mkfs(&dev, 256).unwrap();
    let ctx = LegacyCtx::new();
    let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
    let adapter: Arc<dyn FileSystem> =
        Arc::new(LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx.clone()));
    concurrent_workload(Arc::clone(&adapter), 4, 12);
    assert_eq!(fs_abstraction(&*adapter), expected_model(4, 12));
    // The legacy idiom's unlocked i_size updates *are* recorded under
    // concurrency — the §4.3 exposure the safe version doesn't have.
    ctx.import_lock_violations("concurrency-test");
    assert!(
        ctx.ledger.count(safer_kernel::legacy::BugClass::DataRace) > 0,
        "the maybe-protected i_size shows up under load"
    );
}

/// The migration interleaving test: seeded concurrent writers hammer the
/// legacy generation through the VFS, the implementation is hot-swapped to
/// the safe generation, and readers verify every file — with lockdep live
/// on every registry in the system. At the end there must be zero
/// *ordering* findings (inversions, transitive cycles, held-across-I/O,
/// same-class rank breaks) anywhere. The legacy idiom's unlocked-`i_size`
/// accesses are expected and excluded: they are the §4.3 exposure, not an
/// ordering bug.
#[test]
fn hot_swap_under_load_is_ordering_clean_across_generations() {
    use safer_kernel::core::modularity::Registry;
    use safer_kernel::ksim::lock::{LockRegistry, Violation};
    use safer_kernel::vfs::path::{Vfs, FS_INTERFACE};

    fn ordering_findings(reg: &LockRegistry) -> Vec<Violation> {
        reg.violations()
            .into_iter()
            .filter(|v| !matches!(v, Violation::UnlockedFieldAccess { .. }))
            .collect()
    }

    for seed in [3u64, 17, 4242] {
        // Mount the legacy generation behind the VFS, lockdep enabled at
        // every layer: the VFS dcache registry, cext4's context registry,
        // and (after the swap) rsfs's internal registry.
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
        Cext4::mkfs(&dev, 512).unwrap();
        let ctx = LegacyCtx::new();
        let cext4 = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
        let legacy: Arc<dyn FileSystem> = Arc::new(LegacyFsAdapter::new(
            Arc::new(cext4_ops(cext4)),
            ctx.clone(),
        ));
        let registry = Registry::new();
        registry
            .register::<dyn FileSystem>(FS_INTERFACE, "cext4", legacy)
            .unwrap();
        let vfs_locks = LockRegistry::new();
        let vfs = Arc::new(Vfs::mount_with_lockdep(&registry, Arc::clone(&vfs_locks)).unwrap());

        let payload = move |t: u64, i: u64| -> Vec<u8> {
            vec![
                (seed + t * 8 + i) as u8;
                64 + ((seed as usize).wrapping_mul(37) + i as usize * 53) % 300
            ]
        };

        // Phase 1: seeded writers interleave on the legacy generation.
        // Each thread visits its files in a seed-dependent xorshift order,
        // so different seeds exercise different interleavings.
        let mut writers = Vec::new();
        for t in 0..4u64 {
            let vfs = Arc::clone(&vfs);
            writers.push(thread::spawn(move || {
                let mut x = seed ^ (t << 32) | 1;
                let mut left: Vec<u64> = (0..8).collect();
                while !left.is_empty() {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = left.swap_remove((x % left.len() as u64) as usize);
                    let path = format!("/t{t}f{i}");
                    vfs.create(&path).expect("create");
                    vfs.write_file(&path, 0, &payload(t, i)).expect("write");
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }

        // Hot swap: copy the quiesced tree into the safe generation.
        let dev2: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(8192));
        Rsfs::mkfs(&dev2, 512, 64).unwrap();
        let rsfs = Arc::new(Rsfs::mount(dev2, JournalMode::PerOp).unwrap());
        let current = vfs.fs_handle().get();
        let next: Arc<dyn FileSystem> = Arc::clone(&rsfs) as Arc<dyn FileSystem>;
        for entry in current.readdir(current.root_ino()).unwrap() {
            let attr = current.getattr(entry.ino).unwrap();
            let mut data = vec![0u8; attr.size as usize];
            let n = current.read(entry.ino, 0, &mut data).unwrap();
            data.truncate(n);
            let nf = next.create(next.root_ino(), &entry.name).unwrap();
            next.write(nf, 0, &data).unwrap();
        }
        registry
            .replace::<dyn FileSystem>(FS_INTERFACE, "rsfs", next)
            .unwrap();
        vfs.dcache().clear();

        // Phase 2: concurrent readers verify every migrated file on the
        // safe generation (and write a little more to keep locks hot).
        let mut readers = Vec::new();
        for t in 0..4u64 {
            let vfs = Arc::clone(&vfs);
            readers.push(thread::spawn(move || {
                for i in 0..8u64 {
                    let got = vfs.read_file(&format!("/t{t}f{i}")).expect("read");
                    assert_eq!(got, payload(t, i), "t{t}f{i} survived the migration");
                }
                let extra = format!("/t{t}g0");
                vfs.create(&extra).expect("create post-swap");
                vfs.write_file(&extra, 0, &payload(t, 99))
                    .expect("write post-swap");
            }));
        }
        for r in readers {
            r.join().unwrap();
        }

        // Lockdep observed real classes at every layer...
        assert!(vfs_locks.class_count() > 0, "dcache classes registered");
        assert!(
            rsfs.lock_registry().class_count() > 0,
            "rsfs classes registered"
        );
        // ...and none of them produced an ordering finding.
        assert!(
            ordering_findings(&vfs_locks).is_empty(),
            "vfs layer (seed {seed}): {:?}",
            ordering_findings(&vfs_locks)
        );
        assert!(
            ordering_findings(rsfs.lock_registry()).is_empty(),
            "rsfs (seed {seed}): {:?}",
            ordering_findings(rsfs.lock_registry())
        );
        assert!(
            ordering_findings(&ctx.locks).is_empty(),
            "cext4 ctx (seed {seed}): {:?}",
            ordering_findings(&ctx.locks)
        );
    }
}

#[test]
fn concurrent_readers_share_immutable_state() {
    // The paper's "meta-logically safe extension": one writer quiesces,
    // then many readers fan out over shared immutable state.
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Rsfs::mkfs(&dev, 128, 64).unwrap();
    let fs = Arc::new(Rsfs::mount(dev, JournalMode::None).unwrap());
    let root = fs.root_ino();
    let ino = fs.create(root, "shared").unwrap();
    let payload: Vec<u8> = (0..20_000).map(|i| (i % 251) as u8).collect();
    fs.write(ino, 0, &payload).unwrap();

    let total_reads = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let fs = Arc::clone(&fs);
        let payload = payload.clone();
        let total = Arc::clone(&total_reads);
        handles.push(thread::spawn(move || {
            for _ in 0..50 {
                let mut buf = vec![0u8; payload.len()];
                let n = fs.read(ino, 0, &mut buf).expect("read");
                assert_eq!(&buf[..n], &payload[..]);
                total.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(total_reads.load(Ordering::Relaxed), 400);
}

#[test]
fn netstack_sessions_from_multiple_threads() {
    use safer_kernel::core::modularity::Registry;
    use safer_kernel::ksim::time::SimClock;
    use safer_kernel::netstack::modular_stack::{register_families, ModularStack};
    use safer_kernel::netstack::wire::{Side, Wire};

    let registry = Arc::new(Registry::new());
    register_families(&registry).unwrap();
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let a = Arc::new(ModularStack::new(
        Arc::clone(&registry),
        Side::A,
        wire.clone(),
        Arc::clone(&clock),
    ));
    let b = Arc::new(ModularStack::new(registry, Side::B, wire, clock));

    // One listener; the accept queue absorbs all four concurrent
    // handshakes and hands back a per-connection socket for each.
    let server = b.socket("tcp", 80).unwrap();
    b.listen_backlog(server, 8).unwrap();

    // Clients connect and send from worker threads; a pump thread drives
    // both stacks.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let pump = {
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                a.pump().unwrap();
                b.pump().unwrap();
                thread::yield_now();
            }
        })
    };
    let mut workers = Vec::new();
    for t in 0..4u16 {
        let a = Arc::clone(&a);
        workers.push(thread::spawn(move || {
            let c = a.socket("tcp", 4000 + t).unwrap();
            a.connect(c, 80).unwrap();
            // Retry sends until the handshake completes.
            let msg = format!("worker {t}");
            for _ in 0..10_000 {
                if a.send(c, 80, msg.as_bytes()).is_ok() {
                    return;
                }
                thread::yield_now();
            }
            panic!("worker {t} never connected");
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    // Let the last data packets drain, accepting children as they land.
    let mut conns: Vec<u64> = Vec::new();
    for _ in 0..100 {
        a.pump().unwrap();
        b.pump().unwrap();
        while let Some(c) = b.accept(server).unwrap() {
            conns.push(c);
        }
    }
    stop.store(true, Ordering::Relaxed);
    pump.join().unwrap();

    assert_eq!(conns.len(), 4, "every worker's handshake was accepted");
    let mut got: Vec<String> = conns
        .iter()
        .map(|&c| String::from_utf8(b.recv(c).unwrap()).unwrap())
        .collect();
    got.sort();
    assert_eq!(got, vec!["worker 0", "worker 1", "worker 2", "worker 3"]);
}
