//! Property tests on the substrate's core data structures and invariants:
//! the generational arena, the buffer cache, the journal, the dentry
//! cache, the ownership tracker, and the abstract model's algebra.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use safer_kernel::core::ownership::{Access, ContractTracker};
use safer_kernel::fs_safe::journal::{Journal, RecoveryOutcome};
use safer_kernel::ksim::block::{BlockDevice, RamDisk, BLOCK_SIZE};
use safer_kernel::ksim::buffer::BufferCache;
use safer_kernel::ksim::kalloc::{AccessError, Arena, ObjRef};
use safer_kernel::vfs::dcache::Dcache;
use safer_kernel::vfs::spec::FsModel;

// --- arena ------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ArenaOp {
    Insert(u64),
    Free(usize),
    Access(usize),
    DoubleFree(usize),
}

fn arena_ops() -> impl Strategy<Value = Vec<ArenaOp>> {
    prop::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(ArenaOp::Insert),
            (0usize..64).prop_map(ArenaOp::Free),
            (0usize..64).prop_map(ArenaOp::Access),
            (0usize..64).prop_map(ArenaOp::DoubleFree),
        ],
        1..100,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The arena never conflates objects: every live handle reads back the
    /// exact value inserted; every stale handle errors; live accounting is
    /// exact.
    #[test]
    fn arena_is_a_faithful_store(ops in arena_ops()) {
        let arena = Arena::new();
        let mut shadow: Vec<(ObjRef, u64, bool)> = Vec::new(); // (ref, value, live)
        for op in ops {
            match op {
                ArenaOp::Insert(v) => {
                    let r = arena.insert(v);
                    shadow.push((r, v, true));
                }
                ArenaOp::Free(i) | ArenaOp::DoubleFree(i) => {
                    let idx = i % shadow.len().max(1);
                    if let Some(entry) = shadow.get_mut(idx) {
                        let expect_ok = entry.2;
                        let got = arena.free(entry.0);
                        prop_assert_eq!(got.is_ok(), expect_ok);
                        if !expect_ok {
                            prop_assert_eq!(got.unwrap_err(), AccessError::DoubleFree);
                        }
                        entry.2 = false;
                    }
                }
                ArenaOp::Access(i) => {
                    if let Some(&(r, v, live)) = shadow.get(i % shadow.len().max(1)) {
                        let got = arena.with(r, |x: &u64| *x);
                        if live {
                            prop_assert_eq!(got, Ok(v));
                        } else {
                            prop_assert_eq!(got, Err(AccessError::UseAfterFree));
                        }
                    }
                }
            }
            let live = shadow.iter().filter(|e| e.2).count() as u64;
            prop_assert_eq!(arena.live_count(), live);
        }
    }
}

// --- buffer cache -------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever interleaving of reads, writes, syncs, and evictions, the
    /// cache behaves like the device plus a write-back overlay: reading
    /// any block through the cache equals the most recent write to it, and
    /// after sync_all the raw device agrees. Flag invariants hold for
    /// every cached buffer throughout.
    #[test]
    fn buffer_cache_is_coherent(
        ops in prop::collection::vec((0u64..32, any::<u8>(), any::<bool>()), 1..120),
        capacity in 2usize..16,
    ) {
        let dev = Arc::new(RamDisk::new(32));
        let cache = BufferCache::new(Arc::clone(&dev) as Arc<dyn BlockDevice>, capacity);
        let mut shadow: HashMap<u64, u8> = HashMap::new();
        for (blk, value, is_write) in ops {
            if is_write {
                let b = cache.bread(blk).unwrap();
                b.write(|d| d.fill(value));
                shadow.insert(blk, value);
            } else {
                let b = cache.bread(blk).unwrap();
                let got = b.read(|d| d[0]);
                prop_assert_eq!(got, *shadow.get(&blk).unwrap_or(&0));
            }
            prop_assert!(cache.validate_all().is_empty(), "flag invariant broke");
            prop_assert!(cache.len() <= capacity + 1, "capacity respected");
        }
        cache.sync_all().unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        for (blk, value) in shadow {
            dev.read_block(blk, &mut buf).unwrap();
            prop_assert_eq!(buf[0], value, "device diverged after sync");
        }
    }
}

// --- journal -----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For a random transaction and a random crash cut through its write
    /// sequence, recovery always lands the home blocks in either the old
    /// or the new state — the journal's atomicity contract.
    #[test]
    fn journal_transactions_are_atomic_under_any_cut(
        blocks in prop::collection::btree_set(0u64..40, 1..4),
        fills in prop::collection::vec(1u8..=255, 4),
        cut_salt in any::<u64>(),
    ) {
        const JSTART: u64 = 48;
        const JBLOCKS: u64 = 16;
        let ram = Arc::new(RamDisk::new(64));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as Arc<dyn BlockDevice>;
        Journal::format(&dev, JSTART, JBLOCKS).unwrap();
        // Old state.
        for (i, &b) in blocks.iter().enumerate() {
            dev.write_block(b, &vec![fills[i % fills.len()]; BLOCK_SIZE]).unwrap();
        }
        dev.flush().unwrap();
        let old_img = ram.snapshot();

        // Record the write sequence of a commit via a logging device.
        struct Log {
            inner: Arc<RamDisk>,
            writes: parking_lot::Mutex<Vec<(u64, Vec<u8>)>>,
        }
        impl BlockDevice for Log {
            fn num_blocks(&self) -> u64 { self.inner.num_blocks() }
            fn block_size(&self) -> usize { self.inner.block_size() }
            fn read_block(&self, b: u64, buf: &mut [u8]) -> safer_kernel::ksim::errno::KResult<()> {
                self.inner.read_block(b, buf)
            }
            fn write_block(&self, b: u64, buf: &[u8]) -> safer_kernel::ksim::errno::KResult<()> {
                self.writes.lock().push((b, buf.to_vec()));
                self.inner.write_block(b, buf)
            }
            fn flush(&self) -> safer_kernel::ksim::errno::KResult<()> { self.inner.flush() }
            fn stats(&self) -> safer_kernel::ksim::block::DeviceStats { self.inner.stats() }
        }
        let log = Arc::new(Log { inner: Arc::clone(&ram), writes: parking_lot::Mutex::new(Vec::new()) });
        let j = Journal::open(Arc::clone(&log) as Arc<dyn BlockDevice>, JSTART, JBLOCKS).unwrap();
        let txn: Vec<(u64, Vec<u8>)> = blocks
            .iter()
            .map(|&b| (b, vec![0xEEu8; BLOCK_SIZE]))
            .collect();
        j.commit(&txn).unwrap();
        let writes = log.writes.lock().clone();
        prop_assert!(!writes.is_empty());

        // Random cut through the *ordered* write sequence (pessimistic: we
        // treat all writes as flushed in order, which prefix-crashes of a
        // FIFO cache produce).
        let cut = (cut_salt as usize) % (writes.len() + 1);
        let mut img = old_img.clone();
        for (b, data) in &writes[..cut] {
            let off = *b as usize * BLOCK_SIZE;
            img[off..off + BLOCK_SIZE].copy_from_slice(data);
        }
        let scratch = Arc::new(RamDisk::new(64));
        scratch.restore(&img).unwrap();
        let scratch_dyn: Arc<dyn BlockDevice> = scratch;
        let outcome = Journal::recover(&scratch_dyn, JSTART, JBLOCKS).unwrap();
        let outcome_ok = matches!(
            outcome,
            RecoveryOutcome::Clean
                | RecoveryOutcome::Replayed { .. }
                | RecoveryOutcome::DiscardedTorn
        );
        prop_assert!(outcome_ok);
        // Judge: all home blocks old, or all new.
        let mut buf = vec![0u8; BLOCK_SIZE];
        let mut states = Vec::new();
        for (i, &b) in blocks.iter().enumerate() {
            scratch_dyn.read_block(b, &mut buf).unwrap();
            let old = buf[0] == fills[i % fills.len()];
            let new = buf[0] == 0xEE;
            prop_assert!(old || new, "torn block {b}: {}", buf[0]);
            states.push(new);
        }
        prop_assert!(
            states.iter().all(|&s| s) || states.iter().all(|&s| !s),
            "mixed old/new across the transaction: {states:?}"
        );
    }
}

// --- dcache --------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dcache is a transparent memo: against a shadow map, every hit
    /// returns the shadow's value and invalidation removes exactly the
    /// targeted entries.
    #[test]
    fn dcache_is_a_transparent_memo(
        ops in prop::collection::vec((0u64..4, 0u8..4, any::<u16>(), 0u8..3), 1..80),
    ) {
        let cache = Dcache::new(8);
        let mut shadow: HashMap<(u64, String), u64> = HashMap::new();
        for (dir, name_sel, val, kind) in ops {
            let name = format!("n{name_sel}");
            match kind {
                0 => {
                    cache.insert(dir, &name, u64::from(val));
                    shadow.insert((dir, name), u64::from(val));
                }
                1 => {
                    if let Some(got) = cache.get(dir, &name) {
                        prop_assert_eq!(Some(&got), shadow.get(&(dir, name)));
                    }
                    // A miss is always legal (evictions are invisible).
                }
                _ => {
                    cache.invalidate(dir, &name);
                    shadow.remove(&(dir, name.clone()));
                    prop_assert_eq!(cache.get(dir, &name), None);
                }
            }
        }
    }
}

// --- ownership tracker -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random module behaviour against the tracker: a module that follows
    /// the protocol is never flagged; the violation count equals exactly
    /// the number of illegal actions taken.
    #[test]
    fn tracker_counts_exactly_the_violations(
        actions in prop::collection::vec((0u8..6, any::<bool>()), 1..60),
    ) {
        let t = ContractTracker::new();
        let obj = t.register("owner");
        let mut lent_exclusive = false;
        let mut freed = false;
        let mut expected_violations = 0usize;
        for (kind, _salt) in actions {
            match kind {
                0 => {
                    // Owner read: legal iff not exclusively lent and live.
                    let legal = !lent_exclusive && !freed;
                    let ok = t.access(obj, "owner", Access::Read);
                    prop_assert_eq!(ok, legal);
                    if !legal { expected_violations += 1; }
                }
                1 => {
                    let legal = !lent_exclusive && !freed;
                    let ok = t.lend_exclusive(obj, "owner", "callee");
                    prop_assert_eq!(ok, legal);
                    if legal { lent_exclusive = true; } else { expected_violations += 1; }
                }
                2 => {
                    let legal = lent_exclusive;
                    let ok = t.return_exclusive(obj, "callee");
                    prop_assert_eq!(ok, legal);
                    if legal { lent_exclusive = false; } else { expected_violations += 1; }
                }
                3 => {
                    // Callee write: legal only during the loan.
                    let legal = lent_exclusive && !freed;
                    let ok = t.access(obj, "callee", Access::Write);
                    prop_assert_eq!(ok, legal);
                    if !legal { expected_violations += 1; }
                }
                4 => {
                    let legal = !lent_exclusive && !freed;
                    let ok = t.free(obj, "owner");
                    prop_assert_eq!(ok, legal);
                    if legal { freed = true; } else { expected_violations += 1; }
                }
                _ => {
                    // A stranger touching the object is never legal.
                    let ok = t.access(obj, "stranger", Access::Read);
                    prop_assert!(!ok);
                    expected_violations += 1;
                }
            }
        }
        prop_assert_eq!(t.violations().len(), expected_violations);
    }
}

// --- model algebra -----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rename is invertible: renaming A→B then B→A restores the model.
    #[test]
    fn rename_roundtrips(content in prop::collection::vec(any::<u8>(), 0..64)) {
        let m = FsModel::new()
            .mkdir("/d").unwrap()
            .create("/d/f").unwrap()
            .write("/d/f", 0, &content).unwrap();
        let moved = m.rename("/d", "/e").unwrap();
        let back = moved.rename("/e", "/d").unwrap();
        prop_assert_eq!(back, m);
    }

    /// create then unlink is the identity; mkdir then rmdir is the identity.
    #[test]
    fn create_unlink_identity(name in "[a-z]{1,6}") {
        let base = FsModel::new().mkdir("/dir").unwrap();
        let path = format!("/dir/{name}");
        let round = base.create(&path).unwrap().unlink(&path).unwrap();
        prop_assert_eq!(round, base.clone());
        let round = base.mkdir(&path).unwrap().rmdir(&path).unwrap();
        prop_assert_eq!(round, base);
    }

    /// Writes at disjoint offsets commute.
    #[test]
    fn disjoint_writes_commute(
        a in prop::collection::vec(any::<u8>(), 1..16),
        b in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let base = FsModel::new().create("/f").unwrap();
        let off_b = 64 + a.len() as u64;
        let ab = base.write("/f", 0, &a).unwrap().write("/f", off_b, &b).unwrap();
        let ba = base.write("/f", off_b, &b).unwrap().write("/f", 0, &a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// Truncate to the current size is the identity.
    #[test]
    fn truncate_to_size_is_identity(content in prop::collection::vec(any::<u8>(), 0..64)) {
        let m = FsModel::new().create("/f").unwrap().write("/f", 0, &content).unwrap();
        let size = content.len() as u64;
        prop_assert_eq!(m.truncate("/f", size).unwrap(), m);
    }
}
