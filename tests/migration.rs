//! Integration: module-by-module replacement under a live workload — the
//! paper's §3 roadmap as an executable scenario.

use std::sync::Arc;

use safer_kernel::core::modularity::Registry;
use safer_kernel::core::spec::Refines;
use safer_kernel::fs_legacy::{cext4_ops, BugKnobs, Cext4};
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, RamDisk};
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::vfs::inode::FileType;
use safer_kernel::vfs::modular::FileSystem;
use safer_kernel::vfs::path::{Vfs, FS_INTERFACE};
use safer_kernel::vfs::shim::LegacyFsAdapter;

fn make_cext4() -> (Arc<dyn FileSystem>, LegacyCtx) {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Cext4::mkfs(&dev, 256).unwrap();
    let ctx = LegacyCtx::new();
    let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
    (
        Arc::new(LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx.clone())) as Arc<dyn FileSystem>,
        ctx,
    )
}

fn make_rsfs() -> Arc<dyn FileSystem> {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Rsfs::mkfs(&dev, 256, 64).unwrap();
    Arc::new(Rsfs::mount(dev, JournalMode::PerOp).unwrap()) as Arc<dyn FileSystem>
}

fn copy_tree(src: &dyn FileSystem, dst: &dyn FileSystem, sdir: u64, ddir: u64) {
    for entry in src.readdir(sdir).unwrap() {
        let attr = src.getattr(entry.ino).unwrap();
        match attr.ftype {
            FileType::Directory => {
                let nd = dst.mkdir(ddir, &entry.name).unwrap();
                copy_tree(src, dst, entry.ino, nd);
            }
            FileType::Regular => {
                let nf = dst.create(ddir, &entry.name).unwrap();
                let mut data = vec![0u8; attr.size as usize];
                let n = src.read(entry.ino, 0, &mut data).unwrap();
                data.truncate(n);
                dst.write(nf, 0, &data).unwrap();
            }
        }
    }
}

#[test]
fn hot_swap_preserves_the_tree_and_the_workload() {
    let (legacy, _ctx) = make_cext4();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", Arc::clone(&legacy))
        .unwrap();
    let vfs = Vfs::mount(&registry).unwrap();

    // Phase 1 workload.
    vfs.mkdir("/data").unwrap();
    for i in 0..20 {
        vfs.create(&format!("/data/f{i}")).unwrap();
        vfs.write_file(&format!("/data/f{i}"), 0, format!("item {i}").as_bytes())
            .unwrap();
    }
    let before = vfs.abstraction();

    // Migrate and swap.
    let safe = make_rsfs();
    copy_tree(&*legacy, &*safe, legacy.root_ino(), safe.root_ino());
    let old = registry
        .replace::<dyn FileSystem>(FS_INTERFACE, "rsfs", safe)
        .unwrap();
    assert_eq!(old.fs_name(), "cext4");
    vfs.dcache().clear(); // Inode numbers changed beneath the paths.

    // The tree is intact through the same Vfs.
    assert_eq!(vfs.abstraction(), before, "migration preserved the tree");
    assert_eq!(vfs.fs_handle().impl_name(), "rsfs");
    assert_eq!(vfs.fs_handle().swap_count(), 1);

    // Phase 2 workload continues.
    for i in 20..40 {
        vfs.create(&format!("/data/f{i}")).unwrap();
    }
    assert_eq!(vfs.readdir("/data").unwrap().len(), 40);
    assert_eq!(vfs.read_file("/data/f3").unwrap(), b"item 3");
}

#[test]
fn swap_back_and_forth_is_symmetric() {
    let (legacy, _ctx) = make_cext4();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", Arc::clone(&legacy))
        .unwrap();
    let vfs = Vfs::mount(&registry).unwrap();
    vfs.create("/on-legacy").unwrap();

    // Forward migration.
    let safe = make_rsfs();
    copy_tree(&*legacy, &*safe, legacy.root_ino(), safe.root_ino());
    let safe_keep = Arc::clone(&safe);
    registry
        .replace::<dyn FileSystem>(FS_INTERFACE, "rsfs", safe)
        .unwrap();
    vfs.dcache().clear();
    vfs.create("/on-rsfs").unwrap();

    // Backward migration (rollback): copy the new state onto a fresh
    // legacy instance and swap back.
    let (legacy2, _ctx2) = make_cext4();
    copy_tree(
        &*safe_keep,
        &*legacy2,
        safe_keep.root_ino(),
        legacy2.root_ino(),
    );
    registry
        .replace::<dyn FileSystem>(FS_INTERFACE, "cext4", legacy2)
        .unwrap();
    vfs.dcache().clear();

    assert_eq!(vfs.fs_handle().swap_count(), 2);
    assert!(vfs.stat("/on-legacy").is_ok());
    assert!(vfs.stat("/on-rsfs").is_ok());
}

#[test]
fn fsync_is_a_durability_point_in_both_generations() {
    // Generation 0: cext4 behind the shim. fsync must cross the legacy
    // boundary through the ops-table slot, and a missing path must be
    // refused before anything reaches the file system.
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Cext4::mkfs(&dev, 256).unwrap();
    let ctx = LegacyCtx::new();
    let cfs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
    let adapter = Arc::new(LegacyFsAdapter::new(Arc::new(cext4_ops(cfs)), ctx));
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(
            FS_INTERFACE,
            "cext4",
            Arc::clone(&adapter) as Arc<dyn FileSystem>,
        )
        .unwrap();
    let vfs = Vfs::mount(&registry).unwrap();

    vfs.create("/durable").unwrap();
    vfs.write_file("/durable", 0, b"fsync me").unwrap();
    let before = adapter.boundary().stats().crossings();
    vfs.fsync_path("/durable").unwrap();
    assert!(
        adapter.boundary().stats().crossings() > before,
        "fsync crossed the legacy boundary"
    );
    assert!(vfs.fsync_path("/ghost").is_err());

    // Generation 1: rsfs in async-commit mode. The same VFS call must now
    // land on the modular fsync and force the running transaction out.
    let rdev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Rsfs::mkfs(&rdev, 256, 64).unwrap();
    let rsfs = Arc::new(Rsfs::mount(rdev, JournalMode::Async).unwrap());
    copy_tree(&*adapter, &*rsfs, adapter.root_ino(), rsfs.root_ino());
    registry
        .replace::<dyn FileSystem>(
            FS_INTERFACE,
            "rsfs",
            Arc::clone(&rsfs) as Arc<dyn FileSystem>,
        )
        .unwrap();
    vfs.dcache().clear();

    vfs.create("/async-file").unwrap();
    vfs.write_file("/async-file", 0, b"staged then fsynced")
        .unwrap();
    let j = rsfs.journal().unwrap();
    assert!(j.staged_ops() > 0, "async mode stages, it does not commit");
    let batches_before = j.stats().batches;
    vfs.fsync_path("/async-file").unwrap();
    assert!(
        j.stats().batches > batches_before,
        "fsync forced a journal commit"
    );
    assert_eq!(j.staged_ops(), 0, "the running transaction drained");
    assert_eq!(
        vfs.read_file("/async-file").unwrap(),
        b"staged then fsynced"
    );
    assert_eq!(vfs.read_file("/durable").unwrap(), b"fsync me");
}

#[test]
fn concurrent_readers_survive_the_swap() {
    use std::thread;

    let (legacy, _ctx) = make_cext4();
    let registry = Arc::new(Registry::new());
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", Arc::clone(&legacy))
        .unwrap();
    let vfs = Arc::new(Vfs::mount(&registry).unwrap());
    vfs.create("/shared").unwrap();
    vfs.write_file("/shared", 0, b"stable content").unwrap();

    let safe = make_rsfs();
    copy_tree(&*legacy, &*safe, legacy.root_ino(), safe.root_ino());

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let vfs = Arc::clone(&vfs);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let data = vfs.read_file("/shared").expect("read during swap");
                assert_eq!(data, b"stable content");
                reads += 1;
            }
            reads
        }));
    }

    // Swap while the readers hammer the handle. The dcache stays valid by
    // luck of inode numbering in general; for the test we clear it right
    // after the swap (as a real migration tool would).
    std::thread::sleep(std::time::Duration::from_millis(20));
    registry
        .replace::<dyn FileSystem>(FS_INTERFACE, "rsfs", safe)
        .unwrap();
    vfs.dcache().clear();
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers made progress");
    assert_eq!(vfs.fs_handle().impl_name(), "rsfs");
}
