//! Integration: module-by-module replacement under a live workload — the
//! paper's §3 roadmap as an executable scenario.
//!
//! The swaps here go through [`Migrator`], the live-replacement protocol
//! (quiesce → transfer → resume), not a bare registry replace: the tests
//! assert **zero failed operations** across handoffs, not merely "no
//! panic", and pin the two hazards the protocol exists to close — ring
//! SQEs completing against a retired generation, and a crash image
//! sampled right after the switch losing the pre-swap durable prefix.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use safer_kernel::core::modularity::Registry;
use safer_kernel::core::spec::crash::judge_with_floor;
use safer_kernel::core::spec::Refines;
use safer_kernel::fs_legacy::{cext4_ops, BugKnobs, Cext4};
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, CrashDevice, RamDisk};
use safer_kernel::ksim::lock::LockRegistry;
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::vfs::migrate::{copy_tree, MigratePhase, Migrator};
use safer_kernel::vfs::modular::{fs_abstraction, BatchOp, FileSystem};
use safer_kernel::vfs::path::{Vfs, FS_INTERFACE};
use safer_kernel::vfs::ring::{Ring, RingReactor};
use safer_kernel::vfs::shim::LegacyFsAdapter;

fn make_cext4() -> (Arc<dyn FileSystem>, LegacyCtx) {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Cext4::mkfs(&dev, 256).unwrap();
    let ctx = LegacyCtx::new();
    let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
    (
        Arc::new(LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx.clone())) as Arc<dyn FileSystem>,
        ctx,
    )
}

fn make_rsfs() -> Arc<dyn FileSystem> {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Rsfs::mkfs(&dev, 256, 64).unwrap();
    Arc::new(Rsfs::mount(dev, JournalMode::PerOp).unwrap()) as Arc<dyn FileSystem>
}

#[test]
fn hot_swap_preserves_the_tree_and_the_workload() {
    let (legacy, _ctx) = make_cext4();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", Arc::clone(&legacy))
        .unwrap();
    let vfs = Vfs::mount(&registry).unwrap();

    // Phase 1 workload.
    vfs.mkdir("/data").unwrap();
    for i in 0..20 {
        vfs.create(&format!("/data/f{i}")).unwrap();
        vfs.write_file(&format!("/data/f{i}"), 0, format!("item {i}").as_bytes())
            .unwrap();
    }
    let before = vfs.abstraction();

    // Live swap: the migrator quiesces, transfers, and resumes in one
    // protocol — no manual copy, no dcache clear.
    let report = Migrator::new(&vfs, &registry)
        .swap("rsfs", make_rsfs())
        .unwrap();
    assert_eq!(report.copied_files, 20);
    assert_eq!(report.copied_dirs, 1);
    assert!(report.copied_bytes > 0);

    // The tree is intact through the same Vfs.
    assert_eq!(vfs.abstraction(), before, "migration preserved the tree");
    assert_eq!(vfs.fs_handle().impl_name(), "rsfs");
    assert_eq!(vfs.fs_handle().swap_count(), 1);
    assert_eq!(vfs.gate().swaps(), 1);

    // Phase 2 workload continues.
    for i in 20..40 {
        vfs.create(&format!("/data/f{i}")).unwrap();
    }
    assert_eq!(vfs.readdir("/data").unwrap().len(), 40);
    assert_eq!(vfs.read_file("/data/f3").unwrap(), b"item 3");
}

#[test]
fn swap_back_and_forth_is_symmetric() {
    let (legacy, _ctx) = make_cext4();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", Arc::clone(&legacy))
        .unwrap();
    let vfs = Vfs::mount(&registry).unwrap();
    vfs.create("/on-legacy").unwrap();

    // Forward migration.
    Migrator::new(&vfs, &registry)
        .swap("rsfs", make_rsfs())
        .unwrap();
    vfs.create("/on-rsfs").unwrap();

    // Backward migration (rollback): a fresh legacy instance becomes the
    // target; the migrator moves the accumulated state back.
    let (legacy2, _ctx2) = make_cext4();
    Migrator::new(&vfs, &registry)
        .swap("cext4", legacy2)
        .unwrap();

    assert_eq!(vfs.fs_handle().swap_count(), 2);
    assert!(vfs.stat("/on-legacy").is_ok());
    assert!(vfs.stat("/on-rsfs").is_ok());
}

#[test]
fn fsync_is_a_durability_point_in_both_generations() {
    // Generation 0: cext4 behind the shim. fsync must cross the legacy
    // boundary through the ops-table slot, and a missing path must be
    // refused before anything reaches the file system.
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Cext4::mkfs(&dev, 256).unwrap();
    let ctx = LegacyCtx::new();
    let cfs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
    let adapter = Arc::new(LegacyFsAdapter::new(Arc::new(cext4_ops(cfs)), ctx));
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(
            FS_INTERFACE,
            "cext4",
            Arc::clone(&adapter) as Arc<dyn FileSystem>,
        )
        .unwrap();
    let vfs = Vfs::mount(&registry).unwrap();

    vfs.create("/durable").unwrap();
    vfs.write_file("/durable", 0, b"fsync me").unwrap();
    let before = adapter.boundary().stats().crossings();
    vfs.fsync_path("/durable").unwrap();
    assert!(
        adapter.boundary().stats().crossings() > before,
        "fsync crossed the legacy boundary"
    );
    assert!(vfs.fsync_path("/ghost").is_err());

    // Generation 1: rsfs in async-commit mode. The same VFS call must now
    // land on the modular fsync and force the running transaction out.
    let rdev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Rsfs::mkfs(&rdev, 256, 64).unwrap();
    let rsfs = Arc::new(Rsfs::mount(rdev, JournalMode::Async).unwrap());
    Migrator::new(&vfs, &registry)
        .swap("rsfs", Arc::clone(&rsfs) as Arc<dyn FileSystem>)
        .unwrap();

    vfs.create("/async-file").unwrap();
    vfs.write_file("/async-file", 0, b"staged then fsynced")
        .unwrap();
    let j = rsfs.journal().unwrap();
    assert!(j.staged_ops() > 0, "async mode stages, it does not commit");
    let batches_before = j.stats().batches;
    vfs.fsync_path("/async-file").unwrap();
    assert!(
        j.stats().batches > batches_before,
        "fsync forced a journal commit"
    );
    assert_eq!(j.staged_ops(), 0, "the running transaction drained");
    assert_eq!(
        vfs.read_file("/async-file").unwrap(),
        b"staged then fsynced"
    );
    assert_eq!(vfs.read_file("/durable").unwrap(), b"fsync me");
}

#[test]
fn concurrent_readers_survive_the_swap() {
    let (legacy, _ctx) = make_cext4();
    let registry = Arc::new(Registry::new());
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", Arc::clone(&legacy))
        .unwrap();
    let vfs = Arc::new(Vfs::mount(&registry).unwrap());
    vfs.create("/shared").unwrap();
    vfs.write_file("/shared", 0, b"stable content").unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let vfs = Arc::clone(&vfs);
        let stop = Arc::clone(&stop);
        // Each reader returns (successful reads, failed ops): the test
        // asserts the second number is zero, not just absence of panics.
        readers.push(thread::spawn(move || {
            let mut reads = 0u64;
            let mut failed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match vfs.read_file("/shared") {
                    Ok(data) => {
                        assert_eq!(data, b"stable content");
                        reads += 1;
                    }
                    Err(_) => failed += 1,
                }
            }
            (reads, failed)
        }));
    }

    // Swap while the readers hammer the handle. The gate makes this
    // exact: every read lands wholly before the blackout or wholly after
    // the resume, and the dcache is rekeyed (not guessed at) before the
    // gate reopens — no sleeps, no "luck of inode numbering".
    let report = Migrator::new(&vfs, &registry)
        .swap("rsfs", make_rsfs())
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let (mut total, mut failed) = (0u64, 0u64);
    for r in readers {
        let (reads, fails) = r.join().unwrap();
        total += reads;
        failed += fails;
    }
    assert!(total > 0, "readers made progress");
    assert_eq!(failed, 0, "zero failed ops across the swap");
    assert!(report.blackout_ns > 0);
    assert_eq!(vfs.fs_handle().impl_name(), "rsfs");
}

#[test]
fn open_descriptors_survive_the_swap_with_position_and_flags() {
    let (legacy, _ctx) = make_cext4();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", legacy)
        .unwrap();
    let vfs = Vfs::mount(&registry).unwrap();

    vfs.create("/log").unwrap();
    vfs.write_file("/log", 0, b"0123456789").unwrap();
    let fd = vfs.open("/log").unwrap();
    let mut buf = [0u8; 4];
    assert_eq!(vfs.read(fd, &mut buf).unwrap(), 4);
    assert_eq!(&buf, b"0123");

    // A descriptor whose file is unlinked before the swap has no name in
    // the transferred tree: it cannot be carried and must turn into an
    // honest EBADF, never a silent handle onto the retired generation.
    vfs.create("/doomed").unwrap();
    let orphan = vfs.open("/doomed").unwrap();
    vfs.unlink("/doomed").unwrap();

    let report = Migrator::new(&vfs, &registry)
        .swap("rsfs", make_rsfs())
        .unwrap();
    assert_eq!(report.remapped_fds, 1);
    assert_eq!(report.dropped_fds, 1);

    // Position carried across the generation handoff.
    assert_eq!(vfs.read(fd, &mut buf).unwrap(), 4);
    assert_eq!(&buf, b"4567");
    assert_eq!(vfs.write(fd, b"XY").unwrap(), 2);
    assert_eq!(vfs.read_file("/log").unwrap(), b"01234567XY");

    assert!(vfs.read(orphan, &mut buf).is_err());
}

/// The ISSUE 9 acceptance scenario: an 8-thread mixed workload observes
/// zero failed ops across two back-to-back generation swaps (forward to
/// rsfs, then back to a fresh cext4), lockdep clean.
#[test]
fn eight_thread_workload_sees_zero_failed_ops_across_two_swaps() {
    let (legacy, _ctx) = make_cext4();
    let registry = Arc::new(Registry::new());
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", legacy)
        .unwrap();
    let locks = LockRegistry::new();
    let vfs = Arc::new(Vfs::mount_with_lockdep(&registry, Arc::clone(&locks)).unwrap());

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for t in 0..8u64 {
        let vfs = Arc::clone(&vfs);
        let stop = Arc::clone(&stop);
        workers.push(thread::spawn(move || {
            // Mixed ops over a bounded per-thread namespace (16 files
            // each — 128 total stays well inside both generations'
            // inode budgets). Every error is a failed op.
            let dir = format!("/t{t}");
            let mut failed = 0u64;
            let mut ops = 0u64;
            if vfs.mkdir(&dir).is_err() {
                failed += 1;
            }
            let mut i = 0u64;
            let mut x = t << 32 | 1;
            while !stop.load(Ordering::Relaxed) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let f = format!("{dir}/f{}", i % 16);
                let r = if i < 16 {
                    // Populate the namespace first, so every later op
                    // targets a file that must exist — any error after
                    // this point is a real failed op.
                    vfs.create(&f).map(|_| ())
                } else {
                    match x % 5 {
                        0 => vfs.stat(&f).map(|_| ()),
                        1 => vfs
                            .write_file(&f, 0, format!("t{t} gen {i}").as_bytes())
                            .map(|_| ()),
                        2 => vfs.read_file(&f).map(|_| ()),
                        3 => vfs.readdir(&dir).map(|_| ()),
                        _ => vfs.stat(&dir).map(|_| ()),
                    }
                };
                if r.is_err() {
                    failed += 1;
                }
                ops += 1;
                i += 1;
            }
            (ops, failed)
        }));
    }

    // Let the workload establish itself, then two live swaps
    // back-to-back, opposite directions, while all 8 threads run.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let r1 = Migrator::new(&vfs, &registry)
        .swap("rsfs", make_rsfs())
        .unwrap();
    let (legacy2, _ctx2) = make_cext4();
    let r2 = Migrator::new(&vfs, &registry)
        .swap("cext4", legacy2)
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);

    let (mut ops, mut failed) = (0u64, 0u64);
    for w in workers {
        let (o, f) = w.join().unwrap();
        ops += o;
        failed += f;
    }
    assert!(ops > 0, "workload made progress");
    assert_eq!(failed, 0, "zero failed ops across both swaps");
    assert_eq!(vfs.fs_handle().swap_count(), 2);
    assert_eq!(vfs.gate().swaps(), 2);
    assert_eq!(vfs.fs_handle().impl_name(), "cext4");
    assert!(r1.blackout_ns > 0 && r2.blackout_ns > 0);
    let violations = locks.violations();
    assert!(violations.is_empty(), "lockdep findings: {violations:?}");
}

/// Revert-fails regression for the ring-reactor swap hazard: the plain
/// reactor captures one `Arc<dyn FileSystem>` at spawn, so SQEs
/// submitted after a swap would execute against the retired generation —
/// visible through the VFS as files that were acknowledged but do not
/// exist. The gated reactor dispatches through the interface handle
/// under the swap gate; queued pre-swap SQEs are drained by the migrator
/// against the old generation before transfer.
#[test]
fn post_swap_sqes_complete_against_the_new_generation() {
    let (legacy, _ctx) = make_cext4();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", legacy)
        .unwrap();
    let vfs = Vfs::mount(&registry).unwrap();
    let locks = LockRegistry::new_disabled();
    let ring = Arc::new(Ring::new(&locks, 8));
    let reactor =
        RingReactor::spawn_gated(Arc::clone(&ring), vfs.fs_handle().clone(), vfs.gate(), None);

    // Pre-swap SQEs: whether the reactor or the migrator's drain
    // processes them, their effects must cross with the tree.
    let root = vfs.resolve("/").unwrap();
    let mut tickets = Vec::new();
    for i in 0..4 {
        tickets.push(
            ring.submit(BatchOp::Create {
                dir: root,
                name: format!("pre{i}"),
            })
            .unwrap(),
        );
    }

    let report = Migrator::new(&vfs, &registry)
        .with_ring(&ring)
        .swap("rsfs", make_rsfs())
        .unwrap();
    for t in tickets {
        assert!(ring.wait(t).reply.result().is_ok(), "pre-swap SQE failed");
    }

    // Post-swap SQEs must land on the new generation: the VFS resolves
    // through the swapped slot, so an acknowledged create that the VFS
    // cannot stat means the reactor wrote to the retired generation.
    let root = vfs.resolve("/").unwrap();
    for i in 0..4 {
        let t = ring
            .submit(BatchOp::Create {
                dir: root,
                name: format!("post{i}"),
            })
            .unwrap();
        assert!(ring.wait(t).reply.result().is_ok(), "post-swap SQE failed");
    }
    reactor.join();

    for i in 0..4 {
        assert!(
            vfs.stat(&format!("/pre{i}")).is_ok(),
            "pre-swap SQE effect lost in transfer"
        );
        assert!(
            vfs.stat(&format!("/post{i}")).is_ok(),
            "post-swap SQE completed against a retired generation"
        );
    }
    let stats = ring.stats();
    assert_eq!(stats.submitted, stats.completed);
    // Whoever processed the pre-swap SQEs — the parked reactor or the
    // migrator's drain — nothing may be counted twice or lost.
    assert_eq!(stats.submitted, 8);
    let _ = report;
}

/// The ISSUE 10 acceptance scenario: a 4-reactor work-stealing pool
/// stays live across two back-to-back generation swaps while 8 clients
/// hammer the ring, and not one op fails. Every reactor parks outside
/// its shared gate hold, so the migrator finds the whole pool idle,
/// drains queued SQEs itself against the old generation, and the pool
/// resumes against the new one — the single-reactor SwapGate handshake,
/// unchanged, covering N reactors.
#[test]
fn four_reactor_pool_sees_zero_failed_ops_across_two_swaps() {
    let registry = Arc::new(Registry::new());
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "rsfs", make_rsfs())
        .unwrap();
    let locks = LockRegistry::new();
    let vfs = Arc::new(Vfs::mount_with_lockdep(&registry, Arc::clone(&locks)).unwrap());
    let ring = Arc::new(Ring::new(&locks, 64));
    let pool = RingReactor::spawn_gated_pool(
        Arc::clone(&ring),
        vfs.fs_handle().clone(),
        vfs.gate(),
        None,
        4,
    );

    // Every generation in this chain is rsfs, so the root inode number
    // is the same constant throughout and name-based create/unlink
    // pairs are self-contained across swaps: a file created before the
    // blackout is carried by the tree walk, and its unlink lands by
    // name on whichever generation is current.
    let root = vfs.resolve("/").unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for t in 0..8u64 {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        clients.push(thread::spawn(move || {
            let (mut ops, mut failed) = (0u64, 0u64);
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let name = format!("t{t}c{i}");
                for op in [
                    BatchOp::Create {
                        dir: root,
                        name: name.clone(),
                    },
                    BatchOp::Unlink { dir: root, name },
                ] {
                    match ring.submit(op) {
                        Ok(ticket) => {
                            if ring.wait(ticket).reply.result().is_err() {
                                failed += 1;
                            }
                            ops += 1;
                        }
                        // Ring shut down — only happens after `stop`.
                        Err(_) => return (ops, failed),
                    }
                }
                i += 1;
            }
            (ops, failed)
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(30));
    let r1 = Migrator::new(&vfs, &registry)
        .with_ring(&ring)
        .swap("rsfs2", make_rsfs())
        .unwrap();
    let r2 = Migrator::new(&vfs, &registry)
        .with_ring(&ring)
        .swap("rsfs3", make_rsfs())
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);

    let (mut ops, mut failed) = (0u64, 0u64);
    for c in clients {
        let (o, f) = c.join().unwrap();
        ops += o;
        failed += f;
    }
    for r in pool {
        r.join();
    }
    assert!(ops > 0, "clients made progress");
    assert_eq!(failed, 0, "zero failed ops across both swaps");
    let stats = ring.stats();
    assert_eq!(
        stats.submitted, stats.completed,
        "no SQE lost or duplicated"
    );
    assert_eq!(vfs.fs_handle().swap_count(), 2);
    assert!(r1.blackout_ns > 0 && r2.blackout_ns > 0);
    let violations = locks.violations();
    assert!(violations.is_empty(), "lockdep findings: {violations:?}");
}

/// Crash-contract regression across a swap: a power cut right after the
/// switch must recover the pre-swap durable prefix from the *new*
/// device. The migrator quiesces the incoming generation before the
/// registry replace, so the fsync watermark established on the old
/// generation is honored by the new one from the first instant it is
/// authoritative. Without that step (the pre-protocol swap), the new
/// generation in async-commit mode holds the whole transferred tree in
/// volatile state and this test's worst-case crash image recovers an
/// empty file system — below the watermark.
#[test]
fn crash_after_swap_recovers_the_pre_swap_durable_prefix() {
    let (legacy, _ctx) = make_cext4();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", legacy)
        .unwrap();
    let vfs = Vfs::mount(&registry).unwrap();

    // Workload with a durability point: models[watermark] is the state
    // fsync promised to keep.
    let mut models = vec![vfs.abstraction()];
    for i in 0..6 {
        vfs.create(&format!("/f{i}")).unwrap();
        vfs.write_file(&format!("/f{i}"), 0, format!("payload {i}").as_bytes())
            .unwrap();
        models.push(vfs.abstraction());
    }
    vfs.fsync_path("/f5").unwrap();
    let watermark = models.len() - 1;

    // Incoming generation: rsfs in async-commit mode on a device with a
    // volatile write cache — the adversarial setup, since nothing it
    // does is durable until something commits and flushes.
    let ram = Arc::new(RamDisk::new(4096));
    {
        let dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as Arc<dyn BlockDevice>;
        Rsfs::mkfs(&dev, 256, 64).unwrap();
    }
    let crashdev = Arc::new(CrashDevice::new(Arc::clone(&ram)));
    let next: Arc<dyn FileSystem> = Arc::new(
        Rsfs::mount(
            Arc::clone(&crashdev) as Arc<dyn BlockDevice>,
            JournalMode::Async,
        )
        .unwrap(),
    );

    Migrator::new(&vfs, &registry).swap("rsfs", next).unwrap();

    // Power cut, worst case: the volatile cache is lost entirely. What
    // the backing store holds is exactly what the handoff made durable.
    let img = ram.snapshot();
    let scratch = Arc::new(RamDisk::new(4096));
    scratch.restore(&img).unwrap();
    let recovered = Rsfs::mount(scratch as Arc<dyn BlockDevice>, JournalMode::Async).unwrap();
    let m = fs_abstraction(&recovered);
    judge_with_floor(&models, watermark, &m)
        .expect("post-swap crash image must hold the pre-swap durable prefix");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under live writers, the abstraction captured at the moment the
    /// old generation quiesces equals the new generation's abstraction
    /// when transfer completes: state transfer is exact, and the gate
    /// excludes every mutation from the handoff window.
    #[test]
    fn live_writer_abstractions_agree_across_the_swap(seed in 0u64..64) {
        let (legacy, _ctx) = make_cext4();
        let registry = Arc::new(Registry::new());
        registry
            .register::<dyn FileSystem>(FS_INTERFACE, "cext4", legacy)
            .unwrap();
        let vfs = Arc::new(Vfs::mount(&registry).unwrap());
        vfs.mkdir("/w").unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::new();
        for t in 0..3u64 {
            let vfs = Arc::clone(&vfs);
            let stop = Arc::clone(&stop);
            writers.push(thread::spawn(move || {
                let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) ^ (t << 17) | 1;
                let mut failed = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let f = format!("/w/t{t}f{}", i % 8);
                    let r = if i < 8 {
                        vfs.create(&f).map(|_| ())
                    } else if x % 2 == 0 {
                        vfs.write_file(&f, 0, &x.to_le_bytes()).map(|_| ())
                    } else {
                        vfs.read_file(&f).map(|_| ())
                    };
                    if r.is_err() && i >= 8 {
                        failed += 1;
                    }
                    i += 1;
                }
                failed
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(5));

        let next = make_rsfs();
        let next_probe = Arc::clone(&next);
        let old_probe = vfs.fs_handle().get();
        let mut at_quiesce = None;
        let mut at_transfer = None;
        let report = Migrator::new(&vfs, &registry)
            .with_observer(|phase| match phase {
                // The gate is closed in both phases: the old generation
                // is frozen, so these two walks see the exact state the
                // transfer moved.
                MigratePhase::Quiesced => at_quiesce = Some(fs_abstraction(&*old_probe)),
                MigratePhase::Transferred => at_transfer = Some(fs_abstraction(&*next_probe)),
                MigratePhase::Resumed => {}
            })
            .swap("rsfs", next)
            .unwrap();

        std::thread::sleep(std::time::Duration::from_millis(5));
        stop.store(true, Ordering::Relaxed);
        let mut failed = 0u64;
        for w in writers {
            failed += w.join().unwrap();
        }

        prop_assert_eq!(failed, 0, "writers saw failed ops across the swap");
        let a = at_quiesce.expect("observer saw Quiesced");
        let b = at_transfer.expect("observer saw Transferred");
        prop_assert_eq!(a, b, "pre/post-swap abstractions diverged");
        prop_assert!(report.copied_files >= 8);
    }
}

#[test]
fn failed_swap_aborts_cleanly_and_the_workload_continues() {
    let (legacy, _ctx) = make_cext4();
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "cext4", legacy)
        .unwrap();
    let vfs = Vfs::mount(&registry).unwrap();
    vfs.create("/keep").unwrap();
    vfs.write_file("/keep", 0, b"still here").unwrap();

    // A target that already holds a colliding name makes the transfer
    // fail mid-walk; the migrator must abort with the old generation
    // authoritative and the gate reopened.
    let next = make_rsfs();
    next.create(next.root_ino(), "keep").unwrap();
    assert!(Migrator::new(&vfs, &registry).swap("rsfs", next).is_err());

    assert_eq!(vfs.fs_handle().impl_name(), "cext4");
    assert_eq!(vfs.fs_handle().swap_count(), 0);
    assert_eq!(vfs.read_file("/keep").unwrap(), b"still here");
    vfs.create("/after-abort").unwrap();
    assert!(vfs.stat("/after-abort").is_ok());
}

#[test]
fn promoted_copy_tree_matches_the_old_behavior() {
    // `copy_tree` used to live in this file; the promoted version must
    // still move a nested tree faithfully and now also return the inode
    // map the migrator rekeys caches with.
    let (legacy, _ctx) = make_cext4();
    let a = legacy;
    a.mkdir(a.root_ino(), "d").unwrap();
    let d = a.lookup(a.root_ino(), "d").unwrap();
    let f = a.create(d, "f").unwrap();
    a.write(f, 0, b"deep").unwrap();
    let b = make_rsfs();
    let map = copy_tree(&*a, &*b, a.root_ino(), b.root_ino()).unwrap();
    assert_eq!(map.len(), 3, "root, d, f");
    let nd = b.lookup(b.root_ino(), "d").unwrap();
    let nf = b.lookup(nd, "f").unwrap();
    assert_eq!(map.get(&d), Some(&nd));
    assert_eq!(map.get(&f), Some(&nf));
    let mut buf = [0u8; 4];
    assert_eq!(b.read(nf, 0, &mut buf).unwrap(), 4);
    assert_eq!(&buf, b"deep");
}
