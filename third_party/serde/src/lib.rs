//! Minimal vendored `serde` (hermetic build, no crates.io).
//!
//! Provides a [`Serialize`] trait that renders directly to JSON text
//! (the only format this workspace emits) plus declarative macros
//! standing in for `#[derive(Serialize)]`, which needs a proc-macro
//! crate this environment cannot fetch:
//!
//! ```ignore
//! serde::impl_serialize_struct!(CveRecord { id, year, subsystem, cwe });
//! serde::impl_serialize_enum!(Prevention { TypeOwnership, Functional, Other });
//! ```

#![forbid(unsafe_code)]

/// Types that can render themselves as a JSON value.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_serialize_display_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_display_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // JSON has no NaN/inf; finite floats print via Display,
            // which round-trips in Rust.
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String) {
        (*self as f64).write_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($T:ident $idx:tt),+))*) => {$(
        impl<$($T: Serialize),+> Serialize for ($($T,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Implements [`Serialize`] for a struct as a JSON object of its
/// named fields — the stand-in for `#[derive(Serialize)]`.
#[macro_export]
macro_rules! impl_serialize_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    $crate::write_json_str(stringify!($field), out);
                    out.push(':');
                    $crate::Serialize::write_json(&self.$field, out);
                )+
                let _ = first;
                out.push('}');
            }
        }
    };
}

/// Implements [`Serialize`] for a fieldless enum as the variant name
/// string (derive-compatible encoding).
#[macro_export]
macro_rules! impl_serialize_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn write_json(&self, out: &mut String) {
                let name = match self {
                    $( $ty::$variant => stringify!($variant), )+
                };
                $crate::write_json_str(name, out);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: u32,
        label: String,
    }
    crate::impl_serialize_struct!(Point { x, label });

    #[derive(Clone, Copy)]
    enum Kind {
        Alpha,
        Beta,
    }
    crate::impl_serialize_enum!(Kind { Alpha, Beta });

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn structs_and_enums_encode() {
        let p = Point {
            x: 3,
            label: "a\"b".into(),
        };
        assert_eq!(to_json(&p), r#"{"x":3,"label":"a\"b"}"#);
        assert_eq!(to_json(&Kind::Alpha), r#""Alpha""#);
        assert_eq!(to_json(&Kind::Beta), r#""Beta""#);
    }

    #[test]
    fn containers_encode() {
        assert_eq!(to_json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&(1u32, "x")), r#"[1,"x"]"#);
        assert_eq!(to_json(&Some(5u8)), "5");
        assert_eq!(to_json(&Option::<u8>::None), "null");
        assert_eq!(to_json(&1.5f64), "1.5");
    }
}
