//! Minimal vendored `proptest` (hermetic build, no crates.io).
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`proptest!`] macro with `#![proptest_config(..)]` and `name in
//! strategy` binders, [`strategy::Strategy`] with `prop_map`, integer /
//! float range strategies, `any::<T>()`, tuple strategies,
//! `prop::collection::{vec, btree_set}`, `prop::sample::select`,
//! [`prop_oneof!`], simple `"[a-z]{1,6}"` regex string strategies, and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed and failing inputs are *not* shrunk — the
//! panic message carries the concrete case values instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-runner configuration and RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (returned via `?` inside test bodies).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail<S: std::fmt::Display>(reason: S) -> Self {
            TestCaseError {
                reason: reason.to_string(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.reason)
        }
    }

    /// Deterministic RNG driving strategy generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Fixed-seed RNG; every run of a property sees the same cases.
        pub fn deterministic() -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(0x5afe_5eed),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `"[a-z]{1,8}"`-style string strategy: a sequence of character
    /// classes (or literal chars), each with an optional `{n}` / `{m,n}`
    /// repetition. Covers the patterns this workspace uses; anything
    /// fancier panics loudly rather than generating garbage.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_simple_regex(self);
            let mut out = String::new();
            for (choices, lo, hi) in &atoms {
                let n = *lo + rng.below((*hi - *lo + 1) as u64) as usize;
                for _ in 0..n {
                    let i = rng.below(choices.len() as u64) as usize;
                    out.push(choices[i]);
                }
            }
            out
        }
    }

    /// Parses a pattern into (choices, min_reps, max_reps) atoms.
    fn parse_simple_regex(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
        let mut atoms = Vec::new();
        let mut chars = pat.chars().peekable();
        while let Some(c) = chars.next() {
            let choices: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        let a = chars.next().expect("unterminated class in pattern");
                        if a == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let b = chars.next().expect("unterminated class range");
                            assert!(b != ']', "dangling '-' in class");
                            for ch in a..=b {
                                set.push(ch);
                            }
                        } else {
                            set.push(a);
                        }
                    }
                    assert!(!set.is_empty(), "empty class in pattern {pat:?}");
                    set
                }
                lit => vec![lit],
            };
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad repeat bound"),
                        b.trim().parse().expect("bad repeat bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "inverted repeat bounds in pattern {pat:?}");
            atoms.push((choices, lo, hi));
        }
        atoms
    }

    macro_rules! tuple_strategy {
        ($(($($S:ident $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection`, `prop::sample`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::collections::BTreeSet;

        /// Length specification: an exact `usize` or a `Range<usize>`.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            }
        }

        /// Strategy for `Vec<T>` with element strategy `S`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy for `BTreeSet<T>` with element strategy `S`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng).max(self.size.lo);
                let mut set = BTreeSet::new();
                // Duplicates are retried a bounded number of times, so a
                // narrow element domain yields a smaller set, as in
                // upstream proptest.
                let mut attempts = 0;
                while set.len() < target && attempts < target * 20 + 20 {
                    set.insert(self.element.generate(rng));
                    attempts += 1;
                }
                set
            }
        }

        /// `prop::collection::btree_set(element, size)`.
        pub fn btree_set<S: Strategy>(
            element: S,
            size: impl Into<SizeRange>,
        ) -> BTreeSetStrategy<S> {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }
    }

    pub mod sample {
        //! Sampling from fixed collections.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed set of values.
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }

        /// `prop::sample::select(options)`; `options` must be non-empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over empty options");
            Select { options }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(binder in strategy, ..) { .. }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    // The closure gives `?` a Result context, as in real
                    // proptest; a returned failure becomes a panic here.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("property {} failed on case {}: {}",
                               stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// Uniform choice across heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}

/// Asserts a condition inside a property (no shrinking; plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u64),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![any::<u64>().prop_map(Op::Push), Just(Op::Pop),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds, tuples compose, regex strings match.
        #[test]
        fn strategies_generate_in_domain(
            x in 3u8..9,
            y in 1u64..=4,
            pair in (0usize..5, any::<bool>()),
            name in "[a-z]{1,6}",
            items in prop::collection::vec(any::<u8>(), 2..5),
            set in prop::collection::btree_set(0u64..100, 1..4),
            pick in prop::sample::select(vec!["a", "b"]),
            ops in prop::collection::vec(op(), 1..8),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(pair.0 < 5);
            prop_assert!(!name.is_empty() && name.len() <= 6);
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!((2..5).contains(&items.len()));
            prop_assert!(!set.is_empty() && set.len() < 4);
            prop_assert!(pick == "a" || pick == "b");
            prop_assert!(!ops.is_empty());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        let s = 0u64..1000;
        for _ in 0..16 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
