//! Minimal vendored `parking_lot` facade over `std::sync`.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the tiny slice of the parking_lot API the workspace
//! uses: [`Mutex`], [`RwLock`] and [`Condvar`] with non-poisoning
//! guards. Semantics match parking_lot's: a panicking holder does not
//! poison the lock for everyone else.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutex that never poisons: panicking while holding the lock leaves it
/// usable for the next holder (parking_lot semantics).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The std guard sits in an `Option` slot so [`Condvar::wait`] and
/// [`MutexGuard::unlocked`] can move it out and back without unsafe
/// code; it is `Some` at every point a user can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    slot: Option<sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Temporarily unlocks the mutex to run `f`, reacquiring before
    /// returning (parking_lot's `MutexGuard::unlocked`).
    pub fn unlocked<U>(guard: &mut MutexGuard<'a, T>, f: impl FnOnce() -> U) -> U {
        guard.slot = None;
        let result = f();
        guard.slot = Some(match guard.mutex.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
        result
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            mutex: self,
            slot: Some(guard),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                mutex: self,
                slot: Some(g),
            }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                mutex: self,
                slot: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.slot.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.slot.as_deref_mut().expect("guard present")
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { guard: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                guard: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire the exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { guard: g }),
            Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                guard: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    ///
    /// Unlike std, the guard is updated in place (parking_lot signature).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.slot.take().expect("guard present");
        guard.slot = Some(match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) {
        let inner = guard.slot.take().expect("guard present");
        guard.slot = Some(match self.inner.wait_timeout(inner, timeout) {
            Ok((g, _)) => g,
            Err(p) => p.into_inner().0,
        });
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn mutex_no_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panic");
    }

    #[test]
    fn rwlock_shared_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }
}
