//! Minimal vendored `serde_json` (hermetic build, no crates.io).
//!
//! [`to_string`] renders any [`serde::Serialize`] type; [`from_str`]
//! parses JSON text into a dynamic [`Value`] with the usual accessors
//! (`as_array`, `as_str`, `as_u64`, `as_f64`, indexing by `usize` and
//! `&str`). Numbers are stored as `f64`, which is exact for every
//! integer this workspace serializes (< 2^53).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn err<T>(msg: impl Into<String>) -> Result<T, Error> {
    Err(Error { msg: msg.into() })
}

/// Renders `value` as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted by key).
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The map if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup returning `Null` when absent (serde_json behavior).
    pub fn get_index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_index(key)
    }
}

impl serde::Serialize for Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.write_json(out),
            Value::Number(n) => n.write_json(out),
            Value::String(s) => serde::write_json_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_str(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Types constructible from a parsed [`Value`] (only `Value` itself in
/// this stub).
pub trait Deserialize: Sized {
    /// Converts a parsed value.
    fn from_value(v: Value) -> Result<Self, Error>;
}

impl Deserialize for Value {
    fn from_value(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}

/// Parses JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err(format!("trailing data at byte {}", p.pos));
    }
    T::from_value(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        match self.peek() {
            Some(b) => {
                self.pos += 1;
                Ok(b)
            }
            None => err("unexpected end of input"),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump()? == b {
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", b as char, self.pos - 1))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or_else(|| Error {
                                    msg: format!("bad \\u escape at byte {}", self.pos),
                                })?;
                        }
                        // Surrogate pairs are not produced by this
                        // workspace's encoder; map lone surrogates to
                        // the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return err(format!("bad escape {:?}", c as char)),
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Multi-byte UTF-8: collect the full sequence.
                    let start = self.pos - 1;
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    for _ in 1..len {
                        self.bump()?;
                    }
                    match std::str::from_utf8(&self.bytes[start..start + len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return err("invalid UTF-8 in string"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => err(format!("invalid number {text:?}")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => return err(format!("expected ',' or ']', got {:?}", c as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => return err(format!("expected ',' or '}}', got {:?}", c as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value =
            from_str(r#"{"a": [1, 2.5, "x\ny"], "b": {"c": true, "d": null}, "e": -3}"#).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_str(), Some("x\ny"));
        assert_eq!(v["b"]["c"].as_bool(), Some(true));
        assert_eq!(v["b"]["d"], Value::Null);
        assert_eq!(v["e"].as_f64(), Some(-3.0));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn roundtrips_through_to_string() {
        let src = r#"{"arr":[1,2],"s":"he\"llo"}"#;
        let v: Value = from_str(src).unwrap();
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
