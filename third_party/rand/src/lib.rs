//! Minimal vendored `rand` facade (hermetic build, no crates.io).
//!
//! Exposes the slice of the rand 0.8 API this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! methods `gen`, `gen_bool`, `gen_range`. The generator is
//! xoshiro256** seeded through splitmix64 — deterministic across
//! platforms, which is all the simulated kernel needs.

#![forbid(unsafe_code)]

/// A type that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized + Copy {
    /// Samples uniformly from `[low, high)` given a raw `u64` source.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is irrelevant at simulation scale.
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range-shaped argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + num_helpers::One> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_half_open(rng, lo, num_helpers::One::add_one(hi))
    }
}

mod num_helpers {
    /// Internal helper for inclusive ranges.
    pub trait One {
        /// Returns `self + 1`.
        fn add_one(self) -> Self;
    }
    macro_rules! impl_one {
        ($($t:ty),*) => {$(impl One for $t { fn add_one(self) -> Self { self + 1 } })*};
    }
    impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The raw entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let v: f64 = self.gen();
        v < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng;
    /// statistical quality is ample for simulation workloads).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..3);
            assert!(w < 3);
            let s: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "got {hits}");
    }
}
