//! Minimal vendored `criterion` (hermetic build, no crates.io).
//!
//! Implements the measuring subset of the criterion API the bench
//! targets use: [`Criterion`], [`BenchmarkGroup`] (sample_size,
//! warm_up_time, measurement_time, throughput, bench_function,
//! bench_with_input), [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. No statistics engine: each benchmark reports the mean
//! wall-clock time per iteration over a timed measurement window.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a group (reported, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name in `bench_function`.
pub trait IntoBenchmarkId {
    /// Renders the identifier string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean ns/iter recorded by the last `iter` call.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up window, then a measurement window,
    /// recording mean wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        loop {
            std::hint::black_box(f());
            if Instant::now() >= warm_end {
                break;
            }
        }
        let start = Instant::now();
        let end = start + self.measurement;
        let mut iters: u64 = 0;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if Instant::now() >= end {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// A named set of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (accepted for API parity; the
    /// stub sizes work by wall-clock windows instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T: ?Sized, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into_id();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let time = format_ns(b.mean_ns);
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (b.mean_ns / 1e9) / (1024.0 * 1024.0);
                println!(
                    "{}/{id}  time: {time}/iter  thrpt: {rate:.1} MiB/s  ({} iters)",
                    self.name, b.iters
                );
            }
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (b.mean_ns / 1e9);
                println!(
                    "{}/{id}  time: {time}/iter  thrpt: {rate:.0} elem/s  ({} iters)",
                    self.name, b.iters
                );
            }
            None => {
                println!("{}/{id}  time: {time}/iter  ({} iters)", self.name, b.iters);
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts CLI args for API parity (`--bench`, filters) and ignores
    /// them; every registered benchmark runs.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Prints the closing line real criterion emits after all groups.
    pub fn final_summary(self) {
        println!("benchmarks complete");
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(400),
            throughput: None,
        }
    }
}

/// Bundles benchmark functions under a single callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Bytes(4096));
        group.bench_function("add", |b| b.iter(|| 2u64 + 2));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).into_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
