//! CVE-2020-12351, before and after the roadmap.
//!
//! The paper cites this bug ("net: bluetooth: type confusion while
//! processing AMP packets") as its §4.2 example of type confusion in the
//! wild. This example fires the same crafted packet at:
//!
//! 1. the **legacy stack**, where channel private data is a `void *` and
//!    the AMP handler casts it on faith — the confusion happens and is
//!    detected by the substrate's hidden type tags;
//! 2. the **modular stack**, where per-channel state is a typed enum —
//!    the packet is refused with `EPROTO` and no confusion is possible;
//!
//! and then shows the file-system variant of the same idiom: cext4's
//! `write_end` casting its `void *` fsdata to the wrong struct, versus the
//! move-only typed token of the safe interface.
//!
//! ```text
//! cargo run --example type_confusion
//! ```

use std::sync::Arc;

use safer_kernel::core::modularity::Registry;
use safer_kernel::fs_legacy::{BugKnobs, Cext4};
use safer_kernel::ksim::block::{BlockDevice, RamDisk};
use safer_kernel::ksim::time::SimClock;
use safer_kernel::legacy::{BugClass, LegacyCtx};
use safer_kernel::netstack::legacy_stack::{LegacyStack, OP_AMP_MOVE};
use safer_kernel::netstack::modular_stack::{register_families, ModularStack};
use safer_kernel::netstack::packet::{proto, Packet};
use safer_kernel::netstack::wire::{Side, Wire};

fn crafted_packet() -> Packet {
    let mut evil = Packet::new(proto::AMP_CTRL, 66, 66);
    // Opcode AMP_MOVE, channel id 0x0040 (an ordinary L2CAP channel!),
    // destination controller 2.
    evil.payload = vec![OP_AMP_MOVE, 0x40, 0x00, 0x02];
    evil
}

fn main() {
    println!("== the network bug: crafted AMP move packet ==\n");

    // Legacy stack: channels are void pointers; the handler assumes AMP.
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let legacy = LegacyStack::new(LegacyCtx::new(), Side::A, wire, clock);
    legacy.create_l2cap_channel(0x40, 672); // the victim channel
    legacy.create_amp_channel(0x41, 1);
    let result = legacy.handle_ctrl_packet(&crafted_packet());
    println!("legacy stack: handler returned {result:?}");
    for event in legacy.ctx().ledger.events() {
        println!(
            "legacy stack: DETECTED {} at {} ({})",
            event.class, event.site, event.detail
        );
    }
    assert_eq!(legacy.ctx().ledger.count(BugClass::TypeConfusion), 1);

    // Modular stack: channels are a typed enum; no cast exists.
    let registry = Arc::new(Registry::new());
    register_families(&registry).expect("register");
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let modular = ModularStack::new(registry, Side::A, wire, clock);
    modular.create_l2cap_channel(0x40, 672);
    modular.create_amp_channel(0x41, 1);
    let result = modular.handle_ctrl_packet(&crafted_packet());
    println!("\nmodular stack: handler returned {result:?} — refused, not confused");
    assert!(result.is_err());

    println!("\n== the file-system variant: write_begin/write_end fsdata ==\n");

    // cext4 with the wrong-cast knob: §4.2's exact scenario.
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(512));
    Cext4::mkfs(&dev, 64).expect("mkfs");
    let ctx = LegacyCtx::new();
    let knobs = Arc::new(BugKnobs::none());
    knobs.set("wrong_cast_write_end", true);
    let fs = Cext4::mount(dev, ctx.clone(), knobs).expect("mount");
    let e = fs.create_errptr(fs.root_ino(), "f", 1);
    let ino = ctx
        .vp_take::<u64>(e.check().expect("create"), "example")
        .expect("ino");
    let fsdata = fs.write_begin(ino, 0, 4).check().expect("begin");
    let r = fs.write_end(ino, 0, b"data", fsdata);
    println!("cext4 write_end with wrong cast: {r:?}");
    for event in ctx.ledger.events() {
        println!(
            "cext4: DETECTED {} at {} ({})",
            event.class, event.site, event.detail
        );
    }

    // The safe interface's replacement: a move-only typed token. The
    // mispairing is caught — and duplicating or re-using a token doesn't
    // even compile (see the commented line).
    use safer_kernel::core::typesafe::Token;
    let t1 = Token::new(String::from("session-1 context"));
    let t2 = Token::new(String::from("session-2 context"));
    let s1 = t1.session();
    println!(
        "\ntyped tokens: pairing t2 against session-1 -> {:?}",
        t2.consume_for(s1).map(|_| ())
    );
    println!(
        "typed tokens: correct pairing -> {:?}",
        t1.consume_for(s1).map(|_| ())
    );
    // let reuse = t1.get(); // <- does not compile: t1 was consumed.
    println!("\ntype confusion: detected in the legacy idiom, unrepresentable in the typed one");
}
