//! Quickstart: mount the safe file system behind the modular interface
//! and use it through the VFS.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use safer_kernel::core::modularity::Registry;
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, RamDisk};
use safer_kernel::vfs::modular::FileSystem;
use safer_kernel::vfs::path::{Vfs, FS_INTERFACE};

fn main() {
    // 1. A block device (the substrate's RAM disk) and a formatted rsfs.
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Rsfs::mkfs(&dev, 256, 64).expect("mkfs");
    let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).expect("mount");

    // 2. Step 1 of the roadmap: the implementation registers behind a
    //    named interface; the VFS only ever holds the handle.
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "rsfs", Arc::new(fs) as Arc<dyn FileSystem>)
        .expect("register");
    let vfs = Vfs::mount(&registry).expect("vfs mount");
    println!(
        "mounted '{}' behind interface '{}'",
        vfs.fs_handle().impl_name(),
        vfs.fs_handle().interface()
    );

    // 3. Ordinary file work, by path.
    vfs.mkdir("/etc").expect("mkdir");
    vfs.create("/etc/motd").expect("create");
    vfs.write_file(
        "/etc/motd",
        0,
        b"an incremental path towards a safer OS kernel\n",
    )
    .expect("write");
    let motd = vfs.read_file("/etc/motd").expect("read");
    print!("/etc/motd: {}", String::from_utf8_lossy(&motd));

    // 4. And by descriptor.
    let fd = vfs.open("/etc/motd").expect("open");
    let mut buf = [0u8; 14];
    let n = vfs.read(fd, &mut buf).expect("read");
    println!(
        "first {n} bytes via fd: {:?}",
        String::from_utf8_lossy(&buf[..n])
    );
    vfs.close(fd).expect("close");

    // 5. Rename uses the paper's prefix-substitution semantics.
    vfs.mkdir("/etc/conf.d").expect("mkdir");
    vfs.create("/etc/conf.d/net").expect("create");
    vfs.rename("/etc", "/sysconfig").expect("rename");
    assert!(vfs.stat("/sysconfig/conf.d/net").is_ok());
    println!("renamed /etc -> /sysconfig; children followed");

    // 6. Everything is journaled per-operation: remounting after a hard
    //    stop sees every completed operation.
    let stat = vfs.statfs().expect("statfs");
    println!(
        "statfs: {}/{} blocks free, {}/{} inodes free",
        stat.blocks_free, stat.blocks_total, stat.inodes_free, stat.inodes_total
    );
    drop(vfs);
    drop(registry);
    let fs2 = Rsfs::mount(dev, JournalMode::PerOp).expect("remount");
    let root = fs2.root_ino();
    let ino = fs2.lookup(root, "sysconfig").expect("lookup");
    println!(
        "after remount: /sysconfig is inode {ino} with {} entries — durable",
        fs2.readdir(ino).expect("readdir").len()
    );
}
