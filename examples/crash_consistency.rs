//! Crash consistency, exhaustively checked (§4.4).
//!
//! "A crash-safe file system can be modeled as a map of path strings to
//! file content bytes that is guaranteed to recover to the last synced
//! version given any crash."
//!
//! This example runs rsfs on a crash-capturing device, performs one
//! mutating operation, and enumerates **every** moment power could have
//! failed during it: the journal's commit protocol issues flush barriers,
//! so the write sequence divides into barrier intervals, and within each
//! interval any prefix of the writes may have reached the medium. Every
//! resulting disk image is recovered (journal replay runs inside `mount`)
//! and its abstraction checked to be either the pre-op or the post-op
//! model — never a torn in-between.
//!
//! ```text
//! cargo run --example crash_consistency
//! ```

use std::sync::Arc;

use parking_lot::Mutex;
use safer_kernel::core::spec::crash::{crash_images, CrashPolicy, CrashReport};
use safer_kernel::core::spec::Refines;
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{
    BlockDevice, CrashDevice, DeviceStats, PendingWrite, RamDisk, BLOCK_SIZE,
};
use safer_kernel::ksim::errno::KResult;
use safer_kernel::vfs::modular::FileSystem;

/// A device tap: forwards to a crash device and snapshots the pending
/// write set at every flush barrier, so the example can replay each
/// barrier interval's prefixes afterwards.
struct Tap {
    inner: Arc<CrashDevice<Arc<RamDisk>>>,
    intervals: Mutex<Vec<Vec<PendingWrite>>>,
}

impl BlockDevice for Tap {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }
    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
        self.inner.read_block(blkno, buf)
    }
    fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
        self.inner.write_block(blkno, buf)
    }
    fn flush(&self) -> KResult<()> {
        self.intervals.lock().push(self.inner.pending_writes());
        self.inner.flush()
    }
    fn stats(&self) -> DeviceStats {
        self.inner.stats()
    }
}

fn main() {
    // rsfs on a crash device over a RAM disk we can snapshot.
    let ram = Arc::new(RamDisk::new(2048));
    let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
    let tap = Arc::new(Tap {
        inner: Arc::clone(&crash),
        intervals: Mutex::new(Vec::new()),
    });
    let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&tap_dyn, 128, 64).expect("mkfs");

    let fs = Rsfs::mount(Arc::clone(&tap_dyn), JournalMode::PerOp).expect("mount");
    let root = fs.root_ino();
    let f = fs.create(root, "ledger").expect("create");
    fs.write(f, 0, b"balance=100").expect("write");
    let pre_model = fs.abstraction();
    let base_image = ram.snapshot();
    tap.intervals.lock().clear(); // Only watch the operation under test.
    println!(
        "pre-crash state: {:?}",
        pre_model.files.keys().collect::<Vec<_>>()
    );

    // The operation under test: an overwrite that must be atomic,
    // followed by the sync that checkpoints the journaled record home
    // (checkpointing is deferred, so the home-block writes only happen
    // here — the claim is "recovers to the last *synced* version").
    fs.write(f, 0, b"balance=042").expect("write");
    fs.sync().expect("sync");
    let post_model = fs.abstraction();
    let intervals = tap.intervals.lock().clone();
    let total_writes: usize = intervals.iter().map(|i| i.len()).sum();
    println!(
        "the operation issued {} device writes across {} flush barriers",
        total_writes,
        intervals.len()
    );

    // Enumerate every crash point: each barrier interval contributes its
    // prefixes over the state left by fully-applied earlier intervals.
    let mut applied = base_image.clone();
    let mut all_images = Vec::new();
    for interval in &intervals {
        all_images.extend(crash_images(
            &applied,
            interval,
            BLOCK_SIZE,
            CrashPolicy::Prefixes,
        ));
        for w in interval {
            let off = w.blkno as usize * BLOCK_SIZE;
            applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
        }
    }
    println!("enumerating {} crash points...", all_images.len());

    let report = CrashReport::run(all_images, |i, img| {
        let scratch = Arc::new(RamDisk::new(2048));
        scratch.restore(img).map_err(|e| e.to_string())?;
        let scratch_dyn: Arc<dyn BlockDevice> = scratch;
        // Journal recovery runs inside mount, exactly as at boot.
        let recovered = Rsfs::mount(scratch_dyn, JournalMode::PerOp).map_err(|e| e.to_string())?;
        let model = recovered.abstraction();
        if model == pre_model || model == post_model {
            Ok(())
        } else {
            Err(format!(
                "crash point {i} recovered to neither pre nor post state: {model:?}"
            ))
        }
    });

    println!(
        "checked {} crash images: {}",
        report.images_checked,
        if report.is_clean() {
            "every one recovers to the pre-op or the committed post-op state"
        } else {
            "FAILURES FOUND"
        }
    );
    for failure in &report.failures {
        println!("  {failure}");
    }
    assert!(report.is_clean());
    assert!(
        report.images_checked > 5,
        "the enumeration must be nontrivial"
    );
    println!(
        "journal stats: {:?}",
        fs.journal().expect("journaled").stats()
    );
}
