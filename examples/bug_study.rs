//! The §2 bug study, end to end: the CVE categorization table and its
//! empirical counterpart.
//!
//! ```text
//! cargo run --example bug_study            # 2 trials per bug class
//! cargo run --example bug_study -- 10      # more trials
//! ```

use safer_kernel::cvedb::categorize::categorize;
use safer_kernel::cvedb::dataset::Dataset;
use safer_kernel::faultgen::run_study;

fn main() {
    // Half 1: the retrospective categorization over the calibrated corpus
    // (what the paper's authors did by hand over NVD records).
    let ds = Dataset::build();
    let s = categorize(&ds);
    let (ty, fun, other) = s.percentages();
    println!(
        "== retrospective categorization of {} CVEs (2010-2020) ==",
        s.total
    );
    println!(
        "  type + ownership safety : {:>4} ({ty:.1}%; paper ~42%)",
        s.type_ownership
    );
    println!(
        "  functional correctness  : {:>4} ({fun:.1}%; paper ~35%)",
        s.functional
    );
    println!(
        "  other causes            : {:>4} ({other:.1}%; paper ~23%)",
        s.other
    );

    // Half 2: the same split measured by actually running each bug class
    // through the roadmap pipelines.
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    println!("\n== empirical prevention study ({trials} trials per class) ==\n");
    let report = run_study(trials);
    for r in &report.specs {
        println!(
            "  {:<26} {:<9} -> {:?}{}",
            r.name,
            r.cwe,
            r.measured,
            if r.measured == r.expected {
                ""
            } else {
                "  (MISMATCH)"
            }
        );
    }
    let (ty, fun, other) = report.percentages();
    println!("\n  corpus-weighted: {ty:.1}% / {fun:.1}% / {other:.1}% (paper: 42/35/23)");
    if report.mismatches.is_empty() {
        println!("  every pipeline measurement agrees with the paper's categorization");
    } else {
        println!("  MISMATCHES: {:?}", report.mismatches);
    }
}
