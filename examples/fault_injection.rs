//! Fault injection: what the axioms are for (§4.4).
//!
//! "The verified file system will appear buggy if either the block I/O
//! layer is buggy or the model erroneous." This example runs the safe file
//! system twice — once on honest hardware, once on hardware that silently
//! corrupts one write in five — with the axiomatic device model wedged in
//! between. On honest hardware the axioms stay silent; on rotten hardware
//! they pinpoint the substrate, exonerating the file system.
//!
//! It closes with the journal shrugging off torn writes: a transaction cut
//! mid-flight by a torn block write is discarded by checksum at recovery.
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use std::sync::Arc;

use safer_kernel::core::spec::AxiomaticDevice;
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::fs_safe::{fsck, journal::Journal};
use safer_kernel::ksim::block::{BlockDevice, FaultConfig, FaultyDevice, RamDisk, BLOCK_SIZE};
use safer_kernel::vfs::modular::FileSystem;

fn workload(fs: &Rsfs) {
    let root = fs.root_ino();
    for i in 0..8 {
        if let Ok(ino) = fs.create(root, &format!("f{i}")) {
            let _ = fs.write(ino, 0, &vec![i as u8; 6000]);
            let mut buf = vec![0u8; 6000];
            let _ = fs.read(ino, 0, &mut buf);
        }
    }
}

fn main() {
    println!("== honest hardware ==\n");
    let axio = Arc::new(AxiomaticDevice::new(
        Arc::new(RamDisk::new(2048)) as Arc<dyn BlockDevice>
    ));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&axio) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 128, 64).expect("mkfs");
    let fs = Rsfs::mount(dev, JournalMode::PerOp).expect("mount");
    workload(&fs);
    println!(
        "axiom violations: {} (the file system and the device agree)",
        axio.violations().len()
    );
    assert!(axio.is_clean());

    println!("\n== bit-rotting hardware (20% of writes corrupted) ==\n");
    let rotten = FaultyDevice::new(
        Arc::new(RamDisk::new(2048)) as Arc<dyn BlockDevice>,
        FaultConfig {
            corruption_rate: 0.2,
            ..FaultConfig::default()
        },
        2026,
    );
    let axio = Arc::new(AxiomaticDevice::new(rotten));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&axio) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 128, 64).expect("mkfs");
    match Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp) {
        Ok(fs) => {
            workload(&fs);
            // Corruption is only observable at read-back, and the cache
            // (plus deferred checkpointing) satisfies the workload's reads
            // from memory. Push everything home, drop the cache, and read
            // it again from the rotten medium.
            let _ = fs.sync();
            fs.cache().invalidate();
            let root = fs.root_ino();
            for i in 0..8 {
                if let Ok(ino) = fs.lookup(root, &format!("f{i}")) {
                    let mut buf = vec![0u8; 6000];
                    let _ = fs.read(ino, 0, &mut buf);
                }
            }
        }
        Err(e) => println!("mount already failed: {e} (rot hit the superblock)"),
    }
    let violations = axio.violations();
    println!(
        "axiom violations: {} — e.g. {:?}",
        violations.len(),
        violations.first()
    );
    println!("blame assigned: the substrate broke its contract, not the FS");
    assert!(!violations.is_empty());

    println!("\n== torn write vs the journal ==\n");
    // Build a committed-but-unretired transaction, then tear its payload.
    let ram = Arc::new(RamDisk::new(2048));
    let dev: Arc<dyn BlockDevice> = Arc::clone(&ram) as Arc<dyn BlockDevice>;
    Rsfs::mkfs(&dev, 128, 64).expect("mkfs");
    let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).expect("mount");
    fs.create(fs.root_ino(), "survivor").expect("create");
    fs.sync().expect("sync"); // Checkpoint, so the txn is retired on disk.
    drop(fs);
    let jstart = 2048 - 64;
    // Rewind the journal superblock so recovery reconsiders the last txn...
    let mut jsb = vec![0u8; BLOCK_SIZE];
    dev.read_block(jstart, &mut jsb).expect("read jsb");
    let seq = u64::from_le_bytes(jsb[4..12].try_into().expect("8 bytes"));
    jsb[4..12].copy_from_slice(&(seq - 1).to_le_bytes());
    jsb[12..20].copy_from_slice(&0u64.to_le_bytes());
    ram.write_block(jstart, &jsb).expect("rewind");
    // ...and tear the journaled payload (half old, half new — a torn write).
    let mut payload = vec![0u8; BLOCK_SIZE];
    ram.read_block(jstart + 2, &mut payload)
        .expect("read payload");
    payload[BLOCK_SIZE / 2..].fill(0xFF);
    ram.write_block(jstart + 2, &payload).expect("tear");
    let outcome = Journal::recover(&dev, jstart, 64).expect("recover");
    println!("recovery outcome for the torn transaction: {outcome:?}");
    let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).expect("remount");
    println!(
        "the file system still mounts; 'survivor' present: {}",
        fs.lookup(fs.root_ino(), "survivor").is_ok()
    );
    let report = fsck(&*dev).expect("fsck");
    println!(
        "fsck after the ordeal: {} findings — structurally sound",
        report.findings.len()
    );
    assert!(report.is_clean());
}
