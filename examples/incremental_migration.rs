//! The paper's thesis, live: replace a legacy kernel module with a safer
//! one **while the system runs**, behind an unchanged interface.
//!
//! The workload starts on cext4 (the C-idiom file system, reached through
//! the legacy shim), the operator migrates the data and hot-swaps the
//! registry slot to rsfs (safe, journaled), and the same `Vfs` object —
//! same handle, no remount — keeps serving. This is §3's "components can
//! be replaced one at a time, and each component can be replaced with an
//! incrementally-safer implementation".
//!
//! ```text
//! cargo run --example incremental_migration
//! ```

use std::sync::Arc;

use safer_kernel::core::modularity::Registry;
use safer_kernel::core::roadmap::{Roadmap, SafetyLevel};
use safer_kernel::fs_legacy::{cext4_ops, BugKnobs, Cext4};
use safer_kernel::fs_safe::rsfs::{JournalMode, Rsfs};
use safer_kernel::ksim::block::{BlockDevice, RamDisk};
use safer_kernel::legacy::LegacyCtx;
use safer_kernel::vfs::inode::FileType;
use safer_kernel::vfs::modular::FileSystem;
use safer_kernel::vfs::path::{Vfs, FS_INTERFACE};
use safer_kernel::vfs::shim::LegacyFsAdapter;

/// Copies the tree at `dir`/`path` from `src` to `dst` (the migration).
fn copy_tree(src: &dyn FileSystem, dst: &dyn FileSystem, sdir: u64, ddir: u64) {
    for entry in src.readdir(sdir).expect("readdir") {
        let attr = src.getattr(entry.ino).expect("getattr");
        match attr.ftype {
            FileType::Directory => {
                let nd = dst.mkdir(ddir, &entry.name).expect("mkdir");
                copy_tree(src, dst, entry.ino, nd);
            }
            FileType::Regular => {
                let nf = dst.create(ddir, &entry.name).expect("create");
                let mut data = vec![0u8; attr.size as usize];
                let n = src.read(entry.ino, 0, &mut data).expect("read");
                data.truncate(n);
                dst.write(nf, 0, &data).expect("write");
            }
        }
    }
}

fn main() {
    // Step 0: the legacy file system on its device, behind the shim.
    let legacy_dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Cext4::mkfs(&legacy_dev, 256).expect("mkfs");
    let ctx = LegacyCtx::new();
    let cext4 =
        Arc::new(Cext4::mount(legacy_dev, ctx.clone(), Arc::new(BugKnobs::none())).expect("mount"));
    let adapter = LegacyFsAdapter::new(Arc::new(cext4_ops(cext4)), ctx.clone());

    // Step 1: register it; the VFS subscribes to the *interface*.
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(
            FS_INTERFACE,
            "cext4",
            Arc::new(adapter) as Arc<dyn FileSystem>,
        )
        .expect("register");
    let vfs = Vfs::mount(&registry).expect("vfs");
    println!("phase 1: serving from '{}'", vfs.fs_handle().impl_name());

    // The roadmap ledger (§3): track what the current module certifies.
    let roadmap = Roadmap::new();
    roadmap.track(FS_INTERFACE, "cext4");
    roadmap
        .certify(
            FS_INTERFACE,
            SafetyLevel::Modular,
            "reached through the legacy shim",
        )
        .expect("certify");
    println!(
        "roadmap: {} is '{}'",
        FS_INTERFACE,
        roadmap.level_of(FS_INTERFACE).name()
    );

    // A live workload writes state the migration must carry over.
    vfs.mkdir("/home").expect("mkdir");
    for user in ["alice", "bob"] {
        vfs.mkdir(&format!("/home/{user}")).expect("mkdir");
        vfs.create(&format!("/home/{user}/notes.txt"))
            .expect("create");
        vfs.write_file(
            &format!("/home/{user}/notes.txt"),
            0,
            format!("{user}'s data, written on cext4\n").as_bytes(),
        )
        .expect("write");
    }
    println!(
        "phase 1: wrote {} entries under /home (cext4); legacy idiom logged {} unlocked i_size accesses",
        vfs.readdir("/home").expect("readdir").len(),
        ctx.locks.violations().len(),
    );

    // The replacement: rsfs on its own device, data migrated over.
    let safe_dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Rsfs::mkfs(&safe_dev, 256, 64).expect("mkfs");
    let rsfs = Rsfs::mount(safe_dev, JournalMode::PerOp).expect("mount");
    {
        let old = vfs.fs_handle().get();
        copy_tree(&*old, &rsfs, old.root_ino(), rsfs.root_ino());
    }
    println!("migration: copied the tree onto rsfs");

    // The hot swap — the paper's module-by-module replacement.
    let old = registry
        .replace::<dyn FileSystem>(FS_INTERFACE, "rsfs", Arc::new(rsfs) as Arc<dyn FileSystem>)
        .expect("replace");
    println!(
        "phase 2: swapped '{}' -> '{}' (swap #{}); the Vfs object was never told",
        old.fs_name(),
        vfs.fs_handle().impl_name(),
        vfs.fs_handle().swap_count()
    );

    // The same workload continues through the same handle. The dentry
    // cache is cleared because inode numbers changed underneath.
    vfs.dcache().clear();
    let alice = vfs.read_file("/home/alice/notes.txt").expect("read");
    print!(
        "phase 2 read (via rsfs): {}",
        String::from_utf8_lossy(&alice)
    );
    vfs.create("/home/alice/new-on-rsfs.txt").expect("create");
    vfs.write_file("/home/alice/new-on-rsfs.txt", 0, b"journaled now\n")
        .expect("write");
    println!(
        "phase 2: /home/alice now has {} entries, served by '{}'",
        vfs.readdir("/home/alice").expect("readdir").len(),
        vfs.fs_handle().impl_name()
    );

    // Update the ledger: the swap resets certification to Modular, and the
    // new implementation re-earns its levels with its evidence.
    roadmap.replaced(FS_INTERFACE, "rsfs").expect("replaced");
    roadmap
        .certify(
            FS_INTERFACE,
            SafetyLevel::TypeSafe,
            "no void*/ERR_PTR in the interface",
        )
        .expect("certify");
    roadmap
        .certify(
            FS_INTERFACE,
            SafetyLevel::OwnershipSafe,
            "#![forbid(unsafe_code)] + the three sharing models in the signatures",
        )
        .expect("certify");
    roadmap
        .certify(
            FS_INTERFACE,
            SafetyLevel::FunctionallyVerified,
            "refinement property suite + exhaustive crash checker + fsck",
        )
        .expect("certify");
    println!(
        "roadmap: {} is now '{}'",
        FS_INTERFACE,
        roadmap.level_of(FS_INTERFACE).name()
    );
    println!("incremental replacement complete: same interface, safer module");
}
