#!/usr/bin/env python3
"""Bench drift gate for the netstack report.

Compares a freshly generated BENCH_net.json against the committed
baseline and fails (exit 1) when the clean-link single-stream throughput
of either generation regresses by more than the tolerance (default 10%).

Wall-clock throughput is the only nondeterministic field in the report,
so the gate also cross-checks the deterministic shape of the run: the
clean rows must complete, move the same byte count, and take the same
number of rounds as the baseline — a rounds blow-up is a protocol
regression (e.g. a broken congestion window) even when raw MB/s happens
to pass on a fast runner.

The clean soak finishes in well under a millisecond of wall time, so a
single sample is noisy; pass several fresh reports (CI generates three)
and the gate compares the best sample per generation against the floor.
Deterministic fields are checked on every sample.

Usage: check_bench_drift.py <baseline.json> <fresh.json>... [tolerance]
"""

import json
import sys


def clean_rows(report):
    rows = {}
    for row in report.get("soak", []):
        if row.get("link") == "clean":
            rows[row["generation"]] = row
    return rows


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    args = sys.argv[1:]
    try:
        tolerance = float(args[-1])
        args = args[:-1]
    except ValueError:
        tolerance = 0.10
    if len(args) < 2:
        sys.exit(__doc__)
    baseline_path, fresh_paths = args[0], args[1:]

    with open(baseline_path) as f:
        baseline = clean_rows(json.load(f))
    fresh_runs = []
    for path in fresh_paths:
        with open(path) as f:
            fresh_runs.append((path, clean_rows(json.load(f))))

    failures = []
    for gen in ("legacy", "modular"):
        if gen not in baseline:
            failures.append(f"{gen}: no clean row in baseline {baseline_path}")
            continue
        base = baseline[gen]
        samples = []
        for path, fresh in fresh_runs:
            if gen not in fresh:
                failures.append(f"{gen}: no clean row in fresh {path}")
                continue
            now = fresh[gen]
            if not now.get("completed", False):
                failures.append(f"{gen}: fresh clean run in {path} did not complete")
            for field in ("bytes", "rounds"):
                if now.get(field) != base.get(field):
                    failures.append(
                        f"{gen}: {field} changed {base.get(field)} -> {now.get(field)} "
                        f"in {path} (deterministic field; protocol behaviour drifted)"
                    )
            samples.append(now["throughput_mb_s"])
        if not samples:
            continue
        base_tp, now_tp = base["throughput_mb_s"], max(samples)
        floor = base_tp * (1.0 - tolerance)
        verdict = "OK" if now_tp >= floor else "REGRESSED"
        print(
            f"{gen:8} clean: baseline {base_tp:8.1f} MB/s, "
            f"best of {len(samples)} fresh {now_tp:8.1f} MB/s, "
            f"floor {floor:8.1f} MB/s  {verdict}"
        )
        if now_tp < floor:
            failures.append(
                f"{gen}: clean single-stream throughput {now_tp:.1f} MB/s is more than "
                f"{tolerance:.0%} below the committed baseline {base_tp:.1f} MB/s"
            )

    if failures:
        print("\nbench drift check FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nbench drift check passed")


if __name__ == "__main__":
    main()
