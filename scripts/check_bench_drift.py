#!/usr/bin/env python3
"""Bench drift gate for the netstack and storage reports.

The mode is auto-detected from the baseline report:

* a report with a top-level "soak" key is a netstack report
  (BENCH_net.json) and is gated on clean-link single-stream throughput;
* a report with a top-level "hot_swap" key is a storage report
  (BENCH_storage.json) and is gated on the live hot-swap sweep.

Netstack mode compares a freshly generated BENCH_net.json against the
committed baseline and fails (exit 1) when the clean-link single-stream
throughput of either generation regresses by more than the tolerance
(default 10%).  Wall-clock throughput is the only nondeterministic field
in that report, so the gate also cross-checks the deterministic shape of
the run: the clean rows must complete, move the same byte count, and
take the same number of rounds as the baseline — a rounds blow-up is a
protocol regression (e.g. a broken congestion window) even when raw MB/s
happens to pass on a fast runner.

The clean soak finishes in well under a millisecond of wall time, so a
single sample is noisy; pass several fresh reports (CI generates three)
and the gate compares the best sample per generation against the floor.
Deterministic fields are checked on every sample.

Storage mode gates the hot_swap section of BENCH_storage.json:

* every fresh per-thread row must report failed_ops == 0 — the swap
  contract is zero failed operations under load, not "few";
* the deterministic shape must match the baseline row for the same
  thread count: swaps performed, files copied across the handoff, and
  dentries remapped (the workload tree is seeded from the pinned engine
  seed, so these are exact);
* the engine seed stamped into the section must match the baseline —
  a silent reseed would make the comparison meaningless;
* blackout_us_max may not exceed baseline * multiplier (the tolerance
  argument, default 10x in this mode).  Blackout is a single-shot wall
  measurement on a shared runner, so the bound is deliberately loose:
  it only catches order-of-magnitude regressions such as the swap
  draining through a sleep loop.  Best sample per thread count wins.

Storage mode also gates the ring_throughput reactors x depth sweep when
the baseline carries it: the best ring row may not regress more than 10%
below the committed best, no row's p99 may double, and the best
multi-reactor row must structurally beat both the single-reactor
depth-1024 row and the per-call path in every fresh report.  Fresh
reports generated with `bench_report --ring-only` carry only this
section; the hot-swap checks are skipped for them.

Usage: check_bench_drift.py <baseline.json> <fresh.json>... [tolerance]
"""

import json
import sys


def clean_rows(report):
    rows = {}
    for row in report.get("soak", []):
        if row.get("link") == "clean":
            rows[row["generation"]] = row
    return rows


def check_net(baseline_path, baseline, fresh_runs, tolerance):
    baseline = clean_rows(baseline)
    fresh_runs = [(path, clean_rows(report)) for path, report in fresh_runs]

    failures = []
    for gen in ("legacy", "modular"):
        if gen not in baseline:
            failures.append(f"{gen}: no clean row in baseline {baseline_path}")
            continue
        base = baseline[gen]
        samples = []
        for path, fresh in fresh_runs:
            if gen not in fresh:
                failures.append(f"{gen}: no clean row in fresh {path}")
                continue
            now = fresh[gen]
            if not now.get("completed", False):
                failures.append(f"{gen}: fresh clean run in {path} did not complete")
            for field in ("bytes", "rounds"):
                if now.get(field) != base.get(field):
                    failures.append(
                        f"{gen}: {field} changed {base.get(field)} -> {now.get(field)} "
                        f"in {path} (deterministic field; protocol behaviour drifted)"
                    )
            samples.append(now["throughput_mb_s"])
        if not samples:
            continue
        base_tp, now_tp = base["throughput_mb_s"], max(samples)
        floor = base_tp * (1.0 - tolerance)
        verdict = "OK" if now_tp >= floor else "REGRESSED"
        print(
            f"{gen:8} clean: baseline {base_tp:8.1f} MB/s, "
            f"best of {len(samples)} fresh {now_tp:8.1f} MB/s, "
            f"floor {floor:8.1f} MB/s  {verdict}"
        )
        if now_tp < floor:
            failures.append(
                f"{gen}: clean single-stream throughput {now_tp:.1f} MB/s is more than "
                f"{tolerance:.0%} below the committed baseline {base_tp:.1f} MB/s"
            )
    return failures


def swap_rows(report):
    section = report.get("hot_swap", {})
    return section.get("engine_seed"), {
        row["threads"]: row for row in section.get("per_threads", [])
    }


# Exact across runs: the swap count is fixed by the harness and the
# copied/remapped counts follow from the engine-seeded workload tree.
# ops_completed, blocked_ops, and the blackout timings are wall-clock
# dependent and are deliberately NOT in this list.
SWAP_EXACT_FIELDS = ("swaps", "copied_files", "remapped_dentries")


def check_storage(baseline_path, baseline, fresh_runs, multiplier):
    base_seed, base_rows = swap_rows(baseline)
    if not base_rows:
        return [f"no hot_swap per_threads rows in baseline {baseline_path}"]

    failures = []
    for threads in sorted(base_rows):
        base = base_rows[threads]
        samples = []
        for path, fresh in fresh_runs:
            seed, rows = swap_rows(fresh)
            if seed != base_seed:
                failures.append(
                    f"hot_swap: engine_seed changed {base_seed} -> {seed} in {path}"
                )
                continue
            if threads not in rows:
                failures.append(f"hot_swap[{threads}t]: no fresh row in {path}")
                continue
            now = rows[threads]
            if now.get("failed_ops") != 0:
                failures.append(
                    f"hot_swap[{threads}t]: {now.get('failed_ops')} failed ops in "
                    f"{path} (swap contract is zero failed ops under load)"
                )
            for field in SWAP_EXACT_FIELDS:
                if now.get(field) != base.get(field):
                    failures.append(
                        f"hot_swap[{threads}t]: {field} changed "
                        f"{base.get(field)} -> {now.get(field)} in {path} "
                        f"(deterministic field; handoff behaviour drifted)"
                    )
            samples.append(now["blackout_us_max"])
        if not samples:
            continue
        base_bo, now_bo = base["blackout_us_max"], min(samples)
        ceiling = base_bo * multiplier
        verdict = "OK" if now_bo <= ceiling else "REGRESSED"
        print(
            f"hot_swap {threads}t: baseline blackout {base_bo:9.1f} us, "
            f"best of {len(samples)} fresh {now_bo:9.1f} us, "
            f"ceiling {ceiling:9.1f} us  {verdict}"
        )
        if now_bo > ceiling:
            failures.append(
                f"hot_swap[{threads}t]: blackout {now_bo:.1f} us exceeds "
                f"{multiplier:.0f}x the committed baseline {base_bo:.1f} us"
            )
    return failures


def ring_rows(report):
    """Splits the ring_throughput section into (per_call_row, {(reactors,
    depth): row})."""
    per_call, ring = None, {}
    for row in report.get("ring_throughput", []):
        if row.get("mode") == "per-call":
            per_call = row
        elif row.get("mode") == "ring":
            ring[(row["reactors"], row["depth"])] = row
    return per_call, ring


def check_ring(baseline_path, baseline, fresh_runs, tolerance):
    """Gates the reactors x depth ring sweep:

    * the best ring ops/s row may not regress more than `tolerance`
      below the committed baseline's best row (best fresh sample wins);
    * no (reactors, depth) row's p99 may blow up past 2x its baseline
      (best sample per row wins — p99 on a shared runner is noisy, an
      order-2 blowup is structural: a lost wakeup, a serialized path);
    * the scaling claim itself is enforced structurally on every fresh
      report: the best multi-reactor (reactors >= 2) row must beat both
      the single-reactor depth-1024 row and the per-call baseline row of
      the same report — a revert to effectively-serial execution fails
      here even on a runner fast enough to dodge the regression floor.
    """
    base_per_call, base_ring = ring_rows(baseline)
    if not base_ring:
        return [f"no ring_throughput ring rows in baseline {baseline_path}"]
    fresh_with = [(p, r) for p, r in fresh_runs if r.get("ring_throughput")]
    if not fresh_with:
        print("ring_throughput: no fresh report carries the section, skipped")
        return []

    failures = []
    best_samples = []
    p99_samples = {}
    for path, fresh in fresh_with:
        per_call, ring = ring_rows(fresh)
        if per_call is None or not ring:
            failures.append(f"ring_throughput: incomplete section in {path}")
            continue
        for key, base_row in base_ring.items():
            if key not in ring:
                failures.append(
                    f"ring_throughput{list(key)}: row missing from {path}"
                )
                continue
            p99_samples.setdefault(key, []).append(ring[key]["p99_us"])
        best_samples.append(max(r["ops_per_sec"] for r in ring.values()))

        multi = {k: r for k, r in ring.items() if k[0] >= 2}
        single_1024 = ring.get((1, 1024))
        if not multi or single_1024 is None:
            failures.append(f"ring_throughput: sweep shape changed in {path}")
            continue
        best_multi = max(r["ops_per_sec"] for r in multi.values())
        if best_multi <= single_1024["ops_per_sec"]:
            failures.append(
                f"ring_throughput: best multi-reactor row {best_multi:.0f} ops/s "
                f"does not beat the single-reactor depth-1024 row "
                f"{single_1024['ops_per_sec']:.0f} ops/s in {path} "
                f"(multi-reactor scaling reverted)"
            )
        if best_multi <= per_call["ops_per_sec"]:
            failures.append(
                f"ring_throughput: best multi-reactor row {best_multi:.0f} ops/s "
                f"does not beat the per-call baseline "
                f"{per_call['ops_per_sec']:.0f} ops/s in {path}"
            )

    if best_samples:
        base_best = max(r["ops_per_sec"] for r in base_ring.values())
        now_best = max(best_samples)
        floor = base_best * (1.0 - tolerance)
        verdict = "OK" if now_best >= floor else "REGRESSED"
        print(
            f"ring_throughput best: baseline {base_best:9.0f} ops/s, "
            f"best of {len(best_samples)} fresh {now_best:9.0f} ops/s, "
            f"floor {floor:9.0f} ops/s  {verdict}"
        )
        if now_best < floor:
            failures.append(
                f"ring_throughput: best row {now_best:.0f} ops/s is more than "
                f"{tolerance:.0%} below the committed baseline {base_best:.0f} ops/s"
            )
    for key, samples in sorted(p99_samples.items()):
        base_p99 = base_ring[key]["p99_us"]
        now_p99 = min(samples)
        ceiling = base_p99 * 2.0
        if now_p99 > ceiling:
            failures.append(
                f"ring_throughput{list(key)}: p99 {now_p99:.0f} us exceeds 2x "
                f"the committed baseline {base_p99:.0f} us"
            )
    return failures


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    args = sys.argv[1:]
    try:
        tolerance = float(args[-1])
        args = args[:-1]
    except ValueError:
        tolerance = None
    if len(args) < 2:
        sys.exit(__doc__)
    baseline_path, fresh_paths = args[0], args[1:]

    with open(baseline_path) as f:
        baseline = json.load(f)
    fresh_runs = []
    for path in fresh_paths:
        with open(path) as f:
            fresh_runs.append((path, json.load(f)))

    if "hot_swap" in baseline:
        # A fresh report may be ring-only (bench_report --ring-only); the
        # hot-swap sweep is gated against the subset that carries it.
        swap_runs = [(p, r) for p, r in fresh_runs if "hot_swap" in r]
        if swap_runs:
            failures = check_storage(
                baseline_path, baseline, swap_runs, tolerance if tolerance else 10.0
            )
        else:
            print("hot_swap: no fresh report carries the section, skipped")
            failures = []
        failures += check_ring(baseline_path, baseline, fresh_runs, 0.10)
    elif "soak" in baseline:
        failures = check_net(
            baseline_path, baseline, fresh_runs, tolerance if tolerance else 0.10
        )
    else:
        failures = [f"{baseline_path}: neither a netstack nor a storage report"]

    if failures:
        print("\nbench drift check FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nbench drift check passed")


if __name__ == "__main__":
    main()
