//! The in-memory duplex wire connecting two stack instances.
//!
//! Frames travel as encoded bytes (so both stacks really exercise the
//! parser), with deterministic, seeded loss and duplication for
//! retransmission testing.

use std::collections::VecDeque;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sk_ksim::errno::KResult;

use crate::packet::Packet;

/// Which end of the wire an endpoint holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The A side.
    A,
    /// The B side.
    B,
}

impl Side {
    /// The opposite end.
    pub fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

/// Counters every link implementation keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames submitted for transmission.
    pub sent: u64,
    /// Frames the link dropped.
    pub dropped: u64,
    /// Extra copies the link injected.
    pub duplicated: u64,
    /// Frames displaced from their transmit order.
    pub reordered: u64,
    /// Frames whose bytes the link flipped.
    pub corrupted: u64,
    /// Frames held back past their transmit time.
    pub delayed: u64,
}

/// A duplex frame transport between two stack endpoints.
///
/// Both socket-layer generations drive their packets through this
/// interface, so the same pump code runs over the perfect [`Wire`] and
/// over the adversarial [`crate::fault::FaultyLink`].
pub trait Link: Send + Sync {
    /// Sends a packet from `side` toward the other end.
    fn send(&self, side: Side, pkt: &Packet);
    /// Receives the next frame destined for `side`, decoded. `Ok(None)`
    /// when nothing is deliverable; `Err` for frames that fail to parse
    /// (they are consumed — a detected loss).
    fn recv(&self, side: Side) -> KResult<Option<Packet>>;
    /// Frames currently queued in both directions.
    fn in_flight(&self) -> usize;
    /// Fault/traffic counters.
    fn link_stats(&self) -> LinkStats;
}

/// Wire fault configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireFaults {
    /// Probability a frame is dropped.
    pub loss: f64,
    /// Probability a frame is duplicated.
    pub duplicate: f64,
}

struct WireInner {
    a_to_b: VecDeque<Vec<u8>>,
    b_to_a: VecDeque<Vec<u8>>,
    rng: StdRng,
    faults: WireFaults,
    sent: u64,
    dropped: u64,
}

/// A duplex in-memory link.
pub struct Wire {
    inner: Mutex<WireInner>,
}

impl Wire {
    /// A perfect wire.
    pub fn new() -> Wire {
        Wire::with_faults(WireFaults::default(), 0)
    }

    /// A lossy wire with deterministic faults.
    pub fn with_faults(faults: WireFaults, seed: u64) -> Wire {
        Wire {
            inner: Mutex::new(WireInner {
                a_to_b: VecDeque::new(),
                b_to_a: VecDeque::new(),
                rng: StdRng::seed_from_u64(seed),
                faults,
                sent: 0,
                dropped: 0,
            }),
        }
    }

    /// Sends a packet from `side` toward the other end.
    pub fn send(&self, side: Side, pkt: &Packet) {
        let mut inner = self.inner.lock();
        inner.sent += 1;
        let loss = inner.faults.loss;
        if loss > 0.0 && inner.rng.gen_bool(loss.clamp(0.0, 1.0)) {
            inner.dropped += 1;
            return;
        }
        let frame = pkt.encode();
        let dup_p = inner.faults.duplicate;
        let dup = dup_p > 0.0 && inner.rng.gen_bool(dup_p.clamp(0.0, 1.0));
        let queue = match side {
            Side::A => &mut inner.a_to_b,
            Side::B => &mut inner.b_to_a,
        };
        queue.push_back(frame.clone());
        if dup {
            queue.push_back(frame);
        }
    }

    /// Receives the next frame destined for `side`, decoded.
    ///
    /// Returns `Ok(None)` when the queue is empty, `Err` for frames that
    /// fail to parse (they are consumed).
    pub fn recv(&self, side: Side) -> KResult<Option<Packet>> {
        let frame = {
            let mut inner = self.inner.lock();
            let queue = match side {
                Side::A => &mut inner.b_to_a,
                Side::B => &mut inner.a_to_b,
            };
            queue.pop_front()
        };
        match frame {
            Some(bytes) => Packet::decode(&bytes).map(Some),
            None => Ok(None),
        }
    }

    /// Frames currently in flight in both directions.
    pub fn in_flight(&self) -> usize {
        let inner = self.inner.lock();
        inner.a_to_b.len() + inner.b_to_a.len()
    }

    /// (sent, dropped) counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.sent, inner.dropped)
    }
}

impl Default for Wire {
    fn default() -> Self {
        Wire::new()
    }
}

impl Link for Wire {
    fn send(&self, side: Side, pkt: &Packet) {
        Wire::send(self, side, pkt);
    }
    fn recv(&self, side: Side) -> KResult<Option<Packet>> {
        Wire::recv(self, side)
    }
    fn in_flight(&self) -> usize {
        Wire::in_flight(self)
    }
    fn link_stats(&self) -> LinkStats {
        let (sent, dropped) = self.stats();
        LinkStats {
            sent,
            dropped,
            ..LinkStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::proto;

    #[test]
    fn frames_flow_in_both_directions() {
        let w = Wire::new();
        w.send(Side::A, &Packet::new(proto::UDP, 1, 2));
        w.send(Side::B, &Packet::new(proto::UDP, 3, 4));
        let at_b = w.recv(Side::B).unwrap().unwrap();
        assert_eq!(at_b.src_port, 1);
        let at_a = w.recv(Side::A).unwrap().unwrap();
        assert_eq!(at_a.src_port, 3);
        assert_eq!(w.recv(Side::A).unwrap(), None);
    }

    #[test]
    fn ordering_preserved_per_direction() {
        let w = Wire::new();
        for port in 1..=3 {
            w.send(Side::A, &Packet::new(proto::UDP, port, 9));
        }
        for port in 1..=3 {
            assert_eq!(w.recv(Side::B).unwrap().unwrap().src_port, port);
        }
    }

    #[test]
    fn total_loss_drops_everything() {
        let w = Wire::with_faults(
            WireFaults {
                loss: 1.0,
                duplicate: 0.0,
            },
            1,
        );
        w.send(Side::A, &Packet::new(proto::UDP, 1, 2));
        assert_eq!(w.recv(Side::B).unwrap(), None);
        assert_eq!(w.stats(), (1, 1));
    }

    #[test]
    fn duplication_doubles_frames() {
        let w = Wire::with_faults(
            WireFaults {
                loss: 0.0,
                duplicate: 1.0,
            },
            1,
        );
        w.send(Side::A, &Packet::new(proto::UDP, 1, 2));
        assert!(w.recv(Side::B).unwrap().is_some());
        assert!(w.recv(Side::B).unwrap().is_some());
        assert!(w.recv(Side::B).unwrap().is_none());
    }
}
