//! The adversarial link: seeded fault injection between two stacks.
//!
//! [`FaultyLink`] implements [`Link`] like the perfect [`crate::wire::Wire`]
//! but misbehaves on purpose — dropping, duplicating, reordering,
//! delaying, and corrupting frames under a seeded RNG, so every run is
//! reproducible from its seed. Both socket-layer generations pump through
//! the [`Link`] trait, which is the point: the TCP hardening (RTO backoff,
//! retry budgets, RST window checks, bounded reassembly) has to survive
//! this link, not the perfect one.
//!
//! Corruption composes with the packet checksum: a flipped bit makes
//! `Packet::decode` fail in `recv`, which consumes the frame and returns
//! an error — a *detected* loss the retransmission machinery heals,
//! never delivered garbage.

use parking_lot::Mutex;
use sk_ksim::errno::KResult;
use std::sync::Arc;

use crate::packet::Packet;
use crate::wire::{Link, LinkStats, Side};
use sk_ksim::scenario::{subsys, EngineStream, ScenarioEngine};
use sk_ksim::time::SimClock;

/// Fault probabilities and parameters, all independent per frame.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is queued twice.
    pub duplicate: f64,
    /// Probability a frame is swapped with the frame queued before it.
    pub reorder: f64,
    /// Probability one random bit of the encoded frame is flipped.
    pub corrupt: f64,
    /// Probability a frame is held back for [`FaultConfig::delay_ns`].
    pub delay: f64,
    /// How long a delayed frame is withheld (simulated ns).
    pub delay_ns: u64,
}

impl FaultConfig {
    /// The ISSUE's adversarial profile: 20% drop plus duplication and
    /// reordering — the soak-test link.
    pub fn adversarial(delay_ns: u64) -> FaultConfig {
        FaultConfig {
            drop: 0.20,
            duplicate: 0.10,
            reorder: 0.20,
            corrupt: 0.05,
            delay: 0.10,
            delay_ns,
        }
    }
}

/// A queued frame: the encoded bytes and the earliest simulated time the
/// receiver may see them.
struct Held {
    release_at: u64,
    frame: Vec<u8>,
}

struct FaultyInner {
    a_to_b: Vec<Held>,
    b_to_a: Vec<Held>,
    stats: LinkStats,
}

/// A duplex link with seeded, configurable fault injection.
///
/// All fault decisions are drawn from the engine's `link` stream, so a
/// link sharing a [`ScenarioEngine`] with a [`sk_ksim::block::FaultyDisk`]
/// replays from the *one* engine seed, and every injected fault lands in
/// the shared scenario trace.
pub struct FaultyLink {
    inner: Mutex<FaultyInner>,
    cfg: FaultConfig,
    clock: Arc<SimClock>,
    engine: Arc<ScenarioEngine>,
    stream: Arc<EngineStream>,
}

impl FaultyLink {
    /// A link with `cfg` faults, deterministic under `seed`. Delays are
    /// measured on `clock` — the same simulated clock the stacks tick on.
    ///
    /// Convenience for standalone use: wraps a private [`ScenarioEngine`]
    /// around `seed` + `clock`. To compose with other fault harnesses
    /// under one seed, build the engine yourself and use
    /// [`FaultyLink::on_engine`].
    pub fn new(cfg: FaultConfig, seed: u64, clock: Arc<SimClock>) -> FaultyLink {
        Self::on_engine(cfg, &ScenarioEngine::with_clock(seed, clock))
    }

    /// A link drawing its fault decisions from `engine`'s `link` stream
    /// and measuring delays on the engine's virtual clock.
    pub fn on_engine(cfg: FaultConfig, engine: &Arc<ScenarioEngine>) -> FaultyLink {
        FaultyLink {
            inner: Mutex::new(FaultyInner {
                a_to_b: Vec::new(),
                b_to_a: Vec::new(),
                stats: LinkStats::default(),
            }),
            cfg,
            clock: Arc::clone(engine.clock()),
            engine: Arc::clone(engine),
            stream: engine.stream(subsys::LINK),
        }
    }

    /// The scenario engine this link draws from.
    pub fn engine(&self) -> &Arc<ScenarioEngine> {
        &self.engine
    }

    /// Fault/traffic counters so far.
    pub fn stats(&self) -> LinkStats {
        self.inner.lock().stats
    }
}

fn side_tag(side: Side) -> &'static str {
    match side {
        Side::A => "A",
        Side::B => "B",
    }
}

impl Link for FaultyLink {
    fn send(&self, side: Side, pkt: &Packet) {
        let now = self.clock.now_ns();
        // Draw every fault decision from the engine stream *before*
        // taking the queue lock — decisions are a pure function of the
        // stream, queue mutation is a pure function of the decisions.
        // Draw order matches the pre-engine harness: drop, corrupt(+bit),
        // delay, duplicate, reorder.
        if self.stream.roll(self.cfg.drop) {
            self.stream.emit(format!("drop side={}", side_tag(side)));
            let inner = &mut *self.inner.lock();
            inner.stats.sent += 1;
            inner.stats.dropped += 1;
            return;
        }
        let mut frame = pkt.encode();
        let corrupted = if self.stream.roll(self.cfg.corrupt) {
            let bit = self.stream.gen_range(0..frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            self.stream
                .emit(format!("corrupt side={} bit={bit}", side_tag(side)));
            true
        } else {
            false
        };
        let delayed = self.stream.roll(self.cfg.delay);
        let release_at = if delayed {
            self.stream.emit(format!(
                "delay side={} until={}",
                side_tag(side),
                now + self.cfg.delay_ns
            ));
            now + self.cfg.delay_ns
        } else {
            now
        };
        let dup = self.stream.roll(self.cfg.duplicate);
        if dup {
            self.stream
                .emit(format!("duplicate side={}", side_tag(side)));
        }
        let reorder = self.stream.roll(self.cfg.reorder);

        let inner = &mut *self.inner.lock();
        inner.stats.sent += 1;
        if corrupted {
            inner.stats.corrupted += 1;
        }
        if delayed {
            inner.stats.delayed += 1;
        }
        let queue = match side {
            Side::A => &mut inner.a_to_b,
            Side::B => &mut inner.b_to_a,
        };
        queue.push(Held {
            release_at,
            frame: frame.clone(),
        });
        if dup {
            inner.stats.duplicated += 1;
            queue.push(Held { release_at, frame });
        }
        if reorder && queue.len() >= 2 {
            inner.stats.reordered += 1;
            self.stream.emit(format!("reorder side={}", side_tag(side)));
            let n = queue.len();
            queue.swap(n - 1, n - 2);
        }
    }

    fn recv(&self, side: Side) -> KResult<Option<Packet>> {
        let now = self.clock.now_ns();
        let frame = {
            let inner = &mut *self.inner.lock();
            let queue = match side {
                Side::A => &mut inner.b_to_a,
                Side::B => &mut inner.a_to_b,
            };
            queue
                .iter()
                .position(|h| h.release_at <= now)
                .map(|i| queue.remove(i).frame)
        };
        match frame {
            Some(bytes) => Packet::decode(&bytes).map(Some),
            None => Ok(None),
        }
    }

    fn in_flight(&self) -> usize {
        let inner = self.inner.lock();
        inner.a_to_b.len() + inner.b_to_a.len()
    }

    fn link_stats(&self) -> LinkStats {
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::proto;

    fn pkt(src: u16) -> Packet {
        let mut p = Packet::new(proto::UDP, src, 9);
        p.payload = vec![src as u8; 16];
        p
    }

    fn link(cfg: FaultConfig) -> (FaultyLink, Arc<SimClock>) {
        let clock = Arc::new(SimClock::new());
        (FaultyLink::new(cfg, 1, Arc::clone(&clock)), clock)
    }

    #[test]
    fn perfect_config_is_a_perfect_wire() {
        let (l, _) = link(FaultConfig::default());
        for s in 1..=3 {
            l.send(Side::A, &pkt(s));
        }
        for s in 1..=3 {
            assert_eq!(l.recv(Side::B).unwrap().unwrap().src_port, s);
        }
        assert_eq!(l.recv(Side::B).unwrap(), None);
        assert_eq!(l.stats().dropped, 0);
    }

    #[test]
    fn total_drop_loses_everything() {
        let (l, _) = link(FaultConfig {
            drop: 1.0,
            ..FaultConfig::default()
        });
        l.send(Side::A, &pkt(1));
        assert_eq!(l.recv(Side::B).unwrap(), None);
        assert_eq!(l.stats().dropped, 1);
    }

    #[test]
    fn duplication_doubles_frames() {
        let (l, _) = link(FaultConfig {
            duplicate: 1.0,
            ..FaultConfig::default()
        });
        l.send(Side::A, &pkt(1));
        assert!(l.recv(Side::B).unwrap().is_some());
        assert!(l.recv(Side::B).unwrap().is_some());
        assert!(l.recv(Side::B).unwrap().is_none());
        assert_eq!(l.stats().duplicated, 1);
    }

    #[test]
    fn reordering_swaps_adjacent_frames() {
        let (l, _) = link(FaultConfig {
            reorder: 1.0,
            ..FaultConfig::default()
        });
        l.send(Side::A, &pkt(1));
        l.send(Side::A, &pkt(2));
        // The second send swaps with the first: 2 arrives before 1.
        assert_eq!(l.recv(Side::B).unwrap().unwrap().src_port, 2);
        assert_eq!(l.recv(Side::B).unwrap().unwrap().src_port, 1);
        assert!(l.stats().reordered >= 1);
    }

    #[test]
    fn corruption_is_a_detected_loss_not_garbage() {
        let (l, _) = link(FaultConfig {
            corrupt: 1.0,
            ..FaultConfig::default()
        });
        l.send(Side::A, &pkt(1));
        // The checksum catches the flip: recv errors, the frame is gone.
        assert!(l.recv(Side::B).is_err());
        assert_eq!(l.recv(Side::B).unwrap(), None);
        assert_eq!(l.stats().corrupted, 1);
    }

    #[test]
    fn delayed_frames_wait_for_the_clock() {
        let (l, clock) = link(FaultConfig {
            delay: 1.0,
            delay_ns: 500,
            ..FaultConfig::default()
        });
        l.send(Side::A, &pkt(1));
        assert_eq!(l.recv(Side::B).unwrap(), None, "withheld");
        assert_eq!(l.in_flight(), 1);
        clock.advance(500);
        assert_eq!(l.recv(Side::B).unwrap().unwrap().src_port, 1);
    }

    #[test]
    fn delay_reorders_around_undelayed_frames() {
        let clock = Arc::new(SimClock::new());
        let l = FaultyLink::new(
            FaultConfig {
                delay: 0.5,
                delay_ns: 1000,
                ..FaultConfig::default()
            },
            3,
            Arc::clone(&clock),
        );
        for s in 1..=20 {
            l.send(Side::A, &pkt(s));
        }
        let mut first_batch = Vec::new();
        while let Ok(Some(p)) = l.recv(Side::B) {
            first_batch.push(p.src_port);
        }
        assert!(
            !first_batch.is_empty() && first_batch.len() < 20,
            "some frames held back: {first_batch:?}"
        );
        clock.advance(1000);
        let mut rest = 0;
        while let Ok(Some(_)) = l.recv(Side::B) {
            rest += 1;
        }
        assert_eq!(first_batch.len() + rest, 20);
    }

    #[test]
    fn engine_backed_link_replays_faults_and_trace_from_one_seed() {
        let run = || {
            let engine = ScenarioEngine::new(99);
            let l = FaultyLink::on_engine(FaultConfig::adversarial(100), &engine);
            for s in 1..=50 {
                l.send(Side::A, &pkt(s));
            }
            let mut got = Vec::new();
            loop {
                match l.recv(Side::B) {
                    Ok(Some(p)) => got.push(p.src_port),
                    Ok(None) => break,
                    Err(_) => got.push(0),
                }
            }
            (got, l.stats(), engine.trace_text())
        };
        let (a, b) = (run(), run());
        assert!(
            a.2.contains("[t=") && a.2.contains("link+"),
            "link faults must land in the shared trace: {}",
            a.2
        );
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = || {
            let (l, _) = link(FaultConfig::adversarial(100));
            for s in 1..=50 {
                l.send(Side::A, &pkt(s));
            }
            let mut got = Vec::new();
            loop {
                match l.recv(Side::B) {
                    Ok(Some(p)) => got.push(p.src_port),
                    Ok(None) => break,
                    Err(_) => got.push(0),
                }
            }
            (got, l.stats())
        };
        assert_eq!(run(), run());
    }
}
