//! The TCP protocol engine: a deterministic state machine.
//!
//! Pure state + packet-in/packets-out functions — no IO, no clocks of its
//! own (time is passed in, from the simulated clock). Covers the
//! three-way handshake, cumulative acknowledgement, out-of-order segment
//! reassembly, timeout retransmission with exponential backoff, RST
//! handling, and the FIN teardown handshake. Segments carry at most
//! [`MAX_PAYLOAD`] bytes.
//!
//! Hardened against an adversarial link (`crate::fault::FaultyLink`):
//!
//! - **RST window check** — a reset is honoured only when it is plausibly
//!   from the peer: `seq == rcv_nxt` in synchronized states, an ACK
//!   covering our SYN in `SynSent`, never in `Listen`. Blind RSTs are
//!   dropped.
//! - **ACK window check** — only ACKs in `(snd_una, snd_nxt]` retire
//!   in-flight data; stale duplicates and ghost ACKs beyond anything sent
//!   are counted and dropped.
//! - **Exponential RTO backoff with a retry budget** — each in-flight
//!   segment may be retransmitted at most [`MAX_RETRIES`] times, with the
//!   effective RTO doubling per backoff round (capped at
//!   `RTO << MAX_BACKOFF_SHIFT`); exhausting the budget moves the
//!   connection to a reportable failed-`Closed` state and stops all
//!   transmission.
//! - **TIME_WAIT expiry** — [`TIME_WAIT_NS`] after entering `TimeWait`
//!   the PCB transitions to `Closed` on its own `tick`, so socket layers
//!   can reap it.
//! - **Bounded reassembly** — the out-of-order buffer holds at most
//!   [`OOO_BUDGET`] segments, purges entries covered by cumulative
//!   advances, and never scans by smallest numeric key (which is wrong
//!   across sequence wraparound).
//!
//! Both the legacy and the modular socket layers drive this same engine;
//! the roadmap experiment varies only the interface around it.

use std::collections::BTreeMap;

use crate::packet::{flags, proto, Packet, MAX_PAYLOAD};

/// TCP connection states (the classic diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TcpState {
    Closed,
    Listen,
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    TimeWait,
}

/// Default retransmission timeout (simulated ns).
pub const DEFAULT_RTO_NS: u64 = 200_000_000;

/// Maximum retransmissions of a single segment before the connection is
/// declared failed.
pub const MAX_RETRIES: u32 = 8;

/// Cap on the exponential backoff: the effective RTO never exceeds
/// `rto_ns << MAX_BACKOFF_SHIFT`.
pub const MAX_BACKOFF_SHIFT: u32 = 6;

/// How long a PCB lingers in `TimeWait` before reaching `Closed` (the
/// 2×MSL analogue, in simulated ns).
pub const TIME_WAIT_NS: u64 = 4 * DEFAULT_RTO_NS;

/// Maximum segments buffered out of order; arrivals beyond the budget are
/// dropped (the sender retransmits them once the gap heals).
pub const OOO_BUDGET: usize = 64;

/// Per-connection event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpCounters {
    /// Segments retransmitted after an RTO expiry.
    pub retransmits: u64,
    /// ACKs dropped for being outside `(snd_una, snd_nxt]` — stale
    /// duplicates and ghost ACKs for data never sent.
    pub dup_acks_dropped: u64,
    /// Segments accepted into the out-of-order buffer.
    pub ooo_buffered: u64,
    /// Out-of-order entries discarded: covered by a cumulative advance,
    /// or refused because the buffer was at budget.
    pub ooo_purged: u64,
    /// RST packets this endpoint emitted.
    pub resets_sent: u64,
    /// RST packets this endpoint accepted (blind RSTs are not counted;
    /// they are dropped).
    pub resets_received: u64,
}

/// A segment awaiting acknowledgement.
#[derive(Debug, Clone)]
struct InFlight {
    seq: u32,
    data: Vec<u8>,
    /// The flags the segment was originally sent with — retransmissions
    /// reuse them verbatim instead of re-deriving (and mis-deriving) them
    /// from the current connection state.
    flags: u8,
    sent_at: u64,
    retries: u32,
}

impl InFlight {
    /// Sequence space the segment occupies (payload plus SYN/FIN).
    fn occupied(&self) -> u32 {
        self.data.len() as u32
            + u32::from(self.flags & flags::SYN != 0)
            + u32::from(self.flags & flags::FIN != 0)
    }
}

/// The TCP protocol control block.
#[derive(Debug)]
pub struct TcpPcb {
    /// Connection state.
    pub state: TcpState,
    /// Local port.
    pub local_port: u16,
    /// Remote port (0 until known).
    pub remote_port: u16,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Oldest unacknowledged sequence number.
    pub snd_una: u32,
    /// Next sequence number expected from the peer.
    pub rcv_nxt: u32,
    /// In-order received bytes, ready for the application.
    recv_ready: Vec<u8>,
    /// Out-of-order segments keyed by sequence number.
    ooo: BTreeMap<u32, Vec<u8>>,
    /// Unacknowledged segments for retransmission.
    in_flight: Vec<InFlight>,
    /// Base retransmission timeout (doubled per backoff round).
    pub rto_ns: u64,
    /// Current backoff round: effective RTO is `rto_ns << backoff_shift`.
    backoff_shift: u32,
    /// When the `TimeWait` lingering ends (valid while in `TimeWait`).
    time_wait_until: u64,
    /// True once the connection died abnormally (retry budget exhausted
    /// or reset by the peer) rather than via an orderly FIN handshake.
    failed: bool,
    /// Event counters.
    pub counters: TcpCounters,
}

impl TcpPcb {
    /// A closed PCB bound to `local_port` with initial sequence `iss`.
    pub fn new(local_port: u16, iss: u32) -> TcpPcb {
        TcpPcb {
            state: TcpState::Closed,
            local_port,
            remote_port: 0,
            snd_nxt: iss,
            snd_una: iss,
            rcv_nxt: 0,
            recv_ready: Vec::new(),
            ooo: BTreeMap::new(),
            in_flight: Vec::new(),
            rto_ns: DEFAULT_RTO_NS,
            backoff_shift: 0,
            time_wait_until: 0,
            failed: false,
            counters: TcpCounters::default(),
        }
    }

    /// Moves to LISTEN.
    pub fn listen(&mut self) {
        self.state = TcpState::Listen;
    }

    /// True once the connection died abnormally: the retry budget ran out
    /// or the peer reset it. `Closed` + `!is_failed()` is an orderly end.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// True when the PCB is finished and the socket layer may reap it: it
    /// reached `Closed` after actually being connected (a fresh, never-used
    /// PCB is also `Closed` but not reapable).
    pub fn is_defunct(&self) -> bool {
        self.state == TcpState::Closed && (self.remote_port != 0 || self.failed)
    }

    /// The effective retransmission timeout under the current backoff.
    pub fn effective_rto(&self) -> u64 {
        self.rto_ns
            .saturating_mul(1u64 << self.backoff_shift.min(MAX_BACKOFF_SHIFT))
    }

    /// Every transition into `Closed` funnels here: retransmission state
    /// is cleared so a dead connection can never emit another segment.
    fn enter_closed(&mut self, failed: bool) {
        self.state = TcpState::Closed;
        self.in_flight.clear();
        self.counters.ooo_purged += self.ooo.len() as u64;
        self.ooo.clear();
        self.failed |= failed;
    }

    fn mk(&self, fl: u8) -> Packet {
        Packet {
            proto: proto::TCP,
            flags: fl,
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            payload: Vec::new(),
        }
    }

    fn track(&mut self, seq: u32, data: Vec<u8>, fl: u8, now: u64) {
        self.in_flight.push(InFlight {
            seq,
            data,
            flags: fl,
            sent_at: now,
            retries: 0,
        });
    }

    /// Initiates a connection to `remote_port`; returns the SYN.
    pub fn connect(&mut self, remote_port: u16, now: u64) -> Packet {
        self.remote_port = remote_port;
        self.state = TcpState::SynSent;
        let syn = self.mk(flags::SYN);
        self.track(self.snd_nxt, Vec::new(), flags::SYN, now);
        self.snd_nxt = self.snd_nxt.wrapping_add(1); // SYN consumes one.
        syn
    }

    /// Queues `data` for transmission; returns the segments to send.
    pub fn send(&mut self, data: &[u8], now: u64) -> Vec<Packet> {
        if self.state != TcpState::Established && self.state != TcpState::CloseWait {
            return Vec::new();
        }
        let mut out = Vec::new();
        for chunk in data.chunks(MAX_PAYLOAD) {
            let mut pkt = self.mk(flags::ACK);
            pkt.payload = chunk.to_vec();
            self.track(self.snd_nxt, chunk.to_vec(), flags::ACK, now);
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk.len() as u32);
            out.push(pkt);
        }
        out
    }

    /// Takes the bytes received in order so far.
    pub fn take_received(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.recv_ready)
    }

    /// Bytes available without taking them.
    pub fn available(&self) -> usize {
        self.recv_ready.len()
    }

    /// Segments currently buffered out of order (tests, stats).
    pub fn ooo_len(&self) -> usize {
        self.ooo.len()
    }

    /// Begins an active close; returns the FIN if one can be sent now.
    pub fn close(&mut self, now: u64) -> Option<Packet> {
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            TcpState::SynSent | TcpState::Listen | TcpState::Closed => {
                // Nothing to hand over: drop any in-flight SYN so a closed
                // socket never keeps retransmitting.
                self.enter_closed(false);
                return None;
            }
            _ => return None,
        }
        let fin = self.mk(flags::FIN | flags::ACK);
        self.track(self.snd_nxt, Vec::new(), flags::FIN | flags::ACK, now);
        self.snd_nxt = self.snd_nxt.wrapping_add(1); // FIN consumes one.
        Some(fin)
    }

    /// Processes a cumulative ACK. Only values in `(snd_una, snd_nxt]`
    /// retire data; anything else is dropped (and counted) so a stale or
    /// forged ACK can never advance `snd_una` past data actually sent.
    /// Returns true when the ACK made forward progress.
    fn process_ack(&mut self, ack: u32) -> bool {
        if !seq_lt(self.snd_una, ack) {
            // Old news. A duplicate of the current edge while data is
            // outstanding is the classic dup-ack; either way, drop it.
            if !self.in_flight.is_empty() {
                self.counters.dup_acks_dropped += 1;
            }
            return false;
        }
        if seq_lt(self.snd_nxt, ack) {
            // Ghost ACK for bytes never sent: drop, never retire by it.
            self.counters.dup_acks_dropped += 1;
            return false;
        }
        self.in_flight
            .retain(|seg| seq_lt(ack, seg.seq.wrapping_add(seg.occupied())));
        self.snd_una = ack;
        // Forward progress: the path is alive again. Reset the backoff
        // and every surviving segment's retry count — the budget bounds
        // consecutive timeouts *without* progress, so a long stream
        // behind a head-of-line loss doesn't burn out its tail (RFC 6298
        // restarts the retransmission timer on each new ACK).
        self.backoff_shift = 0;
        for seg in &mut self.in_flight {
            seg.retries = 0;
        }
        true
    }

    /// Delivers contiguous out-of-order entries and purges entries the
    /// cumulative advance has covered. Wrap-safe: entries are found by
    /// direct `rcv_nxt` lookup, never by smallest numeric key.
    fn drain_ooo(&mut self) {
        loop {
            if let Some(data) = self.ooo.remove(&self.rcv_nxt) {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(data.len() as u32);
                self.recv_ready.extend_from_slice(&data);
                continue;
            }
            // Purge entries now behind rcv_nxt (a retransmission filled
            // the gap past them); deliver the unseen tail of a straddler.
            let mut advanced = false;
            let behind: Vec<u32> = self
                .ooo
                .keys()
                .copied()
                .filter(|&s| seq_lt(s, self.rcv_nxt))
                .collect();
            for s in behind {
                let data = self.ooo.remove(&s).expect("key just listed");
                let end = s.wrapping_add(data.len() as u32);
                if seq_lt(self.rcv_nxt, end) {
                    let skip = self.rcv_nxt.wrapping_sub(s) as usize;
                    self.recv_ready.extend_from_slice(&data[skip..]);
                    self.rcv_nxt = end;
                    advanced = true;
                }
                self.counters.ooo_purged += 1;
            }
            if !advanced {
                break;
            }
        }
    }

    fn absorb_payload(&mut self, seq: u32, payload: Vec<u8>) {
        if payload.is_empty() {
            return;
        }
        let end = seq.wrapping_add(payload.len() as u32);
        if seq == self.rcv_nxt {
            self.rcv_nxt = end;
            self.recv_ready.extend_from_slice(&payload);
            self.drain_ooo();
        } else if seq_lt(self.rcv_nxt, seq) {
            if self.ooo.len() >= OOO_BUDGET && !self.ooo.contains_key(&seq) {
                // At budget: refuse, the sender will retransmit.
                self.counters.ooo_purged += 1;
                return;
            }
            if self.ooo.insert(seq, payload).is_none() {
                self.counters.ooo_buffered += 1;
            }
        } else if seq_lt(self.rcv_nxt, end) {
            // Straddles rcv_nxt: the head was already delivered, take the
            // tail.
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            self.recv_ready.extend_from_slice(&payload[skip..]);
            self.rcv_nxt = end;
            self.drain_ooo();
        }
        // Wholly old (duplicate) data is dropped.
    }

    /// True when an RST is acceptable in the current state — the defence
    /// against blind (off-path) resets.
    fn rst_acceptable(&self, pkt: &Packet) -> bool {
        match self.state {
            // A listener is not a connection; a reset cannot kill it.
            TcpState::Listen | TcpState::Closed => false,
            // No sequence sync yet: the RST must acknowledge our SYN.
            TcpState::SynSent => pkt.flags & flags::ACK != 0 && pkt.ack == self.snd_nxt,
            // Synchronized: the RST must sit exactly at the receive edge.
            _ => pkt.seq == self.rcv_nxt,
        }
    }

    /// Handles an incoming packet; returns the packets to send in response.
    pub fn on_packet(&mut self, pkt: &Packet, now: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        if pkt.flags & flags::RST != 0 {
            if self.rst_acceptable(pkt) {
                self.counters.resets_received += 1;
                self.enter_closed(true);
            }
            return out;
        }
        match self.state {
            TcpState::Listen => {
                if pkt.flags & flags::SYN != 0 {
                    self.remote_port = pkt.src_port;
                    self.rcv_nxt = pkt.seq.wrapping_add(1);
                    self.state = TcpState::SynRcvd;
                    let synack = self.mk(flags::SYN | flags::ACK);
                    self.track(self.snd_nxt, Vec::new(), flags::SYN | flags::ACK, now);
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    out.push(synack);
                }
            }
            TcpState::SynSent => {
                if pkt.flags & (flags::SYN | flags::ACK) == flags::SYN | flags::ACK
                    && pkt.ack == self.snd_nxt
                {
                    self.rcv_nxt = pkt.seq.wrapping_add(1);
                    self.process_ack(pkt.ack);
                    self.state = TcpState::Established;
                    out.push(self.mk(flags::ACK));
                }
            }
            TcpState::SynRcvd => {
                // Only an ACK that covers our in-flight SYN-ACK completes
                // the handshake; a stale ACK (e.g. from an old connection)
                // must not conjure an Established connection.
                if pkt.flags & flags::ACK != 0 && pkt.ack == self.snd_nxt {
                    self.process_ack(pkt.ack);
                    self.state = TcpState::Established;
                    // Fall through into data handling for piggybacked data.
                    self.absorb_payload(pkt.seq, pkt.payload.clone());
                    if !pkt.payload.is_empty() {
                        out.push(self.mk(flags::ACK));
                    }
                } else if pkt.flags & flags::SYN != 0 && pkt.seq.wrapping_add(1) == self.rcv_nxt {
                    // The peer retransmitted its SYN: our SYN-ACK was lost.
                    // tick() will resend it; nothing to do here.
                }
            }
            TcpState::Established
            | TcpState::FinWait1
            | TcpState::FinWait2
            | TcpState::CloseWait
            | TcpState::LastAck
            | TcpState::TimeWait => {
                if pkt.flags & flags::ACK != 0 {
                    self.process_ack(pkt.ack);
                    // State progress driven by our FIN being acknowledged.
                    if self.in_flight.is_empty() {
                        match self.state {
                            TcpState::FinWait1 => self.state = TcpState::FinWait2,
                            TcpState::LastAck => self.enter_closed(false),
                            _ => {}
                        }
                    }
                }
                if self.state == TcpState::Closed {
                    return out;
                }
                self.absorb_payload(pkt.seq, pkt.payload.clone());
                if pkt.flags & flags::FIN != 0 && pkt.seq == self.rcv_nxt {
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                    match self.state {
                        TcpState::Established => self.state = TcpState::CloseWait,
                        TcpState::FinWait1 | TcpState::FinWait2 => {
                            self.state = TcpState::TimeWait;
                            self.time_wait_until = now + TIME_WAIT_NS;
                        }
                        _ => {}
                    }
                    out.push(self.mk(flags::ACK));
                } else if !pkt.payload.is_empty() || pkt.flags & flags::FIN != 0 {
                    // Re-ACK data and duplicate FINs so a peer whose
                    // FIN-ACK was lost can finish its LastAck instead of
                    // burning its retry budget.
                    out.push(self.mk(flags::ACK));
                }
            }
            TcpState::Closed => {
                let mut rst = self.mk(flags::RST);
                rst.dst_port = pkt.src_port;
                self.counters.resets_sent += 1;
                out.push(rst);
            }
        }
        out
    }

    /// Timer processing: TIME_WAIT expiry, then timeout retransmission
    /// under exponential backoff. A segment that exhausts [`MAX_RETRIES`]
    /// fails the whole connection — it goes to `Closed` (reporting
    /// [`TcpPcb::is_failed`]) and transmission stops for good.
    pub fn tick(&mut self, now: u64) -> Vec<Packet> {
        if self.state == TcpState::TimeWait && now >= self.time_wait_until {
            self.enter_closed(false);
            return Vec::new();
        }
        if self.state == TcpState::Closed {
            return Vec::new();
        }
        let rto = self.effective_rto();
        let mut out = Vec::new();
        let mut resent = false;
        for i in 0..self.in_flight.len() {
            if now.saturating_sub(self.in_flight[i].sent_at) < rto {
                continue;
            }
            if self.in_flight[i].retries >= MAX_RETRIES {
                // Retry budget exhausted: the path is declared dead.
                self.enter_closed(true);
                return Vec::new();
            }
            self.in_flight[i].retries += 1;
            self.in_flight[i].sent_at = now;
            self.counters.retransmits += 1;
            resent = true;
            let seg = &self.in_flight[i];
            out.push(Packet {
                proto: proto::TCP,
                flags: seg.flags,
                src_port: self.local_port,
                dst_port: self.remote_port,
                seq: seg.seq,
                ack: self.rcv_nxt,
                payload: seg.data.clone(),
            });
        }
        if resent && self.backoff_shift < MAX_BACKOFF_SHIFT {
            self.backoff_shift += 1;
        }
        out
    }

    /// True when all sent data has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.in_flight.is_empty()
    }
}

/// Serial-number "less than" for 32-bit sequence space.
fn seq_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Delivers every packet in `pkts` to `dst`, returning responses.
    fn deliver(dst: &mut TcpPcb, pkts: Vec<Packet>, now: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        for p in pkts {
            out.extend(dst.on_packet(&p, now));
        }
        out
    }

    fn established_pair() -> (TcpPcb, TcpPcb) {
        let mut a = TcpPcb::new(1000, 100);
        let mut b = TcpPcb::new(80, 9000);
        b.listen();
        let syn = a.connect(80, 0);
        let synack = b.on_packet(&syn, 0);
        let ack = deliver(&mut a, synack, 0);
        deliver(&mut b, ack, 0);
        assert_eq!(a.state, TcpState::Established);
        assert_eq!(b.state, TcpState::Established);
        (a, b)
    }

    #[test]
    fn three_way_handshake() {
        let (_a, _b) = established_pair();
    }

    #[test]
    fn data_transfer_with_ack() {
        let (mut a, mut b) = established_pair();
        let segs = a.send(b"hello tcp", 1);
        assert_eq!(segs.len(), 1);
        let acks = deliver(&mut b, segs, 1);
        assert_eq!(b.take_received(), b"hello tcp");
        deliver(&mut a, acks, 1);
        assert!(a.all_acked());
    }

    #[test]
    fn large_send_is_segmented() {
        let (mut a, mut b) = established_pair();
        let data = vec![7u8; MAX_PAYLOAD * 3 + 10];
        let segs = a.send(&data, 1);
        assert_eq!(segs.len(), 4);
        let acks = deliver(&mut b, segs, 1);
        assert_eq!(b.take_received(), data);
        deliver(&mut a, acks, 1);
        assert!(a.all_acked());
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let (mut a, mut b) = established_pair();
        let mut segs = a.send(&[vec![1u8; 100], vec![2u8; 100]].concat(), 1);
        // Deliver the second segment first... need two segments; 200 bytes
        // fits one segment, so send two separate chunks instead.
        assert_eq!(segs.len(), 1);
        let seg1 = segs.remove(0);
        let seg2 = a.send(&[3u8; 50], 1).remove(0);
        b.on_packet(&seg2, 1);
        assert_eq!(b.available(), 0, "gap: nothing delivered yet");
        b.on_packet(&seg1, 1);
        let got = b.take_received();
        assert_eq!(got.len(), 250);
        assert_eq!(&got[200..], &[3u8; 50][..]);
    }

    #[test]
    fn duplicate_segment_ignored() {
        let (mut a, mut b) = established_pair();
        let seg = a.send(b"once", 1).remove(0);
        b.on_packet(&seg, 1);
        b.on_packet(&seg, 1);
        assert_eq!(b.take_received(), b"once");
    }

    #[test]
    fn retransmission_after_timeout() {
        let (mut a, mut b) = established_pair();
        let segs = a.send(b"lost", 1);
        drop(segs); // The wire ate them.
        assert!(a.tick(1 + DEFAULT_RTO_NS / 2).is_empty(), "not yet");
        let rts = a.tick(1 + DEFAULT_RTO_NS);
        assert_eq!(rts.len(), 1);
        assert_eq!(a.counters.retransmits, 1);
        let acks = deliver(&mut b, rts, 2);
        assert_eq!(b.take_received(), b"lost");
        deliver(&mut a, acks, 2);
        assert!(a.all_acked());
    }

    #[test]
    fn fin_teardown_both_directions() {
        let (mut a, mut b) = established_pair();
        let fin = a.close(1).expect("fin");
        assert_eq!(a.state, TcpState::FinWait1);
        let acks = b.on_packet(&fin, 1);
        assert_eq!(b.state, TcpState::CloseWait);
        deliver(&mut a, acks, 1);
        assert!(matches!(a.state, TcpState::FinWait2 | TcpState::TimeWait));
        let fin2 = b.close(2).expect("fin2");
        assert_eq!(b.state, TcpState::LastAck);
        let acks2 = a.on_packet(&fin2, 2);
        assert_eq!(a.state, TcpState::TimeWait);
        deliver(&mut b, acks2, 2);
        assert_eq!(b.state, TcpState::Closed);
        assert!(!b.is_failed(), "orderly close is not a failure");
    }

    #[test]
    fn rst_at_the_receive_edge_kills_connection() {
        let (mut a, _b) = established_pair();
        let mut rst = Packet::new(proto::TCP, 80, 1000);
        rst.flags = flags::RST;
        rst.seq = a.rcv_nxt;
        a.on_packet(&rst, 1);
        assert_eq!(a.state, TcpState::Closed);
        assert!(a.is_failed());
        assert_eq!(a.counters.resets_received, 1);
    }

    /// Regression (blind RST): an off-path attacker who does not know
    /// `rcv_nxt` cannot reset an established connection.
    #[test]
    fn blind_rst_with_wrong_seq_is_ignored() {
        let (mut a, _b) = established_pair();
        for bogus in [
            0u32,
            1,
            a.rcv_nxt.wrapping_add(1),
            a.rcv_nxt.wrapping_sub(1),
        ] {
            let mut rst = Packet::new(proto::TCP, 80, 1000);
            rst.flags = flags::RST;
            rst.seq = bogus;
            a.on_packet(&rst, 1);
            assert_eq!(a.state, TcpState::Established, "blind RST seq={bogus}");
        }
        assert_eq!(a.counters.resets_received, 0);
    }

    /// Regression (blind RST): a listener survives any RST — it is not a
    /// connection and must keep accepting new SYNs.
    #[test]
    fn rst_cannot_kill_a_listener() {
        let mut srv = TcpPcb::new(80, 9000);
        srv.listen();
        for seq in [0u32, srv.rcv_nxt, 12345] {
            let mut rst = Packet::new(proto::TCP, 99, 80);
            rst.flags = flags::RST;
            rst.seq = seq;
            srv.on_packet(&rst, 0);
            assert_eq!(srv.state, TcpState::Listen);
        }
        // Still accepts a connection afterwards.
        let mut cli = TcpPcb::new(1000, 100);
        let syn = cli.connect(80, 0);
        assert_eq!(srv.on_packet(&syn, 0).len(), 1);
        assert_eq!(srv.state, TcpState::SynRcvd);
    }

    /// Regression (stale ACK in SynRcvd): an ACK that does not cover the
    /// in-flight SYN-ACK must not establish the connection.
    #[test]
    fn stale_ack_does_not_establish_from_syn_rcvd() {
        let mut srv = TcpPcb::new(80, 9000);
        srv.listen();
        let mut cli = TcpPcb::new(1000, 100);
        let syn = cli.connect(80, 0);
        srv.on_packet(&syn, 0);
        assert_eq!(srv.state, TcpState::SynRcvd);
        // ACK from an old incarnation: acknowledges nothing of ours.
        let mut stale = Packet::new(proto::TCP, 1000, 80);
        stale.flags = flags::ACK;
        stale.ack = srv.snd_nxt.wrapping_sub(1); // covers the ISS, not the SYN-ACK
        stale.seq = srv.rcv_nxt;
        srv.on_packet(&stale, 0);
        assert_eq!(srv.state, TcpState::SynRcvd, "stale ACK must not establish");
        // The genuine ACK does.
        let mut good = Packet::new(proto::TCP, 1000, 80);
        good.flags = flags::ACK;
        good.ack = srv.snd_nxt;
        good.seq = srv.rcv_nxt;
        srv.on_packet(&good, 0);
        assert_eq!(srv.state, TcpState::Established);
    }

    /// Regression (ghost ACK): an ACK beyond `snd_nxt` must not retire
    /// in-flight segments or advance `snd_una` past data actually sent.
    #[test]
    fn ghost_ack_beyond_snd_nxt_is_dropped() {
        let (mut a, _b) = established_pair();
        a.send(b"unacked payload", 1);
        let (una, nxt) = (a.snd_una, a.snd_nxt);
        let mut ghost = Packet::new(proto::TCP, 80, 1000);
        ghost.flags = flags::ACK;
        ghost.ack = nxt.wrapping_add(5000);
        ghost.seq = a.rcv_nxt;
        a.on_packet(&ghost, 1);
        assert_eq!(a.snd_una, una, "snd_una must not move past sent data");
        assert!(!a.all_acked(), "in-flight data must not be ghost-retired");
        assert_eq!(a.counters.dup_acks_dropped, 1);
        // The retransmission machinery still heals the stream.
        assert_eq!(a.tick(1 + DEFAULT_RTO_NS).len(), 1);
    }

    /// Regression (stale duplicate ACK): an ACK at or below `snd_una`
    /// while data is outstanding is dropped and counted.
    #[test]
    fn duplicate_ack_is_dropped_and_counted() {
        let (mut a, _b) = established_pair();
        a.send(b"data", 1);
        let mut dup = Packet::new(proto::TCP, 80, 1000);
        dup.flags = flags::ACK;
        dup.ack = a.snd_una;
        dup.seq = a.rcv_nxt;
        a.on_packet(&dup, 1);
        a.on_packet(&dup, 1);
        assert_eq!(a.counters.dup_acks_dropped, 2);
        assert!(!a.all_acked());
    }

    /// Regression (close in SynSent): closing a half-open socket must stop
    /// SYN retransmission — the old engine kept retransmitting the SYN
    /// (re-flagged SYN|ACK) from a closed socket forever.
    #[test]
    fn close_in_syn_sent_stops_retransmission() {
        let mut a = TcpPcb::new(1000, 100);
        a.connect(80, 0);
        assert!(a.close(1).is_none());
        assert_eq!(a.state, TcpState::Closed);
        assert!(a.all_acked(), "in-flight SYN cleared on close");
        for round in 1..=20u64 {
            assert!(
                a.tick(round * DEFAULT_RTO_NS).is_empty(),
                "closed socket retransmitted at round {round}"
            );
        }
        assert_eq!(a.counters.retransmits, 0);
    }

    /// Regression (close in Listen): same contract for a listener.
    #[test]
    fn close_in_listen_is_quiet() {
        let mut srv = TcpPcb::new(80, 9000);
        srv.listen();
        assert!(srv.close(0).is_none());
        assert_eq!(srv.state, TcpState::Closed);
        assert!(srv.tick(DEFAULT_RTO_NS * 2).is_empty());
    }

    /// Regression (ooo purge): entries below `rcv_nxt` — covered by a
    /// retransmission that filled the gap — are purged on the cumulative
    /// advance instead of accumulating forever.
    #[test]
    fn covered_ooo_entries_are_purged() {
        let (mut a, mut b) = established_pair();
        let seg1 = a.send(&[1u8; 100], 1).remove(0);
        let seg2 = a.send(&[2u8; 100], 1).remove(0);
        let seg3 = a.send(&[3u8; 100], 1).remove(0);
        // seg2 and seg3 arrive out of order and are buffered.
        b.on_packet(&seg2, 1);
        b.on_packet(&seg3, 1);
        assert_eq!(b.ooo_len(), 2);
        assert_eq!(b.counters.ooo_buffered, 2);
        // The gap heals: everything drains, nothing lingers.
        b.on_packet(&seg1, 1);
        assert_eq!(b.ooo_len(), 0);
        assert_eq!(b.take_received().len(), 300);
        // A late retransmission of seg2 (wholly old) does not re-buffer.
        b.on_packet(&seg2, 2);
        assert_eq!(b.ooo_len(), 0);
    }

    /// Regression (ooo budget): the reassembly buffer is bounded; arrivals
    /// beyond the budget are refused, not hoarded.
    #[test]
    fn ooo_buffer_is_capped() {
        let (mut a, mut b) = established_pair();
        // One unsent head segment keeps everything after it out of order.
        let _head = a.send(&[0u8; 10], 1).remove(0);
        for i in 0..OOO_BUDGET + 8 {
            let seg = a.send(&[i as u8; 10], 1).remove(0);
            b.on_packet(&seg, 1);
        }
        assert_eq!(b.ooo_len(), OOO_BUDGET);
        assert!(b.counters.ooo_purged >= 8, "over-budget arrivals refused");
    }

    /// Tentpole: the RTO backs off exponentially and a segment that
    /// exhausts its retry budget fails the connection cleanly — no
    /// retransmission continues past `Closed`.
    #[test]
    fn retry_budget_exhaustion_fails_the_connection() {
        let (mut a, _b) = established_pair();
        a.send(b"into the void", 1);
        let mut now = 1u64;
        let mut rts = 0u64;
        let mut last_rto = 0u64;
        for _ in 0..MAX_RETRIES * 2 {
            let rto = a.effective_rto();
            assert!(rto >= last_rto, "backoff never shrinks without progress");
            last_rto = rto;
            now += rto;
            let pkts = a.tick(now);
            if a.state == TcpState::Closed {
                break;
            }
            rts += pkts.len() as u64;
        }
        assert_eq!(a.state, TcpState::Closed);
        assert!(a.is_failed(), "budget exhaustion is a reported failure");
        assert!(a.is_defunct());
        assert_eq!(rts, u64::from(MAX_RETRIES));
        assert_eq!(a.counters.retransmits, u64::from(MAX_RETRIES));
        // Dead means dead: no further transmission, ever.
        for i in 1..=10u64 {
            assert!(a.tick(now + i * DEFAULT_RTO_NS).is_empty());
        }
    }

    /// Tentpole: the backoff resets once an ACK makes forward progress.
    #[test]
    fn backoff_resets_on_forward_progress() {
        let (mut a, mut b) = established_pair();
        a.send(b"first", 1);
        let mut now = 1 + a.effective_rto();
        let rts = a.tick(now);
        assert!(a.effective_rto() > DEFAULT_RTO_NS, "backed off");
        let acks = deliver(&mut b, rts, now);
        now += 1;
        deliver(&mut a, acks, now);
        assert_eq!(a.effective_rto(), DEFAULT_RTO_NS, "progress resets backoff");
    }

    /// Tentpole: TIME_WAIT expires via tick, so the PCB reaches `Closed`
    /// and can be reaped.
    #[test]
    fn time_wait_expires_to_closed() {
        let (mut a, mut b) = established_pair();
        let fin = a.close(1).expect("fin");
        let acks = b.on_packet(&fin, 1);
        deliver(&mut a, acks, 1);
        let fin2 = b.close(2).expect("fin2");
        let acks2 = a.on_packet(&fin2, 2);
        deliver(&mut b, acks2, 2);
        assert_eq!(a.state, TcpState::TimeWait);
        assert!(a.tick(2 + TIME_WAIT_NS / 2).is_empty());
        assert_eq!(a.state, TcpState::TimeWait, "lingering");
        a.tick(2 + TIME_WAIT_NS + 1);
        assert_eq!(a.state, TcpState::Closed);
        assert!(!a.is_failed());
        assert!(a.is_defunct(), "reapable after expiry");
    }

    #[test]
    fn packet_to_closed_socket_gets_rst() {
        let mut closed = TcpPcb::new(7, 1);
        let mut probe = Packet::new(proto::TCP, 99, 7);
        probe.flags = flags::ACK;
        let out = closed.on_packet(&probe, 0);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].flags & flags::RST, 0);
        assert_eq!(closed.counters.resets_sent, 1);
    }

    #[test]
    fn retransmitted_segments_keep_their_original_flags() {
        // A SYN-ACK retransmits as a SYN-ACK even after states move on.
        let mut srv = TcpPcb::new(80, 9000);
        srv.listen();
        let mut cli = TcpPcb::new(1000, 100);
        let syn = cli.connect(80, 0);
        srv.on_packet(&syn, 0);
        let rts = srv.tick(DEFAULT_RTO_NS);
        assert_eq!(rts.len(), 1);
        assert_eq!(rts[0].flags, flags::SYN | flags::ACK);
    }

    #[test]
    fn seq_comparison_wraps() {
        assert!(seq_lt(u32::MAX - 1, 2));
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
    }

    #[test]
    fn reassembly_works_across_sequence_wraparound() {
        // Start the sender near the top of the sequence space so the
        // stream wraps; the old smallest-numeric-key drain scan wedged
        // here.
        let mut a = TcpPcb::new(1000, u32::MAX - 120);
        let mut b = TcpPcb::new(80, 9000);
        b.listen();
        let syn = a.connect(80, 0);
        let synack = b.on_packet(&syn, 0);
        let ack = deliver(&mut a, synack, 0);
        deliver(&mut b, ack, 0);
        let seg1 = a.send(&[1u8; 100], 1).remove(0);
        let seg2 = a.send(&[2u8; 100], 1).remove(0);
        let seg3 = a.send(&[3u8; 100], 1).remove(0);
        // seg2 (pre-wrap) and seg3 (post-wrap) buffer out of order; the
        // numeric BTreeMap order of their keys is inverted.
        b.on_packet(&seg3, 1);
        b.on_packet(&seg2, 1);
        assert_eq!(b.available(), 0);
        b.on_packet(&seg1, 1);
        let got = b.take_received();
        assert_eq!(got.len(), 300);
        assert_eq!(&got[..100], &[1u8; 100][..]);
        assert_eq!(&got[100..200], &[2u8; 100][..]);
        assert_eq!(&got[200..], &[3u8; 100][..]);
        assert_eq!(b.ooo_len(), 0);
    }

    #[test]
    fn send_before_established_is_dropped() {
        let mut a = TcpPcb::new(1, 0);
        assert!(a.send(b"nope", 0).is_empty());
    }
}
