//! The TCP protocol engine: a deterministic state machine.
//!
//! Pure state + packet-in/packets-out functions — no IO, no clocks of its
//! own (time is passed in, from the simulated clock). Covers the
//! three-way handshake, cumulative acknowledgement, out-of-order segment
//! reassembly, timeout retransmission with exponential backoff, RST
//! handling, and the FIN teardown handshake. Segments carry at most
//! [`MAX_PAYLOAD`] bytes.
//!
//! Hardened against an adversarial link (`crate::fault::FaultyLink`):
//!
//! - **RST window check** — a reset is honoured only when it is plausibly
//!   from the peer: `seq == rcv_nxt` in synchronized states, an ACK
//!   covering our SYN in `SynSent`, never in `Listen`. Blind RSTs are
//!   dropped.
//! - **ACK window check** — only ACKs in `(snd_una, snd_nxt]` retire
//!   in-flight data; stale duplicates and ghost ACKs beyond anything sent
//!   are counted and dropped.
//! - **Exponential RTO backoff with a retry budget** — each in-flight
//!   segment may be retransmitted at most [`MAX_RETRIES`] times, with the
//!   effective RTO doubling per backoff round (capped at
//!   `RTO << MAX_BACKOFF_SHIFT`); exhausting the budget moves the
//!   connection to a reportable failed-`Closed` state and stops all
//!   transmission.
//! - **TIME_WAIT expiry** — [`TIME_WAIT_NS`] after entering `TimeWait`
//!   the PCB transitions to `Closed` on its own `tick`, so socket layers
//!   can reap it.
//! - **Bounded reassembly** — the out-of-order buffer holds at most
//!   [`OOO_BUDGET`] segments, purges entries covered by cumulative
//!   advances, and never scans by smallest numeric key (which is wrong
//!   across sequence wraparound).
//!
//! Scaled for server duty:
//!
//! - **Real passive open** — [`TcpListener`] spawns one child PCB per
//!   peer into bounded SYN/accept queues ([`TcpListener::accept`] pops
//!   them FIFO), instead of mutating a lone PCB into the connection and
//!   silently ignoring every concurrent SYN.
//! - **Slow start / AIMD congestion control** — a cwnd-limited send
//!   window ([`INIT_CWND`] growing one segment per ACK below
//!   [`INIT_SSTHRESH`], additively above it, collapsing to one segment
//!   on RTO) gates a send buffer; `send` queues and emits what the
//!   window admits, ACK arrival flushes the rest.
//! - **Delayed ACKs** — a lone in-order segment waits up to
//!   [`DELAYED_ACK_NS`] for a piggyback or a second segment before a
//!   pure ACK is emitted from `tick`.
//!
//! Both the legacy and the modular socket layers drive this same engine;
//! the roadmap experiment varies only the interface around it.

use std::collections::{BTreeMap, VecDeque};

use crate::packet::{flags, proto, Packet, MAX_PAYLOAD};

/// TCP connection states (the classic diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TcpState {
    Closed,
    Listen,
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    TimeWait,
}

/// Default retransmission timeout (simulated ns).
pub const DEFAULT_RTO_NS: u64 = 200_000_000;

/// Maximum retransmissions of a single segment before the connection is
/// declared failed.
pub const MAX_RETRIES: u32 = 8;

/// Cap on the exponential backoff: the effective RTO never exceeds
/// `rto_ns << MAX_BACKOFF_SHIFT`.
pub const MAX_BACKOFF_SHIFT: u32 = 6;

/// How long a PCB lingers in `TimeWait` before reaching `Closed` (the
/// 2×MSL analogue, in simulated ns).
pub const TIME_WAIT_NS: u64 = 4 * DEFAULT_RTO_NS;

/// Maximum segments buffered out of order; arrivals beyond the budget are
/// dropped (the sender retransmits them once the gap heals).
pub const OOO_BUDGET: usize = 64;

/// Initial congestion window (bytes): four full segments, the classic
/// RFC 3390-style initial window.
pub const INIT_CWND: u32 = 4 * MAX_PAYLOAD as u32;

/// Upper bound on the congestion window, bounding per-connection
/// retransmission-queue memory.
pub const MAX_CWND: u32 = 64 * MAX_PAYLOAD as u32;

/// Initial slow-start threshold: slow start doubles per RTT up to here,
/// then additive increase takes over.
pub const INIT_SSTHRESH: u32 = 32 * MAX_PAYLOAD as u32;

/// How long a lone in-order segment may wait before a pure ACK is sent
/// from `tick` (the delayed-ACK timer).
pub const DELAYED_ACK_NS: u64 = DEFAULT_RTO_NS / 8;

/// Default accept-backlog for a listener when the caller does not choose.
pub const DEFAULT_BACKLOG: usize = 128;

/// Per-connection event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpCounters {
    /// Segments retransmitted after an RTO expiry.
    pub retransmits: u64,
    /// ACKs dropped for being outside `(snd_una, snd_nxt]` — stale
    /// duplicates and ghost ACKs for data never sent.
    pub dup_acks_dropped: u64,
    /// Segments accepted into the out-of-order buffer.
    pub ooo_buffered: u64,
    /// Out-of-order entries discarded: covered by a cumulative advance,
    /// or refused because the buffer was at budget.
    pub ooo_purged: u64,
    /// RST packets this endpoint emitted.
    pub resets_sent: u64,
    /// RST packets this endpoint accepted (blind RSTs are not counted;
    /// they are dropped).
    pub resets_received: u64,
    /// Pure ACKs flushed by the delayed-ACK timer in `tick`. ACKs that
    /// rode out immediately (second segment, out-of-order, FIN) or
    /// piggybacked on data are not counted here.
    pub delayed_acks: u64,
}

/// A segment awaiting acknowledgement.
#[derive(Debug, Clone)]
struct InFlight {
    seq: u32,
    data: Vec<u8>,
    /// The flags the segment was originally sent with — retransmissions
    /// reuse them verbatim instead of re-deriving (and mis-deriving) them
    /// from the current connection state.
    flags: u8,
    sent_at: u64,
    retries: u32,
}

impl InFlight {
    /// Sequence space the segment occupies (payload plus SYN/FIN).
    fn occupied(&self) -> u32 {
        self.data.len() as u32
            + u32::from(self.flags & flags::SYN != 0)
            + u32::from(self.flags & flags::FIN != 0)
    }
}

/// The TCP protocol control block.
#[derive(Debug)]
pub struct TcpPcb {
    /// Connection state.
    pub state: TcpState,
    /// Local port.
    pub local_port: u16,
    /// Remote port (0 until known).
    pub remote_port: u16,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Oldest unacknowledged sequence number.
    pub snd_una: u32,
    /// Next sequence number expected from the peer.
    pub rcv_nxt: u32,
    /// In-order received bytes, ready for the application.
    recv_ready: Vec<u8>,
    /// Out-of-order segments keyed by sequence number.
    ooo: BTreeMap<u32, Vec<u8>>,
    /// Unacknowledged segments for retransmission.
    in_flight: Vec<InFlight>,
    /// Bytes the application has submitted but the congestion window has
    /// not yet admitted to the wire.
    snd_buf: Vec<u8>,
    /// Congestion window (bytes of payload allowed in flight).
    pub cwnd: u32,
    /// Slow-start threshold: below it the window grows one segment per
    /// ACK (slow start), above it one segment per window (AIMD).
    pub ssthresh: u32,
    /// A FIN is owed but must sequence after everything in `snd_buf`.
    fin_pending: bool,
    /// An in-order segment arrived and its ACK is being delayed.
    ack_pending: bool,
    /// When the delayed ACK must go out (valid while `ack_pending`).
    ack_due: u64,
    /// Base retransmission timeout (doubled per backoff round).
    pub rto_ns: u64,
    /// Current backoff round: effective RTO is `rto_ns << backoff_shift`.
    backoff_shift: u32,
    /// When the `TimeWait` lingering ends (valid while in `TimeWait`).
    time_wait_until: u64,
    /// True once the connection died abnormally (retry budget exhausted
    /// or reset by the peer) rather than via an orderly FIN handshake.
    failed: bool,
    /// Event counters.
    pub counters: TcpCounters,
}

impl TcpPcb {
    /// A closed PCB bound to `local_port` with initial sequence `iss`.
    pub fn new(local_port: u16, iss: u32) -> TcpPcb {
        TcpPcb {
            state: TcpState::Closed,
            local_port,
            remote_port: 0,
            snd_nxt: iss,
            snd_una: iss,
            rcv_nxt: 0,
            recv_ready: Vec::new(),
            ooo: BTreeMap::new(),
            in_flight: Vec::new(),
            snd_buf: Vec::new(),
            cwnd: INIT_CWND,
            ssthresh: INIT_SSTHRESH,
            fin_pending: false,
            ack_pending: false,
            ack_due: 0,
            rto_ns: DEFAULT_RTO_NS,
            backoff_shift: 0,
            time_wait_until: 0,
            failed: false,
            counters: TcpCounters::default(),
        }
    }

    /// Passive open: adopt a peer's SYN and answer with a SYN-ACK. This
    /// is how [`TcpListener`] brings a freshly spawned child PCB into
    /// `SynRcvd` — a PCB never sits in `Listen` itself.
    pub fn accept_syn(&mut self, pkt: &Packet, now: u64) -> Vec<Packet> {
        if self.state != TcpState::Closed || pkt.flags & flags::SYN == 0 {
            return Vec::new();
        }
        self.remote_port = pkt.src_port;
        self.rcv_nxt = pkt.seq.wrapping_add(1);
        self.state = TcpState::SynRcvd;
        let synack = self.mk(flags::SYN | flags::ACK);
        self.track(self.snd_nxt, Vec::new(), flags::SYN | flags::ACK, now);
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        vec![synack]
    }

    /// True once the connection died abnormally: the retry budget ran out
    /// or the peer reset it. `Closed` + `!is_failed()` is an orderly end.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// True when the PCB is finished and the socket layer may reap it: it
    /// reached `Closed` after actually being connected (a fresh, never-used
    /// PCB is also `Closed` but not reapable).
    pub fn is_defunct(&self) -> bool {
        self.state == TcpState::Closed && (self.remote_port != 0 || self.failed)
    }

    /// The effective retransmission timeout under the current backoff.
    pub fn effective_rto(&self) -> u64 {
        self.rto_ns
            .saturating_mul(1u64 << self.backoff_shift.min(MAX_BACKOFF_SHIFT))
    }

    /// Every transition into `Closed` funnels here: retransmission state
    /// is cleared so a dead connection can never emit another segment.
    fn enter_closed(&mut self, failed: bool) {
        self.state = TcpState::Closed;
        self.in_flight.clear();
        self.counters.ooo_purged += self.ooo.len() as u64;
        self.ooo.clear();
        self.snd_buf.clear();
        self.fin_pending = false;
        self.ack_pending = false;
        self.failed |= failed;
    }

    fn mk(&self, fl: u8) -> Packet {
        Packet {
            proto: proto::TCP,
            flags: fl,
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            payload: Vec::new(),
        }
    }

    fn track(&mut self, seq: u32, data: Vec<u8>, fl: u8, now: u64) {
        self.in_flight.push(InFlight {
            seq,
            data,
            flags: fl,
            sent_at: now,
            retries: 0,
        });
    }

    /// Initiates a connection to `remote_port`; returns the SYN.
    pub fn connect(&mut self, remote_port: u16, now: u64) -> Packet {
        self.remote_port = remote_port;
        self.state = TcpState::SynSent;
        let syn = self.mk(flags::SYN);
        self.track(self.snd_nxt, Vec::new(), flags::SYN, now);
        self.snd_nxt = self.snd_nxt.wrapping_add(1); // SYN consumes one.
        syn
    }

    /// True when the application may submit data: connected and not yet
    /// half-closed by us. Socket layers use this (not an empty segment
    /// list, which also happens when the window is full) for ENOTCONN.
    pub fn can_send(&self) -> bool {
        matches!(self.state, TcpState::Established | TcpState::CloseWait) && !self.fin_pending
    }

    /// Payload bytes currently awaiting acknowledgement.
    fn bytes_in_flight(&self) -> usize {
        self.in_flight.iter().map(|s| s.data.len()).sum()
    }

    /// Bytes accepted from the application but not yet admitted to the
    /// wire by the congestion window.
    pub fn backlog_bytes(&self) -> usize {
        self.snd_buf.len()
    }

    /// Emits as much buffered data as the congestion window admits, then
    /// the deferred FIN once the buffer drains. Every segment carries the
    /// current cumulative ACK.
    fn flush_window(&mut self, now: u64) -> Vec<Packet> {
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::LastAck
        ) {
            return Vec::new();
        }
        let mut out = Vec::new();
        while !self.snd_buf.is_empty() {
            let flight = self.bytes_in_flight();
            if flight >= self.cwnd as usize {
                break;
            }
            let room = (self.cwnd as usize - flight)
                .min(MAX_PAYLOAD)
                .min(self.snd_buf.len());
            let chunk: Vec<u8> = self.snd_buf.drain(..room).collect();
            let mut pkt = self.mk(flags::ACK);
            pkt.payload = chunk.clone();
            self.track(self.snd_nxt, chunk, flags::ACK, now);
            self.snd_nxt = self.snd_nxt.wrapping_add(room as u32);
            out.push(pkt);
        }
        if self.snd_buf.is_empty() && self.fin_pending {
            self.fin_pending = false;
            let fin = self.mk(flags::FIN | flags::ACK);
            self.track(self.snd_nxt, Vec::new(), flags::FIN | flags::ACK, now);
            self.snd_nxt = self.snd_nxt.wrapping_add(1); // FIN consumes one.
            out.push(fin);
        }
        if !out.is_empty() {
            // Everything emitted carries ack = rcv_nxt.
            self.ack_pending = false;
        }
        out
    }

    /// Queues `data` for transmission; returns the segments the
    /// congestion window admits right now (the rest follows from
    /// `on_packet`/`tick` as ACKs open the window).
    pub fn send(&mut self, data: &[u8], now: u64) -> Vec<Packet> {
        if !self.can_send() {
            return Vec::new();
        }
        self.snd_buf.extend_from_slice(data);
        self.flush_window(now)
    }

    /// Takes the bytes received in order so far.
    pub fn take_received(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.recv_ready)
    }

    /// Bytes available without taking them.
    pub fn available(&self) -> usize {
        self.recv_ready.len()
    }

    /// Segments currently buffered out of order (tests, stats).
    pub fn ooo_len(&self) -> usize {
        self.ooo.len()
    }

    /// Begins an active close; returns the segments that can go now. The
    /// FIN sequences after everything buffered, so it may be deferred
    /// until ACKs drain the send buffer.
    pub fn close(&mut self, now: u64) -> Vec<Packet> {
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            TcpState::SynSent | TcpState::Listen | TcpState::Closed => {
                // Nothing to hand over: drop any in-flight SYN so a closed
                // socket never keeps retransmitting.
                self.enter_closed(false);
                return Vec::new();
            }
            _ => return Vec::new(),
        }
        self.fin_pending = true;
        self.flush_window(now)
    }

    /// Processes a cumulative ACK. Only values in `(snd_una, snd_nxt]`
    /// retire data; anything else is dropped (and counted) so a stale or
    /// forged ACK can never advance `snd_una` past data actually sent.
    /// Returns true when the ACK made forward progress.
    fn process_ack(&mut self, ack: u32) -> bool {
        if !seq_lt(self.snd_una, ack) {
            // Old news. A duplicate of the current edge while data is
            // outstanding is the classic dup-ack; either way, drop it.
            if !self.in_flight.is_empty() {
                self.counters.dup_acks_dropped += 1;
            }
            return false;
        }
        if seq_lt(self.snd_nxt, ack) {
            // Ghost ACK for bytes never sent: drop, never retire by it.
            self.counters.dup_acks_dropped += 1;
            return false;
        }
        let payload_retired = self
            .in_flight
            .iter()
            .filter(|seg| !seq_lt(ack, seg.seq.wrapping_add(seg.occupied())))
            .any(|seg| !seg.data.is_empty());
        self.in_flight
            .retain(|seg| seq_lt(ack, seg.seq.wrapping_add(seg.occupied())));
        self.snd_una = ack;
        // Forward progress: the path is alive again. Reset the backoff
        // and every surviving segment's retry count — the budget bounds
        // consecutive timeouts *without* progress, so a long stream
        // behind a head-of-line loss doesn't burn out its tail (RFC 6298
        // restarts the retransmission timer on each new ACK).
        self.backoff_shift = 0;
        for seg in &mut self.in_flight {
            seg.retries = 0;
        }
        // Congestion window growth: one segment per ACK in slow start,
        // one segment per window (additive increase) past ssthresh.
        // Only ACKs that retire payload count — SYN/FIN retirement says
        // nothing about the path's data capacity.
        if payload_retired {
            let mss = MAX_PAYLOAD as u32;
            if self.cwnd < self.ssthresh {
                self.cwnd = (self.cwnd + mss).min(MAX_CWND);
            } else {
                self.cwnd = (self.cwnd + (mss * mss / self.cwnd).max(1)).min(MAX_CWND);
            }
        }
        true
    }

    /// Delivers contiguous out-of-order entries and purges entries the
    /// cumulative advance has covered. Wrap-safe: entries are found by
    /// direct `rcv_nxt` lookup, never by smallest numeric key.
    fn drain_ooo(&mut self) {
        loop {
            if let Some(data) = self.ooo.remove(&self.rcv_nxt) {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(data.len() as u32);
                self.recv_ready.extend_from_slice(&data);
                continue;
            }
            // Purge entries now behind rcv_nxt (a retransmission filled
            // the gap past them); deliver the unseen tail of a straddler.
            let mut advanced = false;
            let behind: Vec<u32> = self
                .ooo
                .keys()
                .copied()
                .filter(|&s| seq_lt(s, self.rcv_nxt))
                .collect();
            for s in behind {
                let data = self.ooo.remove(&s).expect("key just listed");
                let end = s.wrapping_add(data.len() as u32);
                if seq_lt(self.rcv_nxt, end) {
                    let skip = self.rcv_nxt.wrapping_sub(s) as usize;
                    self.recv_ready.extend_from_slice(&data[skip..]);
                    self.rcv_nxt = end;
                    advanced = true;
                }
                self.counters.ooo_purged += 1;
            }
            if !advanced {
                break;
            }
        }
    }

    fn absorb_payload(&mut self, seq: u32, payload: Vec<u8>) {
        if payload.is_empty() {
            return;
        }
        let end = seq.wrapping_add(payload.len() as u32);
        if seq == self.rcv_nxt {
            self.rcv_nxt = end;
            self.recv_ready.extend_from_slice(&payload);
            self.drain_ooo();
        } else if seq_lt(self.rcv_nxt, seq) {
            if self.ooo.len() >= OOO_BUDGET && !self.ooo.contains_key(&seq) {
                // At budget: refuse, the sender will retransmit.
                self.counters.ooo_purged += 1;
                return;
            }
            if self.ooo.insert(seq, payload).is_none() {
                self.counters.ooo_buffered += 1;
            }
        } else if seq_lt(self.rcv_nxt, end) {
            // Straddles rcv_nxt: the head was already delivered, take the
            // tail.
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            self.recv_ready.extend_from_slice(&payload[skip..]);
            self.rcv_nxt = end;
            self.drain_ooo();
        }
        // Wholly old (duplicate) data is dropped.
    }

    /// True when an RST is acceptable in the current state — the defence
    /// against blind (off-path) resets.
    fn rst_acceptable(&self, pkt: &Packet) -> bool {
        match self.state {
            // A listener is not a connection; a reset cannot kill it.
            TcpState::Listen | TcpState::Closed => false,
            // No sequence sync yet: the RST must acknowledge our SYN.
            TcpState::SynSent => pkt.flags & flags::ACK != 0 && pkt.ack == self.snd_nxt,
            // Synchronized: the RST must sit exactly at the receive edge.
            _ => pkt.seq == self.rcv_nxt,
        }
    }

    /// Handles an incoming packet; returns the packets to send in response.
    pub fn on_packet(&mut self, pkt: &Packet, now: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        if pkt.flags & flags::RST != 0 {
            if self.rst_acceptable(pkt) {
                self.counters.resets_received += 1;
                self.enter_closed(true);
            }
            return out;
        }
        match self.state {
            TcpState::Listen => {
                // A bare PCB never sits in Listen: passive opens go
                // through TcpListener, which spawns children via
                // accept_syn. Anything arriving here is dropped.
            }
            TcpState::SynSent => {
                if pkt.flags & (flags::SYN | flags::ACK) == flags::SYN | flags::ACK
                    && pkt.ack == self.snd_nxt
                {
                    self.rcv_nxt = pkt.seq.wrapping_add(1);
                    self.process_ack(pkt.ack);
                    self.state = TcpState::Established;
                    out.push(self.mk(flags::ACK));
                }
            }
            TcpState::SynRcvd => {
                // Only an ACK that covers our in-flight SYN-ACK completes
                // the handshake; a stale ACK (e.g. from an old connection)
                // must not conjure an Established connection.
                if pkt.flags & flags::ACK != 0 && pkt.ack == self.snd_nxt {
                    self.process_ack(pkt.ack);
                    self.state = TcpState::Established;
                    // Fall through into data handling for piggybacked data.
                    self.absorb_payload(pkt.seq, pkt.payload.clone());
                    if !pkt.payload.is_empty() {
                        out.push(self.mk(flags::ACK));
                    }
                } else if pkt.flags & flags::SYN != 0 && pkt.seq.wrapping_add(1) == self.rcv_nxt {
                    // The peer retransmitted its SYN: our SYN-ACK was lost.
                    // tick() will resend it; nothing to do here.
                }
            }
            TcpState::Established
            | TcpState::FinWait1
            | TcpState::FinWait2
            | TcpState::CloseWait
            | TcpState::LastAck
            | TcpState::TimeWait => {
                if pkt.flags & flags::ACK != 0 {
                    self.process_ack(pkt.ack);
                }
                let had_payload = !pkt.payload.is_empty();
                let in_order = had_payload && pkt.seq == self.rcv_nxt;
                self.absorb_payload(pkt.seq, pkt.payload.clone());
                if pkt.flags & flags::FIN != 0 && pkt.seq == self.rcv_nxt {
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                    match self.state {
                        TcpState::Established => self.state = TcpState::CloseWait,
                        TcpState::FinWait1 | TcpState::FinWait2 => {
                            self.state = TcpState::TimeWait;
                            self.time_wait_until = now + TIME_WAIT_NS;
                        }
                        _ => {}
                    }
                    self.ack_pending = false;
                    out.push(self.mk(flags::ACK));
                } else if (had_payload && !in_order) || pkt.flags & (flags::FIN | flags::SYN) != 0 {
                    // Out-of-order, duplicate data, a duplicate FIN, or a
                    // retransmitted SYN/SYN-ACK (our handshake ACK was
                    // lost; without a re-ACK the peer's child PCB would
                    // sit in SynRcvd forever): re-ACK immediately so the
                    // sender heals instead of burning its retry budget.
                    self.ack_pending = false;
                    out.push(self.mk(flags::ACK));
                } else if in_order {
                    // Delayed ACK: every second in-order segment is ACKed
                    // at once, a lone one waits for the tick timer (or a
                    // piggyback below).
                    if self.ack_pending {
                        self.ack_pending = false;
                        out.push(self.mk(flags::ACK));
                    } else {
                        self.ack_pending = true;
                        self.ack_due = now + DELAYED_ACK_NS;
                    }
                }
                // The ACK may have opened the congestion window (or
                // retired the last data ahead of a deferred FIN): emit
                // what the window now admits. Flushed segments carry the
                // cumulative ACK, so they cancel a pending delayed ACK.
                out.extend(self.flush_window(now));
                // State progress driven by our FIN being acknowledged —
                // only once the FIN was actually sent (nothing buffered,
                // none pending) and everything in flight retired.
                if pkt.flags & flags::ACK != 0
                    && self.in_flight.is_empty()
                    && self.snd_buf.is_empty()
                    && !self.fin_pending
                {
                    match self.state {
                        TcpState::FinWait1 => self.state = TcpState::FinWait2,
                        TcpState::LastAck => self.enter_closed(false),
                        _ => {}
                    }
                }
            }
            TcpState::Closed => {
                self.counters.resets_sent += 1;
                out.push(rst_for(pkt, self.local_port));
            }
        }
        out
    }

    /// Timer processing: TIME_WAIT expiry, then timeout retransmission
    /// under exponential backoff. A segment that exhausts [`MAX_RETRIES`]
    /// fails the whole connection — it goes to `Closed` (reporting
    /// [`TcpPcb::is_failed`]) and transmission stops for good.
    pub fn tick(&mut self, now: u64) -> Vec<Packet> {
        if self.state == TcpState::TimeWait && now >= self.time_wait_until {
            self.enter_closed(false);
            return Vec::new();
        }
        if self.state == TcpState::Closed {
            return Vec::new();
        }
        let mut out = Vec::new();
        if self.ack_pending && now >= self.ack_due {
            self.ack_pending = false;
            self.counters.delayed_acks += 1;
            out.push(self.mk(flags::ACK));
        }
        let rto = self.effective_rto();
        let mut resent = false;
        for i in 0..self.in_flight.len() {
            if now.saturating_sub(self.in_flight[i].sent_at) < rto {
                continue;
            }
            if self.in_flight[i].retries >= MAX_RETRIES {
                // Retry budget exhausted: the path is declared dead.
                self.enter_closed(true);
                return Vec::new();
            }
            self.in_flight[i].retries += 1;
            self.in_flight[i].sent_at = now;
            self.counters.retransmits += 1;
            resent = true;
            let seg = &self.in_flight[i];
            out.push(Packet {
                proto: proto::TCP,
                flags: seg.flags,
                src_port: self.local_port,
                dst_port: self.remote_port,
                seq: seg.seq,
                ack: self.rcv_nxt,
                payload: seg.data.clone(),
            });
        }
        if resent {
            // A timeout signals congestion: multiplicative decrease.
            // Half the flight becomes the new threshold, the window
            // collapses to one segment and slow start restarts.
            let mss = MAX_PAYLOAD as u32;
            self.ssthresh = ((self.bytes_in_flight() / 2) as u32).max(2 * mss);
            self.cwnd = mss;
            if self.backoff_shift < MAX_BACKOFF_SHIFT {
                self.backoff_shift += 1;
            }
        }
        out.extend(self.flush_window(now));
        out
    }

    /// True when all submitted data has been sent and acknowledged.
    pub fn all_acked(&self) -> bool {
        self.in_flight.is_empty() && self.snd_buf.is_empty() && !self.fin_pending
    }
}

/// An RST answering `pkt`, acceptable to the peer whatever state it is
/// in: `seq` echoes the peer's own ACK (its view of our send edge) and
/// `ack` covers everything the offending segment occupied, so a SYN into
/// a dead port sees its SYN acknowledged (satisfying the `SynSent` RST
/// window check) and a retransmitting established peer sees `seq` at its
/// receive edge.
pub fn rst_for(pkt: &Packet, local_port: u16) -> Packet {
    let occupied = pkt.payload.len() as u32
        + u32::from(pkt.flags & flags::SYN != 0)
        + u32::from(pkt.flags & flags::FIN != 0);
    Packet {
        proto: proto::TCP,
        flags: flags::RST | flags::ACK,
        src_port: local_port,
        dst_port: pkt.src_port,
        seq: pkt.ack,
        ack: pkt.seq.wrapping_add(occupied),
        payload: Vec::new(),
    }
}

/// Serial-number "less than" for 32-bit sequence space.
fn seq_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

/// Per-listener event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ListenerStats {
    /// SYNs that reached the listener (new handshake attempts).
    pub syns_received: u64,
    /// Child PCBs spawned into the SYN queue.
    pub children_spawned: u64,
    /// SYNs dropped because the queues sat at the backlog limit (the
    /// peer's SYN retransmission retries later).
    pub backlog_drops: u64,
    /// Established children handed to the application via `accept`.
    pub accepted: u64,
    /// Children culled before accept: handshake retry budget exhausted,
    /// reset by the peer, or closed while queued.
    pub children_failed: u64,
    /// RSTs answering non-SYN segments that matched no child — stale
    /// traffic from dead connection incarnations.
    pub resets_sent: u64,
}

/// A real passive open: a listening endpoint that spawns one child
/// [`TcpPcb`] per peer into a bounded SYN/accept queue, instead of
/// mutating itself into the connection (the historical single-shot
/// behaviour, which silently ignored every concurrent SYN).
///
/// Children are keyed by remote port. They stay inside the listener —
/// absorbing handshake traffic, retransmitting their SYN-ACKs from
/// `tick`, even buffering early data — until [`TcpListener::accept`]
/// hands them to the application, FIFO in order of reaching
/// `Established`. The queue (SYN + accept together) is bounded by
/// `backlog`: excess SYNs are dropped silently, exactly like a full
/// listen queue, and heal via the peer's SYN retransmission once
/// `accept` frees a slot.
#[derive(Debug)]
pub struct TcpListener {
    /// The listening port.
    pub local_port: u16,
    backlog: usize,
    iss_base: u32,
    /// Children by remote port: SynRcvd (SYN queue) or Established but
    /// not yet accepted (accept queue).
    children: BTreeMap<u16, TcpPcb>,
    /// Remote ports whose child reached Established, in accept order.
    ready: VecDeque<u16>,
    /// Event counters.
    pub stats: ListenerStats,
}

impl TcpListener {
    /// A listener on `local_port` holding at most `backlog` children.
    /// `iss_base` seeds the per-connection ISS derivation.
    pub fn new(local_port: u16, backlog: usize, iss_base: u32) -> TcpListener {
        TcpListener {
            local_port,
            backlog: backlog.max(1),
            iss_base,
            children: BTreeMap::new(),
            ready: VecDeque::new(),
            stats: ListenerStats::default(),
        }
    }

    /// Children currently queued (SYN queue + accept queue).
    pub fn pending(&self) -> usize {
        self.children.len()
    }

    /// Established children awaiting `accept`.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// The configured backlog limit.
    pub fn backlog(&self) -> usize {
        self.backlog
    }

    /// Deterministic per-connection ISS: an odd-multiplier walk of the
    /// sequence space keyed by the remote port, so simultaneous
    /// handshakes never collide on an ISS (and replays are exact).
    fn child_iss(&self, remote_port: u16) -> u32 {
        self.iss_base
            .wrapping_add((u32::from(remote_port)).wrapping_mul(0x9E37_79B9) | 1)
    }

    /// Queues `remote` for accept if its child just became established;
    /// culls it if it died. Returns true if the child was culled.
    fn promote_or_cull(&mut self, remote: u16) -> bool {
        let Some(child) = self.children.get(&remote) else {
            return false;
        };
        if child.state == TcpState::Closed {
            self.children.remove(&remote);
            self.ready.retain(|&r| r != remote);
            self.stats.children_failed += 1;
            return true;
        }
        if child.state != TcpState::SynRcvd && !self.ready.contains(&remote) {
            self.ready.push_back(remote);
        }
        false
    }

    /// Handles a packet addressed to the listening port: routes it to
    /// the matching child, spawns a child for a fresh SYN (backlog
    /// permitting), answers stale non-SYN traffic with an RST, and
    /// ignores RSTs that match no child — a listener is not a
    /// connection; a blind RST cannot kill it.
    pub fn on_packet(&mut self, pkt: &Packet, now: u64) -> Vec<Packet> {
        if let Some(child) = self.children.get_mut(&pkt.src_port) {
            let out = child.on_packet(pkt, now);
            self.promote_or_cull(pkt.src_port);
            return out;
        }
        if pkt.flags & flags::RST != 0 {
            return Vec::new();
        }
        if pkt.flags & flags::SYN != 0 {
            self.stats.syns_received += 1;
            if self.children.len() >= self.backlog {
                self.stats.backlog_drops += 1;
                return Vec::new();
            }
            let mut child = TcpPcb::new(self.local_port, self.child_iss(pkt.src_port));
            let out = child.accept_syn(pkt, now);
            self.children.insert(pkt.src_port, child);
            self.stats.children_spawned += 1;
            return out;
        }
        self.stats.resets_sent += 1;
        vec![rst_for(pkt, self.local_port)]
    }

    /// Pops the oldest established child, ready for its own fd and a
    /// slot in the connection table.
    pub fn accept(&mut self) -> Option<TcpPcb> {
        while let Some(remote) = self.ready.pop_front() {
            if let Some(child) = self.children.remove(&remote) {
                self.stats.accepted += 1;
                return Some(child);
            }
        }
        None
    }

    /// Timer processing for every queued child (SYN-ACK retransmission
    /// with the usual backoff and retry budget); culls children whose
    /// handshake died so a SYN flood cannot pin the queue forever.
    pub fn tick(&mut self, now: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        let remotes: Vec<u16> = self.children.keys().copied().collect();
        for remote in remotes {
            if let Some(child) = self.children.get_mut(&remote) {
                out.extend(child.tick(now));
            }
            self.promote_or_cull(remote);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Delivers every packet in `pkts` to `dst`, returning responses.
    fn deliver(dst: &mut TcpPcb, pkts: Vec<Packet>, now: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        for p in pkts {
            out.extend(dst.on_packet(&p, now));
        }
        out
    }

    /// Handshake through a real listener: the client PCB talks to a
    /// TcpListener, and the established child is popped via accept.
    fn established_pair() -> (TcpPcb, TcpPcb) {
        let mut a = TcpPcb::new(1000, 100);
        let mut l = TcpListener::new(80, 8, 9000);
        let syn = a.connect(80, 0);
        let synack = l.on_packet(&syn, 0);
        let ack = deliver(&mut a, synack, 0);
        for p in ack {
            l.on_packet(&p, 0);
        }
        let b = l.accept().expect("child established and accepted");
        assert_eq!(a.state, TcpState::Established);
        assert_eq!(b.state, TcpState::Established);
        assert_eq!(b.remote_port, 1000);
        (a, b)
    }

    #[test]
    fn three_way_handshake() {
        let (_a, _b) = established_pair();
    }

    #[test]
    fn data_transfer_with_ack() {
        let (mut a, mut b) = established_pair();
        let segs = a.send(b"hello tcp", 1);
        assert_eq!(segs.len(), 1);
        let acks = deliver(&mut b, segs, 1);
        assert!(acks.is_empty(), "a lone in-order segment delays its ACK");
        assert_eq!(b.take_received(), b"hello tcp");
        let acks = b.tick(1 + DELAYED_ACK_NS);
        assert_eq!(acks.len(), 1, "the delayed-ACK timer flushes it");
        assert_eq!(b.counters.delayed_acks, 1);
        deliver(&mut a, acks, 1);
        assert!(a.all_acked());
    }

    #[test]
    fn large_send_is_segmented() {
        let (mut a, mut b) = established_pair();
        let data = vec![7u8; MAX_PAYLOAD * 3 + 10];
        let segs = a.send(&data, 1);
        assert_eq!(segs.len(), 4, "within the initial window: all at once");
        let acks = deliver(&mut b, segs, 1);
        assert!(!acks.is_empty(), "every second segment is ACKed at once");
        assert_eq!(b.take_received(), data);
        deliver(&mut a, acks, 1);
        let acks = b.tick(1 + DELAYED_ACK_NS);
        deliver(&mut a, acks, 1);
        assert!(a.all_acked());
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let (mut a, mut b) = established_pair();
        let mut segs = a.send(&[vec![1u8; 100], vec![2u8; 100]].concat(), 1);
        // Deliver the second segment first... need two segments; 200 bytes
        // fits one segment, so send two separate chunks instead.
        assert_eq!(segs.len(), 1);
        let seg1 = segs.remove(0);
        let seg2 = a.send(&[3u8; 50], 1).remove(0);
        b.on_packet(&seg2, 1);
        assert_eq!(b.available(), 0, "gap: nothing delivered yet");
        b.on_packet(&seg1, 1);
        let got = b.take_received();
        assert_eq!(got.len(), 250);
        assert_eq!(&got[200..], &[3u8; 50][..]);
    }

    #[test]
    fn duplicate_segment_ignored() {
        let (mut a, mut b) = established_pair();
        let seg = a.send(b"once", 1).remove(0);
        b.on_packet(&seg, 1);
        b.on_packet(&seg, 1);
        assert_eq!(b.take_received(), b"once");
    }

    #[test]
    fn retransmission_after_timeout() {
        let (mut a, mut b) = established_pair();
        let segs = a.send(b"lost", 1);
        drop(segs); // The wire ate them.
        assert!(a.tick(1 + DEFAULT_RTO_NS / 2).is_empty(), "not yet");
        let rts = a.tick(1 + DEFAULT_RTO_NS);
        assert_eq!(rts.len(), 1);
        assert_eq!(a.counters.retransmits, 1);
        let now = 1 + DEFAULT_RTO_NS;
        deliver(&mut b, rts, now);
        assert_eq!(b.take_received(), b"lost");
        let acks = b.tick(now + DELAYED_ACK_NS);
        deliver(&mut a, acks, now + DELAYED_ACK_NS);
        assert!(a.all_acked());
    }

    #[test]
    fn fin_teardown_both_directions() {
        let (mut a, mut b) = established_pair();
        let mut fins = a.close(1);
        assert_eq!(fins.len(), 1, "nothing buffered: the FIN goes at once");
        let fin = fins.remove(0);
        assert_eq!(a.state, TcpState::FinWait1);
        let acks = b.on_packet(&fin, 1);
        assert_eq!(b.state, TcpState::CloseWait);
        deliver(&mut a, acks, 1);
        assert!(matches!(a.state, TcpState::FinWait2 | TcpState::TimeWait));
        let fin2 = b.close(2).remove(0);
        assert_eq!(b.state, TcpState::LastAck);
        let acks2 = a.on_packet(&fin2, 2);
        assert_eq!(a.state, TcpState::TimeWait);
        deliver(&mut b, acks2, 2);
        assert_eq!(b.state, TcpState::Closed);
        assert!(!b.is_failed(), "orderly close is not a failure");
    }

    /// The FIN must sequence after buffered data: closing with a full
    /// window defers the FIN until ACKs drain the send buffer.
    #[test]
    fn close_defers_fin_behind_buffered_data() {
        let (mut a, mut b) = established_pair();
        let data = vec![9u8; INIT_CWND as usize + 500];
        let segs = a.send(&data, 1);
        assert!(a.backlog_bytes() > 0, "window-limited: data buffered");
        let out = a.close(1);
        assert!(
            out.iter().all(|p| p.flags & flags::FIN == 0),
            "no FIN may overtake buffered data"
        );
        assert_eq!(a.state, TcpState::FinWait1);
        assert!(!a.can_send(), "no new data after close");
        // Drain: deliver everything, ACK it back, repeat until the FIN
        // arrives and both sides wind down.
        let mut now = 1u64;
        let mut wire: Vec<Packet> = segs.into_iter().chain(out).collect();
        let mut got = Vec::new();
        for _ in 0..20 {
            now += DELAYED_ACK_NS + 1;
            let to_a = deliver(&mut b, std::mem::take(&mut wire), now);
            got.extend(b.take_received());
            let mut back = deliver(&mut a, to_a, now);
            back.extend(a.tick(now));
            let mut to_a2 = deliver(&mut b, back, now);
            to_a2.extend(b.tick(now));
            wire.extend(deliver(&mut a, to_a2, now));
            if a.state == TcpState::FinWait2 || a.state == TcpState::TimeWait {
                break;
            }
        }
        got.extend(b.take_received());
        assert_eq!(got, data, "every buffered byte arrived before the FIN");
        assert!(
            matches!(a.state, TcpState::FinWait2 | TcpState::TimeWait),
            "FIN eventually sent and acknowledged, state {:?}",
            a.state
        );
        assert_eq!(b.state, TcpState::CloseWait);
    }

    #[test]
    fn rst_at_the_receive_edge_kills_connection() {
        let (mut a, _b) = established_pair();
        let mut rst = Packet::new(proto::TCP, 80, 1000);
        rst.flags = flags::RST;
        rst.seq = a.rcv_nxt;
        a.on_packet(&rst, 1);
        assert_eq!(a.state, TcpState::Closed);
        assert!(a.is_failed());
        assert_eq!(a.counters.resets_received, 1);
    }

    /// Regression (blind RST): an off-path attacker who does not know
    /// `rcv_nxt` cannot reset an established connection.
    #[test]
    fn blind_rst_with_wrong_seq_is_ignored() {
        let (mut a, _b) = established_pair();
        for bogus in [
            0u32,
            1,
            a.rcv_nxt.wrapping_add(1),
            a.rcv_nxt.wrapping_sub(1),
        ] {
            let mut rst = Packet::new(proto::TCP, 80, 1000);
            rst.flags = flags::RST;
            rst.seq = bogus;
            a.on_packet(&rst, 1);
            assert_eq!(a.state, TcpState::Established, "blind RST seq={bogus}");
        }
        assert_eq!(a.counters.resets_received, 0);
    }

    /// Regression (blind RST): a listener survives any RST — it is not a
    /// connection and must keep accepting new SYNs.
    #[test]
    fn rst_cannot_kill_a_listener() {
        let mut srv = TcpListener::new(80, 8, 9000);
        for seq in [0u32, 1, 12345] {
            let mut rst = Packet::new(proto::TCP, 99, 80);
            rst.flags = flags::RST;
            rst.seq = seq;
            assert!(srv.on_packet(&rst, 0).is_empty(), "RSTs are not answered");
            assert_eq!(srv.pending(), 0, "an RST never spawns a child");
        }
        // Still accepts a connection afterwards.
        let mut cli = TcpPcb::new(1000, 100);
        let syn = cli.connect(80, 0);
        assert_eq!(srv.on_packet(&syn, 0).len(), 1);
        assert_eq!(srv.pending(), 1, "child spawned into the SYN queue");
    }

    /// Regression (stale ACK in SynRcvd): an ACK that does not cover the
    /// child's in-flight SYN-ACK must not establish the connection.
    #[test]
    fn stale_ack_does_not_establish_from_syn_rcvd() {
        let mut srv = TcpListener::new(80, 8, 9000);
        let mut cli = TcpPcb::new(1000, 100);
        let syn = cli.connect(80, 0);
        let synack = srv.on_packet(&syn, 0).remove(0);
        assert_eq!(srv.pending(), 1);
        assert_eq!(srv.ready_len(), 0, "SynRcvd child is not yet acceptable");
        // ACK from an old incarnation: acknowledges nothing of the child's.
        let mut stale = Packet::new(proto::TCP, 1000, 80);
        stale.flags = flags::ACK;
        stale.ack = synack.seq; // covers the ISS, not the SYN-ACK
        stale.seq = synack.ack;
        srv.on_packet(&stale, 0);
        assert_eq!(srv.ready_len(), 0, "stale ACK must not establish");
        assert!(srv.accept().is_none());
        // The genuine ACK does.
        let mut good = Packet::new(proto::TCP, 1000, 80);
        good.flags = flags::ACK;
        good.ack = synack.seq.wrapping_add(1);
        good.seq = synack.ack;
        srv.on_packet(&good, 0);
        assert_eq!(srv.ready_len(), 1);
        let child = srv.accept().expect("established child");
        assert_eq!(child.state, TcpState::Established);
    }

    /// Regression (ghost ACK): an ACK beyond `snd_nxt` must not retire
    /// in-flight segments or advance `snd_una` past data actually sent.
    #[test]
    fn ghost_ack_beyond_snd_nxt_is_dropped() {
        let (mut a, _b) = established_pair();
        a.send(b"unacked payload", 1);
        let (una, nxt) = (a.snd_una, a.snd_nxt);
        let mut ghost = Packet::new(proto::TCP, 80, 1000);
        ghost.flags = flags::ACK;
        ghost.ack = nxt.wrapping_add(5000);
        ghost.seq = a.rcv_nxt;
        a.on_packet(&ghost, 1);
        assert_eq!(a.snd_una, una, "snd_una must not move past sent data");
        assert!(!a.all_acked(), "in-flight data must not be ghost-retired");
        assert_eq!(a.counters.dup_acks_dropped, 1);
        // The retransmission machinery still heals the stream.
        assert_eq!(a.tick(1 + DEFAULT_RTO_NS).len(), 1);
    }

    /// Regression (stale duplicate ACK): an ACK at or below `snd_una`
    /// while data is outstanding is dropped and counted.
    #[test]
    fn duplicate_ack_is_dropped_and_counted() {
        let (mut a, _b) = established_pair();
        a.send(b"data", 1);
        let mut dup = Packet::new(proto::TCP, 80, 1000);
        dup.flags = flags::ACK;
        dup.ack = a.snd_una;
        dup.seq = a.rcv_nxt;
        a.on_packet(&dup, 1);
        a.on_packet(&dup, 1);
        assert_eq!(a.counters.dup_acks_dropped, 2);
        assert!(!a.all_acked());
    }

    /// Regression (close in SynSent): closing a half-open socket must stop
    /// SYN retransmission — the old engine kept retransmitting the SYN
    /// (re-flagged SYN|ACK) from a closed socket forever.
    #[test]
    fn close_in_syn_sent_stops_retransmission() {
        let mut a = TcpPcb::new(1000, 100);
        a.connect(80, 0);
        assert!(a.close(1).is_empty());
        assert_eq!(a.state, TcpState::Closed);
        assert!(a.all_acked(), "in-flight SYN cleared on close");
        for round in 1..=20u64 {
            assert!(
                a.tick(round * DEFAULT_RTO_NS).is_empty(),
                "closed socket retransmitted at round {round}"
            );
        }
        assert_eq!(a.counters.retransmits, 0);
    }

    /// One listener, many concurrent handshakes: each SYN spawns its own
    /// child, accept pops them FIFO, and data flows per connection.
    #[test]
    fn listener_serves_concurrent_handshakes() {
        let mut srv = TcpListener::new(80, 8, 9000);
        let mut clients: Vec<TcpPcb> = (0..3).map(|i| TcpPcb::new(2000 + i, 100)).collect();
        // All three SYNs land before any handshake completes.
        let synacks: Vec<Packet> = clients
            .iter_mut()
            .map(|c| srv.on_packet(&c.connect(80, 0), 0).remove(0))
            .collect();
        assert_eq!(srv.pending(), 3, "three children in the SYN queue");
        assert_eq!(srv.ready_len(), 0);
        for (c, sa) in clients.iter_mut().zip(synacks) {
            for ack in c.on_packet(&sa, 0) {
                srv.on_packet(&ack, 0);
            }
            assert_eq!(c.state, TcpState::Established);
        }
        assert_eq!(srv.ready_len(), 3, "all three in the accept queue");
        for expected_remote in [2000u16, 2001, 2002] {
            let mut child = srv.accept().expect("accepted in FIFO order");
            assert_eq!(child.remote_port, expected_remote);
            // Each pair carries data independently.
            let cli = &mut clients[(expected_remote - 2000) as usize];
            let msg = vec![expected_remote as u8; 64];
            for seg in cli.send(&msg, 1) {
                child.on_packet(&seg, 1);
            }
            assert_eq!(child.take_received(), msg);
        }
        assert!(srv.accept().is_none());
        assert_eq!(srv.stats.accepted, 3);
        assert_eq!(srv.stats.children_spawned, 3);
    }

    /// The backlog bounds the queue: excess SYNs are dropped silently and
    /// heal via SYN retransmission once accept frees a slot.
    #[test]
    fn backlog_limit_drops_syns_until_accept_frees_a_slot() {
        let mut srv = TcpListener::new(80, 2, 9000);
        let mut c1 = TcpPcb::new(3001, 100);
        let mut c2 = TcpPcb::new(3002, 100);
        let mut c3 = TcpPcb::new(3003, 100);
        let sa1 = srv.on_packet(&c1.connect(80, 0), 0);
        let sa2 = srv.on_packet(&c2.connect(80, 0), 0);
        let dropped = srv.on_packet(&c3.connect(80, 0), 0);
        assert!(dropped.is_empty(), "backlog full: the third SYN is dropped");
        assert_eq!(srv.stats.backlog_drops, 1);
        assert_eq!(srv.pending(), 2);
        // First two complete; one is accepted, freeing a slot.
        for (c, sa) in [(&mut c1, sa1), (&mut c2, sa2)] {
            for p in sa {
                for ack in c.on_packet(&p, 0) {
                    srv.on_packet(&ack, 0);
                }
            }
        }
        assert!(srv.accept().is_some());
        // The third client's SYN-RTO retransmission now gets through.
        let rts = c3.tick(DEFAULT_RTO_NS);
        assert_eq!(rts.len(), 1, "SYN retransmitted");
        let sa3 = srv.on_packet(&rts[0], DEFAULT_RTO_NS);
        assert_eq!(sa3.len(), 1, "slot free: SYN-ACK answered");
        for ack in c3.on_packet(&sa3[0], DEFAULT_RTO_NS) {
            srv.on_packet(&ack, DEFAULT_RTO_NS);
        }
        assert_eq!(c3.state, TcpState::Established);
        assert_eq!(srv.ready_len(), 2);
    }

    /// Distinct remotes get distinct, deterministic ISS values.
    #[test]
    fn child_iss_is_seeded_per_connection() {
        let srv = TcpListener::new(80, 8, 9000);
        let mut seen = std::collections::BTreeSet::new();
        for remote in [1u16, 2, 3, 1000, 1001, 65535] {
            assert!(seen.insert(srv.child_iss(remote)), "ISS collision");
        }
        let again = TcpListener::new(80, 8, 9000);
        assert_eq!(
            srv.child_iss(1000),
            again.child_iss(1000),
            "derivation is deterministic for replay"
        );
    }

    /// A handshake that dies in the SYN queue (peer resets) is culled and
    /// never reaches the accept queue.
    #[test]
    fn reset_child_is_culled_from_the_syn_queue() {
        let mut srv = TcpListener::new(80, 8, 9000);
        let mut cli = TcpPcb::new(4000, 100);
        let synack = srv.on_packet(&cli.connect(80, 0), 0).remove(0);
        assert_eq!(srv.pending(), 1);
        // The client aborts: an in-window RST kills the child.
        let mut rst = Packet::new(proto::TCP, 4000, 80);
        rst.flags = flags::RST;
        rst.seq = synack.ack;
        srv.on_packet(&rst, 0);
        assert_eq!(srv.pending(), 0, "reset child culled");
        assert_eq!(srv.stats.children_failed, 1);
        assert!(srv.accept().is_none());
    }

    /// Stale non-SYN traffic that matches no child is answered with an
    /// RST the confused peer will actually accept.
    #[test]
    fn listener_resets_stale_segments_from_dead_incarnations() {
        let mut srv = TcpListener::new(80, 8, 9000);
        // An established peer from a dead incarnation retransmits data.
        let mut stale = Packet::new(proto::TCP, 5000, 80);
        stale.flags = flags::ACK;
        stale.seq = 7777;
        stale.ack = 1234;
        stale.payload = vec![1, 2, 3];
        let out = srv.on_packet(&stale, 0);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].flags & flags::RST, 0);
        assert_eq!(srv.stats.resets_sent, 1);
        assert_eq!(
            out[0].seq, stale.ack,
            "RST seq sits at the peer's receive edge"
        );
        assert_eq!(srv.pending(), 0, "no child conjured from stale traffic");
    }

    /// Regression (ooo purge): entries below `rcv_nxt` — covered by a
    /// retransmission that filled the gap — are purged on the cumulative
    /// advance instead of accumulating forever.
    #[test]
    fn covered_ooo_entries_are_purged() {
        let (mut a, mut b) = established_pair();
        let seg1 = a.send(&[1u8; 100], 1).remove(0);
        let seg2 = a.send(&[2u8; 100], 1).remove(0);
        let seg3 = a.send(&[3u8; 100], 1).remove(0);
        // seg2 and seg3 arrive out of order and are buffered.
        b.on_packet(&seg2, 1);
        b.on_packet(&seg3, 1);
        assert_eq!(b.ooo_len(), 2);
        assert_eq!(b.counters.ooo_buffered, 2);
        // The gap heals: everything drains, nothing lingers.
        b.on_packet(&seg1, 1);
        assert_eq!(b.ooo_len(), 0);
        assert_eq!(b.take_received().len(), 300);
        // A late retransmission of seg2 (wholly old) does not re-buffer.
        b.on_packet(&seg2, 2);
        assert_eq!(b.ooo_len(), 0);
    }

    /// Regression (ooo budget): the reassembly buffer is bounded; arrivals
    /// beyond the budget are refused, not hoarded.
    #[test]
    fn ooo_buffer_is_capped() {
        let (mut a, mut b) = established_pair();
        // One unsent head segment keeps everything after it out of order.
        let _head = a.send(&[0u8; 10], 1).remove(0);
        for i in 0..OOO_BUDGET + 8 {
            let seg = a.send(&[i as u8; 10], 1).remove(0);
            b.on_packet(&seg, 1);
        }
        assert_eq!(b.ooo_len(), OOO_BUDGET);
        assert!(b.counters.ooo_purged >= 8, "over-budget arrivals refused");
    }

    /// Tentpole: the RTO backs off exponentially and a segment that
    /// exhausts its retry budget fails the connection cleanly — no
    /// retransmission continues past `Closed`.
    #[test]
    fn retry_budget_exhaustion_fails_the_connection() {
        let (mut a, _b) = established_pair();
        a.send(b"into the void", 1);
        let mut now = 1u64;
        let mut rts = 0u64;
        let mut last_rto = 0u64;
        for _ in 0..MAX_RETRIES * 2 {
            let rto = a.effective_rto();
            assert!(rto >= last_rto, "backoff never shrinks without progress");
            last_rto = rto;
            now += rto;
            let pkts = a.tick(now);
            if a.state == TcpState::Closed {
                break;
            }
            rts += pkts.len() as u64;
        }
        assert_eq!(a.state, TcpState::Closed);
        assert!(a.is_failed(), "budget exhaustion is a reported failure");
        assert!(a.is_defunct());
        assert_eq!(rts, u64::from(MAX_RETRIES));
        assert_eq!(a.counters.retransmits, u64::from(MAX_RETRIES));
        // Dead means dead: no further transmission, ever.
        for i in 1..=10u64 {
            assert!(a.tick(now + i * DEFAULT_RTO_NS).is_empty());
        }
    }

    /// Tentpole: the backoff resets once an ACK makes forward progress.
    #[test]
    fn backoff_resets_on_forward_progress() {
        let (mut a, mut b) = established_pair();
        a.send(b"first", 1);
        let mut now = 1 + a.effective_rto();
        let rts = a.tick(now);
        assert!(a.effective_rto() > DEFAULT_RTO_NS, "backed off");
        deliver(&mut b, rts, now);
        now += DELAYED_ACK_NS;
        let acks = b.tick(now);
        deliver(&mut a, acks, now);
        assert_eq!(a.effective_rto(), DEFAULT_RTO_NS, "progress resets backoff");
    }

    /// Slow start doubles the window per round of ACKs; a timeout
    /// collapses it to one segment and halves the threshold.
    #[test]
    fn cwnd_slow_start_and_timeout_collapse() {
        let (mut a, mut b) = established_pair();
        assert_eq!(a.cwnd, INIT_CWND);
        let data = vec![5u8; 12 * MAX_PAYLOAD];
        let segs = a.send(&data, 1);
        assert_eq!(
            segs.len() * MAX_PAYLOAD,
            INIT_CWND as usize,
            "first burst is window-limited"
        );
        assert_eq!(a.backlog_bytes(), data.len() - INIT_CWND as usize);
        // ACKs grow the window one segment each and flush more data.
        let mut acks = deliver(&mut b, segs, 1);
        acks.extend(b.tick(1 + DELAYED_ACK_NS));
        let more = deliver(&mut a, acks, 1 + DELAYED_ACK_NS);
        assert!(a.cwnd > INIT_CWND, "slow start grew the window");
        assert!(!more.is_empty(), "ACKs flushed buffered data");
        // Silence: everything still in flight times out.
        let now = 2 + DELAYED_ACK_NS + a.effective_rto();
        let flight_before = a.cwnd;
        a.tick(now);
        assert_eq!(a.cwnd, MAX_PAYLOAD as u32, "collapse to one segment");
        assert!(
            a.ssthresh >= 2 * MAX_PAYLOAD as u32 && a.ssthresh < flight_before,
            "threshold halved to half the flight: {}",
            a.ssthresh
        );
    }

    /// The congestion window never exceeds its cap, bounding memory.
    #[test]
    fn cwnd_is_capped() {
        let (mut a, _b) = established_pair();
        a.ssthresh = MAX_CWND;
        a.cwnd = MAX_CWND - 1;
        // Retire a segment to trigger growth.
        let seg = a.send(&[1u8; 10], 1).remove(0);
        let mut ack = Packet::new(proto::TCP, 80, 1000);
        ack.flags = flags::ACK;
        ack.ack = seg.seq.wrapping_add(10);
        ack.seq = a.rcv_nxt;
        a.on_packet(&ack, 1);
        assert_eq!(a.cwnd, MAX_CWND);
    }

    /// Tentpole: TIME_WAIT expires via tick, so the PCB reaches `Closed`
    /// and can be reaped.
    #[test]
    fn time_wait_expires_to_closed() {
        let (mut a, mut b) = established_pair();
        let fin = a.close(1).remove(0);
        let acks = b.on_packet(&fin, 1);
        deliver(&mut a, acks, 1);
        let fin2 = b.close(2).remove(0);
        let acks2 = a.on_packet(&fin2, 2);
        deliver(&mut b, acks2, 2);
        assert_eq!(a.state, TcpState::TimeWait);
        assert!(a.tick(2 + TIME_WAIT_NS / 2).is_empty());
        assert_eq!(a.state, TcpState::TimeWait, "lingering");
        a.tick(2 + TIME_WAIT_NS + 1);
        assert_eq!(a.state, TcpState::Closed);
        assert!(!a.is_failed());
        assert!(a.is_defunct(), "reapable after expiry");
    }

    #[test]
    fn packet_to_closed_socket_gets_rst() {
        let mut closed = TcpPcb::new(7, 1);
        let mut probe = Packet::new(proto::TCP, 99, 7);
        probe.flags = flags::ACK;
        let out = closed.on_packet(&probe, 0);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].flags & flags::RST, 0);
        assert_eq!(closed.counters.resets_sent, 1);
    }

    #[test]
    fn retransmitted_segments_keep_their_original_flags() {
        // A queued child's SYN-ACK retransmits as a SYN-ACK from the
        // listener's tick, even after states move on.
        let mut srv = TcpListener::new(80, 8, 9000);
        let mut cli = TcpPcb::new(1000, 100);
        let syn = cli.connect(80, 0);
        srv.on_packet(&syn, 0);
        let rts = srv.tick(DEFAULT_RTO_NS);
        assert_eq!(rts.len(), 1);
        assert_eq!(rts[0].flags, flags::SYN | flags::ACK);
    }

    #[test]
    fn seq_comparison_wraps() {
        assert!(seq_lt(u32::MAX - 1, 2));
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
    }

    #[test]
    fn reassembly_works_across_sequence_wraparound() {
        // Start the sender near the top of the sequence space so the
        // stream wraps; the old smallest-numeric-key drain scan wedged
        // here.
        let mut a = TcpPcb::new(1000, u32::MAX - 120);
        let mut l = TcpListener::new(80, 8, 9000);
        let syn = a.connect(80, 0);
        let synack = l.on_packet(&syn, 0);
        let ack = deliver(&mut a, synack, 0);
        for p in ack {
            l.on_packet(&p, 0);
        }
        let mut b = l.accept().expect("established child");
        let seg1 = a.send(&[1u8; 100], 1).remove(0);
        let seg2 = a.send(&[2u8; 100], 1).remove(0);
        let seg3 = a.send(&[3u8; 100], 1).remove(0);
        // seg2 (pre-wrap) and seg3 (post-wrap) buffer out of order; the
        // numeric BTreeMap order of their keys is inverted.
        b.on_packet(&seg3, 1);
        b.on_packet(&seg2, 1);
        assert_eq!(b.available(), 0);
        b.on_packet(&seg1, 1);
        let got = b.take_received();
        assert_eq!(got.len(), 300);
        assert_eq!(&got[..100], &[1u8; 100][..]);
        assert_eq!(&got[100..200], &[2u8; 100][..]);
        assert_eq!(&got[200..], &[3u8; 100][..]);
        assert_eq!(b.ooo_len(), 0);
    }

    #[test]
    fn send_before_established_is_dropped() {
        let mut a = TcpPcb::new(1, 0);
        assert!(a.send(b"nope", 0).is_empty());
    }
}
