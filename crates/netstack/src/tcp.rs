//! The TCP protocol engine: a deterministic state machine.
//!
//! Pure state + packet-in/packets-out functions — no IO, no clocks of its
//! own (time is passed in, from the simulated clock). Covers the
//! three-way handshake, cumulative acknowledgement, out-of-order segment
//! reassembly, timeout retransmission, RST handling, and the FIN teardown
//! handshake. Segments carry at most [`MAX_PAYLOAD`] bytes.
//!
//! Both the legacy and the modular socket layers drive this same engine;
//! the roadmap experiment varies only the interface around it.

use std::collections::BTreeMap;

use crate::packet::{flags, proto, Packet, MAX_PAYLOAD};

/// TCP connection states (the classic diagram, minus TIME_WAIT timers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TcpState {
    Closed,
    Listen,
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    TimeWait,
}

/// Default retransmission timeout (simulated ns).
pub const DEFAULT_RTO_NS: u64 = 200_000_000;

/// A segment awaiting acknowledgement.
#[derive(Debug, Clone)]
struct InFlight {
    seq: u32,
    data: Vec<u8>,
    fin: bool,
    sent_at: u64,
}

/// The TCP protocol control block.
#[derive(Debug)]
pub struct TcpPcb {
    /// Connection state.
    pub state: TcpState,
    /// Local port.
    pub local_port: u16,
    /// Remote port (0 until known).
    pub remote_port: u16,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Oldest unacknowledged sequence number.
    pub snd_una: u32,
    /// Next sequence number expected from the peer.
    pub rcv_nxt: u32,
    /// In-order received bytes, ready for the application.
    recv_ready: Vec<u8>,
    /// Out-of-order segments keyed by sequence number.
    ooo: BTreeMap<u32, Vec<u8>>,
    /// Unacknowledged segments for retransmission.
    in_flight: Vec<InFlight>,
    /// Retransmission timeout.
    pub rto_ns: u64,
    /// Retransmissions performed (stats).
    pub retransmits: u64,
}

impl TcpPcb {
    /// A closed PCB bound to `local_port` with initial sequence `iss`.
    pub fn new(local_port: u16, iss: u32) -> TcpPcb {
        TcpPcb {
            state: TcpState::Closed,
            local_port,
            remote_port: 0,
            snd_nxt: iss,
            snd_una: iss,
            rcv_nxt: 0,
            recv_ready: Vec::new(),
            ooo: BTreeMap::new(),
            in_flight: Vec::new(),
            rto_ns: DEFAULT_RTO_NS,
            retransmits: 0,
        }
    }

    /// Moves to LISTEN.
    pub fn listen(&mut self) {
        self.state = TcpState::Listen;
    }

    fn mk(&self, fl: u8) -> Packet {
        Packet {
            proto: proto::TCP,
            flags: fl,
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            payload: Vec::new(),
        }
    }

    /// Initiates a connection to `remote_port`; returns the SYN.
    pub fn connect(&mut self, remote_port: u16, now: u64) -> Packet {
        self.remote_port = remote_port;
        self.state = TcpState::SynSent;
        let syn = self.mk(flags::SYN);
        self.in_flight.push(InFlight {
            seq: self.snd_nxt,
            data: Vec::new(),
            fin: false,
            sent_at: now,
        });
        self.snd_nxt = self.snd_nxt.wrapping_add(1); // SYN consumes one.
        syn
    }

    /// Queues `data` for transmission; returns the segments to send.
    pub fn send(&mut self, data: &[u8], now: u64) -> Vec<Packet> {
        if self.state != TcpState::Established && self.state != TcpState::CloseWait {
            return Vec::new();
        }
        let mut out = Vec::new();
        for chunk in data.chunks(MAX_PAYLOAD) {
            let mut pkt = self.mk(flags::ACK);
            pkt.payload = chunk.to_vec();
            self.in_flight.push(InFlight {
                seq: self.snd_nxt,
                data: chunk.to_vec(),
                fin: false,
                sent_at: now,
            });
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk.len() as u32);
            out.push(pkt);
        }
        out
    }

    /// Takes the bytes received in order so far.
    pub fn take_received(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.recv_ready)
    }

    /// Bytes available without taking them.
    pub fn available(&self) -> usize {
        self.recv_ready.len()
    }

    /// Begins an active close; returns the FIN if one can be sent now.
    pub fn close(&mut self, now: u64) -> Option<Packet> {
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            TcpState::SynSent | TcpState::Listen | TcpState::Closed => {
                self.state = TcpState::Closed;
                return None;
            }
            _ => return None,
        }
        let fin = self.mk(flags::FIN | flags::ACK);
        self.in_flight.push(InFlight {
            seq: self.snd_nxt,
            data: Vec::new(),
            fin: true,
            sent_at: now,
        });
        self.snd_nxt = self.snd_nxt.wrapping_add(1); // FIN consumes one.
        Some(fin)
    }

    fn process_ack(&mut self, ack: u32) {
        // Cumulative ACK: retire fully acknowledged segments.
        self.in_flight.retain(|seg| {
            let seg_end = seg
                .seq
                .wrapping_add(seg.data.len() as u32)
                .wrapping_add(u32::from(seg.fin) + u32::from(seg.data.is_empty() && !seg.fin));
            // For SYN segments data is empty and !fin: they occupy 1 seq.
            seq_lt(ack, seg_end)
        });
        if seq_lt(self.snd_una, ack) {
            self.snd_una = ack;
        }
    }

    fn absorb_payload(&mut self, seq: u32, payload: Vec<u8>) {
        if payload.is_empty() {
            return;
        }
        if seq == self.rcv_nxt {
            self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
            self.recv_ready.extend_from_slice(&payload);
            // Drain any now-contiguous out-of-order segments.
            while let Some((&s, _)) = self.ooo.iter().next() {
                if s != self.rcv_nxt {
                    break;
                }
                let data = self.ooo.remove(&s).expect("key just seen");
                self.rcv_nxt = self.rcv_nxt.wrapping_add(data.len() as u32);
                self.recv_ready.extend_from_slice(&data);
            }
        } else if seq_lt(self.rcv_nxt, seq) {
            self.ooo.entry(seq).or_insert(payload);
        }
        // Old (duplicate) data is dropped.
    }

    /// Handles an incoming packet; returns the packets to send in response.
    pub fn on_packet(&mut self, pkt: &Packet, now: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        if pkt.flags & flags::RST != 0 {
            self.state = TcpState::Closed;
            self.in_flight.clear();
            return out;
        }
        match self.state {
            TcpState::Listen => {
                if pkt.flags & flags::SYN != 0 {
                    self.remote_port = pkt.src_port;
                    self.rcv_nxt = pkt.seq.wrapping_add(1);
                    self.state = TcpState::SynRcvd;
                    let synack = self.mk(flags::SYN | flags::ACK);
                    self.in_flight.push(InFlight {
                        seq: self.snd_nxt,
                        data: Vec::new(),
                        fin: false,
                        sent_at: now,
                    });
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    out.push(synack);
                }
            }
            TcpState::SynSent => {
                if pkt.flags & (flags::SYN | flags::ACK) == flags::SYN | flags::ACK {
                    self.rcv_nxt = pkt.seq.wrapping_add(1);
                    self.process_ack(pkt.ack);
                    self.state = TcpState::Established;
                    out.push(self.mk(flags::ACK));
                }
            }
            TcpState::SynRcvd => {
                if pkt.flags & flags::ACK != 0 {
                    self.process_ack(pkt.ack);
                    self.state = TcpState::Established;
                    // Fall through into data handling for piggybacked data.
                    self.absorb_payload(pkt.seq, pkt.payload.clone());
                    if !pkt.payload.is_empty() {
                        out.push(self.mk(flags::ACK));
                    }
                }
            }
            TcpState::Established
            | TcpState::FinWait1
            | TcpState::FinWait2
            | TcpState::CloseWait
            | TcpState::LastAck
            | TcpState::TimeWait => {
                if pkt.flags & flags::ACK != 0 {
                    self.process_ack(pkt.ack);
                    // State progress driven by our FIN being acknowledged.
                    if self.in_flight.is_empty() {
                        match self.state {
                            TcpState::FinWait1 => self.state = TcpState::FinWait2,
                            TcpState::LastAck => self.state = TcpState::Closed,
                            _ => {}
                        }
                    }
                }
                self.absorb_payload(pkt.seq, pkt.payload.clone());
                if pkt.flags & flags::FIN != 0 && pkt.seq == self.rcv_nxt {
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                    match self.state {
                        TcpState::Established => self.state = TcpState::CloseWait,
                        TcpState::FinWait1 => self.state = TcpState::TimeWait,
                        TcpState::FinWait2 => self.state = TcpState::TimeWait,
                        _ => {}
                    }
                    out.push(self.mk(flags::ACK));
                } else if !pkt.payload.is_empty() {
                    out.push(self.mk(flags::ACK));
                }
            }
            TcpState::Closed => {
                if pkt.flags & flags::RST == 0 {
                    let mut rst = self.mk(flags::RST);
                    rst.dst_port = pkt.src_port;
                    out.push(rst);
                }
            }
        }
        out
    }

    /// Retransmits timed-out segments.
    pub fn tick(&mut self, now: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        let rto = self.rto_ns;
        for seg in &mut self.in_flight {
            if now.saturating_sub(seg.sent_at) >= rto {
                let mut fl = flags::ACK;
                let empty = seg.data.is_empty();
                if seg.fin {
                    fl |= flags::FIN;
                } else if empty {
                    // A bare SYN or SYN|ACK retransmission.
                    fl = if self.state == TcpState::SynSent {
                        flags::SYN
                    } else {
                        flags::SYN | flags::ACK
                    };
                }
                out.push(Packet {
                    proto: proto::TCP,
                    flags: fl,
                    src_port: self.local_port,
                    dst_port: self.remote_port,
                    seq: seg.seq,
                    ack: self.rcv_nxt,
                    payload: seg.data.clone(),
                });
                seg.sent_at = now;
                self.retransmits += 1;
            }
        }
        out
    }

    /// True when all sent data has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.in_flight.is_empty()
    }
}

/// Serial-number "less than" for 32-bit sequence space.
fn seq_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Delivers every packet in `pkts` to `dst`, returning responses.
    fn deliver(dst: &mut TcpPcb, pkts: Vec<Packet>, now: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        for p in pkts {
            out.extend(dst.on_packet(&p, now));
        }
        out
    }

    fn established_pair() -> (TcpPcb, TcpPcb) {
        let mut a = TcpPcb::new(1000, 100);
        let mut b = TcpPcb::new(80, 9000);
        b.listen();
        let syn = a.connect(80, 0);
        let synack = b.on_packet(&syn, 0);
        let ack = deliver(&mut a, synack, 0);
        deliver(&mut b, ack, 0);
        assert_eq!(a.state, TcpState::Established);
        assert_eq!(b.state, TcpState::Established);
        (a, b)
    }

    #[test]
    fn three_way_handshake() {
        let (_a, _b) = established_pair();
    }

    #[test]
    fn data_transfer_with_ack() {
        let (mut a, mut b) = established_pair();
        let segs = a.send(b"hello tcp", 1);
        assert_eq!(segs.len(), 1);
        let acks = deliver(&mut b, segs, 1);
        assert_eq!(b.take_received(), b"hello tcp");
        deliver(&mut a, acks, 1);
        assert!(a.all_acked());
    }

    #[test]
    fn large_send_is_segmented() {
        let (mut a, mut b) = established_pair();
        let data = vec![7u8; MAX_PAYLOAD * 3 + 10];
        let segs = a.send(&data, 1);
        assert_eq!(segs.len(), 4);
        let acks = deliver(&mut b, segs, 1);
        assert_eq!(b.take_received(), data);
        deliver(&mut a, acks, 1);
        assert!(a.all_acked());
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let (mut a, mut b) = established_pair();
        let mut segs = a.send(&[vec![1u8; 100], vec![2u8; 100]].concat(), 1);
        // Deliver the second segment first... need two segments; 200 bytes
        // fits one segment, so send two separate chunks instead.
        assert_eq!(segs.len(), 1);
        let seg1 = segs.remove(0);
        let seg2 = a.send(&[3u8; 50], 1).remove(0);
        b.on_packet(&seg2, 1);
        assert_eq!(b.available(), 0, "gap: nothing delivered yet");
        b.on_packet(&seg1, 1);
        let got = b.take_received();
        assert_eq!(got.len(), 250);
        assert_eq!(&got[200..], &[3u8; 50][..]);
    }

    #[test]
    fn duplicate_segment_ignored() {
        let (mut a, mut b) = established_pair();
        let seg = a.send(b"once", 1).remove(0);
        b.on_packet(&seg, 1);
        b.on_packet(&seg, 1);
        assert_eq!(b.take_received(), b"once");
    }

    #[test]
    fn retransmission_after_timeout() {
        let (mut a, mut b) = established_pair();
        let segs = a.send(b"lost", 1);
        drop(segs); // The wire ate them.
        assert!(a.tick(1 + DEFAULT_RTO_NS / 2).is_empty(), "not yet");
        let rts = a.tick(1 + DEFAULT_RTO_NS);
        assert_eq!(rts.len(), 1);
        assert_eq!(a.retransmits, 1);
        let acks = deliver(&mut b, rts, 2);
        assert_eq!(b.take_received(), b"lost");
        deliver(&mut a, acks, 2);
        assert!(a.all_acked());
    }

    #[test]
    fn fin_teardown_both_directions() {
        let (mut a, mut b) = established_pair();
        let fin = a.close(1).expect("fin");
        assert_eq!(a.state, TcpState::FinWait1);
        let acks = b.on_packet(&fin, 1);
        assert_eq!(b.state, TcpState::CloseWait);
        deliver(&mut a, acks, 1);
        assert!(matches!(a.state, TcpState::FinWait2 | TcpState::TimeWait));
        let fin2 = b.close(2).expect("fin2");
        assert_eq!(b.state, TcpState::LastAck);
        let acks2 = a.on_packet(&fin2, 2);
        assert_eq!(a.state, TcpState::TimeWait);
        deliver(&mut b, acks2, 2);
        assert_eq!(b.state, TcpState::Closed);
    }

    #[test]
    fn rst_kills_connection() {
        let (mut a, _b) = established_pair();
        let mut rst = Packet::new(proto::TCP, 80, 1000);
        rst.flags = flags::RST;
        a.on_packet(&rst, 1);
        assert_eq!(a.state, TcpState::Closed);
    }

    #[test]
    fn packet_to_closed_socket_gets_rst() {
        let mut closed = TcpPcb::new(7, 1);
        let mut probe = Packet::new(proto::TCP, 99, 7);
        probe.flags = flags::ACK;
        let out = closed.on_packet(&probe, 0);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].flags & flags::RST, 0);
    }

    #[test]
    fn seq_comparison_wraps() {
        assert!(seq_lt(u32::MAX - 1, 2));
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
    }

    #[test]
    fn send_before_established_is_dropped() {
        let mut a = TcpPcb::new(1, 0);
        assert!(a.send(b"nope", 0).is_empty());
    }
}
