//! The roadmap socket layer: protocols behind a typed, modular interface.
//!
//! Step 1: protocol families register as factories in the `sk-core`
//! [`Registry`] under `"netstack.family.<name>"`; the socket layer holds
//! handles and never names an implementation. Step 2: per-socket state is a
//! [`ProtoSocket`] trait object — there is no `void *` to mis-cast, generic
//! code can only call the interface. The channel table is a typed enum, so
//! the crafted AMP packet from `legacy_stack` is refused with `EPROTO`
//! instead of confusing types.
//!
//! Scaled for server duty: the single `net.sockets` mutex around one big
//! table is gone. Sockets live in lock-striped shards keyed by fd, and
//! demux goes through a striped `(proto, local, remote)` flow index plus a
//! bound-port index — pump touches exactly one index shard and one socket
//! shard per packet instead of walking every socket under a global lock
//! (the buffer-cache sharding idiom from the storage layer). Passive open
//! is a real accept path: `listen` turns the socket into a
//! [`TcpListener`] that spawns per-connection child PCBs, and `accept`
//! promotes a completed handshake to its own fd. Closing keeps the PCB in
//! the table until the FIN handshake finishes (reaped on expiry), and an
//! ephemeral-port allocator recycles TIME_WAIT ports under pressure.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use sk_core::modularity::Registry;
use sk_ksim::errno::{Errno, KResult};
use sk_ksim::lock::{LockRegistry, TrackedMutex};
use sk_ksim::time::SimClock;

use crate::packet::{flags, proto, Packet};
use crate::tcp::{rst_for, TcpCounters, TcpListener, TcpPcb, TcpState, DEFAULT_BACKLOG};
use crate::udp::UdpPcb;
use crate::wire::{Link, Side};

/// A protocol's per-socket engine, behind the typed interface.
pub trait ProtoSocket: Send {
    /// Protocol number this socket speaks.
    fn protocol(&self) -> u8;
    /// Local port.
    fn local_port(&self) -> u16;
    /// Remote port once connected (0 when unknown — datagram sockets and
    /// listeners).
    fn remote_port(&self) -> u16 {
        0
    }
    /// True while passively waiting for connections.
    fn is_listening(&self) -> bool {
        false
    }
    /// Passive open with a SYN/accept-queue limit (TCP); no-op for
    /// datagram protocols.
    fn listen(&mut self, backlog: usize) -> KResult<()>;
    /// Takes one completed connection off the accept queue, as a
    /// free-standing socket. `None` for non-listeners and empty queues.
    fn take_accepted(&mut self) -> Option<Box<dyn ProtoSocket>> {
        None
    }
    /// Active open; returns packets to transmit.
    fn connect(&mut self, remote_port: u16, now: u64) -> KResult<Vec<Packet>>;
    /// Queues data; returns packets to transmit.
    fn send(&mut self, dst_port: u16, data: &[u8], now: u64) -> KResult<Vec<Packet>>;
    /// Takes received bytes.
    fn recv(&mut self) -> Vec<u8>;
    /// Readiness — the typed replacement for the legacy TCP-assuming poll.
    fn poll(&self) -> bool;
    /// Handles an incoming packet; returns responses.
    fn on_packet(&mut self, pkt: &Packet, now: u64) -> Vec<Packet>;
    /// Timer tick; returns retransmissions.
    fn tick(&mut self, now: u64) -> Vec<Packet>;
    /// Begins close; returns packets to transmit.
    fn close(&mut self, now: u64) -> Vec<Packet>;
    /// True once a begun close has fully completed (FIN handshake done
    /// and any TIME_WAIT expired), so the layer may drop the state.
    /// Protocols with no teardown handshake finish immediately.
    fn close_finished(&self) -> bool {
        true
    }
    /// True while the socket holds its port in TIME_WAIT — the state an
    /// ephemeral-port allocator may recycle under pressure.
    fn in_time_wait(&self) -> bool {
        false
    }
    /// Per-connection event counters (zero for stateless protocols).
    fn counters(&self) -> TcpCounters {
        TcpCounters::default()
    }
    /// True once the connection died abnormally (retry budget exhausted
    /// or reset by the peer).
    fn conn_failed(&self) -> bool {
        false
    }
    /// True when the socket is finished and the layer may reap it.
    fn reapable(&self) -> bool {
        false
    }
    /// The TCP state when the socket is TCP (diagnostics/tests).
    fn tcp_state(&self) -> Option<TcpState> {
        None
    }
}

/// A protocol family: a factory for sockets (what the registry stores).
pub trait ProtocolFamily: Send + Sync {
    /// Family name (diagnostics).
    fn family_name(&self) -> &'static str;
    /// Creates a socket bound to `local_port`.
    fn create_socket(&self, local_port: u16, iss: u32) -> Box<dyn ProtoSocket>;
}

enum TcpInner {
    Conn(TcpPcb),
    Listener(TcpListener),
}

/// TCP socket adapter: a connection PCB that `listen` converts into a
/// child-spawning [`TcpListener`].
pub struct TcpSocket {
    inner: TcpInner,
    iss: u32,
}

impl ProtoSocket for TcpSocket {
    fn protocol(&self) -> u8 {
        proto::TCP
    }
    fn local_port(&self) -> u16 {
        match &self.inner {
            TcpInner::Conn(p) => p.local_port,
            TcpInner::Listener(l) => l.local_port,
        }
    }
    fn remote_port(&self) -> u16 {
        match &self.inner {
            TcpInner::Conn(p) => p.remote_port,
            TcpInner::Listener(_) => 0,
        }
    }
    fn is_listening(&self) -> bool {
        matches!(self.inner, TcpInner::Listener(_))
    }
    fn listen(&mut self, backlog: usize) -> KResult<()> {
        match &self.inner {
            TcpInner::Listener(_) => Ok(()),
            TcpInner::Conn(p) if p.state == TcpState::Closed && !p.is_failed() => {
                self.inner = TcpInner::Listener(TcpListener::new(p.local_port, backlog, self.iss));
                Ok(())
            }
            TcpInner::Conn(_) => Err(Errno::EISCONN),
        }
    }
    fn take_accepted(&mut self) -> Option<Box<dyn ProtoSocket>> {
        match &mut self.inner {
            TcpInner::Listener(l) => l.accept().map(|pcb| {
                let iss = pcb.snd_nxt;
                Box::new(TcpSocket {
                    inner: TcpInner::Conn(pcb),
                    iss,
                }) as Box<dyn ProtoSocket>
            }),
            TcpInner::Conn(_) => None,
        }
    }
    fn connect(&mut self, remote_port: u16, now: u64) -> KResult<Vec<Packet>> {
        match &mut self.inner {
            TcpInner::Conn(p) => Ok(vec![p.connect(remote_port, now)]),
            TcpInner::Listener(_) => Err(Errno::EINVAL),
        }
    }
    fn send(&mut self, _dst_port: u16, data: &[u8], now: u64) -> KResult<Vec<Packet>> {
        match &mut self.inner {
            TcpInner::Conn(p) => {
                // A cwnd-limited send may legally emit nothing while the
                // bytes wait in the send buffer, so readiness — not an
                // empty packet list — is the ENOTCONN signal.
                if !data.is_empty() && !p.can_send() {
                    return Err(Errno::ENOTCONN);
                }
                Ok(p.send(data, now))
            }
            TcpInner::Listener(_) => Err(Errno::ENOTCONN),
        }
    }
    fn recv(&mut self) -> Vec<u8> {
        match &mut self.inner {
            TcpInner::Conn(p) => p.take_received(),
            TcpInner::Listener(_) => Vec::new(),
        }
    }
    fn poll(&self) -> bool {
        match &self.inner {
            TcpInner::Conn(p) => p.available() > 0 || p.state == TcpState::CloseWait,
            TcpInner::Listener(l) => l.ready_len() > 0,
        }
    }
    fn on_packet(&mut self, pkt: &Packet, now: u64) -> Vec<Packet> {
        match &mut self.inner {
            TcpInner::Conn(p) => p.on_packet(pkt, now),
            TcpInner::Listener(l) => l.on_packet(pkt, now),
        }
    }
    fn tick(&mut self, now: u64) -> Vec<Packet> {
        match &mut self.inner {
            TcpInner::Conn(p) => p.tick(now),
            TcpInner::Listener(l) => l.tick(now),
        }
    }
    fn close(&mut self, now: u64) -> Vec<Packet> {
        match &mut self.inner {
            TcpInner::Conn(p) => p.close(now),
            // Closing a listener aborts its un-accepted children; peers
            // of any in-progress handshakes learn via demux RSTs.
            TcpInner::Listener(_) => Vec::new(),
        }
    }
    fn close_finished(&self) -> bool {
        match &self.inner {
            TcpInner::Conn(p) => p.state == TcpState::Closed,
            TcpInner::Listener(_) => true,
        }
    }
    fn in_time_wait(&self) -> bool {
        matches!(&self.inner, TcpInner::Conn(p) if p.state == TcpState::TimeWait)
    }
    fn counters(&self) -> TcpCounters {
        match &self.inner {
            TcpInner::Conn(p) => p.counters,
            TcpInner::Listener(l) => TcpCounters {
                resets_sent: l.stats.resets_sent,
                ..TcpCounters::default()
            },
        }
    }
    fn conn_failed(&self) -> bool {
        matches!(&self.inner, TcpInner::Conn(p) if p.is_failed())
    }
    fn reapable(&self) -> bool {
        matches!(&self.inner, TcpInner::Conn(p) if p.is_defunct())
    }
    fn tcp_state(&self) -> Option<TcpState> {
        Some(self.state())
    }
}

impl TcpSocket {
    /// Connection state (tests); listeners report [`TcpState::Listen`].
    pub fn state(&self) -> TcpState {
        match &self.inner {
            TcpInner::Conn(p) => p.state,
            TcpInner::Listener(_) => TcpState::Listen,
        }
    }
}

/// UDP socket adapter.
pub struct UdpSocket {
    pcb: UdpPcb,
}

impl ProtoSocket for UdpSocket {
    fn protocol(&self) -> u8 {
        proto::UDP
    }
    fn local_port(&self) -> u16 {
        self.pcb.local_port
    }
    fn listen(&mut self, _backlog: usize) -> KResult<()> {
        Ok(())
    }
    fn connect(&mut self, _remote_port: u16, _now: u64) -> KResult<Vec<Packet>> {
        Ok(Vec::new())
    }
    fn send(&mut self, dst_port: u16, data: &[u8], _now: u64) -> KResult<Vec<Packet>> {
        match self.pcb.send(dst_port, data) {
            Some(p) => Ok(vec![p]),
            None => Err(Errno::EINVAL),
        }
    }
    fn recv(&mut self) -> Vec<u8> {
        self.pcb.recv().map(|(_, d)| d).unwrap_or_default()
    }
    fn poll(&self) -> bool {
        self.pcb.pending() > 0
    }
    fn on_packet(&mut self, pkt: &Packet, _now: u64) -> Vec<Packet> {
        self.pcb.on_packet(pkt);
        Vec::new()
    }
    fn tick(&mut self, _now: u64) -> Vec<Packet> {
        Vec::new()
    }
    fn close(&mut self, _now: u64) -> Vec<Packet> {
        Vec::new()
    }
}

/// The TCP family factory.
pub struct TcpFamily;
impl ProtocolFamily for TcpFamily {
    fn family_name(&self) -> &'static str {
        "tcp"
    }
    fn create_socket(&self, local_port: u16, iss: u32) -> Box<dyn ProtoSocket> {
        Box::new(TcpSocket {
            inner: TcpInner::Conn(TcpPcb::new(local_port, iss)),
            iss,
        })
    }
}

/// The UDP family factory.
pub struct UdpFamily;
impl ProtocolFamily for UdpFamily {
    fn family_name(&self) -> &'static str {
        "udp"
    }
    fn create_socket(&self, local_port: u16, _iss: u32) -> Box<dyn ProtoSocket> {
        Box::new(UdpSocket {
            pcb: UdpPcb::new(local_port),
        })
    }
}

/// Registers the standard families into a registry.
pub fn register_families(registry: &Registry) -> KResult<()> {
    registry.register::<dyn ProtocolFamily>("netstack.family.tcp", "tcp", Arc::new(TcpFamily))?;
    registry.register::<dyn ProtocolFamily>("netstack.family.udp", "udp", Arc::new(UdpFamily))?;
    Ok(())
}

/// A typed channel — the enum that makes the AMP confusion unrepresentable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Channel {
    /// Ordinary L2CAP data channel.
    L2cap {
        /// Negotiated MTU.
        mtu: u16,
        /// Flow-control credits.
        credits: u16,
    },
    /// AMP channel.
    Amp {
        /// AMP controller id.
        controller_id: u8,
        /// Physical-link handle.
        link: u64,
    },
}

/// Socket-table shard count (power of two, buffer-cache idiom).
const SHARDS: usize = 16;

/// Default ephemeral-port range (IANA dynamic range).
const EPHEMERAL_LO: u16 = 49152;
const EPHEMERAL_HI: u16 = 65535;

/// Placeholder owner for a reserved-but-unbound ephemeral port.
const PORT_RESERVED: u64 = u64::MAX;

/// One flow-demux shard: `(proto, local, remote)` → fd.
type FlowMap = BTreeMap<(u8, u16, u16), u64>;

/// A socket plus its close bookkeeping: `released` means the app closed
/// the fd (every API returns `EBADF`), but the protocol may still be
/// mid-teardown — the entry stays until [`ProtoSocket::close_finished`].
struct SockEntry {
    sock: Box<dyn ProtoSocket>,
    released: bool,
}

/// The ephemeral-port allocator state (lockdep class `net.ports`).
struct PortAlloc {
    lo: u16,
    hi: u16,
    /// Next-fit rotor.
    next: u16,
    /// port → owning fd ([`PORT_RESERVED`] while mid-allocation).
    in_use: BTreeMap<u16, u64>,
}

/// The modular socket layer on one end of a link.
pub struct ModularStack {
    side: Side,
    wire: Arc<dyn Link>,
    clock: Arc<SimClock>,
    /// Socket-table shards keyed by fd (lockdep class `net.sockets`,
    /// ranked so nested ascending sweeps would stay legal — the code
    /// never holds two shards at once regardless).
    sock_shards: Vec<TrackedMutex<BTreeMap<u64, SockEntry>>>,
    /// Flow-demux shards: `(proto, local, remote)` → fd (lockdep class
    /// `net.conn_index`).
    conn_index: Vec<TrackedMutex<FlowMap>>,
    /// Bound ports: `(proto, local)` → fd for listeners and datagram
    /// sockets (lockdep class `net.port_index`).
    port_index: TrackedMutex<BTreeMap<(u8, u16), u64>>,
    /// Ephemeral-port allocator (lockdep class `net.ports`).
    ports: TrackedMutex<PortAlloc>,
    /// The L2CAP/AMP channel table (lockdep class `net.channels`).
    channels: TrackedMutex<BTreeMap<u16, Channel>>,
    registry: Arc<Registry>,
    locks: Arc<LockRegistry>,
    next_fd: AtomicU64,
    /// ISS counter — u32-native: the TCP sequence space is a mod-2^32
    /// ring, so `fetch_add` wraparound is sequence-space reuse the
    /// protocol already tolerates via its window checks, not a silent
    /// truncation of a wider counter.
    iss: AtomicU32,
    /// RSTs sent for segments that matched no flow, no listener, and no
    /// bound port (the demux-miss bugfix counter).
    demux_rsts: AtomicU64,
    /// TIME_WAIT incarnations force-reaped to recycle their port.
    timewait_recycles: AtomicU64,
}

impl ModularStack {
    /// Creates a stack using the protocol families registered in
    /// `registry`, pumping through `wire` — the perfect
    /// [`crate::wire::Wire`] or the adversarial
    /// [`crate::fault::FaultyLink`].
    pub fn new(
        registry: Arc<Registry>,
        side: Side,
        wire: Arc<dyn Link>,
        clock: Arc<SimClock>,
    ) -> ModularStack {
        Self::with_lockdep(registry, side, wire, clock, LockRegistry::new_disabled())
    }

    /// Creates a stack whose table locks report to `locks`, so the soak
    /// suites can run with the acquires-after graph live.
    pub fn with_lockdep(
        registry: Arc<Registry>,
        side: Side,
        wire: Arc<dyn Link>,
        clock: Arc<SimClock>,
        locks: Arc<LockRegistry>,
    ) -> ModularStack {
        let sock_shards = (0..SHARDS)
            .map(|i| TrackedMutex::new_ranked(&locks, "net.sockets", i as u64, BTreeMap::new()))
            .collect();
        let conn_index = (0..SHARDS)
            .map(|i| TrackedMutex::new_ranked(&locks, "net.conn_index", i as u64, BTreeMap::new()))
            .collect();
        ModularStack {
            side,
            wire,
            clock,
            sock_shards,
            conn_index,
            port_index: TrackedMutex::new(&locks, "net.port_index", BTreeMap::new()),
            ports: TrackedMutex::new(
                &locks,
                "net.ports",
                PortAlloc {
                    lo: EPHEMERAL_LO,
                    hi: EPHEMERAL_HI,
                    next: EPHEMERAL_LO,
                    in_use: BTreeMap::new(),
                },
            ),
            channels: TrackedMutex::new(&locks, "net.channels", BTreeMap::new()),
            registry,
            locks,
            next_fd: AtomicU64::new(3),
            iss: AtomicU32::new(100),
            demux_rsts: AtomicU64::new(0),
            timewait_recycles: AtomicU64::new(0),
        }
    }

    /// The lockdep registry the stack's table locks report to.
    pub fn lock_registry(&self) -> &Arc<LockRegistry> {
        &self.locks
    }

    fn fd_shard(fd: u64) -> usize {
        (fd as usize) & (SHARDS - 1)
    }

    fn conn_shard(local: u16, remote: u16) -> usize {
        let h = ((u32::from(local) << 16) | u32::from(remote)).wrapping_mul(0x9E37_79B9);
        (h >> 16) as usize & (SHARDS - 1)
    }

    /// Creates a socket of family `family` ("tcp"/"udp") on `local_port`.
    pub fn socket(&self, family: &str, local_port: u16) -> KResult<u64> {
        let iface: &'static str = match family {
            "tcp" => "netstack.family.tcp",
            "udp" => "netstack.family.udp",
            _ => return Err(Errno::EPROTONOSUPPORT),
        };
        let handle = self.registry.subscribe::<dyn ProtocolFamily>(iface)?;
        // Spread consecutive counter values across the sequence ring
        // (Weyl step, odd multiplier) and salt with the port and the
        // link side, so simultaneous connects — the same counter value
        // on two stacks, or two sockets racing on one — never share an
        // ISS. All arithmetic wraps mod 2^32 on purpose: see the `iss`
        // field comment on sequence-space reuse.
        let side_salt: u32 = match self.side {
            Side::A => 0x243F_6A88,
            Side::B => 0x85A3_08D3,
        };
        let n = self.iss.fetch_add(1, Ordering::Relaxed);
        let iss = n
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(u32::from(local_port).wrapping_mul(0x85EB_CA6B))
            .wrapping_add(side_salt);
        let sock = handle.get().create_socket(local_port, iss);
        let proto_num = sock.protocol();
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        // Datagram sockets demux by port alone, so they claim the port
        // at creation; TCP claims on listen/connect.
        if proto_num == proto::UDP {
            let mut ports = self.port_index.lock();
            if ports.contains_key(&(proto_num, local_port)) {
                return Err(Errno::EADDRINUSE);
            }
            ports.insert((proto_num, local_port), fd);
        }
        self.sock_shards[Self::fd_shard(fd)].lock().insert(
            fd,
            SockEntry {
                sock,
                released: false,
            },
        );
        Ok(fd)
    }

    /// Creates a socket on an allocator-chosen ephemeral port, recycling
    /// TIME_WAIT incarnations when the range is exhausted. Returns the
    /// fd and the chosen port.
    pub fn socket_ephemeral(&self, family: &str) -> KResult<(u64, u16)> {
        let port = self.alloc_ephemeral()?;
        match self.socket(family, port) {
            Ok(fd) => {
                self.ports.lock().in_use.insert(port, fd);
                Ok((fd, port))
            }
            Err(e) => {
                self.ports.lock().in_use.remove(&port);
                Err(e)
            }
        }
    }

    /// Narrows the ephemeral range (tests exercise port pressure).
    pub fn set_ephemeral_range(&self, lo: u16, hi: u16) {
        let mut pa = self.ports.lock();
        pa.lo = lo;
        pa.hi = hi;
        pa.next = lo;
    }

    fn alloc_ephemeral(&self) -> KResult<u16> {
        let candidates: Vec<(u16, u64)> = {
            let mut pa = self.ports.lock();
            let span = u32::from(pa.hi - pa.lo) + 1;
            let base = u32::from(pa.next - pa.lo);
            for i in 0..span {
                let port = pa.lo + ((base + i) % span) as u16;
                if let std::collections::btree_map::Entry::Vacant(e) = pa.in_use.entry(port) {
                    e.insert(PORT_RESERVED);
                    pa.next = if port == pa.hi { pa.lo } else { port + 1 };
                    return Ok(port);
                }
            }
            // Range exhausted: collect owners so a TIME_WAIT incarnation
            // can be recycled (checked with the allocator lock dropped —
            // the shard locks are a different class).
            pa.in_use.iter().map(|(&p, &fd)| (p, fd)).collect()
        };
        for (port, owner) in candidates {
            if owner != PORT_RESERVED && self.force_reap_if_done(owner) {
                let mut pa = self.ports.lock();
                if pa.in_use.get(&port) == Some(&owner) || !pa.in_use.contains_key(&port) {
                    pa.in_use.insert(port, PORT_RESERVED);
                    return Ok(port);
                }
            }
        }
        Err(Errno::EADDRINUSE)
    }

    /// Reaps `fd` if its teardown already finished (TIME_WAIT or
    /// defunct) to free its 4-tuple/port; refuses live connections.
    fn force_reap_if_done(&self, fd: u64) -> bool {
        let ident = {
            let mut shard = self.sock_shards[Self::fd_shard(fd)].lock();
            match shard.get(&fd) {
                // Already gone — the stale reference is free.
                None => return true,
                Some(e) if e.sock.in_time_wait() || e.sock.reapable() => {
                    let tw = e.sock.in_time_wait();
                    let e = shard.remove(&fd).expect("entry just found");
                    (
                        e.sock.protocol(),
                        e.sock.local_port(),
                        e.sock.remote_port(),
                        tw,
                    )
                }
                Some(_) => return false,
            }
        };
        if ident.3 {
            self.timewait_recycles.fetch_add(1, Ordering::Relaxed);
        }
        self.purge_indexes(ident.0, ident.1, ident.2, fd);
        true
    }

    /// Drops every index entry still pointing at a reaped fd. Each index
    /// lock is taken alone — never nested with a socket shard.
    fn purge_indexes(&self, proto_num: u8, local: u16, remote: u16, fd: u64) {
        if proto_num == proto::TCP && remote != 0 {
            let key = (proto_num, local, remote);
            let mut idx = self.conn_index[Self::conn_shard(local, remote)].lock();
            if idx.get(&key) == Some(&fd) {
                idx.remove(&key);
            }
        }
        {
            let mut ports = self.port_index.lock();
            if ports.get(&(proto_num, local)) == Some(&fd) {
                ports.remove(&(proto_num, local));
            }
        }
        let mut pa = self.ports.lock();
        if pa.in_use.get(&local) == Some(&fd) {
            pa.in_use.remove(&local);
        }
    }

    fn with_sock<R>(&self, fd: u64, f: impl FnOnce(&mut Box<dyn ProtoSocket>) -> R) -> KResult<R> {
        let mut shard = self.sock_shards[Self::fd_shard(fd)].lock();
        match shard.get_mut(&fd) {
            Some(e) if !e.released => Ok(f(&mut e.sock)),
            _ => Err(Errno::EBADF),
        }
    }

    fn transmit(&self, pkts: Vec<Packet>) {
        for p in pkts {
            self.wire.send(self.side, &p);
        }
    }

    /// Passive open with the default backlog.
    pub fn listen(&self, fd: u64) -> KResult<()> {
        self.listen_backlog(fd, DEFAULT_BACKLOG)
    }

    /// Passive open with an explicit SYN/accept-queue limit.
    pub fn listen_backlog(&self, fd: u64, backlog: usize) -> KResult<()> {
        let (proto_num, local) = self.with_sock(fd, |s| (s.protocol(), s.local_port()))?;
        // Claim the port first, alone, then flip the socket; the claim
        // is rolled back if the socket refuses (e.g. already connected).
        {
            let mut ports = self.port_index.lock();
            match ports.get(&(proto_num, local)) {
                Some(&owner) if owner != fd => return Err(Errno::EADDRINUSE),
                _ => {
                    ports.insert((proto_num, local), fd);
                }
            }
        }
        let res = self.with_sock(fd, |s| s.listen(backlog)).and_then(|r| r);
        if res.is_err() {
            let mut ports = self.port_index.lock();
            if ports.get(&(proto_num, local)) == Some(&fd) {
                ports.remove(&(proto_num, local));
            }
        }
        res
    }

    /// Takes one completed connection off `fd`'s accept queue and gives
    /// it its own fd; `Ok(None)` when the queue is empty.
    pub fn accept(&self, fd: u64) -> KResult<Option<u64>> {
        let Some(child) = self.with_sock(fd, |s| s.take_accepted())? else {
            return Ok(None);
        };
        let (local, remote) = (child.local_port(), child.remote_port());
        let new_fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.sock_shards[Self::fd_shard(new_fd)].lock().insert(
            new_fd,
            SockEntry {
                sock: child,
                released: false,
            },
        );
        // Route the flow to its own fd; the listener stops seeing these
        // segments. Overwriting is correct: any previous owner of the
        // 4-tuple is a dead incarnation (a live one would have absorbed
        // the SYN before the listener ever spawned this child).
        self.conn_index[Self::conn_shard(local, remote)]
            .lock()
            .insert((proto::TCP, local, remote), new_fd);
        Ok(Some(new_fd))
    }

    /// Active open.
    pub fn connect(&self, fd: u64, remote_port: u16) -> KResult<()> {
        let now = self.clock.now_ns();
        let (proto_num, local) = self.with_sock(fd, |s| (s.protocol(), s.local_port()))?;
        if proto_num == proto::TCP {
            self.claim_conn_slot(local, remote_port, fd)?;
        }
        let res = self
            .with_sock(fd, |s| s.connect(remote_port, now))
            .and_then(|r| r);
        match res {
            Ok(pkts) => {
                self.transmit(pkts);
                Ok(())
            }
            Err(e) => {
                if proto_num == proto::TCP {
                    let key = (proto::TCP, local, remote_port);
                    let mut idx = self.conn_index[Self::conn_shard(local, remote_port)].lock();
                    if idx.get(&key) == Some(&fd) {
                        idx.remove(&key);
                    }
                    Err(e)
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Claims the `(local, remote)` flow slot for `fd`, evicting only a
    /// finished previous incarnation (TIME_WAIT recycling on the
    /// 4-tuple); a live owner means `EADDRINUSE`.
    fn claim_conn_slot(&self, local: u16, remote: u16, fd: u64) -> KResult<()> {
        let key = (proto::TCP, local, remote);
        let occupant = {
            let mut idx = self.conn_index[Self::conn_shard(local, remote)].lock();
            match idx.get(&key) {
                None => {
                    idx.insert(key, fd);
                    return Ok(());
                }
                Some(&o) if o == fd => return Ok(()),
                Some(&o) => o,
            }
        };
        if !self.force_reap_if_done(occupant) {
            return Err(Errno::EADDRINUSE);
        }
        let mut idx = self.conn_index[Self::conn_shard(local, remote)].lock();
        match idx.get(&key) {
            None => {
                idx.insert(key, fd);
                Ok(())
            }
            Some(&o) if o == fd => Ok(()),
            Some(_) => Err(Errno::EADDRINUSE),
        }
    }

    /// Sends data.
    pub fn send(&self, fd: u64, dst_port: u16, data: &[u8]) -> KResult<usize> {
        let now = self.clock.now_ns();
        let pkts = self.with_sock(fd, |s| s.send(dst_port, data, now))??;
        self.transmit(pkts);
        Ok(data.len())
    }

    /// Receives available data.
    pub fn recv(&self, fd: u64) -> KResult<Vec<u8>> {
        self.with_sock(fd, |s| s.recv())
    }

    /// Typed readiness: dispatches through the interface, works for every
    /// protocol (contrast `LegacyStack::poll`).
    pub fn poll(&self, fd: u64) -> KResult<bool> {
        self.with_sock(fd, |s| s.poll())
    }

    /// Closes a socket. The fd is released immediately (every further
    /// call returns `EBADF`), but a TCP connection's PCB stays in the
    /// table until its FIN handshake and TIME_WAIT finish — so a lost
    /// FIN retransmits and the peer's FIN gets its ACK — and is reaped
    /// by `tick`/`reap_closed` on expiry.
    pub fn close(&self, fd: u64) -> KResult<()> {
        let now = self.clock.now_ns();
        let (pkts, done, ident) = {
            let mut shard = self.sock_shards[Self::fd_shard(fd)].lock();
            let e = shard.get_mut(&fd).ok_or(Errno::EBADF)?;
            if e.released {
                return Err(Errno::EBADF);
            }
            let pkts = e.sock.close(now);
            e.released = true;
            let done = e.sock.close_finished();
            let ident = (e.sock.protocol(), e.sock.local_port(), e.sock.remote_port());
            if done {
                shard.remove(&fd);
            }
            (pkts, done, ident)
        };
        self.transmit(pkts);
        if done {
            self.purge_indexes(ident.0, ident.1, ident.2, fd);
        }
        Ok(())
    }

    /// Routes one packet to a socket; `false` when the fd is gone (a
    /// stale index entry). Released-but-closing sockets still speak —
    /// the FIN handshake runs to completion behind the dead fd.
    fn deliver(&self, fd: u64, pkt: &Packet, now: u64) -> bool {
        let (out, reaped) = {
            let mut shard = self.sock_shards[Self::fd_shard(fd)].lock();
            match shard.get_mut(&fd) {
                Some(e) => {
                    let out = e.sock.on_packet(pkt, now);
                    // A released PCB whose teardown this very packet
                    // finished (the final ACK of its FIN) is reaped on
                    // the spot, freeing its 4-tuple for reuse.
                    let reaped = if e.released && e.sock.close_finished() {
                        let ident = (e.sock.protocol(), e.sock.local_port(), e.sock.remote_port());
                        shard.remove(&fd);
                        Some(ident)
                    } else {
                        None
                    };
                    (out, reaped)
                }
                None => return false,
            }
        };
        self.transmit(out);
        if let Some((p, l, r)) = reaped {
            self.purge_indexes(p, l, r, fd);
        }
        true
    }

    /// Drains the wire; returns packets processed. Demux is two index
    /// probes — the flow shard, then the bound port — instead of the old
    /// O(sockets) scan under one global lock.
    pub fn pump(&self) -> KResult<usize> {
        let now = self.clock.now_ns();
        let mut count = 0;
        loop {
            let pkt = match self.wire.recv(self.side) {
                Ok(Some(p)) => p,
                Ok(None) => break,
                // A frame that failed checksum/parse: a detected loss the
                // retransmission machinery heals — never a dead pump.
                Err(_) => continue,
            };
            count += 1;
            if pkt.proto == proto::AMP_CTRL {
                let _ = self.handle_ctrl_packet(&pkt);
                continue;
            }
            // Exact flow match wins.
            if pkt.proto == proto::TCP {
                let key = (proto::TCP, pkt.dst_port, pkt.src_port);
                let shard = &self.conn_index[Self::conn_shard(pkt.dst_port, pkt.src_port)];
                let flow = shard.lock().get(&key).copied();
                if let Some(fd) = flow {
                    if self.deliver(fd, &pkt, now) {
                        continue;
                    }
                    // The fd is gone: drop the stale entry, fall through
                    // to the listener/dead-port paths.
                    let mut idx = shard.lock();
                    if idx.get(&key) == Some(&fd) {
                        idx.remove(&key);
                    }
                }
            }
            // A bound port (listener or datagram socket) takes the rest.
            let bound = self
                .port_index
                .lock()
                .get(&(pkt.proto, pkt.dst_port))
                .copied();
            if let Some(fd) = bound {
                if self.deliver(fd, &pkt, now) {
                    continue;
                }
            }
            // Dead port: answer non-RST TCP with a RST so the peer fails
            // fast instead of burning its whole retry budget (the old
            // code silently swallowed these).
            if pkt.proto == proto::TCP && pkt.flags & flags::RST == 0 {
                self.demux_rsts.fetch_add(1, Ordering::Relaxed);
                self.transmit(vec![rst_for(&pkt, pkt.dst_port)]);
            }
        }
        Ok(count)
    }

    /// Timer tick on every socket, one shard at a time (no global lock),
    /// reaping closed sockets whose teardown has finished.
    pub fn tick(&self) {
        let now = self.clock.now_ns();
        for shard in &self.sock_shards {
            let (out, reaped) = {
                let mut guard = shard.lock();
                let mut out = Vec::new();
                let mut reaped = Vec::new();
                for (&fd, e) in guard.iter_mut() {
                    out.extend(e.sock.tick(now));
                    if e.released && e.sock.close_finished() {
                        reaped.push((
                            fd,
                            e.sock.protocol(),
                            e.sock.local_port(),
                            e.sock.remote_port(),
                        ));
                    }
                }
                for (fd, ..) in &reaped {
                    guard.remove(fd);
                }
                (out, reaped)
            };
            self.transmit(out);
            for (fd, p, l, r) in reaped {
                self.purge_indexes(p, l, r, fd);
            }
        }
    }

    /// Registers an L2CAP channel.
    pub fn create_l2cap_channel(&self, cid: u16, mtu: u16) {
        self.channels
            .lock()
            .insert(cid, Channel::L2cap { mtu, credits: 10 });
    }

    /// Registers an AMP channel.
    pub fn create_amp_channel(&self, cid: u16, controller_id: u8) {
        self.channels.lock().insert(
            cid,
            Channel::Amp {
                controller_id,
                link: 0,
            },
        );
    }

    /// Processes an AMP control packet — typed: the move opcode only
    /// applies to [`Channel::Amp`]; anything else is `EPROTO`, not a cast.
    pub fn handle_ctrl_packet(&self, pkt: &Packet) -> KResult<()> {
        if pkt.payload.len() < 4 {
            return Err(Errno::EBADMSG);
        }
        let opcode = pkt.payload[0];
        let cid = u16::from_le_bytes([pkt.payload[1], pkt.payload[2]]);
        match opcode {
            crate::legacy_stack::OP_AMP_MOVE => {
                let mut channels = self.channels.lock();
                match channels.get_mut(&cid) {
                    Some(Channel::Amp { controller_id, .. }) => {
                        *controller_id = pkt.payload[3];
                        Ok(())
                    }
                    Some(Channel::L2cap { .. }) => Err(Errno::EPROTO),
                    None => Err(Errno::ENOENT),
                }
            }
            _ => Err(Errno::EPROTONOSUPPORT),
        }
    }

    /// Per-connection event counters, through the typed interface.
    pub fn tcp_counters(&self, fd: u64) -> KResult<TcpCounters> {
        self.with_sock(fd, |s| s.counters())
    }

    /// Stack-level TCP counters not owned by any one connection —
    /// currently the demux-miss RSTs.
    pub fn stack_counters(&self) -> TcpCounters {
        TcpCounters {
            resets_sent: self.demux_rsts.load(Ordering::Relaxed),
            ..TcpCounters::default()
        }
    }

    /// RSTs sent for segments that matched no socket at all.
    pub fn demux_resets(&self) -> u64 {
        self.demux_rsts.load(Ordering::Relaxed)
    }

    /// TIME_WAIT incarnations force-reaped to recycle a port or 4-tuple.
    pub fn timewait_recycles(&self) -> u64 {
        self.timewait_recycles.load(Ordering::Relaxed)
    }

    /// Live socket entries across all shards (includes closing PCBs
    /// whose fd is already released).
    pub fn live_sockets(&self) -> usize {
        self.sock_shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True once the connection died abnormally — the typed failure
    /// report (no downcast required).
    pub fn conn_failed(&self, fd: u64) -> KResult<bool> {
        self.with_sock(fd, |s| s.conn_failed())
    }

    /// Removes every socket that reports itself finished — defunct
    /// connections ([`ProtoSocket::reapable`]) and released sockets
    /// whose teardown completed. Returns how many were reaped.
    pub fn reap_closed(&self) -> usize {
        let mut total = 0;
        for shard in &self.sock_shards {
            let reaped: Vec<(u64, u8, u16, u16)> = {
                let mut guard = shard.lock();
                let dead: Vec<(u64, u8, u16, u16)> = guard
                    .iter()
                    .filter(|(_, e)| {
                        (!e.released && e.sock.reapable())
                            || (e.released && e.sock.close_finished())
                    })
                    .map(|(&fd, e)| {
                        (
                            fd,
                            e.sock.protocol(),
                            e.sock.local_port(),
                            e.sock.remote_port(),
                        )
                    })
                    .collect();
                for (fd, ..) in &dead {
                    guard.remove(fd);
                }
                dead
            };
            total += reaped.len();
            for (fd, p, l, r) in reaped {
                self.purge_indexes(p, l, r, fd);
            }
        }
        total
    }

    /// TCP state of a socket, when it is one (tests/diagnostics).
    pub fn tcp_state(&self, fd: u64) -> KResult<Option<TcpState>> {
        self.with_sock(fd, |s| s.tcp_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{DEFAULT_RTO_NS, TIME_WAIT_NS};
    use crate::wire::Wire;

    fn pair_on(wire: Arc<Wire>, clock: Arc<SimClock>) -> (ModularStack, ModularStack) {
        let registry = Arc::new(Registry::new());
        register_families(&registry).unwrap();
        let a = ModularStack::new(
            Arc::clone(&registry),
            Side::A,
            wire.clone(),
            Arc::clone(&clock),
        );
        let b = ModularStack::new(registry, Side::B, wire, clock);
        (a, b)
    }

    fn pair() -> (ModularStack, ModularStack, Arc<SimClock>) {
        let clock = Arc::new(SimClock::new());
        let (a, b) = pair_on(Arc::new(Wire::new()), Arc::clone(&clock));
        (a, b, clock)
    }

    fn pump_both(a: &ModularStack, b: &ModularStack) {
        for _ in 0..8 {
            a.pump().unwrap();
            b.pump().unwrap();
        }
    }

    /// Internal state peek that works for released (closing) fds too.
    fn raw_state(stack: &ModularStack, fd: u64) -> Option<TcpState> {
        let shard = stack.sock_shards[ModularStack::fd_shard(fd)].lock();
        shard.get(&fd).and_then(|e| e.sock.tcp_state())
    }

    #[test]
    fn tcp_echo_through_the_modular_interface() {
        let (a, b, _) = pair();
        let server = b.socket("tcp", 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket("tcp", 1234).unwrap();
        a.connect(client, 80).unwrap();
        pump_both(&a, &b);
        assert!(b.poll(server).unwrap(), "accept queue has the handshake");
        let conn = b.accept(server).unwrap().expect("connection ready");
        assert!(!b.poll(server).unwrap(), "queue drained");
        a.send(client, 80, b"hello").unwrap();
        pump_both(&a, &b);
        assert!(b.poll(conn).unwrap());
        assert_eq!(b.recv(conn).unwrap(), b"hello");
        b.send(conn, 1234, b"world").unwrap();
        pump_both(&a, &b);
        assert_eq!(a.recv(client).unwrap(), b"world");
        assert_eq!(b.recv(server).unwrap(), b"", "listener carries no data");
    }

    #[test]
    fn udp_flow_and_typed_poll() {
        let (a, b, _) = pair();
        let sa = a.socket("udp", 1000).unwrap();
        let sb = b.socket("udp", 2000).unwrap();
        assert!(!b.poll(sb).unwrap(), "typed poll on UDP: correct answer");
        a.send(sa, 2000, b"dgram").unwrap();
        pump_both(&a, &b);
        assert!(b.poll(sb).unwrap());
        assert_eq!(b.recv(sb).unwrap(), b"dgram");
    }

    #[test]
    fn unknown_family_refused() {
        let (a, _, _) = pair();
        assert_eq!(a.socket("sctp", 1), Err(Errno::EPROTONOSUPPORT));
    }

    #[test]
    fn crafted_amp_packet_is_refused_not_confused() {
        let (a, _, _) = pair();
        a.create_l2cap_channel(0x40, 672);
        a.create_amp_channel(0x41, 1);
        let mut ok = Packet::new(proto::AMP_CTRL, 1, 1);
        ok.payload = vec![crate::legacy_stack::OP_AMP_MOVE, 0x41, 0x00, 2];
        a.handle_ctrl_packet(&ok).unwrap();
        let mut evil = Packet::new(proto::AMP_CTRL, 1, 1);
        evil.payload = vec![crate::legacy_stack::OP_AMP_MOVE, 0x40, 0x00, 2];
        assert_eq!(a.handle_ctrl_packet(&evil), Err(Errno::EPROTO));
        // The L2CAP channel is untouched.
        assert_eq!(
            a.channels.lock().get(&0x40),
            Some(&Channel::L2cap {
                mtu: 672,
                credits: 10
            })
        );
    }

    #[test]
    fn one_listener_serves_multiple_clients() {
        let (a, b, _) = pair();
        let server = b.socket("tcp", 80).unwrap();
        b.listen(server).unwrap();
        let clients: Vec<u64> = (0..3u16)
            .map(|i| {
                let c = a.socket("tcp", 2000 + i).unwrap();
                a.connect(c, 80).unwrap();
                c
            })
            .collect();
        pump_both(&a, &b);
        // Accept order is SYN arrival order — client creation order.
        let mut conns = Vec::new();
        while let Some(fd) = b.accept(server).unwrap() {
            conns.push(fd);
        }
        assert_eq!(conns.len(), 3);
        for (i, &c) in clients.iter().enumerate() {
            a.send(c, 80, format!("msg {i}").as_bytes()).unwrap();
        }
        pump_both(&a, &b);
        for (i, &s) in conns.iter().enumerate() {
            assert_eq!(b.recv(s).unwrap(), format!("msg {i}").as_bytes());
        }
        // Replies route back to the right clients: the accepted socket
        // knows its peer, the dst arg is advisory for TCP.
        for (i, &s) in conns.iter().enumerate() {
            b.send(s, 0, format!("r{i}").as_bytes()).unwrap();
        }
        pump_both(&a, &b);
        for (i, &c) in clients.iter().enumerate() {
            assert_eq!(a.recv(c).unwrap(), format!("r{i}").as_bytes());
        }
    }

    #[test]
    fn second_listener_on_the_same_port_is_refused() {
        let (_, b, _) = pair();
        let s1 = b.socket("tcp", 80).unwrap();
        b.listen(s1).unwrap();
        let s2 = b.socket("tcp", 80).unwrap();
        assert_eq!(b.listen(s2), Err(Errno::EADDRINUSE));
        // The original listener keeps the port.
        assert_eq!(b.listen(s1), Ok(()), "re-listen on the owner is fine");
    }

    #[test]
    fn hot_swapping_a_protocol_family() {
        // The Step-1 payoff: replace the TCP family implementation while
        // the stack is live; new sockets use the replacement.
        struct InstrumentedTcp {
            inner: TcpFamily,
        }
        impl ProtocolFamily for InstrumentedTcp {
            fn family_name(&self) -> &'static str {
                "tcp-v2"
            }
            fn create_socket(&self, local_port: u16, iss: u32) -> Box<dyn ProtoSocket> {
                self.inner.create_socket(local_port, iss)
            }
        }
        let registry = Arc::new(Registry::new());
        register_families(&registry).unwrap();
        let wire = Arc::new(Wire::new());
        let clock = Arc::new(SimClock::new());
        let a = ModularStack::new(Arc::clone(&registry), Side::A, wire, clock);
        let _s1 = a.socket("tcp", 1).unwrap();
        registry
            .replace::<dyn ProtocolFamily>(
                "netstack.family.tcp",
                "tcp-v2",
                Arc::new(InstrumentedTcp { inner: TcpFamily }),
            )
            .unwrap();
        let _s2 = a.socket("tcp", 2).unwrap();
        let entries = registry.list();
        let tcp = entries
            .iter()
            .find(|e| e.interface == "netstack.family.tcp")
            .unwrap();
        assert_eq!(tcp.implementation, "tcp-v2");
        assert_eq!(tcp.swaps, 1);
    }

    #[test]
    fn lossy_wire_recovers_via_retransmission() {
        use crate::wire::WireFaults;
        let clock = Arc::new(SimClock::new());
        let wire = Arc::new(Wire::with_faults(
            WireFaults {
                loss: 0.3,
                duplicate: 0.0,
            },
            7,
        ));
        let registry = Arc::new(Registry::new());
        register_families(&registry).unwrap();
        let a = ModularStack::new(
            Arc::clone(&registry),
            Side::A,
            wire.clone(),
            Arc::clone(&clock),
        );
        let b = ModularStack::new(registry, Side::B, wire, Arc::clone(&clock));
        let server = b.socket("tcp", 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket("tcp", 99).unwrap();
        a.connect(client, 80).unwrap();
        let payload = vec![3u8; 4000];
        let mut sent = false;
        let mut conn = None;
        let mut got = Vec::new();
        for round in 0..200 {
            a.pump().unwrap();
            b.pump().unwrap();
            if conn.is_none() {
                conn = b.accept(server).unwrap();
            }
            if !sent {
                // Try sending; ENOTCONN until the handshake completes.
                if a.send(client, 80, &payload).is_ok() {
                    sent = true;
                }
            }
            if let Some(c) = conn {
                got.extend(b.recv(c).unwrap());
            }
            if got.len() == payload.len() {
                break;
            }
            clock.advance(crate::tcp::DEFAULT_RTO_NS / 2);
            a.tick();
            b.tick();
            assert!(round < 199, "never completed over lossy wire");
        }
        assert_eq!(got, payload);
    }

    /// Satellite bugfix 1: close used to remove the PCB from the table
    /// before the FIN handshake ran, so a lost FIN (or a lost FIN-ACK)
    /// could never be retransmitted and the peer burned its retry budget
    /// into `conn_failed`. Reverting the fix fails here: with the PCB
    /// gone, the dropped FIN-ACK below is never re-answered.
    #[test]
    fn orderly_close_completes_after_the_fin_ack_is_lost() {
        let clock = Arc::new(SimClock::new());
        let wire = Arc::new(Wire::new());
        let (a, b) = pair_on(Arc::clone(&wire), Arc::clone(&clock));
        let server = b.socket("tcp", 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket("tcp", 5000).unwrap();
        a.connect(client, 80).unwrap();
        pump_both(&a, &b);
        let conn = b.accept(server).unwrap().expect("established");

        a.close(client).unwrap();
        assert_eq!(a.recv(client), Err(Errno::EBADF), "fd dies immediately");
        assert_eq!(raw_state(&a, client), Some(TcpState::FinWait1));
        b.pump().unwrap(); // server takes the FIN, ACKs it...
        while let Ok(Some(_)) = wire.recv(Side::A) {} // ...and the ACK is lost.
        assert_eq!(raw_state(&a, client), Some(TcpState::FinWait1));

        // The retained PCB retransmits the FIN after an RTO.
        clock.advance(DEFAULT_RTO_NS + 1);
        a.tick();
        pump_both(&a, &b);
        assert_eq!(raw_state(&a, client), Some(TcpState::FinWait2));
        assert!(
            !b.conn_failed(conn).unwrap(),
            "server side never saw a failure"
        );
        assert_eq!(b.tcp_counters(conn).unwrap().resets_received, 0);

        // Server closes its half; the client ACKs from the closing PCB.
        b.close(conn).unwrap();
        pump_both(&a, &b);
        assert_eq!(raw_state(&a, client), Some(TcpState::TimeWait));
        assert_eq!(raw_state(&b, conn), None, "LastAck -> Closed, reaped");

        // TIME_WAIT expiry reaps the last of it; no RSTs ever flowed.
        clock.advance(TIME_WAIT_NS + 1);
        a.tick();
        b.tick();
        assert_eq!(a.live_sockets(), 0, "client fully reaped");
        assert_eq!(b.live_sockets(), 1, "only the listener remains");
        assert_eq!(a.demux_resets() + b.demux_resets(), 0);
    }

    /// Satellite bugfix 2: segments to a dead port used to be silently
    /// swallowed, so the peer retransmitted into the void for the whole
    /// retry budget. Now they draw a RST and the connect fails fast.
    #[test]
    fn segment_to_a_dead_port_draws_a_reset() {
        let (a, b, _) = pair();
        let client = a.socket("tcp", 5555).unwrap();
        a.connect(client, 80).unwrap(); // nobody listens on b:80
        b.pump().unwrap();
        assert_eq!(b.demux_resets(), 1);
        assert_eq!(b.stack_counters().resets_sent, 1);
        a.pump().unwrap();
        assert!(a.conn_failed(client).unwrap(), "RST kills the connect");
        let c = a.tcp_counters(client).unwrap();
        assert_eq!(c.resets_received, 1);
        assert_eq!(c.retransmits, 0, "failed fast, no retry burn");
        // The RST itself must not echo another RST back.
        b.pump().unwrap();
        assert_eq!(b.demux_resets(), 1);
    }

    /// Satellite bugfix 3: the ISS counter was u64 silently truncated to
    /// u32 and stepped by a constant, so the first socket on every stack
    /// got the identical ISS. Now each connection's ISS is seeded from
    /// the counter, the port, and the link side.
    #[test]
    fn iss_is_seeded_per_connection_and_per_side() {
        let clock = Arc::new(SimClock::new());
        let wire = Arc::new(Wire::new());
        let (a, b) = pair_on(Arc::clone(&wire), Arc::clone(&clock));

        // Same counter value (first socket each), same local port: the
        // two stacks must still pick different ISSs.
        let ca = a.socket("tcp", 7000).unwrap();
        let cb = b.socket("tcp", 7000).unwrap();
        a.connect(ca, 80).unwrap();
        b.connect(cb, 80).unwrap();
        let syn_a = wire.recv(Side::B).unwrap().expect("SYN from A");
        let syn_b = wire.recv(Side::A).unwrap().expect("SYN from B");
        assert_ne!(
            syn_a.seq, syn_b.seq,
            "simultaneous connects must not collide on ISS"
        );

        // And a burst of connects on one stack is pairwise distinct.
        let mut seqs = vec![syn_a.seq];
        for i in 0..100u16 {
            let fd = a.socket("tcp", 9000 + i).unwrap();
            a.connect(fd, 80).unwrap();
        }
        while let Ok(Some(p)) = wire.recv(Side::B) {
            seqs.push(p.seq);
        }
        assert_eq!(seqs.len(), 101);
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 101, "every connection gets its own ISS");
    }

    #[test]
    fn ephemeral_ports_recycle_time_wait_under_pressure() {
        let clock = Arc::new(SimClock::new());
        let wire = Arc::new(Wire::new());
        let (a, b) = pair_on(Arc::clone(&wire), Arc::clone(&clock));
        let server = b.socket("tcp", 80).unwrap();
        b.listen(server).unwrap();
        a.set_ephemeral_range(50000, 50001);

        let mut used = Vec::new();
        for _ in 0..2 {
            let (fd, port) = a.socket_ephemeral("tcp").unwrap();
            used.push(port);
            a.connect(fd, 80).unwrap();
            pump_both(&a, &b);
            let conn = b.accept(server).unwrap().expect("established");
            // Full orderly close: the client ends in TIME_WAIT, still
            // owning its port.
            a.close(fd).unwrap();
            b.pump().unwrap();
            b.close(conn).unwrap();
            pump_both(&a, &b);
            assert_eq!(raw_state(&a, fd), Some(TcpState::TimeWait));
        }
        used.sort_unstable();
        assert_eq!(used, vec![50000, 50001], "range exhausted");

        // A third allocation only succeeds by recycling a TIME_WAIT
        // incarnation.
        let (fd3, port3) = a.socket_ephemeral("tcp").unwrap();
        assert!(used.contains(&port3));
        assert_eq!(a.timewait_recycles(), 1);
        a.connect(fd3, 80).unwrap();
        pump_both(&a, &b);
        assert_eq!(raw_state(&a, fd3), Some(TcpState::Established));
    }

    #[test]
    fn sharded_paths_stay_lockdep_clean() {
        let registry = Arc::new(Registry::new());
        register_families(&registry).unwrap();
        let wire = Arc::new(Wire::new());
        let clock = Arc::new(SimClock::new());
        let locks = LockRegistry::new();
        let a = ModularStack::with_lockdep(
            Arc::clone(&registry),
            Side::A,
            wire.clone(),
            Arc::clone(&clock),
            Arc::clone(&locks),
        );
        let b = ModularStack::with_lockdep(
            registry,
            Side::B,
            wire,
            Arc::clone(&clock),
            Arc::clone(&locks),
        );
        let server = b.socket("tcp", 80).unwrap();
        b.listen(server).unwrap();
        a.set_ephemeral_range(50000, 50003);
        for _ in 0..4 {
            let (fd, _) = a.socket_ephemeral("tcp").unwrap();
            a.connect(fd, 80).unwrap();
            pump_both(&a, &b);
            let conn = b.accept(server).unwrap().expect("established");
            a.send(fd, 80, b"ping").unwrap();
            pump_both(&a, &b);
            assert_eq!(b.recv(conn).unwrap(), b"ping");
            a.close(fd).unwrap();
            b.pump().unwrap();
            b.close(conn).unwrap();
            pump_both(&a, &b);
            clock.advance(TIME_WAIT_NS + 1);
            a.tick();
            b.tick();
        }
        // One more allocation sweep to drive the recycling path too.
        let (fd, _) = a.socket_ephemeral("tcp").unwrap();
        a.connect(fd, 80).unwrap();
        pump_both(&a, &b);
        a.reap_closed();
        b.reap_closed();
        assert!(
            locks.violations().is_empty(),
            "sharded demux/tick/alloc paths must be lockdep-clean: {:?}",
            locks.violations()
        );
    }
}
