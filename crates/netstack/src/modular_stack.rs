//! The roadmap socket layer: protocols behind a typed, modular interface.
//!
//! Step 1: protocol families register as factories in the `sk-core`
//! [`Registry`] under `"netstack.family.<name>"`; the socket layer holds
//! handles and never names an implementation. Step 2: per-socket state is a
//! [`ProtoSocket`] trait object — there is no `void *` to mis-cast, generic
//! code can only call the interface. The channel table is a typed enum, so
//! the crafted AMP packet from `legacy_stack` is refused with `EPROTO`
//! instead of confusing types.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sk_core::modularity::Registry;
use sk_ksim::errno::{Errno, KResult};
use sk_ksim::lock::{LockRegistry, TrackedMutex};
use sk_ksim::time::SimClock;

use crate::packet::{proto, Packet};
use crate::tcp::{TcpCounters, TcpPcb, TcpState};
use crate::udp::UdpPcb;
use crate::wire::{Link, Side};

/// A protocol's per-socket engine, behind the typed interface.
pub trait ProtoSocket: Send {
    /// Protocol number this socket speaks.
    fn protocol(&self) -> u8;
    /// Local port.
    fn local_port(&self) -> u16;
    /// Remote port once connected (0 when unknown — datagram sockets and
    /// listeners).
    fn remote_port(&self) -> u16 {
        0
    }
    /// True while passively waiting for a connection.
    fn is_listening(&self) -> bool {
        false
    }
    /// Passive open (TCP); no-op for datagram protocols.
    fn listen(&mut self) -> KResult<()>;
    /// Active open; returns packets to transmit.
    fn connect(&mut self, remote_port: u16, now: u64) -> KResult<Vec<Packet>>;
    /// Queues data; returns packets to transmit.
    fn send(&mut self, dst_port: u16, data: &[u8], now: u64) -> KResult<Vec<Packet>>;
    /// Takes received bytes.
    fn recv(&mut self) -> Vec<u8>;
    /// Readiness — the typed replacement for the legacy TCP-assuming poll.
    fn poll(&self) -> bool;
    /// Handles an incoming packet; returns responses.
    fn on_packet(&mut self, pkt: &Packet, now: u64) -> Vec<Packet>;
    /// Timer tick; returns retransmissions.
    fn tick(&mut self, now: u64) -> Vec<Packet>;
    /// Begins close; returns packets to transmit.
    fn close(&mut self, now: u64) -> Vec<Packet>;
    /// Per-connection event counters (zero for stateless protocols).
    fn counters(&self) -> TcpCounters {
        TcpCounters::default()
    }
    /// True once the connection died abnormally (retry budget exhausted
    /// or reset by the peer).
    fn conn_failed(&self) -> bool {
        false
    }
    /// True when the socket is finished and the layer may reap it.
    fn reapable(&self) -> bool {
        false
    }
}

/// A protocol family: a factory for sockets (what the registry stores).
pub trait ProtocolFamily: Send + Sync {
    /// Family name (diagnostics).
    fn family_name(&self) -> &'static str;
    /// Creates a socket bound to `local_port`.
    fn create_socket(&self, local_port: u16, iss: u32) -> Box<dyn ProtoSocket>;
}

/// TCP socket adapter.
pub struct TcpSocket {
    pcb: TcpPcb,
}

impl ProtoSocket for TcpSocket {
    fn protocol(&self) -> u8 {
        proto::TCP
    }
    fn local_port(&self) -> u16 {
        self.pcb.local_port
    }
    fn remote_port(&self) -> u16 {
        self.pcb.remote_port
    }
    fn is_listening(&self) -> bool {
        self.pcb.state == TcpState::Listen
    }
    fn listen(&mut self) -> KResult<()> {
        self.pcb.listen();
        Ok(())
    }
    fn connect(&mut self, remote_port: u16, now: u64) -> KResult<Vec<Packet>> {
        Ok(vec![self.pcb.connect(remote_port, now)])
    }
    fn send(&mut self, _dst_port: u16, data: &[u8], now: u64) -> KResult<Vec<Packet>> {
        let pkts = self.pcb.send(data, now);
        if pkts.is_empty() && !data.is_empty() {
            return Err(Errno::ENOTCONN);
        }
        Ok(pkts)
    }
    fn recv(&mut self) -> Vec<u8> {
        self.pcb.take_received()
    }
    fn poll(&self) -> bool {
        self.pcb.available() > 0 || self.pcb.state == TcpState::CloseWait
    }
    fn on_packet(&mut self, pkt: &Packet, now: u64) -> Vec<Packet> {
        self.pcb.on_packet(pkt, now)
    }
    fn tick(&mut self, now: u64) -> Vec<Packet> {
        self.pcb.tick(now)
    }
    fn close(&mut self, now: u64) -> Vec<Packet> {
        self.pcb.close(now).into_iter().collect()
    }
    fn counters(&self) -> TcpCounters {
        self.pcb.counters
    }
    fn conn_failed(&self) -> bool {
        self.pcb.is_failed()
    }
    fn reapable(&self) -> bool {
        self.pcb.is_defunct()
    }
}

impl TcpSocket {
    /// Connection state (tests).
    pub fn state(&self) -> TcpState {
        self.pcb.state
    }
}

/// UDP socket adapter.
pub struct UdpSocket {
    pcb: UdpPcb,
}

impl ProtoSocket for UdpSocket {
    fn protocol(&self) -> u8 {
        proto::UDP
    }
    fn local_port(&self) -> u16 {
        self.pcb.local_port
    }
    fn listen(&mut self) -> KResult<()> {
        Ok(())
    }
    fn connect(&mut self, _remote_port: u16, _now: u64) -> KResult<Vec<Packet>> {
        Ok(Vec::new())
    }
    fn send(&mut self, dst_port: u16, data: &[u8], _now: u64) -> KResult<Vec<Packet>> {
        match self.pcb.send(dst_port, data) {
            Some(p) => Ok(vec![p]),
            None => Err(Errno::EINVAL),
        }
    }
    fn recv(&mut self) -> Vec<u8> {
        self.pcb.recv().map(|(_, d)| d).unwrap_or_default()
    }
    fn poll(&self) -> bool {
        self.pcb.pending() > 0
    }
    fn on_packet(&mut self, pkt: &Packet, _now: u64) -> Vec<Packet> {
        self.pcb.on_packet(pkt);
        Vec::new()
    }
    fn tick(&mut self, _now: u64) -> Vec<Packet> {
        Vec::new()
    }
    fn close(&mut self, _now: u64) -> Vec<Packet> {
        Vec::new()
    }
}

/// The TCP family factory.
pub struct TcpFamily;
impl ProtocolFamily for TcpFamily {
    fn family_name(&self) -> &'static str {
        "tcp"
    }
    fn create_socket(&self, local_port: u16, iss: u32) -> Box<dyn ProtoSocket> {
        Box::new(TcpSocket {
            pcb: TcpPcb::new(local_port, iss),
        })
    }
}

/// The UDP family factory.
pub struct UdpFamily;
impl ProtocolFamily for UdpFamily {
    fn family_name(&self) -> &'static str {
        "udp"
    }
    fn create_socket(&self, local_port: u16, _iss: u32) -> Box<dyn ProtoSocket> {
        Box::new(UdpSocket {
            pcb: UdpPcb::new(local_port),
        })
    }
}

/// Registers the standard families into a registry.
pub fn register_families(registry: &Registry) -> KResult<()> {
    registry.register::<dyn ProtocolFamily>("netstack.family.tcp", "tcp", Arc::new(TcpFamily))?;
    registry.register::<dyn ProtocolFamily>("netstack.family.udp", "udp", Arc::new(UdpFamily))?;
    Ok(())
}

/// A typed channel — the enum that makes the AMP confusion unrepresentable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Channel {
    /// Ordinary L2CAP data channel.
    L2cap {
        /// Negotiated MTU.
        mtu: u16,
        /// Flow-control credits.
        credits: u16,
    },
    /// AMP channel.
    Amp {
        /// AMP controller id.
        controller_id: u8,
        /// Physical-link handle.
        link: u64,
    },
}

/// The modular socket layer on one end of a link.
pub struct ModularStack {
    side: Side,
    wire: Arc<dyn Link>,
    clock: Arc<SimClock>,
    /// The PCB table (lockdep class `net.sockets`).
    sockets: TrackedMutex<HashMap<u64, Box<dyn ProtoSocket>>>,
    /// The L2CAP/AMP channel table (lockdep class `net.channels`).
    channels: TrackedMutex<HashMap<u16, Channel>>,
    registry: Arc<Registry>,
    locks: Arc<LockRegistry>,
    next_fd: AtomicU64,
    iss: AtomicU64,
}

impl ModularStack {
    /// Creates a stack using the protocol families registered in
    /// `registry`, pumping through `wire` — the perfect
    /// [`crate::wire::Wire`] or the adversarial
    /// [`crate::fault::FaultyLink`].
    pub fn new(
        registry: Arc<Registry>,
        side: Side,
        wire: Arc<dyn Link>,
        clock: Arc<SimClock>,
    ) -> ModularStack {
        Self::with_lockdep(registry, side, wire, clock, LockRegistry::new_disabled())
    }

    /// Creates a stack whose PCB/channel table locks report to `locks`,
    /// so the soak suites can run with the acquires-after graph live.
    pub fn with_lockdep(
        registry: Arc<Registry>,
        side: Side,
        wire: Arc<dyn Link>,
        clock: Arc<SimClock>,
        locks: Arc<LockRegistry>,
    ) -> ModularStack {
        ModularStack {
            side,
            wire,
            clock,
            sockets: TrackedMutex::new(&locks, "net.sockets", HashMap::new()),
            channels: TrackedMutex::new(&locks, "net.channels", HashMap::new()),
            registry,
            locks,
            next_fd: AtomicU64::new(3),
            iss: AtomicU64::new(100),
        }
    }

    /// The lockdep registry the stack's table locks report to.
    pub fn lock_registry(&self) -> &Arc<LockRegistry> {
        &self.locks
    }

    /// Creates a socket of family `family` ("tcp"/"udp") on `local_port`.
    pub fn socket(&self, family: &str, local_port: u16) -> KResult<u64> {
        let iface: &'static str = match family {
            "tcp" => "netstack.family.tcp",
            "udp" => "netstack.family.udp",
            _ => return Err(Errno::EPROTONOSUPPORT),
        };
        let handle = self.registry.subscribe::<dyn ProtocolFamily>(iface)?;
        let iss = self.iss.fetch_add(1000, Ordering::Relaxed) as u32;
        let sock = handle.get().create_socket(local_port, iss);
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.sockets.lock().insert(fd, sock);
        Ok(fd)
    }

    fn with_sock<R>(&self, fd: u64, f: impl FnOnce(&mut Box<dyn ProtoSocket>) -> R) -> KResult<R> {
        let mut socks = self.sockets.lock();
        socks.get_mut(&fd).map(f).ok_or(Errno::EBADF)
    }

    fn transmit(&self, pkts: Vec<Packet>) {
        for p in pkts {
            self.wire.send(self.side, &p);
        }
    }

    /// Passive open.
    pub fn listen(&self, fd: u64) -> KResult<()> {
        self.with_sock(fd, |s| s.listen())?
    }

    /// Active open.
    pub fn connect(&self, fd: u64, remote_port: u16) -> KResult<()> {
        let now = self.clock.now_ns();
        let pkts = self.with_sock(fd, |s| s.connect(remote_port, now))??;
        self.transmit(pkts);
        Ok(())
    }

    /// Sends data.
    pub fn send(&self, fd: u64, dst_port: u16, data: &[u8]) -> KResult<usize> {
        let now = self.clock.now_ns();
        let pkts = self.with_sock(fd, |s| s.send(dst_port, data, now))??;
        self.transmit(pkts);
        Ok(data.len())
    }

    /// Receives available data.
    pub fn recv(&self, fd: u64) -> KResult<Vec<u8>> {
        self.with_sock(fd, |s| s.recv())
    }

    /// Typed readiness: dispatches through the interface, works for every
    /// protocol (contrast `LegacyStack::poll`).
    pub fn poll(&self, fd: u64) -> KResult<bool> {
        self.with_sock(fd, |s| s.poll())
    }

    /// Closes a socket.
    pub fn close(&self, fd: u64) -> KResult<()> {
        let now = self.clock.now_ns();
        let mut sock = self.sockets.lock().remove(&fd).ok_or(Errno::EBADF)?;
        let pkts = sock.close(now);
        self.transmit(pkts);
        Ok(())
    }

    /// Drains the wire; returns packets processed.
    pub fn pump(&self) -> KResult<usize> {
        let now = self.clock.now_ns();
        let mut count = 0;
        loop {
            let pkt = match self.wire.recv(self.side) {
                Ok(Some(p)) => p,
                Ok(None) => break,
                // A frame that failed checksum/parse: a detected loss the
                // retransmission machinery heals — never a dead pump.
                Err(_) => continue,
            };
            count += 1;
            if pkt.proto == proto::AMP_CTRL {
                let _ = self.handle_ctrl_packet(&pkt);
                continue;
            }
            // Exact (local, remote) match wins; a listener on the local
            // port takes unmatched packets (the SYN of a new connection).
            let mut socks = self.sockets.lock();
            let exact = socks
                .iter()
                .find(|(_, s)| {
                    s.protocol() == pkt.proto
                        && s.local_port() == pkt.dst_port
                        && !s.is_listening()
                        && (pkt.proto != proto::TCP || s.remote_port() == pkt.src_port)
                })
                .map(|(&fd, _)| fd);
            let chosen = exact.or_else(|| {
                socks
                    .iter()
                    .find(|(_, s)| {
                        s.protocol() == pkt.proto
                            && s.local_port() == pkt.dst_port
                            && s.is_listening()
                    })
                    .map(|(&fd, _)| fd)
            });
            if let Some(fd) = chosen {
                let responses = socks
                    .get_mut(&fd)
                    .expect("fd just found")
                    .on_packet(&pkt, now);
                drop(socks);
                self.transmit(responses);
            }
        }
        Ok(count)
    }

    /// Timer tick on every socket.
    pub fn tick(&self) {
        let now = self.clock.now_ns();
        let mut out = Vec::new();
        {
            let mut socks = self.sockets.lock();
            for sock in socks.values_mut() {
                out.extend(sock.tick(now));
            }
        }
        self.transmit(out);
    }

    /// Registers an L2CAP channel.
    pub fn create_l2cap_channel(&self, cid: u16, mtu: u16) {
        self.channels
            .lock()
            .insert(cid, Channel::L2cap { mtu, credits: 10 });
    }

    /// Registers an AMP channel.
    pub fn create_amp_channel(&self, cid: u16, controller_id: u8) {
        self.channels.lock().insert(
            cid,
            Channel::Amp {
                controller_id,
                link: 0,
            },
        );
    }

    /// Processes an AMP control packet — typed: the move opcode only
    /// applies to [`Channel::Amp`]; anything else is `EPROTO`, not a cast.
    pub fn handle_ctrl_packet(&self, pkt: &Packet) -> KResult<()> {
        if pkt.payload.len() < 4 {
            return Err(Errno::EBADMSG);
        }
        let opcode = pkt.payload[0];
        let cid = u16::from_le_bytes([pkt.payload[1], pkt.payload[2]]);
        match opcode {
            crate::legacy_stack::OP_AMP_MOVE => {
                let mut channels = self.channels.lock();
                match channels.get_mut(&cid) {
                    Some(Channel::Amp { controller_id, .. }) => {
                        *controller_id = pkt.payload[3];
                        Ok(())
                    }
                    Some(Channel::L2cap { .. }) => Err(Errno::EPROTO),
                    None => Err(Errno::ENOENT),
                }
            }
            _ => Err(Errno::EPROTONOSUPPORT),
        }
    }

    /// Per-connection event counters, through the typed interface.
    pub fn tcp_counters(&self, fd: u64) -> KResult<TcpCounters> {
        self.with_sock(fd, |s| s.counters())
    }

    /// True once the connection died abnormally — the typed failure
    /// report (no downcast required).
    pub fn conn_failed(&self, fd: u64) -> KResult<bool> {
        self.with_sock(fd, |s| s.conn_failed())
    }

    /// Removes every socket that reports itself finished
    /// ([`ProtoSocket::reapable`]). Returns how many were reaped.
    pub fn reap_closed(&self) -> usize {
        let mut socks = self.sockets.lock();
        let dead: Vec<u64> = socks
            .iter()
            .filter(|(_, s)| s.reapable())
            .map(|(&fd, _)| fd)
            .collect();
        for fd in &dead {
            socks.remove(fd);
        }
        dead.len()
    }

    /// TCP state of a socket, when it is one (tests).
    pub fn tcp_state(&self, fd: u64) -> KResult<Option<TcpState>> {
        self.with_sock(fd, |s| {
            if s.protocol() == proto::TCP {
                // The typed interface exposes no downcast; readiness and
                // protocol number are the public surface. For tests we
                // infer establishment via poll-ability of a zero-byte send.
                None
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Wire;

    fn pair() -> (ModularStack, ModularStack, Arc<SimClock>) {
        let registry = Arc::new(Registry::new());
        register_families(&registry).unwrap();
        let wire = Arc::new(Wire::new());
        let clock = Arc::new(SimClock::new());
        let a = ModularStack::new(
            Arc::clone(&registry),
            Side::A,
            wire.clone(),
            Arc::clone(&clock),
        );
        let b = ModularStack::new(registry, Side::B, wire, Arc::clone(&clock));
        (a, b, clock)
    }

    fn pump_both(a: &ModularStack, b: &ModularStack) {
        for _ in 0..8 {
            a.pump().unwrap();
            b.pump().unwrap();
        }
    }

    #[test]
    fn tcp_echo_through_the_modular_interface() {
        let (a, b, _) = pair();
        let server = b.socket("tcp", 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket("tcp", 1234).unwrap();
        a.connect(client, 80).unwrap();
        pump_both(&a, &b);
        a.send(client, 80, b"hello").unwrap();
        pump_both(&a, &b);
        assert!(b.poll(server).unwrap());
        assert_eq!(b.recv(server).unwrap(), b"hello");
        b.send(server, 1234, b"world").unwrap();
        pump_both(&a, &b);
        assert_eq!(a.recv(client).unwrap(), b"world");
    }

    #[test]
    fn udp_flow_and_typed_poll() {
        let (a, b, _) = pair();
        let sa = a.socket("udp", 1000).unwrap();
        let sb = b.socket("udp", 2000).unwrap();
        assert!(!b.poll(sb).unwrap(), "typed poll on UDP: correct answer");
        a.send(sa, 2000, b"dgram").unwrap();
        pump_both(&a, &b);
        assert!(b.poll(sb).unwrap());
        assert_eq!(b.recv(sb).unwrap(), b"dgram");
    }

    #[test]
    fn unknown_family_refused() {
        let (a, _, _) = pair();
        assert_eq!(a.socket("sctp", 1), Err(Errno::EPROTONOSUPPORT));
    }

    #[test]
    fn crafted_amp_packet_is_refused_not_confused() {
        let (a, _, _) = pair();
        a.create_l2cap_channel(0x40, 672);
        a.create_amp_channel(0x41, 1);
        let mut ok = Packet::new(proto::AMP_CTRL, 1, 1);
        ok.payload = vec![crate::legacy_stack::OP_AMP_MOVE, 0x41, 0x00, 2];
        a.handle_ctrl_packet(&ok).unwrap();
        let mut evil = Packet::new(proto::AMP_CTRL, 1, 1);
        evil.payload = vec![crate::legacy_stack::OP_AMP_MOVE, 0x40, 0x00, 2];
        assert_eq!(a.handle_ctrl_packet(&evil), Err(Errno::EPROTO));
        // The L2CAP channel is untouched.
        assert_eq!(
            a.channels.lock().get(&0x40),
            Some(&Channel::L2cap {
                mtu: 672,
                credits: 10
            })
        );
    }

    #[test]
    fn preforked_listeners_serve_multiple_clients() {
        let (a, b, _) = pair();
        let servers: Vec<u64> = (0..3)
            .map(|_| {
                let s = b.socket("tcp", 80).unwrap();
                b.listen(s).unwrap();
                s
            })
            .collect();
        let clients: Vec<u64> = (0..3u16)
            .map(|i| {
                let c = a.socket("tcp", 2000 + i).unwrap();
                a.connect(c, 80).unwrap();
                c
            })
            .collect();
        pump_both(&a, &b);
        for (i, &c) in clients.iter().enumerate() {
            a.send(c, 80, format!("msg {i}").as_bytes()).unwrap();
        }
        pump_both(&a, &b);
        let mut got: Vec<String> = servers
            .iter()
            .map(|&s| String::from_utf8(b.recv(s).unwrap()).unwrap())
            .collect();
        got.sort();
        assert_eq!(got, vec!["msg 0", "msg 1", "msg 2"]);
        // Replies route back to the right clients too.
        for (&s, reply) in servers.iter().zip(["r0", "r1", "r2"]) {
            // A server replies to whoever it is connected to; dst port is
            // taken from its pcb, the send arg is advisory for TCP.
            b.send(s, 0, reply.as_bytes()).unwrap();
        }
        pump_both(&a, &b);
        let mut replies: Vec<String> = clients
            .iter()
            .map(|&c| String::from_utf8(a.recv(c).unwrap()).unwrap())
            .collect();
        replies.sort();
        assert_eq!(replies, vec!["r0", "r1", "r2"]);
    }

    #[test]
    fn hot_swapping_a_protocol_family() {
        // The Step-1 payoff: replace the TCP family implementation while
        // the stack is live; new sockets use the replacement.
        struct InstrumentedTcp {
            inner: TcpFamily,
        }
        impl ProtocolFamily for InstrumentedTcp {
            fn family_name(&self) -> &'static str {
                "tcp-v2"
            }
            fn create_socket(&self, local_port: u16, iss: u32) -> Box<dyn ProtoSocket> {
                self.inner.create_socket(local_port, iss)
            }
        }
        let registry = Arc::new(Registry::new());
        register_families(&registry).unwrap();
        let wire = Arc::new(Wire::new());
        let clock = Arc::new(SimClock::new());
        let a = ModularStack::new(Arc::clone(&registry), Side::A, wire, clock);
        let _s1 = a.socket("tcp", 1).unwrap();
        registry
            .replace::<dyn ProtocolFamily>(
                "netstack.family.tcp",
                "tcp-v2",
                Arc::new(InstrumentedTcp { inner: TcpFamily }),
            )
            .unwrap();
        let _s2 = a.socket("tcp", 2).unwrap();
        let entries = registry.list();
        let tcp = entries
            .iter()
            .find(|e| e.interface == "netstack.family.tcp")
            .unwrap();
        assert_eq!(tcp.implementation, "tcp-v2");
        assert_eq!(tcp.swaps, 1);
    }

    #[test]
    fn lossy_wire_recovers_via_retransmission() {
        use crate::wire::WireFaults;
        let registry = Arc::new(Registry::new());
        register_families(&registry).unwrap();
        let wire = Arc::new(Wire::with_faults(
            WireFaults {
                loss: 0.3,
                duplicate: 0.0,
            },
            7,
        ));
        let clock = Arc::new(SimClock::new());
        let a = ModularStack::new(
            Arc::clone(&registry),
            Side::A,
            wire.clone(),
            Arc::clone(&clock),
        );
        let b = ModularStack::new(registry, Side::B, wire, Arc::clone(&clock));
        let server = b.socket("tcp", 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket("tcp", 99).unwrap();
        a.connect(client, 80).unwrap();
        let payload = vec![3u8; 4000];
        let mut sent = false;
        let mut got = Vec::new();
        for round in 0..200 {
            a.pump().unwrap();
            b.pump().unwrap();
            if !sent {
                // Try sending; ENOTCONN until the handshake completes.
                if a.send(client, 80, &payload).is_ok() {
                    sent = true;
                }
            }
            got.extend(b.recv(server).unwrap());
            if got.len() == payload.len() {
                break;
            }
            clock.advance(crate::tcp::DEFAULT_RTO_NS / 2);
            a.tick();
            b.tick();
            assert!(round < 199, "never completed over lossy wire");
        }
        assert_eq!(got, payload);
    }
}
