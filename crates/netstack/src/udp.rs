//! The UDP protocol engine: datagrams, no state worth the name.

use std::collections::VecDeque;

use crate::packet::{proto, Packet, MAX_PAYLOAD};

/// The UDP protocol control block.
#[derive(Debug, Default)]
pub struct UdpPcb {
    /// Local port.
    pub local_port: u16,
    /// Received datagrams: (source port, payload).
    queue: VecDeque<(u16, Vec<u8>)>,
    /// Datagrams dropped for being oversized.
    pub dropped_oversize: u64,
}

impl UdpPcb {
    /// A PCB bound to `local_port`.
    pub fn new(local_port: u16) -> UdpPcb {
        UdpPcb {
            local_port,
            ..UdpPcb::default()
        }
    }

    /// Builds a datagram to `dst_port`; `None` if oversized.
    pub fn send(&mut self, dst_port: u16, data: &[u8]) -> Option<Packet> {
        if data.len() > MAX_PAYLOAD {
            self.dropped_oversize += 1;
            return None;
        }
        let mut p = Packet::new(proto::UDP, self.local_port, dst_port);
        p.payload = data.to_vec();
        Some(p)
    }

    /// Accepts an incoming datagram.
    pub fn on_packet(&mut self, pkt: &Packet) {
        self.queue.push_back((pkt.src_port, pkt.payload.clone()));
    }

    /// Takes the next received datagram.
    pub fn recv(&mut self) -> Option<(u16, Vec<u8>)> {
        self.queue.pop_front()
    }

    /// Number of queued datagrams.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datagram_roundtrip() {
        let mut a = UdpPcb::new(1000);
        let mut b = UdpPcb::new(2000);
        let pkt = a.send(2000, b"ping").unwrap();
        b.on_packet(&pkt);
        assert_eq!(b.recv(), Some((1000, b"ping".to_vec())));
        assert_eq!(b.recv(), None);
    }

    #[test]
    fn oversized_datagram_refused() {
        let mut a = UdpPcb::new(1);
        assert!(a.send(2, &vec![0u8; MAX_PAYLOAD + 1]).is_none());
        assert_eq!(a.dropped_oversize, 1);
    }

    #[test]
    fn queue_preserves_order() {
        let mut b = UdpPcb::new(9);
        let mut a = UdpPcb::new(1);
        for i in 0..3u8 {
            let pkt = a.send(9, &[i]).unwrap();
            b.on_packet(&pkt);
        }
        assert_eq!(b.pending(), 3);
        for i in 0..3u8 {
            assert_eq!(b.recv().unwrap().1, vec![i]);
        }
    }
}
