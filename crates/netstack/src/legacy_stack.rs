//! The Step-0 socket layer: TCP state threaded through generic code.
//!
//! Faithful to the paper's two observations about Linux networking:
//!
//! - Every socket's protocol-private state is a `void *` (`sk_protinfo`).
//!   Generic socket code "knows" which sockets are TCP and casts
//!   accordingly; [`LegacyStack::poll`] is the deliberate reproduction of
//!   "references to TCP state can be found throughout generic socket
//!   code" — it casts *every* socket's protinfo to TCP state, which is a
//!   detected type confusion the moment it runs on a UDP socket.
//! - [`LegacyStack::handle_ctrl_packet`] reproduces the CVE-2020-12351
//!   shape: an AMP control packet names a channel id, and the handler
//!   casts that channel's private data to the AMP structure without
//!   checking what the channel actually is. A crafted packet pointing a
//!   *move* opcode at an ordinary L2CAP channel triggers the confusion.
//!
//! Server duty works the legacy way: `listen` swaps the socket's
//! protinfo for a [`TcpListener`] (still a `void *` — a `listening` flag
//! on the sock is all that tells the stack which cast applies), `accept`
//! pulls completed handshakes out as new fds, demux stays the O(n)
//! linear scan the modular stack's striped index replaces, and closing
//! keeps the PCB allocated until the FIN handshake finishes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sk_ksim::errno::{Errno, KResult};
use sk_ksim::time::SimClock;
use sk_legacy::{LegacyCtx, VoidPtr};

use crate::packet::{flags, proto, Packet};
use crate::tcp::{rst_for, TcpCounters, TcpListener, TcpPcb, TcpState, DEFAULT_BACKLOG};
use crate::udp::UdpPcb;
use crate::wire::{Link, Side};

/// An L2CAP data channel's private state.
#[derive(Debug)]
pub struct L2capChan {
    /// Channel id.
    pub cid: u16,
    /// Negotiated MTU.
    pub mtu: u16,
    /// Flow-control credits.
    pub credits: u16,
}

/// An AMP (alternate MAC/PHY) channel's private state — a different
/// structure that happens to share a prefix with [`L2capChan`].
#[derive(Debug)]
pub struct AmpChan {
    /// Channel id.
    pub cid: u16,
    /// AMP controller id.
    pub controller_id: u8,
    /// Physical-link handle.
    pub link: u64,
}

/// AMP control opcode: move channel to another controller.
pub const OP_AMP_MOVE: u8 = 0x0A;

struct LegacySock {
    proto: u8,
    local_port: u16,
    /// The `void *` protocol-private state — a `TcpPcb`, a
    /// `TcpListener`, or a `UdpPcb`.
    sk_protinfo: VoidPtr,
    /// Which TCP cast applies (the legacy substitute for a type).
    listening: bool,
    /// The app closed the fd (`EBADF` from every call), but a TCP PCB
    /// stays allocated until its FIN handshake finishes.
    released: bool,
    /// The ISS this socket was created with (consumed by `listen`).
    iss: u32,
}

/// The legacy socket layer on one end of a link.
pub struct LegacyStack {
    ctx: LegacyCtx,
    side: Side,
    wire: Arc<dyn Link>,
    clock: Arc<SimClock>,
    /// BTreeMap, not HashMap: tick/pump iterate these maps and emit
    /// packets in iteration order, and the fault engine draws per
    /// packet — a randomized hash order would break seeded replay.
    sockets: Mutex<BTreeMap<u64, LegacySock>>,
    channels: Mutex<BTreeMap<u16, VoidPtr>>,
    next_fd: AtomicU64,
    /// ISS counter — u32-native: the TCP sequence space is a mod-2^32
    /// ring, so `fetch_add` wraparound is sequence-space reuse the
    /// protocol tolerates via its window checks, not a silent
    /// truncation of a wider counter.
    iss: AtomicU32,
    /// RSTs sent for TCP segments that matched no socket at all.
    demux_rsts: AtomicU64,
}

impl LegacyStack {
    /// Creates a stack on `side` of `wire` — the perfect [`crate::wire::Wire`]
    /// or the adversarial [`crate::fault::FaultyLink`].
    pub fn new(
        ctx: LegacyCtx,
        side: Side,
        wire: Arc<dyn Link>,
        clock: Arc<SimClock>,
    ) -> LegacyStack {
        LegacyStack {
            ctx,
            side,
            wire,
            clock,
            sockets: Mutex::new(BTreeMap::new()),
            channels: Mutex::new(BTreeMap::new()),
            next_fd: AtomicU64::new(3),
            iss: AtomicU32::new(100),
            demux_rsts: AtomicU64::new(0),
        }
    }

    /// The kernel context (ledger access for tests and the study).
    pub fn ctx(&self) -> &LegacyCtx {
        &self.ctx
    }

    /// Per-connection ISS: Weyl-step the counter (odd multiplier) and
    /// salt with the port and link side, so simultaneous connects —
    /// the same counter value on two stacks, or two sockets racing on
    /// one — never share an ISS. All arithmetic wraps mod 2^32 on
    /// purpose: see the `iss` field comment on sequence-space reuse.
    fn next_iss(&self, local_port: u16) -> u32 {
        let side_salt: u32 = match self.side {
            Side::A => 0x243F_6A88,
            Side::B => 0x85A3_08D3,
        };
        self.iss
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(u32::from(local_port).wrapping_mul(0x85EB_CA6B))
            .wrapping_add(side_salt)
    }

    /// Creates a socket of `proto` bound to `local_port`.
    pub fn socket(&self, protocol: u8, local_port: u16) -> KResult<u64> {
        let mut iss = 0;
        let sk_protinfo = match protocol {
            proto::TCP => {
                iss = self.next_iss(local_port);
                self.ctx.vp_new(TcpPcb::new(local_port, iss))
            }
            proto::UDP => self.ctx.vp_new(UdpPcb::new(local_port)),
            _ => return Err(Errno::EPROTONOSUPPORT),
        };
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.sockets.lock().insert(
            fd,
            LegacySock {
                proto: protocol,
                local_port,
                sk_protinfo,
                listening: false,
                released: false,
                iss,
            },
        );
        Ok(fd)
    }

    fn with_sock<R>(&self, fd: u64, f: impl FnOnce(&LegacySock) -> R) -> KResult<R> {
        let socks = self.sockets.lock();
        match socks.get(&fd) {
            Some(s) if !s.released => Ok(f(s)),
            _ => Err(Errno::EBADF),
        }
    }

    /// Moves a TCP socket to LISTEN with the default backlog.
    pub fn listen(&self, fd: u64) -> KResult<()> {
        self.listen_backlog(fd, DEFAULT_BACKLOG)
    }

    /// Moves a TCP socket to LISTEN: its connection PCB is freed and the
    /// protinfo becomes a child-spawning [`TcpListener`].
    pub fn listen_backlog(&self, fd: u64, backlog: usize) -> KResult<()> {
        let mut socks = self.sockets.lock();
        let port = match socks.get(&fd) {
            Some(s) if !s.released => {
                if s.proto != proto::TCP {
                    return Err(Errno::EPROTO);
                }
                if s.listening {
                    return Ok(());
                }
                s.local_port
            }
            _ => return Err(Errno::EBADF),
        };
        if socks
            .iter()
            .any(|(&o, s)| o != fd && s.listening && s.proto == proto::TCP && s.local_port == port)
        {
            return Err(Errno::EADDRINUSE);
        }
        let s = socks.get_mut(&fd).expect("fd just checked");
        let fresh = self
            .ctx
            .vp_cast(s.sk_protinfo, "legacy_stack::listen", |pcb: &TcpPcb| {
                pcb.state == TcpState::Closed && !pcb.is_failed()
            })
            .ok_or(Errno::EPROTO)?;
        if !fresh {
            return Err(Errno::EISCONN);
        }
        self.ctx.vp_free(s.sk_protinfo, "legacy_stack::listen");
        s.sk_protinfo = self.ctx.vp_new(TcpListener::new(port, backlog, s.iss));
        s.listening = true;
        Ok(())
    }

    /// Takes one completed connection off `fd`'s accept queue as a new
    /// socket; `Ok(None)` when the queue is empty.
    pub fn accept(&self, fd: u64) -> KResult<Option<u64>> {
        let (listening, p) = self.with_sock(fd, |s| (s.listening, s.sk_protinfo))?;
        if !listening {
            return Err(Errno::EINVAL);
        }
        let pcb = self
            .ctx
            .vp_cast_mut(p, "legacy_stack::accept", |l: &mut TcpListener| l.accept())
            .ok_or(Errno::EPROTO)?;
        let Some(pcb) = pcb else {
            return Ok(None);
        };
        let local_port = pcb.local_port;
        let iss = pcb.snd_nxt;
        let sk_protinfo = self.ctx.vp_new(pcb);
        let new_fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.sockets.lock().insert(
            new_fd,
            LegacySock {
                proto: proto::TCP,
                local_port,
                sk_protinfo,
                listening: false,
                released: false,
                iss,
            },
        );
        Ok(Some(new_fd))
    }

    /// Starts a TCP connection.
    pub fn connect(&self, fd: u64, remote_port: u16) -> KResult<()> {
        let (listening, p) = self.with_sock(fd, |s| (s.listening, s.sk_protinfo))?;
        if listening {
            return Err(Errno::EINVAL);
        }
        let now = self.clock.now_ns();
        let syn = self
            .ctx
            .vp_cast_mut(p, "legacy_stack::connect", |pcb: &mut TcpPcb| {
                pcb.connect(remote_port, now)
            })
            .ok_or(Errno::EPROTO)?;
        self.wire.send(self.side, &syn);
        Ok(())
    }

    /// Sends on a socket (TCP stream data or a UDP datagram).
    pub fn send(&self, fd: u64, dst_port: u16, data: &[u8]) -> KResult<usize> {
        let (protocol, listening, p) =
            self.with_sock(fd, |s| (s.proto, s.listening, s.sk_protinfo))?;
        let now = self.clock.now_ns();
        match protocol {
            proto::TCP => {
                if listening {
                    return Err(Errno::ENOTCONN);
                }
                // A cwnd-limited send may legally emit nothing while the
                // bytes wait in the send buffer, so readiness — not an
                // empty packet list — is the ENOTCONN signal.
                let pkts = self
                    .ctx
                    .vp_cast_mut(p, "legacy_stack::send", |pcb: &mut TcpPcb| {
                        if !data.is_empty() && !pcb.can_send() {
                            None
                        } else {
                            Some(pcb.send(data, now))
                        }
                    })
                    .ok_or(Errno::EPROTO)?
                    .ok_or(Errno::ENOTCONN)?;
                for pkt in pkts {
                    self.wire.send(self.side, &pkt);
                }
                Ok(data.len())
            }
            proto::UDP => {
                let pkt = self
                    .ctx
                    .vp_cast_mut(p, "legacy_stack::send", |pcb: &mut UdpPcb| {
                        pcb.send(dst_port, data)
                    })
                    .ok_or(Errno::EPROTO)?
                    // Oversized datagram (EMSGSIZE is not in the errno set).
                    .ok_or(Errno::EINVAL)?;
                self.wire.send(self.side, &pkt);
                Ok(data.len())
            }
            _ => Err(Errno::EPROTONOSUPPORT),
        }
    }

    /// Receives available bytes (TCP) or the next datagram payload (UDP).
    pub fn recv(&self, fd: u64) -> KResult<Vec<u8>> {
        let (protocol, listening, p) =
            self.with_sock(fd, |s| (s.proto, s.listening, s.sk_protinfo))?;
        match protocol {
            proto::TCP if listening => Ok(Vec::new()),
            proto::TCP => self
                .ctx
                .vp_cast_mut(p, "legacy_stack::recv", |pcb: &mut TcpPcb| {
                    pcb.take_received()
                })
                .ok_or(Errno::EPROTO),
            proto::UDP => Ok(self
                .ctx
                .vp_cast_mut(p, "legacy_stack::recv", |pcb: &mut UdpPcb| pcb.recv())
                .ok_or(Errno::EPROTO)?
                .map(|(_, d)| d)
                .unwrap_or_default()),
            _ => Err(Errno::EPROTONOSUPPORT),
        }
    }

    /// THE COUPLING BUG (§4.1): generic readiness polling that assumes
    /// every socket is TCP. On a TCP socket it works; on a UDP socket the
    /// cast is a detected type confusion and poll limps home `false`.
    pub fn poll(&self, fd: u64) -> KResult<bool> {
        let (listening, p) = self.with_sock(fd, |s| (s.listening, s.sk_protinfo))?;
        if listening {
            return Ok(self
                .ctx
                .vp_cast(p, "legacy_stack::poll", |l: &TcpListener| l.ready_len() > 0)
                .unwrap_or(false));
        }
        // "References to TCP state can be found throughout generic socket
        // code": no protocol dispatch here, just the cast.
        Ok(self
            .ctx
            .vp_cast(p, "legacy_stack::poll", |pcb: &TcpPcb| {
                pcb.available() > 0 || pcb.state == TcpState::CloseWait
            })
            .unwrap_or(false))
    }

    /// TCP connection state, for tests.
    pub fn tcp_state(&self, fd: u64) -> KResult<TcpState> {
        let (listening, p) = self.with_sock(fd, |s| (s.listening, s.sk_protinfo))?;
        if listening {
            return Ok(TcpState::Listen);
        }
        self.ctx
            .vp_cast(p, "legacy_stack::tcp_state", |pcb: &TcpPcb| pcb.state)
            .ok_or(Errno::EPROTO)
    }

    /// Per-connection event counters (retransmits, dropped dup-acks,
    /// out-of-order buffering, resets).
    pub fn tcp_counters(&self, fd: u64) -> KResult<TcpCounters> {
        let (listening, p) = self.with_sock(fd, |s| (s.listening, s.sk_protinfo))?;
        if listening {
            return self
                .ctx
                .vp_cast(p, "legacy_stack::tcp_counters", |l: &TcpListener| {
                    TcpCounters {
                        resets_sent: l.stats.resets_sent,
                        ..TcpCounters::default()
                    }
                })
                .ok_or(Errno::EPROTO);
        }
        self.ctx
            .vp_cast(p, "legacy_stack::tcp_counters", |pcb: &TcpPcb| pcb.counters)
            .ok_or(Errno::EPROTO)
    }

    /// True once the connection died abnormally (retry budget exhausted or
    /// reset by the peer) — the reportable failure the tentpole demands.
    pub fn conn_failed(&self, fd: u64) -> KResult<bool> {
        let (listening, p) = self.with_sock(fd, |s| (s.listening, s.sk_protinfo))?;
        if listening {
            return Ok(false);
        }
        self.ctx
            .vp_cast(p, "legacy_stack::conn_failed", |pcb: &TcpPcb| {
                pcb.is_failed()
            })
            .ok_or(Errno::EPROTO)
    }

    /// RSTs sent for TCP segments that matched no socket at all.
    pub fn demux_resets(&self) -> u64 {
        self.demux_rsts.load(Ordering::Relaxed)
    }

    /// Stack-level TCP counters not owned by any one connection —
    /// currently the demux-miss RSTs.
    pub fn stack_counters(&self) -> TcpCounters {
        TcpCounters {
            resets_sent: self.demux_rsts.load(Ordering::Relaxed),
            ..TcpCounters::default()
        }
    }

    /// True when a closed-or-defunct TCP socket's protinfo may be freed.
    fn teardown_done(&self, s: &LegacySock) -> bool {
        if s.proto != proto::TCP || s.listening {
            return true;
        }
        self.ctx
            .vp_cast(s.sk_protinfo, "legacy_stack::reap", |pcb: &TcpPcb| {
                pcb.state == TcpState::Closed
            })
            .unwrap_or(true)
    }

    /// Frees every TCP socket whose PCB is finished — defunct after
    /// being connected (reset or retry exhaustion), or released by
    /// `close` with the FIN handshake now complete. Returns how many
    /// were reaped.
    pub fn reap_closed(&self) -> usize {
        let mut socks = self.sockets.lock();
        let dead: Vec<u64> = socks
            .iter()
            .filter(|(_, s)| {
                s.proto == proto::TCP
                    && !s.listening
                    && if s.released {
                        self.teardown_done(s)
                    } else {
                        self.ctx
                            .vp_cast(s.sk_protinfo, "legacy_stack::reap", |pcb: &TcpPcb| {
                                pcb.is_defunct()
                            })
                            .unwrap_or(false)
                    }
            })
            .map(|(&fd, _)| fd)
            .collect();
        for fd in &dead {
            let s = socks.remove(fd).expect("fd just listed");
            self.ctx.vp_free(s.sk_protinfo, "legacy_stack::reap");
        }
        dead.len()
    }

    /// Closes a socket. The fd dies immediately, but a connected TCP
    /// PCB stays allocated until its FIN handshake and TIME_WAIT finish
    /// (reaped by `tick`/`reap_closed`) so a lost FIN can retransmit and
    /// the peer's FIN gets its ACK.
    pub fn close(&self, fd: u64) -> KResult<()> {
        let now = self.clock.now_ns();
        let mut socks = self.sockets.lock();
        let s = socks.get_mut(&fd).ok_or(Errno::EBADF)?;
        if s.released {
            return Err(Errno::EBADF);
        }
        let mut pkts = Vec::new();
        if s.proto == proto::TCP && !s.listening {
            pkts = self
                .ctx
                .vp_cast_mut(s.sk_protinfo, "legacy_stack::close", |pcb: &mut TcpPcb| {
                    pcb.close(now)
                })
                .unwrap_or_default();
        }
        s.released = true;
        if self.teardown_done(s) {
            let s = socks.remove(&fd).expect("fd present");
            self.ctx.vp_free(s.sk_protinfo, "legacy_stack::close");
        }
        drop(socks);
        for p in pkts {
            self.wire.send(self.side, &p);
        }
        Ok(())
    }

    /// Drains the wire, dispatching packets to sockets and channels.
    /// Returns the number of packets processed.
    pub fn pump(&self) -> KResult<usize> {
        let now = self.clock.now_ns();
        let mut count = 0;
        loop {
            let pkt = match self.wire.recv(self.side) {
                Ok(Some(p)) => p,
                Ok(None) => break,
                // A frame that failed checksum/parse: a detected loss the
                // retransmission machinery heals — never a dead pump.
                Err(_) => continue,
            };
            count += 1;
            if pkt.proto == proto::AMP_CTRL {
                let _ = self.handle_ctrl_packet(&pkt);
                continue;
            }
            // TCP demultiplexing, the legacy way: an O(n) scan where an
            // exact (local, remote) match wins and a listener on the
            // local port takes the SYN of a new connection.
            let target = {
                let socks = self.sockets.lock();
                let candidates: Vec<(VoidPtr, bool)> = socks
                    .values()
                    .filter(|s| s.local_port == pkt.dst_port && s.proto == pkt.proto)
                    .map(|s| (s.sk_protinfo, s.listening))
                    .collect();
                if pkt.proto == proto::TCP {
                    let exact = candidates
                        .iter()
                        .filter(|(_, listening)| !listening)
                        .map(|&(p, _)| p)
                        .find(|&p| {
                            self.ctx
                                .vp_cast(p, "legacy_stack::demux", |pcb: &TcpPcb| {
                                    pcb.state != TcpState::Closed && pcb.remote_port == pkt.src_port
                                })
                                .unwrap_or(false)
                        })
                        .map(|p| (p, false));
                    exact.or_else(|| {
                        candidates
                            .iter()
                            .find(|(_, listening)| *listening)
                            .map(|&(p, _)| (p, true))
                    })
                } else {
                    candidates.first().map(|&(p, _)| (p, false))
                }
            };
            let Some((p, is_listener)) = target else {
                // Dead port: answer non-RST TCP with a RST so the peer
                // fails fast instead of burning its whole retry budget
                // (the old code silently swallowed these).
                if pkt.proto == proto::TCP && pkt.flags & flags::RST == 0 {
                    self.demux_rsts.fetch_add(1, Ordering::Relaxed);
                    self.wire.send(self.side, &rst_for(&pkt, pkt.dst_port));
                }
                continue;
            };
            match pkt.proto {
                proto::TCP => {
                    // The `listening` flag — not a cast-and-hope — picks
                    // which struct the `void *` really holds.
                    let responses = if is_listener {
                        self.ctx
                            .vp_cast_mut(p, "legacy_stack::pump", |l: &mut TcpListener| {
                                l.on_packet(&pkt, now)
                            })
                    } else {
                        self.ctx
                            .vp_cast_mut(p, "legacy_stack::pump", |pcb: &mut TcpPcb| {
                                pcb.on_packet(&pkt, now)
                            })
                    }
                    .unwrap_or_default();
                    for r in responses {
                        self.wire.send(self.side, &r);
                    }
                }
                proto::UDP => {
                    let _ = self
                        .ctx
                        .vp_cast_mut(p, "legacy_stack::pump", |pcb: &mut UdpPcb| {
                            pcb.on_packet(&pkt)
                        });
                }
                _ => {}
            }
        }
        Ok(count)
    }

    /// Runs timers on every TCP socket (connections and listeners) and
    /// frees released PCBs whose teardown finished.
    pub fn tick(&self) {
        let now = self.clock.now_ns();
        let entries: Vec<(VoidPtr, bool)> = {
            let socks = self.sockets.lock();
            socks
                .values()
                .filter(|s| s.proto == proto::TCP)
                .map(|s| (s.sk_protinfo, s.listening))
                .collect()
        };
        for (p, listening) in entries {
            let pkts = if listening {
                self.ctx
                    .vp_cast_mut(p, "legacy_stack::tick", |l: &mut TcpListener| l.tick(now))
                    .unwrap_or_default()
            } else {
                self.ctx
                    .vp_cast_mut(p, "legacy_stack::tick", |pcb: &mut TcpPcb| pcb.tick(now))
                    .unwrap_or_default()
            };
            for pkt in pkts {
                self.wire.send(self.side, &pkt);
            }
        }
        // Reap released sockets whose FIN handshake / TIME_WAIT is done.
        let mut socks = self.sockets.lock();
        let dead: Vec<u64> = socks
            .iter()
            .filter(|(_, s)| s.released && self.teardown_done(s))
            .map(|(&fd, _)| fd)
            .collect();
        for fd in dead {
            let s = socks.remove(&fd).expect("fd just listed");
            self.ctx.vp_free(s.sk_protinfo, "legacy_stack::reap");
        }
    }

    // --- the CVE-2020-12351 analogue ---------------------------------------

    /// Registers an ordinary L2CAP data channel.
    pub fn create_l2cap_channel(&self, cid: u16, mtu: u16) {
        let p = self.ctx.vp_new(L2capChan {
            cid,
            mtu,
            credits: 10,
        });
        self.channels.lock().insert(cid, p);
    }

    /// Registers an AMP channel.
    pub fn create_amp_channel(&self, cid: u16, controller_id: u8) {
        let p = self.ctx.vp_new(AmpChan {
            cid,
            controller_id,
            link: 0,
        });
        self.channels.lock().insert(cid, p);
    }

    /// Processes an AMP control packet. Payload: `[opcode, cid_lo, cid_hi,
    /// dest_controller]`.
    ///
    /// The bug, as in the CVE: the handler assumes the named channel is an
    /// AMP channel and casts its private data accordingly — "custom data
    /// gets wrongly casted" when a crafted packet names an L2CAP channel.
    pub fn handle_ctrl_packet(&self, pkt: &Packet) -> KResult<()> {
        if pkt.payload.len() < 4 {
            return Err(Errno::EBADMSG);
        }
        let opcode = pkt.payload[0];
        let cid = u16::from_le_bytes([pkt.payload[1], pkt.payload[2]]);
        match opcode {
            OP_AMP_MOVE => {
                let chan = *self.channels.lock().get(&cid).ok_or(Errno::ENOENT)?;
                // No check of what kind of channel `cid` names:
                let controller = pkt.payload[3];
                self.ctx
                    .vp_cast_mut(chan, "legacy_stack::amp_move", |amp: &mut AmpChan| {
                        amp.controller_id = controller;
                    })
                    .ok_or(Errno::EFAULT)
            }
            _ => Err(Errno::EPROTONOSUPPORT),
        }
    }

    /// Live arena objects (leak accounting).
    pub fn live_objects(&self) -> u64 {
        self.ctx.arena.live_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{DEFAULT_RTO_NS, TIME_WAIT_NS};
    use crate::wire::Wire;
    use sk_legacy::BugClass;

    fn pair_on(wire: Arc<Wire>, clock: Arc<SimClock>) -> (LegacyStack, LegacyStack) {
        let a = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
        let b = LegacyStack::new(LegacyCtx::new(), Side::B, wire, clock);
        (a, b)
    }

    fn pair() -> (LegacyStack, LegacyStack) {
        pair_on(Arc::new(Wire::new()), Arc::new(SimClock::new()))
    }

    fn pump_both(a: &LegacyStack, b: &LegacyStack) {
        for _ in 0..8 {
            a.pump().unwrap();
            b.pump().unwrap();
        }
    }

    #[test]
    fn tcp_echo_over_the_wire() {
        let (a, b) = pair();
        let server = b.socket(proto::TCP, 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket(proto::TCP, 1234).unwrap();
        a.connect(client, 80).unwrap();
        pump_both(&a, &b);
        assert_eq!(a.tcp_state(client).unwrap(), TcpState::Established);
        assert_eq!(b.tcp_state(server).unwrap(), TcpState::Listen);
        let conn = b.accept(server).unwrap().expect("handshake done");
        assert_eq!(b.tcp_state(conn).unwrap(), TcpState::Established);
        a.send(client, 80, b"hello").unwrap();
        pump_both(&a, &b);
        assert_eq!(b.recv(conn).unwrap(), b"hello");
        b.send(conn, 1234, b"world").unwrap();
        pump_both(&a, &b);
        assert_eq!(a.recv(client).unwrap(), b"world");
    }

    #[test]
    fn udp_datagrams_flow() {
        let (a, b) = pair();
        let sa = a.socket(proto::UDP, 1000).unwrap();
        let sb = b.socket(proto::UDP, 2000).unwrap();
        a.send(sa, 2000, b"ping").unwrap();
        pump_both(&a, &b);
        assert_eq!(b.recv(sb).unwrap(), b"ping");
    }

    #[test]
    fn poll_on_tcp_works() {
        let (a, b) = pair();
        let server = b.socket(proto::TCP, 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket(proto::TCP, 1234).unwrap();
        a.connect(client, 80).unwrap();
        pump_both(&a, &b);
        assert!(b.poll(server).unwrap(), "listener: accept queue ready");
        let conn = b.accept(server).unwrap().expect("handshake done");
        assert!(!b.poll(server).unwrap(), "queue drained");
        a.send(client, 80, b"x").unwrap();
        pump_both(&a, &b);
        assert!(b.poll(conn).unwrap());
        assert!(b.ctx().ledger.is_clean());
    }

    #[test]
    fn poll_on_udp_is_type_confusion() {
        let (a, _b) = pair();
        let s = a.socket(proto::UDP, 1000).unwrap();
        // The §4.1 coupling: generic poll casts protinfo to TcpPcb.
        assert!(!a.poll(s).unwrap(), "bug manifests as bogus result");
        assert_eq!(a.ctx().ledger.count(BugClass::TypeConfusion), 1);
    }

    #[test]
    fn crafted_amp_packet_is_the_cve() {
        let (a, _b) = pair();
        a.create_l2cap_channel(0x40, 672);
        a.create_amp_channel(0x41, 1);
        // Legitimate move on the AMP channel: fine.
        let mut ok = Packet::new(proto::AMP_CTRL, 1, 1);
        ok.payload = vec![OP_AMP_MOVE, 0x41, 0x00, 2];
        a.handle_ctrl_packet(&ok).unwrap();
        assert!(a.ctx().ledger.is_clean());
        // Crafted move naming the L2CAP channel: type confusion.
        let mut evil = Packet::new(proto::AMP_CTRL, 1, 1);
        evil.payload = vec![OP_AMP_MOVE, 0x40, 0x00, 2];
        assert_eq!(a.handle_ctrl_packet(&evil), Err(Errno::EFAULT));
        assert_eq!(a.ctx().ledger.count(BugClass::TypeConfusion), 1);
    }

    #[test]
    fn retransmission_over_lossy_wire() {
        use crate::wire::WireFaults;
        let wire = Arc::new(Wire::with_faults(
            WireFaults {
                loss: 0.3,
                duplicate: 0.1,
            },
            42,
        ));
        let clock = Arc::new(SimClock::new());
        let a = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
        let b = LegacyStack::new(LegacyCtx::new(), Side::B, wire, Arc::clone(&clock));
        let server = b.socket(proto::TCP, 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket(proto::TCP, 1234).unwrap();
        a.connect(client, 80).unwrap();
        let payload = vec![9u8; 5000];
        let mut sent = false;
        let mut conn = None;
        let mut got = Vec::new();
        for round in 0..200 {
            a.pump().unwrap();
            b.pump().unwrap();
            if conn.is_none() {
                conn = b.accept(server).unwrap();
            }
            if !sent && a.tcp_state(client).unwrap() == TcpState::Established {
                a.send(client, 80, &payload).unwrap();
                sent = true;
            }
            if let Some(c) = conn {
                got.extend(b.recv(c).unwrap());
            }
            if got.len() == payload.len() {
                break;
            }
            clock.advance(crate::tcp::DEFAULT_RTO_NS / 2);
            a.tick();
            b.tick();
            assert!(round < 199, "never completed over lossy wire");
        }
        assert_eq!(got, payload);
    }

    #[test]
    fn one_listener_serves_multiple_clients() {
        let (a, b) = pair();
        let server = b.socket(proto::TCP, 80).unwrap();
        b.listen(server).unwrap();
        let clients: Vec<u64> = (0..3u16)
            .map(|i| {
                let c = a.socket(proto::TCP, 1000 + i).unwrap();
                a.connect(c, 80).unwrap();
                c
            })
            .collect();
        pump_both(&a, &b);
        let mut conns = Vec::new();
        while let Some(fd) = b.accept(server).unwrap() {
            conns.push(fd);
        }
        assert_eq!(conns.len(), 3);
        for (i, &c) in clients.iter().enumerate() {
            assert_eq!(a.tcp_state(c).unwrap(), TcpState::Established, "client {i}");
            a.send(c, 80, format!("from {i}").as_bytes()).unwrap();
        }
        pump_both(&a, &b);
        // Accept order is SYN arrival order, so each accepted socket got
        // exactly its own client's bytes.
        for (i, &s) in conns.iter().enumerate() {
            assert_eq!(b.recv(s).unwrap(), format!("from {i}").as_bytes());
        }
        assert!(b.ctx().ledger.is_clean());
    }

    #[test]
    fn second_listener_on_the_same_port_is_refused() {
        let (_a, b) = pair();
        let s1 = b.socket(proto::TCP, 80).unwrap();
        b.listen(s1).unwrap();
        let s2 = b.socket(proto::TCP, 80).unwrap();
        assert_eq!(b.listen(s2), Err(Errno::EADDRINUSE));
        assert_eq!(b.listen(s1), Ok(()), "re-listen on the owner is fine");
    }

    #[test]
    fn close_frees_protinfo() {
        let (a, _b) = pair();
        let s = a.socket(proto::UDP, 7).unwrap();
        assert_eq!(a.live_objects(), 1);
        a.close(s).unwrap();
        assert_eq!(a.live_objects(), 0);
        assert_eq!(a.recv(s), Err(Errno::EBADF));
    }

    /// A connected PCB outlives its fd: close keeps the allocation until
    /// the FIN handshake and TIME_WAIT finish, then tick frees it.
    #[test]
    fn tcp_close_keeps_the_pcb_until_teardown_finishes() {
        let clock = Arc::new(SimClock::new());
        let (a, b) = pair_on(Arc::new(Wire::new()), Arc::clone(&clock));
        let server = b.socket(proto::TCP, 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket(proto::TCP, 1234).unwrap();
        a.connect(client, 80).unwrap();
        pump_both(&a, &b);
        let conn = b.accept(server).unwrap().expect("handshake done");

        assert_eq!(a.live_objects(), 1);
        a.close(client).unwrap();
        assert_eq!(a.recv(client), Err(Errno::EBADF), "fd dies immediately");
        assert_eq!(a.live_objects(), 1, "PCB survives for the FIN handshake");
        b.pump().unwrap();
        b.close(conn).unwrap();
        pump_both(&a, &b);
        // Client sits in TIME_WAIT; expiry lets tick free it.
        clock.advance(TIME_WAIT_NS + DEFAULT_RTO_NS);
        a.tick();
        b.tick();
        assert_eq!(a.live_objects(), 0, "reaped after TIME_WAIT");
        assert!(a.ctx().ledger.is_clean());
        assert!(b.ctx().ledger.is_clean());
    }

    /// Satellite bugfix 2 (legacy side): a segment to a dead port draws
    /// a RST instead of being silently swallowed.
    #[test]
    fn segment_to_a_dead_port_draws_a_reset() {
        let (a, b) = pair();
        let client = a.socket(proto::TCP, 5555).unwrap();
        a.connect(client, 80).unwrap(); // nobody listens on b:80
        b.pump().unwrap();
        assert_eq!(b.demux_resets(), 1);
        assert_eq!(b.stack_counters().resets_sent, 1);
        a.pump().unwrap();
        assert!(a.conn_failed(client).unwrap(), "RST kills the connect");
        let c = a.tcp_counters(client).unwrap();
        assert_eq!(c.resets_received, 1);
        assert_eq!(c.retransmits, 0, "failed fast, no retry burn");
        // The RST itself must not echo another RST back.
        b.pump().unwrap();
        assert_eq!(b.demux_resets(), 1);
    }

    /// Satellite bugfix 3 (legacy side): ISS is seeded per connection
    /// and per side — the old `as u32` truncation of a u64 step counter
    /// gave the first socket of every stack the identical ISS.
    #[test]
    fn iss_is_seeded_per_connection_and_per_side() {
        let wire = Arc::new(Wire::new());
        let (a, b) = pair_on(Arc::clone(&wire), Arc::new(SimClock::new()));
        let ca = a.socket(proto::TCP, 7000).unwrap();
        let cb = b.socket(proto::TCP, 7000).unwrap();
        a.connect(ca, 80).unwrap();
        b.connect(cb, 80).unwrap();
        let syn_a = wire.recv(Side::B).unwrap().expect("SYN from A");
        let syn_b = wire.recv(Side::A).unwrap().expect("SYN from B");
        assert_ne!(
            syn_a.seq, syn_b.seq,
            "simultaneous connects must not collide on ISS"
        );
        let mut seqs = vec![syn_a.seq];
        for i in 0..100u16 {
            let fd = a.socket(proto::TCP, 9000 + i).unwrap();
            a.connect(fd, 80).unwrap();
        }
        while let Ok(Some(p)) = wire.recv(Side::B) {
            seqs.push(p.seq);
        }
        assert_eq!(seqs.len(), 101);
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 101, "every connection gets its own ISS");
    }
}
