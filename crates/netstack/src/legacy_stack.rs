//! The Step-0 socket layer: TCP state threaded through generic code.
//!
//! Faithful to the paper's two observations about Linux networking:
//!
//! - Every socket's protocol-private state is a `void *` (`sk_protinfo`).
//!   Generic socket code "knows" which sockets are TCP and casts
//!   accordingly; [`LegacyStack::poll`] is the deliberate reproduction of
//!   "references to TCP state can be found throughout generic socket
//!   code" — it casts *every* socket's protinfo to TCP state, which is a
//!   detected type confusion the moment it runs on a UDP socket.
//! - [`LegacyStack::handle_ctrl_packet`] reproduces the CVE-2020-12351
//!   shape: an AMP control packet names a channel id, and the handler
//!   casts that channel's private data to the AMP structure without
//!   checking what the channel actually is. A crafted packet pointing a
//!   *move* opcode at an ordinary L2CAP channel triggers the confusion.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sk_ksim::errno::{Errno, KResult};
use sk_ksim::time::SimClock;
use sk_legacy::{LegacyCtx, VoidPtr};

use crate::packet::{proto, Packet};
use crate::tcp::{TcpCounters, TcpPcb, TcpState};
use crate::udp::UdpPcb;
use crate::wire::{Link, Side};

/// An L2CAP data channel's private state.
#[derive(Debug)]
pub struct L2capChan {
    /// Channel id.
    pub cid: u16,
    /// Negotiated MTU.
    pub mtu: u16,
    /// Flow-control credits.
    pub credits: u16,
}

/// An AMP (alternate MAC/PHY) channel's private state — a different
/// structure that happens to share a prefix with [`L2capChan`].
#[derive(Debug)]
pub struct AmpChan {
    /// Channel id.
    pub cid: u16,
    /// AMP controller id.
    pub controller_id: u8,
    /// Physical-link handle.
    pub link: u64,
}

/// AMP control opcode: move channel to another controller.
pub const OP_AMP_MOVE: u8 = 0x0A;

struct LegacySock {
    proto: u8,
    local_port: u16,
    /// The `void *` protocol-private state.
    sk_protinfo: VoidPtr,
}

/// The legacy socket layer on one end of a link.
pub struct LegacyStack {
    ctx: LegacyCtx,
    side: Side,
    wire: Arc<dyn Link>,
    clock: Arc<SimClock>,
    sockets: Mutex<HashMap<u64, LegacySock>>,
    channels: Mutex<HashMap<u16, VoidPtr>>,
    next_fd: AtomicU64,
    iss: AtomicU64,
}

impl LegacyStack {
    /// Creates a stack on `side` of `wire` — the perfect [`crate::wire::Wire`]
    /// or the adversarial [`crate::fault::FaultyLink`].
    pub fn new(
        ctx: LegacyCtx,
        side: Side,
        wire: Arc<dyn Link>,
        clock: Arc<SimClock>,
    ) -> LegacyStack {
        LegacyStack {
            ctx,
            side,
            wire,
            clock,
            sockets: Mutex::new(HashMap::new()),
            channels: Mutex::new(HashMap::new()),
            next_fd: AtomicU64::new(3),
            iss: AtomicU64::new(100),
        }
    }

    /// The kernel context (ledger access for tests and the study).
    pub fn ctx(&self) -> &LegacyCtx {
        &self.ctx
    }

    /// Creates a socket of `proto` bound to `local_port`.
    pub fn socket(&self, protocol: u8, local_port: u16) -> KResult<u64> {
        let sk_protinfo = match protocol {
            proto::TCP => {
                let iss = self.iss.fetch_add(1000, Ordering::Relaxed) as u32;
                self.ctx.vp_new(TcpPcb::new(local_port, iss))
            }
            proto::UDP => self.ctx.vp_new(UdpPcb::new(local_port)),
            _ => return Err(Errno::EPROTONOSUPPORT),
        };
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.sockets.lock().insert(
            fd,
            LegacySock {
                proto: protocol,
                local_port,
                sk_protinfo,
            },
        );
        Ok(fd)
    }

    fn with_sock<R>(&self, fd: u64, f: impl FnOnce(&LegacySock) -> R) -> KResult<R> {
        let socks = self.sockets.lock();
        socks.get(&fd).map(f).ok_or(Errno::EBADF)
    }

    /// Moves a TCP socket to LISTEN.
    pub fn listen(&self, fd: u64) -> KResult<()> {
        let p = self.with_sock(fd, |s| s.sk_protinfo)?;
        self.ctx
            .vp_cast_mut(p, "legacy_stack::listen", |pcb: &mut TcpPcb| pcb.listen())
            .ok_or(Errno::EPROTO)
    }

    /// Starts a TCP connection.
    pub fn connect(&self, fd: u64, remote_port: u16) -> KResult<()> {
        let p = self.with_sock(fd, |s| s.sk_protinfo)?;
        let now = self.clock.now_ns();
        let syn = self
            .ctx
            .vp_cast_mut(p, "legacy_stack::connect", |pcb: &mut TcpPcb| {
                pcb.connect(remote_port, now)
            })
            .ok_or(Errno::EPROTO)?;
        self.wire.send(self.side, &syn);
        Ok(())
    }

    /// Sends on a socket (TCP stream data or a UDP datagram).
    pub fn send(&self, fd: u64, dst_port: u16, data: &[u8]) -> KResult<usize> {
        let (protocol, p) = self.with_sock(fd, |s| (s.proto, s.sk_protinfo))?;
        let now = self.clock.now_ns();
        match protocol {
            proto::TCP => {
                let pkts = self
                    .ctx
                    .vp_cast_mut(p, "legacy_stack::send", |pcb: &mut TcpPcb| {
                        pcb.send(data, now)
                    })
                    .ok_or(Errno::EPROTO)?;
                if pkts.is_empty() && !data.is_empty() {
                    return Err(Errno::ENOTCONN);
                }
                for pkt in pkts {
                    self.wire.send(self.side, &pkt);
                }
                Ok(data.len())
            }
            proto::UDP => {
                let pkt = self
                    .ctx
                    .vp_cast_mut(p, "legacy_stack::send", |pcb: &mut UdpPcb| {
                        pcb.send(dst_port, data)
                    })
                    .ok_or(Errno::EPROTO)?
                    // Oversized datagram (EMSGSIZE is not in the errno set).
                    .ok_or(Errno::EINVAL)?;
                self.wire.send(self.side, &pkt);
                Ok(data.len())
            }
            _ => Err(Errno::EPROTONOSUPPORT),
        }
    }

    /// Receives available bytes (TCP) or the next datagram payload (UDP).
    pub fn recv(&self, fd: u64) -> KResult<Vec<u8>> {
        let (protocol, p) = self.with_sock(fd, |s| (s.proto, s.sk_protinfo))?;
        match protocol {
            proto::TCP => self
                .ctx
                .vp_cast_mut(p, "legacy_stack::recv", |pcb: &mut TcpPcb| {
                    pcb.take_received()
                })
                .ok_or(Errno::EPROTO),
            proto::UDP => Ok(self
                .ctx
                .vp_cast_mut(p, "legacy_stack::recv", |pcb: &mut UdpPcb| pcb.recv())
                .ok_or(Errno::EPROTO)?
                .map(|(_, d)| d)
                .unwrap_or_default()),
            _ => Err(Errno::EPROTONOSUPPORT),
        }
    }

    /// THE COUPLING BUG (§4.1): generic readiness polling that assumes
    /// every socket is TCP. On a TCP socket it works; on a UDP socket the
    /// cast is a detected type confusion and poll limps home `false`.
    pub fn poll(&self, fd: u64) -> KResult<bool> {
        let p = self.with_sock(fd, |s| s.sk_protinfo)?;
        // "References to TCP state can be found throughout generic socket
        // code": no protocol dispatch here, just the cast.
        Ok(self
            .ctx
            .vp_cast(p, "legacy_stack::poll", |pcb: &TcpPcb| {
                pcb.available() > 0 || pcb.state == TcpState::CloseWait
            })
            .unwrap_or(false))
    }

    /// TCP connection state, for tests.
    pub fn tcp_state(&self, fd: u64) -> KResult<TcpState> {
        let p = self.with_sock(fd, |s| s.sk_protinfo)?;
        self.ctx
            .vp_cast(p, "legacy_stack::tcp_state", |pcb: &TcpPcb| pcb.state)
            .ok_or(Errno::EPROTO)
    }

    /// Per-connection event counters (retransmits, dropped dup-acks,
    /// out-of-order buffering, resets).
    pub fn tcp_counters(&self, fd: u64) -> KResult<TcpCounters> {
        let p = self.with_sock(fd, |s| s.sk_protinfo)?;
        self.ctx
            .vp_cast(p, "legacy_stack::tcp_counters", |pcb: &TcpPcb| pcb.counters)
            .ok_or(Errno::EPROTO)
    }

    /// True once the connection died abnormally (retry budget exhausted or
    /// reset by the peer) — the reportable failure the tentpole demands.
    pub fn conn_failed(&self, fd: u64) -> KResult<bool> {
        let p = self.with_sock(fd, |s| s.sk_protinfo)?;
        self.ctx
            .vp_cast(p, "legacy_stack::conn_failed", |pcb: &TcpPcb| {
                pcb.is_failed()
            })
            .ok_or(Errno::EPROTO)
    }

    /// Frees every TCP socket whose PCB has reached `Closed` after being
    /// connected (orderly teardown, TIME_WAIT expiry, reset, or retry
    /// exhaustion). Returns how many were reaped.
    pub fn reap_closed(&self) -> usize {
        let mut socks = self.sockets.lock();
        let dead: Vec<u64> = socks
            .iter()
            .filter(|(_, s)| {
                s.proto == proto::TCP
                    && self
                        .ctx
                        .vp_cast(s.sk_protinfo, "legacy_stack::reap", |pcb: &TcpPcb| {
                            pcb.is_defunct()
                        })
                        .unwrap_or(false)
            })
            .map(|(&fd, _)| fd)
            .collect();
        for fd in &dead {
            let s = socks.remove(fd).expect("fd just listed");
            self.ctx.vp_free(s.sk_protinfo, "legacy_stack::reap");
        }
        dead.len()
    }

    /// Closes a socket, freeing its protinfo.
    pub fn close(&self, fd: u64) -> KResult<()> {
        let sock = self.sockets.lock().remove(&fd).ok_or(Errno::EBADF)?;
        if sock.proto == proto::TCP {
            let now = self.clock.now_ns();
            if let Some(fin) = self
                .ctx
                .vp_cast_mut(
                    sock.sk_protinfo,
                    "legacy_stack::close",
                    |pcb: &mut TcpPcb| pcb.close(now),
                )
                .flatten()
            {
                self.wire.send(self.side, &fin);
            }
        }
        self.ctx.vp_free(sock.sk_protinfo, "legacy_stack::close");
        Ok(())
    }

    /// Drains the wire, dispatching packets to sockets and channels.
    /// Returns the number of packets processed.
    pub fn pump(&self) -> KResult<usize> {
        let now = self.clock.now_ns();
        let mut count = 0;
        loop {
            let pkt = match self.wire.recv(self.side) {
                Ok(Some(p)) => p,
                Ok(None) => break,
                // A frame that failed checksum/parse: a detected loss the
                // retransmission machinery heals — never a dead pump.
                Err(_) => continue,
            };
            count += 1;
            if pkt.proto == proto::AMP_CTRL {
                let _ = self.handle_ctrl_packet(&pkt);
                continue;
            }
            // TCP demultiplexing: an exact (local, remote) match wins;
            // otherwise a socket in LISTEN on the local port takes the SYN
            // (pre-forked listeners give multi-connection servers).
            let target = {
                let socks = self.sockets.lock();
                let candidates: Vec<VoidPtr> = socks
                    .values()
                    .filter(|s| s.local_port == pkt.dst_port && s.proto == pkt.proto)
                    .map(|s| s.sk_protinfo)
                    .collect();
                if pkt.proto == proto::TCP {
                    let exact = candidates.iter().copied().find(|&p| {
                        self.ctx
                            .vp_cast(p, "legacy_stack::demux", |pcb: &TcpPcb| {
                                pcb.state != TcpState::Listen
                                    && pcb.state != TcpState::Closed
                                    && pcb.remote_port == pkt.src_port
                            })
                            .unwrap_or(false)
                    });
                    exact.or_else(|| {
                        candidates.iter().copied().find(|&p| {
                            self.ctx
                                .vp_cast(p, "legacy_stack::demux", |pcb: &TcpPcb| {
                                    pcb.state == TcpState::Listen
                                })
                                .unwrap_or(false)
                        })
                    })
                } else {
                    candidates.first().copied()
                }
            };
            let Some(p) = target else { continue };
            match pkt.proto {
                proto::TCP => {
                    let responses = self
                        .ctx
                        .vp_cast_mut(p, "legacy_stack::pump", |pcb: &mut TcpPcb| {
                            pcb.on_packet(&pkt, now)
                        })
                        .unwrap_or_default();
                    for r in responses {
                        self.wire.send(self.side, &r);
                    }
                }
                proto::UDP => {
                    let _ = self
                        .ctx
                        .vp_cast_mut(p, "legacy_stack::pump", |pcb: &mut UdpPcb| {
                            pcb.on_packet(&pkt)
                        });
                }
                _ => {}
            }
        }
        Ok(count)
    }

    /// Runs retransmission timers on every TCP socket.
    pub fn tick(&self) {
        let now = self.clock.now_ns();
        let protinfos: Vec<VoidPtr> = {
            let socks = self.sockets.lock();
            socks
                .values()
                .filter(|s| s.proto == proto::TCP)
                .map(|s| s.sk_protinfo)
                .collect()
        };
        for p in protinfos {
            let pkts = self
                .ctx
                .vp_cast_mut(p, "legacy_stack::tick", |pcb: &mut TcpPcb| pcb.tick(now))
                .unwrap_or_default();
            for pkt in pkts {
                self.wire.send(self.side, &pkt);
            }
        }
    }

    // --- the CVE-2020-12351 analogue ---------------------------------------

    /// Registers an ordinary L2CAP data channel.
    pub fn create_l2cap_channel(&self, cid: u16, mtu: u16) {
        let p = self.ctx.vp_new(L2capChan {
            cid,
            mtu,
            credits: 10,
        });
        self.channels.lock().insert(cid, p);
    }

    /// Registers an AMP channel.
    pub fn create_amp_channel(&self, cid: u16, controller_id: u8) {
        let p = self.ctx.vp_new(AmpChan {
            cid,
            controller_id,
            link: 0,
        });
        self.channels.lock().insert(cid, p);
    }

    /// Processes an AMP control packet. Payload: `[opcode, cid_lo, cid_hi,
    /// dest_controller]`.
    ///
    /// The bug, as in the CVE: the handler assumes the named channel is an
    /// AMP channel and casts its private data accordingly — "custom data
    /// gets wrongly casted" when a crafted packet names an L2CAP channel.
    pub fn handle_ctrl_packet(&self, pkt: &Packet) -> KResult<()> {
        if pkt.payload.len() < 4 {
            return Err(Errno::EBADMSG);
        }
        let opcode = pkt.payload[0];
        let cid = u16::from_le_bytes([pkt.payload[1], pkt.payload[2]]);
        match opcode {
            OP_AMP_MOVE => {
                let chan = *self.channels.lock().get(&cid).ok_or(Errno::ENOENT)?;
                // No check of what kind of channel `cid` names:
                let controller = pkt.payload[3];
                self.ctx
                    .vp_cast_mut(chan, "legacy_stack::amp_move", |amp: &mut AmpChan| {
                        amp.controller_id = controller;
                    })
                    .ok_or(Errno::EFAULT)
            }
            _ => Err(Errno::EPROTONOSUPPORT),
        }
    }

    /// Live arena objects (leak accounting).
    pub fn live_objects(&self) -> u64 {
        self.ctx.arena.live_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Wire;
    use sk_legacy::BugClass;

    fn pair() -> (LegacyStack, LegacyStack) {
        let wire = Arc::new(Wire::new());
        let clock = Arc::new(SimClock::new());
        let a = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
        let b = LegacyStack::new(LegacyCtx::new(), Side::B, wire, clock);
        (a, b)
    }

    fn pump_both(a: &LegacyStack, b: &LegacyStack) {
        for _ in 0..8 {
            a.pump().unwrap();
            b.pump().unwrap();
        }
    }

    #[test]
    fn tcp_echo_over_the_wire() {
        let (a, b) = pair();
        let server = b.socket(proto::TCP, 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket(proto::TCP, 1234).unwrap();
        a.connect(client, 80).unwrap();
        pump_both(&a, &b);
        assert_eq!(a.tcp_state(client).unwrap(), TcpState::Established);
        assert_eq!(b.tcp_state(server).unwrap(), TcpState::Established);
        a.send(client, 80, b"hello").unwrap();
        pump_both(&a, &b);
        assert_eq!(b.recv(server).unwrap(), b"hello");
        b.send(server, 1234, b"world").unwrap();
        pump_both(&a, &b);
        assert_eq!(a.recv(client).unwrap(), b"world");
    }

    #[test]
    fn udp_datagrams_flow() {
        let (a, b) = pair();
        let sa = a.socket(proto::UDP, 1000).unwrap();
        let sb = b.socket(proto::UDP, 2000).unwrap();
        a.send(sa, 2000, b"ping").unwrap();
        pump_both(&a, &b);
        assert_eq!(b.recv(sb).unwrap(), b"ping");
    }

    #[test]
    fn poll_on_tcp_works() {
        let (a, b) = pair();
        let server = b.socket(proto::TCP, 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket(proto::TCP, 1234).unwrap();
        a.connect(client, 80).unwrap();
        pump_both(&a, &b);
        a.send(client, 80, b"x").unwrap();
        pump_both(&a, &b);
        assert!(b.poll(server).unwrap());
        assert!(b.ctx().ledger.is_clean());
    }

    #[test]
    fn poll_on_udp_is_type_confusion() {
        let (a, _b) = pair();
        let s = a.socket(proto::UDP, 1000).unwrap();
        // The §4.1 coupling: generic poll casts protinfo to TcpPcb.
        assert!(!a.poll(s).unwrap(), "bug manifests as bogus result");
        assert_eq!(a.ctx().ledger.count(BugClass::TypeConfusion), 1);
    }

    #[test]
    fn crafted_amp_packet_is_the_cve() {
        let (a, _b) = pair();
        a.create_l2cap_channel(0x40, 672);
        a.create_amp_channel(0x41, 1);
        // Legitimate move on the AMP channel: fine.
        let mut ok = Packet::new(proto::AMP_CTRL, 1, 1);
        ok.payload = vec![OP_AMP_MOVE, 0x41, 0x00, 2];
        a.handle_ctrl_packet(&ok).unwrap();
        assert!(a.ctx().ledger.is_clean());
        // Crafted move naming the L2CAP channel: type confusion.
        let mut evil = Packet::new(proto::AMP_CTRL, 1, 1);
        evil.payload = vec![OP_AMP_MOVE, 0x40, 0x00, 2];
        assert_eq!(a.handle_ctrl_packet(&evil), Err(Errno::EFAULT));
        assert_eq!(a.ctx().ledger.count(BugClass::TypeConfusion), 1);
    }

    #[test]
    fn retransmission_over_lossy_wire() {
        use crate::wire::WireFaults;
        let wire = Arc::new(Wire::with_faults(
            WireFaults {
                loss: 0.3,
                duplicate: 0.1,
            },
            42,
        ));
        let clock = Arc::new(SimClock::new());
        let a = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
        let b = LegacyStack::new(LegacyCtx::new(), Side::B, wire, Arc::clone(&clock));
        let server = b.socket(proto::TCP, 80).unwrap();
        b.listen(server).unwrap();
        let client = a.socket(proto::TCP, 1234).unwrap();
        a.connect(client, 80).unwrap();
        let payload = vec![9u8; 5000];
        let mut sent = false;
        let mut got = Vec::new();
        for round in 0..200 {
            a.pump().unwrap();
            b.pump().unwrap();
            if !sent && a.tcp_state(client).unwrap() == TcpState::Established {
                a.send(client, 80, &payload).unwrap();
                sent = true;
            }
            got.extend(b.recv(server).unwrap());
            if got.len() == payload.len() {
                break;
            }
            clock.advance(crate::tcp::DEFAULT_RTO_NS / 2);
            a.tick();
            b.tick();
            assert!(round < 199, "never completed over lossy wire");
        }
        assert_eq!(got, payload);
    }

    #[test]
    fn preforked_listeners_serve_multiple_clients() {
        let (a, b) = pair();
        // Three pre-forked listeners on port 80.
        let servers: Vec<u64> = (0..3)
            .map(|_| {
                let s = b.socket(proto::TCP, 80).unwrap();
                b.listen(s).unwrap();
                s
            })
            .collect();
        // Three clients from distinct source ports.
        let clients: Vec<u64> = (0..3u16)
            .map(|i| {
                let c = a.socket(proto::TCP, 1000 + i).unwrap();
                a.connect(c, 80).unwrap();
                c
            })
            .collect();
        pump_both(&a, &b);
        for (i, &c) in clients.iter().enumerate() {
            assert_eq!(a.tcp_state(c).unwrap(), TcpState::Established, "client {i}");
            a.send(c, 80, format!("from {i}").as_bytes()).unwrap();
        }
        pump_both(&a, &b);
        // Each server got exactly its own client's bytes.
        let mut got: Vec<String> = servers
            .iter()
            .map(|&s| String::from_utf8(b.recv(s).unwrap()).unwrap())
            .collect();
        got.sort();
        assert_eq!(got, vec!["from 0", "from 1", "from 2"]);
        assert!(b.ctx().ledger.is_clean());
    }

    #[test]
    fn close_frees_protinfo() {
        let (a, _b) = pair();
        let s = a.socket(proto::UDP, 7).unwrap();
        assert_eq!(a.live_objects(), 1);
        a.close(s).unwrap();
        assert_eq!(a.live_objects(), 0);
        assert_eq!(a.recv(s), Err(Errno::EBADF));
    }
}
