//! # sk-netstack — the socket layer, twice
//!
//! §4.1 of the paper: "while Linux sockets support multiple protocol
//! families and multiple protocols within those families, references to TCP
//! state can be found throughout generic socket code and data structures."
//! And §4.2 cites CVE-2020-12351 — "net: bluetooth: type confusion while
//! processing AMP packets" — as a type-confusion bug in the wild.
//!
//! This crate reproduces both observations:
//!
//! - [`tcp`]/[`udp`]: the protocol engines themselves — a deterministic
//!   TCP state machine (three-way handshake, cumulative ACKs, out-of-order
//!   reassembly, timeout retransmission, FIN teardown) and a trivial UDP.
//!   The engines are *shared* by both stacks: the experiment is about
//!   interface structure, not protocol logic.
//! - [`legacy_stack`]: the Step-0 socket layer. Every socket's
//!   protocol-private state hangs off a `void *` (`sk_protinfo`); generic
//!   socket code casts it to TCP state on paths that "know" the socket is
//!   TCP; and an AMP-like control-packet handler reproduces the
//!   CVE-2020-12351 shape — a crafted packet makes it cast a channel's
//!   private data to the wrong structure.
//! - [`modular_stack`]: the roadmap socket layer. Protocols implement a
//!   typed [`modular_stack::ProtoSocket`] trait behind the Step-1 registry;
//!   per-socket state is an enum, so the same crafted packet is refused
//!   with `EPROTO` instead of confusing types.
//! - [`wire`]/[`packet`]: the substrate — a checksummed byte-serialized
//!   packet format and an in-memory duplex wire with deterministic
//!   loss/duplication, both behind the [`wire::Link`] trait.
//! - [`fault`]: the adversarial link — seeded drop/duplicate/reorder/
//!   delay/corrupt injection that both stack generations must survive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod legacy_stack;
pub mod modular_stack;
pub mod packet;
pub mod spec;
pub mod tcp;
pub mod udp;
pub mod wire;

pub use fault::{FaultConfig, FaultyLink};
pub use packet::Packet;
pub use spec::{StreamChecker, StreamModel};
pub use tcp::{TcpCounters, TcpPcb, TcpState};
pub use wire::{Link, LinkStats, Wire};
