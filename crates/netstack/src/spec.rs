//! The abstract specification of a TCP connection (§4.4's modeling
//! language applied to the second subsystem).
//!
//! A connection direction is modeled as the pair *(sent, delivered)*: the
//! byte sequence the sender's application has submitted, and how much of
//! it the receiver's application has consumed. The whole of TCP's
//! machinery — sequencing, retransmission, reassembly — exists to maintain
//! one relation:
//!
//! > **prefix delivery**: the bytes delivered are exactly a prefix of the
//! > bytes sent, in order, without duplication or invention; and given a
//! > quiescent (eventually-delivering) wire, the prefix eventually reaches
//! > the whole sequence.
//!
//! A connection may also **fail cleanly** (retry budget exhausted, reset
//! by the peer): the delivered prefix freezes — it stays a valid prefix
//! and nothing more may ever be delivered. [`StreamChecker::on_connection_failed`]
//! records the event and enforces the freeze.
//!
//! [`StreamModel`] is the pure model; [`StreamChecker`] validates an
//! implementation's delivery events against it. The netstack test suites
//! (and `tests/netstack_interop.rs`) drive real engines over lossy,
//! duplicating wires and feed every delivery into the checker.

/// The abstract state of one direction of a connection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamModel {
    /// Bytes submitted by the sending application, in order.
    pub sent: Vec<u8>,
    /// How many of them the receiving application has consumed.
    pub delivered: usize,
}

impl StreamModel {
    /// The model's invariant.
    pub fn check_invariant(&self) -> Result<(), String> {
        if self.delivered > self.sent.len() {
            return Err(format!(
                "delivered {} bytes but only {} were ever sent",
                self.delivered,
                self.sent.len()
            ));
        }
        Ok(())
    }

    /// True when everything sent has been delivered.
    pub fn is_complete(&self) -> bool {
        self.delivered == self.sent.len()
    }
}

/// Checks an implementation's delivery stream against the model.
///
/// # Examples
///
/// ```
/// use sk_netstack::spec::StreamChecker;
///
/// let mut chk = StreamChecker::new();
/// chk.on_send(b"reliable ");
/// chk.on_send(b"bytes");
/// chk.on_deliver(b"reliable ");
/// chk.on_deliver(b"bytes");
/// assert!(chk.is_clean() && chk.model().is_complete());
///
/// // A duplicated delivery violates prefix delivery and is caught:
/// chk.on_deliver(b"bytes");
/// assert!(!chk.is_clean());
/// ```
#[derive(Debug, Default)]
pub struct StreamChecker {
    model: StreamModel,
    violations: Vec<String>,
    failed: bool,
}

impl StreamChecker {
    /// A fresh checker (empty stream).
    pub fn new() -> StreamChecker {
        StreamChecker::default()
    }

    /// Records that the sending application submitted `data`.
    pub fn on_send(&mut self, data: &[u8]) {
        self.model.sent.extend_from_slice(data);
    }

    /// Records that the connection reported a clean failure. The
    /// delivered prefix freezes: any later delivery is a violation.
    pub fn on_connection_failed(&mut self) {
        self.failed = true;
    }

    /// True once a clean connection failure was recorded.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Records that the receiving application consumed `data`, checking
    /// the prefix-delivery relation byte for byte.
    pub fn on_deliver(&mut self, data: &[u8]) {
        if self.failed && !data.is_empty() {
            self.violations
                .push("delivery after reported connection failure".to_string());
            return;
        }
        let start = self.model.delivered;
        let end = start + data.len();
        if end > self.model.sent.len() {
            self.violations.push(format!(
                "delivered past the end of the sent stream: {} > {}",
                end,
                self.model.sent.len()
            ));
            return;
        }
        if &self.model.sent[start..end] != data {
            self.violations.push(format!(
                "delivered bytes diverge from the sent stream at offset {start}"
            ));
            return;
        }
        self.model.delivered = end;
    }

    /// The current abstract state.
    pub fn model(&self) -> &StreamModel {
        &self.model
    }

    /// Violations of the prefix-delivery relation.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// True if the relation held for every delivery so far.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{TcpPcb, DEFAULT_RTO_NS};
    use crate::wire::{Side, Wire, WireFaults};
    use std::sync::Arc;

    #[test]
    fn clean_delivery_satisfies_the_relation() {
        let mut chk = StreamChecker::new();
        chk.on_send(b"hello ");
        chk.on_send(b"world");
        chk.on_deliver(b"hello");
        chk.on_deliver(b" world");
        assert!(chk.is_clean());
        assert!(chk.model().is_complete());
        chk.model().check_invariant().unwrap();
    }

    #[test]
    fn divergent_delivery_is_flagged() {
        let mut chk = StreamChecker::new();
        chk.on_send(b"abc");
        chk.on_deliver(b"abX");
        assert!(!chk.is_clean());
    }

    #[test]
    fn over_delivery_is_flagged() {
        let mut chk = StreamChecker::new();
        chk.on_send(b"ab");
        chk.on_deliver(b"abc");
        assert!(!chk.is_clean());
    }

    /// The flagship check: a real engine pair over a lossy, duplicating
    /// wire refines the stream model — every delivery is a prefix
    /// extension, and the stream completes.
    #[test]
    fn tcp_engine_refines_the_stream_model_under_loss() {
        for seed in [1u64, 7, 42, 1234] {
            let wire = Arc::new(Wire::with_faults(
                WireFaults {
                    loss: 0.25,
                    duplicate: 0.10,
                },
                seed,
            ));
            let mut a = TcpPcb::new(1000, 100);
            let mut listener = crate::tcp::TcpListener::new(80, 8, 9000);
            let mut b: Option<TcpPcb> = None;
            wire.send(Side::A, &a.connect(80, 0));
            let mut chk = StreamChecker::new();
            let mut now = 0u64;
            let mut sent_chunks = 0;
            for round in 0..4000 {
                now += DEFAULT_RTO_NS / 4;
                // Drain the wire in both directions; the listener owns
                // the server side until the handshake completes.
                while let Ok(Some(pkt)) = wire.recv(Side::B) {
                    let responses = match b.as_mut() {
                        Some(pcb) => pcb.on_packet(&pkt, now),
                        None => listener.on_packet(&pkt, now),
                    };
                    for r in responses {
                        wire.send(Side::B, &r);
                    }
                }
                if b.is_none() {
                    b = listener.accept();
                }
                while let Ok(Some(pkt)) = wire.recv(Side::A) {
                    for r in a.on_packet(&pkt, now) {
                        wire.send(Side::A, &r);
                    }
                }
                // Submit a few chunks once established.
                if sent_chunks < 10 && a.state == crate::tcp::TcpState::Established {
                    let chunk: Vec<u8> = (0..500u32)
                        .map(|i| (i as u64 * seed + sent_chunks as u64) as u8)
                        .collect();
                    chk.on_send(&chunk);
                    for p in a.send(&chunk, now) {
                        wire.send(Side::A, &p);
                    }
                    sent_chunks += 1;
                }
                // Consume whatever arrived in order.
                if let Some(pcb) = b.as_mut() {
                    let got = pcb.take_received();
                    if !got.is_empty() {
                        chk.on_deliver(&got);
                    }
                }
                chk.model().check_invariant().unwrap();
                assert!(chk.is_clean(), "seed {seed}: {:?}", chk.violations());
                if sent_chunks == 10 && chk.model().is_complete() && a.all_acked() {
                    break;
                }
                for p in a.tick(now) {
                    wire.send(Side::A, &p);
                }
                let server_ticks = match b.as_mut() {
                    Some(pcb) => pcb.tick(now),
                    None => listener.tick(now),
                };
                for p in server_ticks {
                    wire.send(Side::B, &p);
                }
                assert!(round < 3999, "seed {seed}: stream never completed");
            }
            assert!(chk.model().is_complete(), "seed {seed}");
        }
    }
}
