//! The wire packet format.
//!
//! A fixed 20-byte header followed by the payload:
//!
//! ```text
//! proto: u8 | flags: u8 | src_port: u16 | dst_port: u16 | len: u16
//! seq: u32  | ack: u32  | csum: u32     | payload: [u8; len]
//! ```
//!
//! Decoding is strict: short frames, bad lengths, unknown protocol
//! numbers, and checksum mismatches are `EBADMSG`, never a sliced-anyway
//! read. The checksum (FNV-1a over header fields and payload) is what
//! turns a corrupting link into a *detected* loss: a flipped bit anywhere
//! in the frame fails verification and the frame is dropped, so TCP's
//! retransmission machinery heals it instead of delivering garbage.

use sk_ksim::errno::{Errno, KResult};

/// Protocol numbers.
pub mod proto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// The AMP-like control protocol (the CVE-2020-12351 stand-in).
    pub const AMP_CTRL: u8 = 0x20;
}

/// TCP header flags.
pub mod flags {
    /// Synchronize sequence numbers.
    pub const SYN: u8 = 0x01;
    /// Acknowledgement field is valid.
    pub const ACK: u8 = 0x02;
    /// No more data from sender.
    pub const FIN: u8 = 0x04;
    /// Reset the connection.
    pub const RST: u8 = 0x08;
}

/// Header length in bytes.
pub const HEADER_LEN: usize = 20;

/// Maximum payload per packet (the wire MTU minus headers).
pub const MAX_PAYLOAD: usize = 1000;

/// A network packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Protocol number ([`proto`]).
    pub proto: u8,
    /// Flag bits ([`flags`]).
    pub flags: u8,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number (TCP) or opaque (others).
    pub seq: u32,
    /// Acknowledgement number (TCP) or opaque.
    pub ack: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Packet {
    /// A bare packet with the given protocol and ports.
    pub fn new(proto: u8, src_port: u16, dst_port: u16) -> Packet {
        Packet {
            proto,
            flags: 0,
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            payload: Vec::new(),
        }
    }

    /// FNV-1a over everything but the checksum field itself.
    fn checksum(&self) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        let mut mix = |b: u8| {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        };
        mix(self.proto);
        mix(self.flags);
        for b in self
            .src_port
            .to_le_bytes()
            .into_iter()
            .chain(self.dst_port.to_le_bytes())
            .chain((self.payload.len() as u16).to_le_bytes())
            .chain(self.seq.to_le_bytes())
            .chain(self.ack.to_le_bytes())
        {
            mix(b);
        }
        for &b in &self.payload {
            mix(b);
        }
        h
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.push(self.proto);
        out.push(self.flags);
        out.extend_from_slice(&self.src_port.to_le_bytes());
        out.extend_from_slice(&self.dst_port.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.ack.to_le_bytes());
        out.extend_from_slice(&self.checksum().to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses wire bytes, strictly.
    pub fn decode(bytes: &[u8]) -> KResult<Packet> {
        if bytes.len() < HEADER_LEN {
            return Err(Errno::EBADMSG);
        }
        let len = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes")) as usize;
        if bytes.len() != HEADER_LEN + len || len > MAX_PAYLOAD {
            return Err(Errno::EBADMSG);
        }
        let proto = bytes[0];
        if !matches!(proto, proto::TCP | proto::UDP | proto::AMP_CTRL) {
            return Err(Errno::EPROTONOSUPPORT);
        }
        let pkt = Packet {
            proto,
            flags: bytes[1],
            src_port: u16::from_le_bytes(bytes[2..4].try_into().expect("2 bytes")),
            dst_port: u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes")),
            seq: u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            ack: u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")),
            payload: bytes[HEADER_LEN..].to_vec(),
        };
        let csum = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        if csum != pkt.checksum() {
            return Err(Errno::EBADMSG);
        }
        Ok(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut p = Packet::new(proto::TCP, 80, 1234);
        p.flags = flags::SYN | flags::ACK;
        p.seq = 0xDEAD;
        p.ack = 0xBEEF;
        p.payload = b"data".to_vec();
        let bytes = p.encode();
        assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn decode_rejects_short_frames() {
        assert_eq!(Packet::decode(&[0u8; 4]), Err(Errno::EBADMSG));
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let p = Packet::new(proto::UDP, 1, 2);
        let mut bytes = p.encode();
        bytes.push(0xFF); // trailing garbage
        assert_eq!(Packet::decode(&bytes), Err(Errno::EBADMSG));
    }

    #[test]
    fn decode_rejects_unknown_protocol() {
        let mut p = Packet::new(proto::TCP, 1, 2);
        p.proto = 0x7F;
        assert_eq!(Packet::decode(&p.encode()), Err(Errno::EPROTONOSUPPORT));
    }

    #[test]
    fn empty_payload_ok() {
        let p = Packet::new(proto::UDP, 5, 6);
        assert_eq!(Packet::decode(&p.encode()).unwrap().payload.len(), 0);
    }

    #[test]
    fn single_bit_flip_anywhere_is_detected() {
        let mut p = Packet::new(proto::TCP, 80, 1234);
        p.flags = flags::SYN;
        p.seq = 42;
        p.payload = b"checksummed".to_vec();
        let clean = p.encode();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[byte] ^= 1 << bit;
                assert!(
                    Packet::decode(&dirty).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}
