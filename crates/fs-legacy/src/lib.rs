//! # sk-fs-legacy — "cext4", the Step-0 file system
//!
//! An ext2-like file system written deliberately in the legacy C idiom the
//! paper catalogues:
//!
//! - its interface is a [`sk_vfs::legacy_ops::LegacyFsOps`] table:
//!   `ERR_PTR` returns, signed count-or-errno returns;
//! - `write_begin` allocates a private context struct and returns it as a
//!   bare `VoidPtr` which `write_end` casts back on faith (§4.2's example);
//! - it updates the generic inode's `i_size` on its write path *without*
//!   taking `i_lock`, relying on "specific, known code paths" for safety
//!   (§4.3's example) — the lock registry records every such access;
//! - size/offset arithmetic is wrapping, like C's.
//!
//! On top of the idiom, the implementation carries **injectable bug
//! knobs** ([`knobs::BugKnobs`]) that switch on representative bug classes
//! (wrong cast in `write_end`, `ERR_PTR` deref on lookup miss, fsdata leak,
//! use-after-free of the inode private object, off-by-one in directory
//! parsing, unchecked size arithmetic). The empirical prevention study
//! (`sk-faultgen`) flips these knobs one at a time and observes which
//! roadmap step stops each class.
//!
//! The on-disk format ([`layout`]) is a classic bitmap file system:
//! superblock, block/inode bitmaps, inode table, data blocks; files use
//! nine direct pointers plus one single-indirect block; directories are
//! packed `(ino, name)` records in the directory file's content.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cext4;
pub mod knobs;
pub mod layout;
pub mod ops;

pub use cext4::Cext4;
pub use knobs::BugKnobs;
pub use ops::cext4_ops;
