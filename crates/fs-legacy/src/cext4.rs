//! The cext4 implementation.
//!
//! Internally a classic bitmap file system over the buffer cache. The
//! legacy idiom shows in three places: the `write_begin`/`write_end` pair
//! communicates through a `void *` context allocated in the kernel arena;
//! lookup-family operations hand results back as `ERR_PTR` words; and the
//! generic inode's `i_size` is updated on the write path *without* taking
//! `i_lock` (recorded by the lock registry — this is the paper's §4.3
//! example, present even when every bug knob is off).

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;
use sk_ksim::block::BlockDevice;
use sk_ksim::buffer::{BhFlag, BufferCache};
use sk_ksim::errno::{Errno, KResult};
use sk_ksim::lock::{KLock, LockRegistry};
use sk_legacy::{BugClass, ErrPtr, LegacyCtx, VoidPtr};
use sk_vfs::inode::{Attr, FileType, Inode, InodeNo};
use sk_vfs::modular::StatFs;

use crate::knobs::BugKnobs;
use crate::layout::{
    dirent_encode, dirent_parse, DiskInode, Superblock, BLOCK_BITMAP, BLOCK_SIZE, INODES_PER_BLOCK,
    INODE_BITMAP, INODE_SIZE, INODE_TABLE, MAX_FILE_SIZE, MODE_DIR, MODE_FREE, MODE_REG, NDIRECT,
    NINDIRECT, ROOT_INO, SB_BLOCK,
};

/// The fsdata context `write_begin` passes to `write_end` as a `void *`.
#[derive(Debug)]
pub(crate) struct WriteFsdata {
    pub ino: InodeNo,
    pub off: u64,
    pub len: usize,
}

/// A decoy context type; the wrong-cast knob casts fsdata to this.
#[derive(Debug)]
pub(crate) struct ReadFsdata {
    #[allow(dead_code)]
    pub pos: u64,
}

/// Private per-inode object hung off `i_private` (the `void *` field).
#[derive(Debug)]
pub(crate) struct CextPrivate {
    #[allow(dead_code)]
    pub prealloc_hint: u64,
}

/// The cext4 file system.
pub struct Cext4 {
    cache: BufferCache,
    sb: Superblock,
    ctx: LegacyCtx,
    knobs: Arc<BugKnobs>,
    /// In-memory generic inodes (the structures shared with VFS).
    icache: Mutex<HashMap<InodeNo, Arc<Inode>>>,
    /// Lock registry shared with the generic inodes.
    lock_registry: Arc<LockRegistry>,
    /// Directory-tree mutation lock.
    tree_lock: KLock<()>,
    /// Block/inode quota accounting lock. Canonical order: `tree_lock`
    /// before `quota_lock` (create's order). The `reversed_double_lock`
    /// knob makes truncate take them the other way round.
    quota_lock: KLock<()>,
}

impl Cext4 {
    /// Formats `dev` with `inode_count` inodes.
    pub fn mkfs(dev: &Arc<dyn BlockDevice>, inode_count: u32) -> KResult<()> {
        let sb = Superblock::design(dev.num_blocks(), inode_count)?;
        let bs = dev.block_size();
        let mut blk = vec![0u8; bs];
        sb.encode(&mut blk);
        dev.write_block(SB_BLOCK, &blk)?;

        // Block bitmap: mark metadata blocks (0 .. data_start) used.
        let mut bitmap = vec![0u8; bs];
        for b in 0..sb.data_start as usize {
            bitmap[b / 8] |= 1 << (b % 8);
        }
        dev.write_block(BLOCK_BITMAP, &bitmap)?;

        // Inode bitmap: inode 0 (reserved) and 1 (root) used.
        let mut ibitmap = vec![0u8; bs];
        ibitmap[0] |= 0b11;
        dev.write_block(INODE_BITMAP, &ibitmap)?;

        // Zero the inode table in one vectored extent (one seek), then
        // write the root inode.
        let table_blocks = (inode_count as usize).div_ceil(INODES_PER_BLOCK) as u64;
        let zeros = vec![0u8; bs * table_blocks as usize];
        dev.write_blocks(INODE_TABLE, table_blocks as usize, &zeros)?;
        let mut root = DiskInode::empty();
        root.mode = MODE_DIR;
        root.nlink = 1;
        let mut tblk = vec![0u8; bs];
        let slot = (ROOT_INO as usize % INODES_PER_BLOCK) * INODE_SIZE;
        root.encode(&mut tblk[slot..slot + INODE_SIZE]);
        dev.write_block(INODE_TABLE, &tblk)?;
        dev.flush()
    }

    /// Mounts a formatted device.
    pub fn mount(
        dev: Arc<dyn BlockDevice>,
        ctx: LegacyCtx,
        knobs: Arc<BugKnobs>,
    ) -> KResult<Cext4> {
        let mut blk = vec![0u8; dev.block_size()];
        dev.read_block(SB_BLOCK, &mut blk)?;
        let sb = Superblock::decode(&blk)?;
        let lock_registry = Arc::clone(&ctx.locks);
        Ok(Cext4 {
            cache: BufferCache::new(dev, 256),
            sb,
            tree_lock: KLock::new(Arc::clone(&lock_registry), "cext4_tree", ()),
            quota_lock: KLock::new(Arc::clone(&lock_registry), "cext4_quota", ()),
            lock_registry,
            ctx,
            knobs,
            icache: Mutex::new(HashMap::new()),
        })
    }

    /// The kernel context (exposes the ledger to the study).
    pub fn ctx(&self) -> &LegacyCtx {
        &self.ctx
    }

    /// The bug knobs.
    pub fn knobs(&self) -> &Arc<BugKnobs> {
        &self.knobs
    }

    /// The buffer cache (for stats).
    pub fn cache(&self) -> &BufferCache {
        &self.cache
    }

    /// Root inode number.
    pub fn root_ino(&self) -> InodeNo {
        ROOT_INO
    }

    // --- inode table ------------------------------------------------------

    fn inode_loc(&self, ino: InodeNo) -> KResult<(u64, usize)> {
        if ino == 0 || ino >= u64::from(self.sb.inode_count) {
            return Err(Errno::EINVAL);
        }
        let blk = INODE_TABLE + ino / INODES_PER_BLOCK as u64;
        let slot = (ino as usize % INODES_PER_BLOCK) * INODE_SIZE;
        Ok((blk, slot))
    }

    pub(crate) fn read_inode(&self, ino: InodeNo) -> KResult<DiskInode> {
        let (blk, slot) = self.inode_loc(ino)?;
        let buf = self.cache.bread(blk)?;
        Ok(buf.read(|d| DiskInode::decode(&d[slot..slot + INODE_SIZE])))
    }

    pub(crate) fn write_inode(&self, ino: InodeNo, di: &DiskInode) -> KResult<()> {
        let (blk, slot) = self.inode_loc(ino)?;
        let buf = self.cache.bread(blk)?;
        buf.write(|d| di.encode(&mut d[slot..slot + INODE_SIZE]));
        buf.set_flag(BhFlag::Meta);
        Ok(())
    }

    /// The in-memory generic inode shared with the VFS layer.
    pub fn vfs_inode(&self, ino: InodeNo) -> KResult<Arc<Inode>> {
        if let Some(i) = self.icache.lock().get(&ino) {
            return Ok(Arc::clone(i));
        }
        let di = self.read_inode(ino)?;
        if di.mode == MODE_FREE {
            return Err(Errno::ENOENT);
        }
        let ftype = if di.mode == MODE_DIR {
            FileType::Directory
        } else {
            FileType::Regular
        };
        let inode = Inode::new(Arc::clone(&self.lock_registry), ino, ftype);
        // Populate size under i_lock (the mount path is disciplined).
        inode.set_size(di.size);
        let mut icache = self.icache.lock();
        Ok(Arc::clone(icache.entry(ino).or_insert(inode)))
    }

    // --- bitmaps ------------------------------------------------------------

    fn bitmap_alloc(&self, bitmap_blk: u64, limit: u64, first: u64) -> KResult<u64> {
        let buf = self.cache.bread(bitmap_blk)?;
        let found = buf.write(|d| {
            for i in first..limit {
                let (byte, bit) = ((i / 8) as usize, (i % 8) as u8);
                if d[byte] & (1 << bit) == 0 {
                    d[byte] |= 1 << bit;
                    return Some(i);
                }
            }
            None
        });
        buf.set_flag(BhFlag::Meta);
        found.ok_or(Errno::ENOSPC)
    }

    fn bitmap_free(&self, bitmap_blk: u64, index: u64) -> KResult<()> {
        let buf = self.cache.bread(bitmap_blk)?;
        buf.write(|d| {
            let (byte, bit) = ((index / 8) as usize, (index % 8) as u8);
            d[byte] &= !(1 << bit);
        });
        buf.set_flag(BhFlag::Meta);
        Ok(())
    }

    fn bitmap_count_free(&self, bitmap_blk: u64, limit: u64) -> KResult<u64> {
        let buf = self.cache.bread(bitmap_blk)?;
        Ok(buf.read(|d| {
            (0..limit)
                .filter(|i| d[(i / 8) as usize] & (1 << (i % 8)) == 0)
                .count() as u64
        }))
    }

    fn balloc(&self) -> KResult<u64> {
        let blk = self.bitmap_alloc(
            BLOCK_BITMAP,
            u64::from(self.sb.total_blocks),
            u64::from(self.sb.data_start),
        )?;
        // Freshly allocated blocks start zeroed.
        let buf = self.cache.getblk(blk)?;
        buf.write(|d| d.fill(0));
        Ok(blk)
    }

    fn bfree(&self, blk: u64) -> KResult<()> {
        self.bitmap_free(BLOCK_BITMAP, blk)
    }

    fn ialloc(&self, mode: u16) -> KResult<InodeNo> {
        let ino = self.bitmap_alloc(INODE_BITMAP, u64::from(self.sb.inode_count), 2)?;
        let mut di = DiskInode::empty();
        di.mode = mode;
        di.nlink = 1;
        self.write_inode(ino, &di)?;
        Ok(ino)
    }

    fn ifree(&self, ino: InodeNo) -> KResult<()> {
        self.write_inode(ino, &DiskInode::empty())?;
        self.bitmap_free(INODE_BITMAP, ino)?;
        self.icache.lock().remove(&ino);
        Ok(())
    }

    // --- block mapping ------------------------------------------------------

    /// Maps file block `fblk` of `di` to a device block, allocating when
    /// `alloc`. Returns 0 for an unallocated hole when not allocating.
    fn bmap(&self, di: &mut DiskInode, fblk: u64, alloc: bool) -> KResult<u64> {
        if (fblk as usize) < NDIRECT {
            let slot = fblk as usize;
            if di.direct[slot] == 0 && alloc {
                di.direct[slot] = self.balloc()? as u32;
            }
            return Ok(u64::from(di.direct[slot]));
        }
        let idx = fblk as usize - NDIRECT;
        if idx >= NINDIRECT {
            return Err(Errno::EFBIG);
        }
        if di.indirect == 0 {
            if !alloc {
                return Ok(0);
            }
            di.indirect = self.balloc()? as u32;
        }
        let ibuf = self.cache.bread(u64::from(di.indirect))?;
        let existing =
            ibuf.read(|d| u32::from_le_bytes(d[idx * 4..idx * 4 + 4].try_into().expect("4 bytes")));
        if existing != 0 || !alloc {
            return Ok(u64::from(existing));
        }
        let fresh = self.balloc()? as u32;
        ibuf.write(|d| d[idx * 4..idx * 4 + 4].copy_from_slice(&fresh.to_le_bytes()));
        ibuf.set_flag(BhFlag::Meta);
        Ok(u64::from(fresh))
    }

    // --- file content -------------------------------------------------------

    pub(crate) fn read_range(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> KResult<usize> {
        let mut di = self.read_inode(ino)?;
        if di.mode == MODE_FREE {
            return Err(Errno::ENOENT);
        }
        if off >= di.size {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(di.size - off) as usize;
        let mut done = 0usize;
        while done < want {
            let pos = off + done as u64;
            let fblk = pos / BLOCK_SIZE as u64;
            let inblk = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - inblk).min(want - done);
            let dblk = self.bmap(&mut di, fblk, false)?;
            if dblk == 0 {
                buf[done..done + n].fill(0); // hole
            } else {
                let b = self.cache.bread(dblk)?;
                b.read(|d| buf[done..done + n].copy_from_slice(&d[inblk..inblk + n]));
            }
            done += n;
        }
        Ok(done)
    }

    /// Raw ranged write (exposed for the fault study's overflow probe).
    pub fn write_range(&self, ino: InodeNo, off: u64, data: &[u8]) -> KResult<usize> {
        let mut di = self.read_inode(ino)?;
        if di.mode == MODE_FREE {
            return Err(Errno::ENOENT);
        }
        // Bounds check — with the wrapping knob, this is C's `off + len`
        // which can wrap and sail past the limit (CWE-190).
        let end = if self.knobs.wrapping_size_math.load(Ordering::Relaxed) {
            let wrapped = off.wrapping_add(data.len() as u64);
            if wrapped < off {
                self.ctx.ledger.record(
                    BugClass::IntegerOverflow,
                    "cext4::write_range",
                    format!("off {off} + len {} wrapped to {wrapped}", data.len()),
                );
            }
            wrapped
        } else {
            off.checked_add(data.len() as u64).ok_or(Errno::EFBIG)?
        };
        if end > MAX_FILE_SIZE {
            return Err(Errno::EFBIG);
        }
        let mut done = 0usize;
        while done < data.len() {
            let pos = off + done as u64;
            let fblk = pos / BLOCK_SIZE as u64;
            let inblk = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - inblk).min(data.len() - done);
            let dblk = self.bmap(&mut di, fblk, true)?;
            let whole_block = inblk == 0 && n == BLOCK_SIZE;
            let b = if whole_block {
                self.cache.getblk(dblk)?
            } else {
                self.cache.bread(dblk)?
            };
            b.write(|d| d[inblk..inblk + n].copy_from_slice(&data[done..done + n]));
            done += n;
        }
        if end > di.size {
            di.size = end;
        }
        self.write_inode(ino, &di)?;
        // THE §4.3 IDIOM: update the shared generic inode's i_size without
        // taking i_lock — "file systems are responsible for updating
        // i_size", and this code path "knows" it is safe.
        if let Ok(vi) = self.vfs_inode(ino) {
            vi.i_size.write_unchecked(di.size);
        }
        Ok(done)
    }

    // --- directories ----------------------------------------------------------

    fn dir_content(&self, dir: InodeNo) -> KResult<Vec<u8>> {
        let di = self.read_inode(dir)?;
        if di.mode != MODE_DIR {
            return Err(Errno::ENOTDIR);
        }
        let mut content = vec![0u8; di.size as usize];
        self.read_range(dir, 0, &mut content)?;
        Ok(content)
    }

    fn dir_set_content(&self, dir: InodeNo, content: &[u8]) -> KResult<()> {
        // Rewrite in place, then shrink to the new size.
        let mut di = self.read_inode(dir)?;
        let old_size = di.size;
        di.size = 0;
        self.write_inode(dir, &di)?;
        if !content.is_empty() {
            self.write_range(dir, 0, content)?;
        }
        if old_size as usize > content.len() {
            self.shrink_blocks(dir, content.len() as u64)?;
        }
        Ok(())
    }

    fn entries(&self, dir: InodeNo) -> KResult<Vec<(u64, String)>> {
        let content = self.dir_content(dir)?;
        dirent_parse(
            &content,
            self.knobs.off_by_one_dirent.load(Ordering::Relaxed),
        )
        .inspect_err(|_| {
            self.ctx.ledger.record(
                BugClass::OutOfBounds,
                "cext4::entries",
                "directory parse over-read",
            );
        })
    }

    /// Legacy-shaped lookup: `ERR_PTR` to a `VoidPtr`-wrapped inode number.
    pub fn lookup_errptr(&self, dir: InodeNo, name: &str) -> ErrPtr {
        match self.entries(dir) {
            Ok(entries) => match entries.into_iter().find(|(_, n)| n == name) {
                Some((ino, _)) => ErrPtr::ok(self.ctx.vp_new(ino)),
                None => ErrPtr::err(Errno::ENOENT),
            },
            Err(e) => ErrPtr::err(e),
        }
    }

    fn dir_lookup(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        let e = self.lookup_errptr(dir, name);
        if self.knobs.deref_errptr_lookup.load(Ordering::Relaxed) {
            // The undisciplined caller: no IS_ERR check before use.
            return self
                .ctx
                .errptr_deref(e, "cext4::dir_lookup", |ino: &InodeNo| *ino)
                .ok_or(Errno::EFAULT);
        }
        let p = e.check()?;
        self.ctx
            .vp_take::<InodeNo>(p, "cext4::dir_lookup")
            .ok_or(Errno::EFAULT)
    }

    fn dir_add(&self, dir: InodeNo, name: &str, ino: InodeNo) -> KResult<()> {
        let old_len = self.dir_content(dir)?.len();
        let mut entry = Vec::with_capacity(5 + name.len());
        dirent_encode(&mut entry, ino, name);
        self.write_range(dir, old_len as u64, &entry).map(|_| ())
    }

    fn dir_remove(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        let entries = self.entries(dir)?;
        let mut found = None;
        let mut content = Vec::new();
        for (ino, n) in entries {
            if n == name && found.is_none() {
                found = Some(ino);
            } else {
                dirent_encode(&mut content, ino, &n);
            }
        }
        let victim = found.ok_or(Errno::ENOENT)?;
        self.dir_set_content(dir, &content)?;
        Ok(victim)
    }

    // --- top-level operations ---------------------------------------------------

    /// Creates a file or directory entry, legacy-shaped.
    pub fn create_errptr(&self, dir: InodeNo, name: &str, mode: u16) -> ErrPtr {
        match self.create_inner(dir, name, mode) {
            Ok(ino) => ErrPtr::ok(self.ctx.vp_new(ino)),
            Err(e) => ErrPtr::err(e),
        }
    }

    fn create_inner(&self, dir: InodeNo, name: &str, mode: u16) -> KResult<InodeNo> {
        if name.is_empty() || name.len() > 255 || name.contains('/') {
            return Err(Errno::EINVAL);
        }
        let _g = self.tree_lock.lock();
        // Charge the inode quota while the tree is stable: tree before
        // quota is the canonical order.
        let _q = self.quota_lock.lock();
        match self.dir_lookup(dir, name) {
            Ok(_) => return Err(Errno::EEXIST),
            Err(Errno::ENOENT) => {}
            Err(e) => return Err(e),
        }
        let ino = self.ialloc(mode)?;
        if let Err(e) = self.dir_add(dir, name, ino) {
            let _ = self.ifree(ino);
            return Err(e);
        }
        // Hang a private object off the generic inode (a `void *`).
        if let Ok(vi) = self.vfs_inode(ino) {
            *vi.i_private.lock() = self.ctx.vp_new(CextPrivate { prealloc_hint: 0 });
        }
        Ok(ino)
    }

    fn shrink_blocks(&self, ino: InodeNo, new_size: u64) -> KResult<()> {
        let mut di = self.read_inode(ino)?;
        let keep_blocks = new_size.div_ceil(BLOCK_SIZE as u64);
        // Zero the tail of the last kept block so re-extension reads zeros.
        if !new_size.is_multiple_of(BLOCK_SIZE as u64) {
            let last_fblk = new_size / BLOCK_SIZE as u64;
            let dblk = self.bmap(&mut di, last_fblk, false)?;
            if dblk != 0 {
                let cut = (new_size % BLOCK_SIZE as u64) as usize;
                let b = self.cache.bread(dblk)?;
                b.write(|d| d[cut..].fill(0));
            }
        }
        for slot in 0..NDIRECT {
            if (slot as u64) >= keep_blocks && di.direct[slot] != 0 {
                self.bfree(u64::from(di.direct[slot]))?;
                di.direct[slot] = 0;
            }
        }
        if di.indirect != 0 {
            let ibuf = self.cache.bread(u64::from(di.indirect))?;
            let mut any_left = false;
            let entries: Vec<u32> = ibuf.read(|d| {
                (0..NINDIRECT)
                    .map(|i| u32::from_le_bytes(d[i * 4..i * 4 + 4].try_into().expect("4")))
                    .collect()
            });
            let mut updated = entries.clone();
            for (i, e) in entries.iter().enumerate() {
                let fblk = (NDIRECT + i) as u64;
                if *e != 0 {
                    if fblk >= keep_blocks {
                        self.bfree(u64::from(*e))?;
                        updated[i] = 0;
                    } else {
                        any_left = true;
                    }
                }
            }
            ibuf.write(|d| {
                for (i, e) in updated.iter().enumerate() {
                    d[i * 4..i * 4 + 4].copy_from_slice(&e.to_le_bytes());
                }
            });
            if !any_left {
                self.bfree(u64::from(di.indirect))?;
                di.indirect = 0;
            }
        }
        di.size = new_size;
        self.write_inode(ino, &di)
    }

    /// Unlink, C-shaped return (0 or `-errno` handled by the ops layer).
    pub fn unlink_inner(&self, dir: InodeNo, name: &str) -> KResult<()> {
        let _g = self.tree_lock.lock();
        let victim = self.dir_lookup(dir, name)?;
        let di = self.read_inode(victim)?;
        if di.mode == MODE_DIR {
            return Err(Errno::EISDIR);
        }
        self.dir_remove(dir, name)?;
        // Free the private object; with the UAF knob, touch it afterwards.
        if let Ok(vi) = self.vfs_inode(victim) {
            let p = *vi.i_private.lock();
            if !p.is_null() {
                self.ctx.vp_free(p, "cext4::unlink");
                if self.knobs.uaf_inode_private.load(Ordering::Relaxed) {
                    // Use after free: read the hint from the freed object.
                    let _ = self
                        .ctx
                        .vp_cast(p, "cext4::unlink[uaf]", |c: &CextPrivate| c.prealloc_hint);
                }
                if self.knobs.double_free_fsdata.load(Ordering::Relaxed) {
                    self.ctx.vp_free(p, "cext4::unlink[double-free]");
                }
                *vi.i_private.lock() = VoidPtr::NULL;
            }
        }
        self.shrink_blocks(victim, 0)?;
        self.ifree(victim)
    }

    /// Rmdir.
    pub fn rmdir_inner(&self, dir: InodeNo, name: &str) -> KResult<()> {
        let _g = self.tree_lock.lock();
        let victim = self.dir_lookup(dir, name)?;
        let di = self.read_inode(victim)?;
        if di.mode != MODE_DIR {
            return Err(Errno::ENOTDIR);
        }
        if !self.entries(victim)?.is_empty() {
            return Err(Errno::ENOTEMPTY);
        }
        self.dir_remove(dir, name)?;
        self.shrink_blocks(victim, 0)?;
        self.ifree(victim)
    }

    /// write_begin: allocates the fsdata context, returns it as a `void *`.
    pub fn write_begin(&self, ino: InodeNo, off: u64, len: usize) -> ErrPtr {
        match self.read_inode(ino) {
            Ok(di) if di.mode == MODE_REG => {}
            Ok(_) => return ErrPtr::err(Errno::EISDIR),
            Err(e) => return ErrPtr::err(e),
        }
        ErrPtr::ok(self.ctx.vp_new(WriteFsdata { ino, off, len }))
    }

    /// write_end: casts the `void *` back and performs the write.
    pub fn write_end(
        &self,
        ino: InodeNo,
        off: u64,
        data: &[u8],
        fsdata: VoidPtr,
    ) -> KResult<usize> {
        // The §4.2 example: "the file system assumes that the pointer was
        // from its write_begin function and casts the pointer to the
        // relevant type."
        let parsed = if self.knobs.wrong_cast_write_end.load(Ordering::Relaxed) {
            // Cast to the wrong struct: detected type confusion, and the
            // operation limps on with garbage (we surface EFAULT).
            self.ctx
                .vp_cast(fsdata, "cext4::write_end", |r: &ReadFsdata| r.pos)
                .map(|pos| WriteFsdata {
                    ino,
                    off: pos,
                    len: data.len(),
                })
        } else {
            self.ctx
                .vp_cast(fsdata, "cext4::write_end", |w: &WriteFsdata| WriteFsdata {
                    ino: w.ino,
                    off: w.off,
                    len: w.len,
                })
        };
        // Free the context — unless the leak knob swallows it.
        if !self.knobs.leak_fsdata.load(Ordering::Relaxed) {
            self.ctx.vp_free(fsdata, "cext4::write_end");
        }
        let ctx = parsed.ok_or(Errno::EFAULT)?;
        if ctx.ino != ino || ctx.off != off || ctx.len != data.len() {
            return Err(Errno::EINVAL);
        }
        self.write_range(ino, off, data)
    }

    /// Readdir.
    pub fn readdir_inner(&self, dir: InodeNo) -> KResult<Vec<(String, InodeNo)>> {
        Ok(self
            .entries(dir)?
            .into_iter()
            .map(|(ino, name)| (name, ino))
            .collect())
    }

    /// Rename.
    pub fn rename_inner(
        &self,
        olddir: InodeNo,
        oldname: &str,
        newdir: InodeNo,
        newname: &str,
    ) -> KResult<()> {
        let _g = self.tree_lock.lock();
        let src = self.dir_lookup(olddir, oldname)?;
        if olddir == newdir && oldname == newname {
            return Ok(());
        }
        let src_di = self.read_inode(src)?;
        match self.dir_lookup(newdir, newname) {
            Ok(existing) => {
                let tgt_di = self.read_inode(existing)?;
                if src_di.mode == MODE_REG {
                    if tgt_di.mode == MODE_DIR {
                        return Err(Errno::EISDIR);
                    }
                    // Replace the file.
                    self.dir_remove(newdir, newname)?;
                    self.shrink_blocks(existing, 0)?;
                    self.ifree(existing)?;
                } else {
                    if tgt_di.mode != MODE_DIR {
                        return Err(Errno::ENOTDIR);
                    }
                    if !self.entries(existing)?.is_empty() {
                        return Err(Errno::ENOTEMPTY);
                    }
                    self.dir_remove(newdir, newname)?;
                    self.shrink_blocks(existing, 0)?;
                    self.ifree(existing)?;
                }
            }
            Err(Errno::ENOENT) => {}
            Err(e) => return Err(e),
        }
        self.dir_remove(olddir, oldname)?;
        self.dir_add(newdir, newname, src)
    }

    /// Truncate.
    pub fn truncate_inner(&self, ino: InodeNo, size: u64) -> KResult<()> {
        if size > MAX_FILE_SIZE {
            return Err(Errno::EFBIG);
        }
        // Truncation releases blocks, so it needs both the tree lock and
        // the quota lock. Canonical order is tree then quota; the injected
        // bug takes them reversed, the classic AB/BA deadlock with
        // `create` (CWE-667/833) that lockdep's graph flags.
        let (_g, _q);
        if self.knobs.reversed_double_lock.load(Ordering::Relaxed) {
            _q = self.quota_lock.lock();
            _g = self.tree_lock.lock();
        } else {
            _g = self.tree_lock.lock();
            _q = self.quota_lock.lock();
        }
        let mut di = self.read_inode(ino)?;
        if di.mode != MODE_REG {
            return Err(Errno::EISDIR);
        }
        if size < di.size {
            self.shrink_blocks(ino, size)?;
        } else {
            di.size = size;
            self.write_inode(ino, &di)?;
        }
        if let Ok(vi) = self.vfs_inode(ino) {
            if self.knobs.racy_truncate.load(Ordering::Relaxed) {
                // Racy read-modify-write of the "maybe protected" field.
                let cur = vi.i_size.read_unchecked();
                vi.i_size.write_unchecked(cur.min(size).max(size));
            } else {
                vi.set_size(size);
            }
        }
        Ok(())
    }

    /// Attributes, legacy-shaped.
    pub fn getattr_errptr(&self, ino: InodeNo) -> ErrPtr {
        match self.getattr_inner(ino) {
            Ok(attr) => ErrPtr::ok(self.ctx.vp_new(attr)),
            Err(e) => ErrPtr::err(e),
        }
    }

    fn getattr_inner(&self, ino: InodeNo) -> KResult<Attr> {
        let di = self.read_inode(ino)?;
        if di.mode == MODE_FREE {
            return Err(Errno::ENOENT);
        }
        Ok(Attr {
            ino,
            ftype: if di.mode == MODE_DIR {
                FileType::Directory
            } else {
                FileType::Regular
            },
            size: di.size,
            nlink: u32::from(di.nlink),
            mtime_ns: di.mtime,
        })
    }

    /// Flushes everything to the device.
    pub fn sync_inner(&self) -> KResult<()> {
        self.cache.sync_all()
    }

    /// Per-file durability (`fsync(2)`). cext4 has no journal, so like
    /// ext2 the honest implementation is a whole-cache writeback — but
    /// the inode is validated first, so fsync of a deleted or
    /// never-allocated inode fails with `ENOENT` instead of silently
    /// succeeding.
    pub fn fsync_inner(&self, ino: InodeNo) -> KResult<()> {
        let di = self.read_inode(ino)?;
        if di.mode == MODE_FREE {
            return Err(Errno::ENOENT);
        }
        self.cache.sync_all()
    }

    /// Usage counters.
    pub fn statfs_inner(&self) -> KResult<StatFs> {
        Ok(StatFs {
            blocks_total: u64::from(self.sb.total_blocks) - u64::from(self.sb.data_start),
            blocks_free: self.bitmap_count_free(BLOCK_BITMAP, u64::from(self.sb.total_blocks))?,
            inodes_total: u64::from(self.sb.inode_count) - 2,
            inodes_free: self.bitmap_count_free(INODE_BITMAP, u64::from(self.sb.inode_count))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_ksim::block::RamDisk;

    fn mkfs_mount(knobs: Arc<BugKnobs>) -> Cext4 {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(512));
        Cext4::mkfs(&dev, 128).unwrap();
        Cext4::mount(dev, LegacyCtx::new(), knobs).unwrap()
    }

    fn write_via_begin_end(fs: &Cext4, ino: InodeNo, off: u64, data: &[u8]) -> KResult<usize> {
        let fsdata = fs.write_begin(ino, off, data.len()).check()?;
        fs.write_end(ino, off, data, fsdata)
    }

    #[test]
    fn create_write_read_roundtrip() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let ino = fs
            .create_errptr(ROOT_INO, "f.txt", MODE_REG)
            .check()
            .unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(ino, "t").unwrap();
        let n = write_via_begin_end(&fs, ino, 0, b"hello world").unwrap();
        assert_eq!(n, 11);
        let mut buf = vec![0u8; 32];
        let n = fs.read_range(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello world");
        assert!(fs.getattr_errptr(ino).check().is_ok());
    }

    #[test]
    fn lookup_finds_created_entries() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs.create_errptr(ROOT_INO, "a", MODE_REG).check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        let e = fs.lookup_errptr(ROOT_INO, "a");
        let found = fs
            .ctx()
            .vp_take::<InodeNo>(e.check().unwrap(), "t")
            .unwrap();
        assert_eq!(found, ino);
        assert_eq!(
            fs.lookup_errptr(ROOT_INO, "nope").check(),
            Err(Errno::ENOENT)
        );
    }

    #[test]
    fn large_file_spans_indirect_blocks() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs.create_errptr(ROOT_INO, "big", MODE_REG).check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        // 9 direct blocks + a few indirect ones.
        let data: Vec<u8> = (0..(12 * BLOCK_SIZE)).map(|i| (i % 251) as u8).collect();
        write_via_begin_end(&fs, ino, 0, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        let n = fs.read_range(ino, 0, &mut out).unwrap();
        assert_eq!(n, data.len());
        assert_eq!(out, data);
    }

    #[test]
    fn sparse_write_reads_zero_holes() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs
            .create_errptr(ROOT_INO, "sparse", MODE_REG)
            .check()
            .unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        write_via_begin_end(&fs, ino, 3 * BLOCK_SIZE as u64 + 5, b"X").unwrap();
        let mut out = vec![0xFFu8; BLOCK_SIZE];
        let n = fs.read_range(ino, 0, &mut out).unwrap();
        assert_eq!(n, BLOCK_SIZE);
        assert!(out.iter().all(|&b| b == 0), "hole reads as zeros");
    }

    #[test]
    fn unlink_frees_space() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let before = fs.statfs_inner().unwrap();
        let p = fs.create_errptr(ROOT_INO, "f", MODE_REG).check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        write_via_begin_end(&fs, ino, 0, &vec![7u8; 3 * BLOCK_SIZE]).unwrap();
        fs.unlink_inner(ROOT_INO, "f").unwrap();
        let after = fs.statfs_inner().unwrap();
        assert_eq!(before.blocks_free, after.blocks_free);
        assert_eq!(before.inodes_free, after.inodes_free);
        assert_eq!(fs.lookup_errptr(ROOT_INO, "f").check(), Err(Errno::ENOENT));
    }

    #[test]
    fn mkdir_and_rmdir() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs.create_errptr(ROOT_INO, "d", MODE_DIR).check().unwrap();
        let d = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        let p = fs.create_errptr(d, "child", MODE_REG).check().unwrap();
        let _ = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        assert_eq!(fs.rmdir_inner(ROOT_INO, "d"), Err(Errno::ENOTEMPTY));
        fs.unlink_inner(d, "child").unwrap();
        fs.rmdir_inner(ROOT_INO, "d").unwrap();
        assert_eq!(fs.lookup_errptr(ROOT_INO, "d").check(), Err(Errno::ENOENT));
    }

    #[test]
    fn rename_replaces_target_file() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        for name in ["a", "b"] {
            let p = fs.create_errptr(ROOT_INO, name, MODE_REG).check().unwrap();
            let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
            write_via_begin_end(&fs, ino, 0, name.as_bytes()).unwrap();
        }
        fs.rename_inner(ROOT_INO, "a", ROOT_INO, "b").unwrap();
        let entries = fs.readdir_inner(ROOT_INO).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, "b");
        let e = fs.lookup_errptr(ROOT_INO, "b").check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(e, "t").unwrap();
        let mut buf = vec![0u8; 4];
        let n = fs.read_range(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"a", "content followed the rename");
    }

    #[test]
    fn truncate_shrinks_and_zero_extends() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs.create_errptr(ROOT_INO, "t", MODE_REG).check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        write_via_begin_end(&fs, ino, 0, b"abcdef").unwrap();
        fs.truncate_inner(ino, 3).unwrap();
        fs.truncate_inner(ino, 6).unwrap();
        let mut buf = vec![0xAAu8; 6];
        fs.read_range(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc\0\0\0", "shrink zeroes the dropped tail");
    }

    #[test]
    fn reversed_double_lock_is_flagged_as_inversion() {
        // Knob off: create (tree→quota) and truncate (tree→quota) agree,
        // so the acquires-after graph stays acyclic.
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs.create_errptr(ROOT_INO, "q", MODE_REG).check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        fs.truncate_inner(ino, 0).unwrap();
        fs.ctx().import_lock_violations("cext4-test");
        assert_eq!(fs.ctx().ledger.count(BugClass::LockInversion), 0);

        // Knob on: truncate takes quota→tree, the reverse of create's
        // order — lockdep reports the AB/BA pair.
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        fs.knobs()
            .reversed_double_lock
            .store(true, Ordering::Relaxed);
        let p = fs.create_errptr(ROOT_INO, "q", MODE_REG).check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        fs.truncate_inner(ino, 0).unwrap();
        fs.ctx().import_lock_violations("cext4-test");
        assert!(
            fs.ctx().ledger.count(BugClass::LockInversion) >= 1,
            "reversed order must file a LockInversion event"
        );
    }

    #[test]
    fn write_path_records_unlocked_i_size_access() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs.create_errptr(ROOT_INO, "f", MODE_REG).check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        fs.ctx().locks.clear_violations();
        write_via_begin_end(&fs, ino, 0, b"data").unwrap();
        let violations = fs.ctx().locks.violations();
        assert!(
            !violations.is_empty(),
            "the idiomatic unlocked i_size update must be recorded"
        );
    }

    #[test]
    fn knob_wrong_cast_manifests_as_type_confusion() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs.create_errptr(ROOT_INO, "f", MODE_REG).check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        fs.knobs().set("wrong_cast_write_end", true);
        let r = write_via_begin_end(&fs, ino, 0, b"data");
        assert_eq!(r, Err(Errno::EFAULT));
        assert_eq!(fs.ctx().ledger.count(BugClass::TypeConfusion), 1);
    }

    #[test]
    fn knob_leak_fsdata_leaves_live_objects() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs.create_errptr(ROOT_INO, "f", MODE_REG).check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        fs.knobs().set("leak_fsdata", true);
        let live_before = fs.ctx().arena.live_count();
        write_via_begin_end(&fs, ino, 0, b"data").unwrap();
        assert_eq!(
            fs.ctx().arena.live_count(),
            live_before + 1,
            "fsdata leaked"
        );
    }

    #[test]
    fn knob_uaf_detected_on_unlink() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs.create_errptr(ROOT_INO, "f", MODE_REG).check().unwrap();
        let _ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        fs.knobs().set("uaf_inode_private", true);
        fs.unlink_inner(ROOT_INO, "f").unwrap();
        assert_eq!(fs.ctx().ledger.count(BugClass::UseAfterFree), 1);
    }

    #[test]
    fn knob_errptr_deref_detected_on_missing_name() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        fs.knobs().set("deref_errptr_lookup", true);
        // Create consults dir_lookup for existence; the miss path derefs
        // the ERR_PTR without checking.
        let p = fs.create_errptr(ROOT_INO, "new", MODE_REG);
        assert!(p.is_err());
        assert_eq!(fs.ctx().ledger.count(BugClass::ErrPtrDeref), 1);
    }

    #[test]
    fn knob_off_by_one_breaks_directory_listing() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        for name in ["aa", "bb"] {
            let p = fs.create_errptr(ROOT_INO, name, MODE_REG).check().unwrap();
            fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        }
        fs.knobs().set("off_by_one_dirent", true);
        let r = fs.readdir_inner(ROOT_INO);
        match r {
            Err(e) => assert_eq!(e, Errno::EUCLEAN),
            Ok(entries) => assert_ne!(
                entries.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
                vec!["aa", "bb"]
            ),
        }
    }

    #[test]
    fn knob_wrapping_math_bypasses_bounds_check() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let p = fs.create_errptr(ROOT_INO, "f", MODE_REG).check().unwrap();
        let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
        // Correct code refuses an offset that would overflow.
        assert_eq!(fs.write_range(ino, u64::MAX - 2, b"xyz"), Err(Errno::EFBIG));
        fs.knobs().set("wrapping_size_math", true);
        let _ = fs.write_range(ino, u64::MAX - 2, b"xyz");
        assert_eq!(fs.ctx().ledger.count(BugClass::IntegerOverflow), 1);
    }

    #[test]
    fn statfs_counts_match_mkfs() {
        let fs = mkfs_mount(Arc::new(BugKnobs::none()));
        let s = fs.statfs_inner().unwrap();
        assert_eq!(s.inodes_free, 126, "128 inodes minus reserved and root");
        assert!(s.blocks_free > 0);
        assert!(s.blocks_free <= s.blocks_total);
    }

    #[test]
    fn sync_persists_through_remount() {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(512));
        Cext4::mkfs(&dev, 128).unwrap();
        {
            let fs = Cext4::mount(
                Arc::clone(&dev),
                LegacyCtx::new(),
                Arc::new(BugKnobs::none()),
            )
            .unwrap();
            let p = fs
                .create_errptr(ROOT_INO, "persist", MODE_REG)
                .check()
                .unwrap();
            let ino = fs.ctx().vp_take::<InodeNo>(p, "t").unwrap();
            write_via_begin_end(&fs, ino, 0, b"durable").unwrap();
            fs.sync_inner().unwrap();
        }
        let fs2 = Cext4::mount(dev, LegacyCtx::new(), Arc::new(BugKnobs::none())).unwrap();
        let e = fs2.lookup_errptr(ROOT_INO, "persist").check().unwrap();
        let ino = fs2.ctx().vp_take::<InodeNo>(e, "t").unwrap();
        let mut buf = vec![0u8; 16];
        let n = fs2.read_range(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"durable");
    }
}
