//! Injectable bug knobs.
//!
//! Each knob switches on one representative bug of a CWE class the paper's
//! §2 study counts. The bugs live on real code paths of the file system —
//! flipping a knob changes behaviour the way a wrong line of C would, and
//! the substrate's detection machinery (arena tags, lock registry, ledger)
//! observes the consequence. `sk-faultgen` drives these one at a time.

use std::sync::atomic::{AtomicBool, Ordering};

/// Runtime-togglable bug switches for cext4.
#[derive(Debug, Default)]
pub struct BugKnobs {
    /// `write_end` casts the fsdata `void *` to the wrong struct type
    /// (CWE-843, the paper's §4.2 example).
    pub wrong_cast_write_end: AtomicBool,
    /// The lookup caller dereferences the returned `ERR_PTR` without an
    /// `IS_ERR` check when the name is missing (CWE-476 family).
    pub deref_errptr_lookup: AtomicBool,
    /// `write_end` forgets to free the fsdata context (CWE-401).
    pub leak_fsdata: AtomicBool,
    /// `unlink` frees the inode's private object, then a subsequent
    /// `getattr` touches it (CWE-416).
    pub uaf_inode_private: AtomicBool,
    /// Directory entry parsing reads the name length one byte long
    /// (CWE-787/125).
    pub off_by_one_dirent: AtomicBool,
    /// Size bookkeeping uses wrapping arithmetic, so `off + len` can wrap
    /// past `u64::MAX` and bypass the max-file-size check (CWE-190).
    pub wrapping_size_math: AtomicBool,
    /// `unlink` frees the fsdata context twice on its error path (CWE-415).
    pub double_free_fsdata: AtomicBool,
    /// Writes update `i_size` *after* dropping the directory lock on the
    /// truncate path, widening the unlocked window (CWE-362). (The plain
    /// unlocked `i_size` update of §4.3 is always on — it is the idiom,
    /// not an injected bug.)
    pub racy_truncate: AtomicBool,
    /// `truncate` takes the quota lock *before* the tree lock — the
    /// reverse of `create`'s order — so the two operations can deadlock
    /// (CWE-667 improper locking / CWE-833 deadlock). Lockdep's
    /// acquires-after graph reports the inversion.
    pub reversed_double_lock: AtomicBool,
}

impl BugKnobs {
    /// All knobs off: cext4 behaves correctly (but still in the unsafe
    /// idiom — unchecked `i_size` updates are recorded regardless).
    pub fn none() -> Self {
        BugKnobs::default()
    }

    fn get(flag: &AtomicBool) -> bool {
        flag.load(Ordering::Relaxed)
    }

    /// Reads a knob by name (used by the study driver); `None` for unknown
    /// names.
    pub fn is_on(&self, name: &str) -> Option<bool> {
        Some(Self::get(match name {
            "wrong_cast_write_end" => &self.wrong_cast_write_end,
            "deref_errptr_lookup" => &self.deref_errptr_lookup,
            "leak_fsdata" => &self.leak_fsdata,
            "uaf_inode_private" => &self.uaf_inode_private,
            "off_by_one_dirent" => &self.off_by_one_dirent,
            "wrapping_size_math" => &self.wrapping_size_math,
            "double_free_fsdata" => &self.double_free_fsdata,
            "racy_truncate" => &self.racy_truncate,
            "reversed_double_lock" => &self.reversed_double_lock,
            _ => return None,
        }))
    }

    /// Sets a knob by name; returns false for unknown names.
    pub fn set(&self, name: &str, on: bool) -> bool {
        let flag = match name {
            "wrong_cast_write_end" => &self.wrong_cast_write_end,
            "deref_errptr_lookup" => &self.deref_errptr_lookup,
            "leak_fsdata" => &self.leak_fsdata,
            "uaf_inode_private" => &self.uaf_inode_private,
            "off_by_one_dirent" => &self.off_by_one_dirent,
            "wrapping_size_math" => &self.wrapping_size_math,
            "double_free_fsdata" => &self.double_free_fsdata,
            "racy_truncate" => &self.racy_truncate,
            "reversed_double_lock" => &self.reversed_double_lock,
            _ => return false,
        };
        flag.store(on, Ordering::Relaxed);
        true
    }

    /// Names of all knobs (the study iterates these).
    pub fn all_names() -> &'static [&'static str] {
        &[
            "wrong_cast_write_end",
            "deref_errptr_lookup",
            "leak_fsdata",
            "uaf_inode_private",
            "off_by_one_dirent",
            "wrapping_size_math",
            "double_free_fsdata",
            "racy_truncate",
            "reversed_double_lock",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_toggle_by_name() {
        let k = BugKnobs::none();
        for name in BugKnobs::all_names() {
            assert_eq!(k.is_on(name), Some(false));
            assert!(k.set(name, true));
            assert_eq!(k.is_on(name), Some(true));
            assert!(k.set(name, false));
        }
        assert!(!k.set("nonsense", true));
        assert_eq!(k.is_on("nonsense"), None);
    }
}
