//! The cext4 ops table: cext4's face to the legacy VFS.

use std::sync::Arc;

use sk_legacy::ErrPtr;
use sk_vfs::legacy_ops::{ret_err, ret_ok, LegacyFsOps};

use crate::cext4::Cext4;
use crate::layout::{MODE_DIR, MODE_REG, ROOT_INO};

/// Builds the legacy ops table for a mounted cext4 instance.
pub fn cext4_ops(fs: Arc<Cext4>) -> LegacyFsOps {
    let mut ops = LegacyFsOps::empty("cext4", ROOT_INO);

    let f = Arc::clone(&fs);
    ops.lookup = Some(Box::new(move |_, dir, name| f.lookup_errptr(dir, name)));

    let f = Arc::clone(&fs);
    ops.create = Some(Box::new(move |_, dir, name| {
        f.create_errptr(dir, name, MODE_REG)
    }));

    let f = Arc::clone(&fs);
    ops.mkdir = Some(Box::new(move |_, dir, name| {
        f.create_errptr(dir, name, MODE_DIR)
    }));

    let f = Arc::clone(&fs);
    ops.unlink = Some(Box::new(move |_, dir, name| {
        match f.unlink_inner(dir, name) {
            Ok(()) => 0,
            Err(e) => ret_err(e),
        }
    }));

    let f = Arc::clone(&fs);
    ops.rmdir = Some(Box::new(move |_, dir, name| {
        match f.rmdir_inner(dir, name) {
            Ok(()) => 0,
            Err(e) => ret_err(e),
        }
    }));

    let f = Arc::clone(&fs);
    ops.read = Some(Box::new(move |_, ino, off, buf| {
        match f.read_range(ino, off, buf) {
            Ok(n) => ret_ok(n as u64),
            Err(e) => ret_err(e),
        }
    }));

    let f = Arc::clone(&fs);
    ops.write_begin = Some(Box::new(move |_, ino, off, len| {
        f.write_begin(ino, off, len)
    }));

    let f = Arc::clone(&fs);
    ops.write_end = Some(Box::new(move |_, ino, off, data, fsdata| {
        match f.write_end(ino, off, data, fsdata) {
            Ok(n) => ret_ok(n as u64),
            Err(e) => ret_err(e),
        }
    }));

    let f = Arc::clone(&fs);
    ops.readdir = Some(Box::new(move |ctx, dir| match f.readdir_inner(dir) {
        Ok(entries) => ErrPtr::ok(ctx.vp_new(entries)),
        Err(e) => ErrPtr::err(e),
    }));

    let f = Arc::clone(&fs);
    ops.rename = Some(Box::new(move |_, od, on, nd, nn| {
        match f.rename_inner(od, on, nd, nn) {
            Ok(()) => 0,
            Err(e) => ret_err(e),
        }
    }));

    let f = Arc::clone(&fs);
    ops.truncate = Some(Box::new(move |_, ino, size| {
        match f.truncate_inner(ino, size) {
            Ok(()) => 0,
            Err(e) => ret_err(e),
        }
    }));

    let f = Arc::clone(&fs);
    ops.sync = Some(Box::new(move |_| match f.sync_inner() {
        Ok(()) => 0,
        Err(e) => ret_err(e),
    }));

    let f = Arc::clone(&fs);
    ops.fsync = Some(Box::new(move |_, ino| match f.fsync_inner(ino) {
        Ok(()) => 0,
        Err(e) => ret_err(e),
    }));

    let f = Arc::clone(&fs);
    ops.getattr = Some(Box::new(move |_, ino| f.getattr_errptr(ino)));

    let f = Arc::clone(&fs);
    ops.statfs = Some(Box::new(move |ctx| match f.statfs_inner() {
        Ok(s) => ErrPtr::ok(ctx.vp_new(s)),
        Err(e) => ErrPtr::err(e),
    }));

    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_ksim::block::{BlockDevice, RamDisk};
    use sk_ksim::errno::Errno;
    use sk_legacy::LegacyCtx;
    use sk_vfs::inode::InodeNo;

    use crate::knobs::BugKnobs;

    fn ops_and_ctx() -> (LegacyFsOps, LegacyCtx) {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(512));
        Cext4::mkfs(&dev, 128).unwrap();
        let ctx = LegacyCtx::new();
        let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).unwrap());
        (cext4_ops(fs), ctx)
    }

    #[test]
    fn full_table_is_populated() {
        let (ops, _) = ops_and_ctx();
        assert!(ops.lookup.is_some());
        assert!(ops.create.is_some());
        assert!(ops.mkdir.is_some());
        assert!(ops.unlink.is_some());
        assert!(ops.rmdir.is_some());
        assert!(ops.read.is_some());
        assert!(ops.write_begin.is_some());
        assert!(ops.write_end.is_some());
        assert!(ops.readdir.is_some());
        assert!(ops.rename.is_some());
        assert!(ops.truncate.is_some());
        assert!(ops.sync.is_some());
        assert!(ops.fsync.is_some());
        assert!(ops.getattr.is_some());
        assert!(ops.statfs.is_some());
    }

    #[test]
    fn fsync_slot_validates_the_inode_then_syncs() {
        use sk_vfs::legacy_ops::ret_check;
        let (ops, ctx) = ops_and_ctx();
        let fsync = ops.fsync.as_ref().unwrap();
        assert_eq!(ret_check(fsync(&ctx, ops.root_ino)), Ok(0));
        // A never-allocated inode is refused, C-style: -ENOENT.
        assert_eq!(ret_check(fsync(&ctx, 99)), Err(Errno::ENOENT));
    }

    #[test]
    fn table_drives_create_write_read() {
        let (ops, ctx) = ops_and_ctx();
        let create = ops.create.as_ref().unwrap();
        let e = create(&ctx, ROOT_INO, "x");
        let ino = ctx.vp_take::<InodeNo>(e.check().unwrap(), "t").unwrap();
        let begin = ops.write_begin.as_ref().unwrap();
        let end = ops.write_end.as_ref().unwrap();
        let fsdata = begin(&ctx, ino, 0, 3).check().unwrap();
        assert_eq!(end(&ctx, ino, 0, b"abc", fsdata), 3);
        let read = ops.read.as_ref().unwrap();
        let mut buf = vec![0u8; 8];
        assert_eq!(read(&ctx, ino, 0, &mut buf), 3);
        assert_eq!(&buf[..3], b"abc");
    }

    #[test]
    fn table_errors_are_c_shaped() {
        let (ops, ctx) = ops_and_ctx();
        let unlink = ops.unlink.as_ref().unwrap();
        assert_eq!(
            unlink(&ctx, ROOT_INO, "ghost"),
            -(Errno::ENOENT.as_i32() as i64)
        );
        let lookup = ops.lookup.as_ref().unwrap();
        assert!(lookup(&ctx, ROOT_INO, "ghost").is_err());
    }
}
