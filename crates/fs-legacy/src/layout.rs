//! On-disk layout of cext4.
//!
//! ```text
//! block 0              superblock
//! block 1              block bitmap   (1 bit per block, up to 32768 blocks)
//! block 2              inode bitmap
//! blocks 3 .. 3+T      inode table    (64-byte inodes, 64 per block)
//! blocks 3+T ..        data
//! ```
//!
//! Integers are little-endian. An inode holds nine direct block pointers
//! and one single-indirect pointer (1024 entries), for a maximum file size
//! of (9 + 1024) × 4096 bytes. Directory content is a packed sequence of
//! `(ino: u32, name_len: u8, name: [u8])` records.

use sk_ksim::errno::{Errno, KResult};

/// cext4 magic number in the superblock.
pub const MAGIC: u32 = 0x00CE_0474;

/// Block size (matches the device).
pub const BLOCK_SIZE: usize = 4096;

/// Bytes per on-disk inode.
pub const INODE_SIZE: usize = 64;

/// Inodes per inode-table block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;

/// Direct block pointers per inode.
pub const NDIRECT: usize = 9;

/// Block-pointer entries in the single-indirect block.
pub const NINDIRECT: usize = BLOCK_SIZE / 4;

/// Maximum file size in bytes.
pub const MAX_FILE_SIZE: u64 = ((NDIRECT + NINDIRECT) * BLOCK_SIZE) as u64;

/// Block number of the superblock.
pub const SB_BLOCK: u64 = 0;
/// Block number of the block bitmap.
pub const BLOCK_BITMAP: u64 = 1;
/// Block number of the inode bitmap.
pub const INODE_BITMAP: u64 = 2;
/// First block of the inode table.
pub const INODE_TABLE: u64 = 3;

/// The root directory's inode number (inode 0 is reserved/invalid).
pub const ROOT_INO: u64 = 1;

/// File-type values stored in the inode `mode` field.
pub const MODE_FREE: u16 = 0;
/// Regular file mode.
pub const MODE_REG: u16 = 1;
/// Directory mode.
pub const MODE_DIR: u16 = 2;

/// Parsed superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Magic; must equal [`MAGIC`].
    pub magic: u32,
    /// Total blocks on the device.
    pub total_blocks: u32,
    /// Number of inodes in the table.
    pub inode_count: u32,
    /// First data block.
    pub data_start: u32,
}

impl Superblock {
    /// Computes the layout for a device of `total_blocks` with
    /// `inode_count` inodes.
    pub fn design(total_blocks: u64, inode_count: u32) -> KResult<Superblock> {
        let table_blocks = (inode_count as usize).div_ceil(INODES_PER_BLOCK) as u64;
        let data_start = INODE_TABLE + table_blocks;
        if total_blocks <= data_start + 1 || total_blocks > (BLOCK_SIZE * 8) as u64 {
            return Err(Errno::EINVAL);
        }
        Ok(Superblock {
            magic: MAGIC,
            total_blocks: total_blocks as u32,
            inode_count,
            data_start: data_start as u32,
        })
    }

    /// Serializes into the first bytes of a superblock image.
    pub fn encode(&self, block: &mut [u8]) {
        block[0..4].copy_from_slice(&self.magic.to_le_bytes());
        block[4..8].copy_from_slice(&self.total_blocks.to_le_bytes());
        block[8..12].copy_from_slice(&self.inode_count.to_le_bytes());
        block[12..16].copy_from_slice(&self.data_start.to_le_bytes());
    }

    /// Parses a superblock image, verifying the magic.
    pub fn decode(block: &[u8]) -> KResult<Superblock> {
        let sb = Superblock {
            magic: u32::from_le_bytes(block[0..4].try_into().expect("4 bytes")),
            total_blocks: u32::from_le_bytes(block[4..8].try_into().expect("4 bytes")),
            inode_count: u32::from_le_bytes(block[8..12].try_into().expect("4 bytes")),
            data_start: u32::from_le_bytes(block[12..16].try_into().expect("4 bytes")),
        };
        if sb.magic != MAGIC {
            return Err(Errno::EUCLEAN);
        }
        Ok(sb)
    }
}

/// Parsed on-disk inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskInode {
    /// [`MODE_FREE`], [`MODE_REG`], or [`MODE_DIR`].
    pub mode: u16,
    /// Hard-link count.
    pub nlink: u16,
    /// Size in bytes.
    pub size: u64,
    /// Modification time (simulated ns).
    pub mtime: u64,
    /// Direct block pointers (0 = hole/unallocated).
    pub direct: [u32; NDIRECT],
    /// Single-indirect block pointer (0 = none).
    pub indirect: u32,
}

impl DiskInode {
    /// A zeroed (free) inode.
    pub fn empty() -> DiskInode {
        DiskInode {
            mode: MODE_FREE,
            nlink: 0,
            size: 0,
            mtime: 0,
            direct: [0; NDIRECT],
            indirect: 0,
        }
    }

    /// Serializes into a 64-byte slot.
    pub fn encode(&self, slot: &mut [u8]) {
        slot[0..2].copy_from_slice(&self.mode.to_le_bytes());
        slot[2..4].copy_from_slice(&self.nlink.to_le_bytes());
        slot[4..8].copy_from_slice(&0u32.to_le_bytes()); // reserved
        slot[8..16].copy_from_slice(&self.size.to_le_bytes());
        slot[16..24].copy_from_slice(&self.mtime.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            let o = 24 + i * 4;
            slot[o..o + 4].copy_from_slice(&d.to_le_bytes());
        }
        slot[60..64].copy_from_slice(&self.indirect.to_le_bytes());
    }

    /// Parses a 64-byte slot.
    pub fn decode(slot: &[u8]) -> DiskInode {
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            let o = 24 + i * 4;
            *d = u32::from_le_bytes(slot[o..o + 4].try_into().expect("4 bytes"));
        }
        DiskInode {
            mode: u16::from_le_bytes(slot[0..2].try_into().expect("2 bytes")),
            nlink: u16::from_le_bytes(slot[2..4].try_into().expect("2 bytes")),
            size: u64::from_le_bytes(slot[8..16].try_into().expect("8 bytes")),
            mtime: u64::from_le_bytes(slot[16..24].try_into().expect("8 bytes")),
            direct,
            indirect: u32::from_le_bytes(slot[60..64].try_into().expect("4 bytes")),
        }
    }
}

/// Serializes a directory entry, appending to `out`.
pub fn dirent_encode(out: &mut Vec<u8>, ino: u64, name: &str) {
    out.extend_from_slice(&(ino as u32).to_le_bytes());
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
}

/// Parses all directory entries from a directory's content bytes.
///
/// `off_by_one` reproduces the injected parsing bug: the name length is
/// read one byte too long, corrupting every name (and, on the last entry,
/// reading past the buffer — which this decoder *detects* and reports as
/// `EUCLEAN`, the legacy world's "fs corruption" observable).
pub fn dirent_parse(content: &[u8], off_by_one: bool) -> KResult<Vec<(u64, String)>> {
    let mut entries = Vec::new();
    let mut off = 0usize;
    while off < content.len() {
        if off + 5 > content.len() {
            return Err(Errno::EUCLEAN);
        }
        let ino = u32::from_le_bytes(content[off..off + 4].try_into().expect("4 bytes")) as u64;
        let mut nlen = content[off + 4] as usize;
        if off_by_one {
            nlen += 1;
        }
        off += 5;
        if off + nlen > content.len() {
            return Err(Errno::EUCLEAN);
        }
        let name = String::from_utf8_lossy(&content[off..off + nlen]).into_owned();
        off += nlen;
        if ino != 0 {
            entries.push((ino, name));
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock::design(1024, 256).unwrap();
        assert_eq!(sb.data_start, 3 + 4); // 256 inodes / 64 per block
        let mut blk = vec![0u8; BLOCK_SIZE];
        sb.encode(&mut blk);
        assert_eq!(Superblock::decode(&blk).unwrap(), sb);
    }

    #[test]
    fn superblock_bad_magic_rejected() {
        let blk = vec![0u8; BLOCK_SIZE];
        assert_eq!(Superblock::decode(&blk), Err(Errno::EUCLEAN));
    }

    #[test]
    fn superblock_design_rejects_tiny_devices() {
        assert!(Superblock::design(4, 64).is_err());
        assert!(Superblock::design(40000, 64).is_err(), "bitmap limit");
    }

    #[test]
    fn inode_roundtrip() {
        let mut ino = DiskInode::empty();
        ino.mode = MODE_REG;
        ino.nlink = 2;
        ino.size = 123456;
        ino.mtime = 42;
        ino.direct[0] = 100;
        ino.direct[8] = 900;
        ino.indirect = 77;
        let mut slot = vec![0u8; INODE_SIZE];
        ino.encode(&mut slot);
        assert_eq!(DiskInode::decode(&slot), ino);
    }

    #[test]
    fn dirent_roundtrip() {
        let mut content = Vec::new();
        dirent_encode(&mut content, 5, "hello.txt");
        dirent_encode(&mut content, 9, "dir");
        let parsed = dirent_parse(&content, false).unwrap();
        assert_eq!(
            parsed,
            vec![(5, "hello.txt".to_string()), (9, "dir".to_string())]
        );
    }

    #[test]
    fn dirent_off_by_one_corrupts_or_overreads() {
        let mut content = Vec::new();
        dirent_encode(&mut content, 5, "ab");
        dirent_encode(&mut content, 6, "cd");
        // With the bug, the first name swallows a byte of the next record;
        // the final record then over-reads and the parser reports EUCLEAN.
        let r = dirent_parse(&content, true);
        match r {
            Err(e) => assert_eq!(e, Errno::EUCLEAN),
            Ok(entries) => assert_ne!(
                entries,
                vec![(5, "ab".to_string()), (6, "cd".to_string())],
                "bugged parse must not produce the correct entries"
            ),
        }
    }

    #[test]
    fn tombstoned_entries_skipped() {
        let mut content = Vec::new();
        dirent_encode(&mut content, 0, "dead");
        dirent_encode(&mut content, 3, "live");
        let parsed = dirent_parse(&content, false).unwrap();
        assert_eq!(parsed, vec![(3, "live".to_string())]);
    }

    #[test]
    fn geometry_constants_consistent() {
        assert_eq!(INODES_PER_BLOCK * INODE_SIZE, BLOCK_SIZE);
        assert_eq!(MAX_FILE_SIZE, (9 + 1024) * 4096);
    }
}
