//! # sk-bench — benchmark harness and figure reproduction
//!
//! Binaries (one per paper artifact; see DESIGN.md §4 for the index):
//!
//! - `fig1_landscape` — Figure 1: the safety-vs-LoC landscape, with this
//!   workspace's own crates measured from source and placed on it.
//! - `fig2_bugs` — Figure 2a/2b/2c from the calibrated CVE dataset.
//! - `tab_categorization` — the §2 42/35/23 CVE categorization.
//! - `tab_prevention_study` — the same split, measured empirically by
//!   running every bug class through the roadmap pipelines.
//!
//! Criterion benches (`benches/`):
//!
//! - `interface_overhead` — the cost ladder of the roadmap steps.
//! - `ownership_models` — the three §4.3 sharing models vs copying
//!   message passing.
//! - `fs_throughput` — cext4 vs rsfs vs rsfs+journal per operation.
//! - `netstack_overhead` — legacy vs modular socket layer.
//! - `shim_overhead` — operations crossing 0/1/2 shim boundaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;
use std::sync::Arc;

use sk_fs_legacy::{cext4_ops, BugKnobs, Cext4};
use sk_fs_safe::rsfs::{JournalMode, Rsfs};
use sk_ksim::block::{BlockDevice, RamDisk};
use sk_legacy::LegacyCtx;
use sk_vfs::shim::LegacyFsAdapter;

/// Builds a freshly formatted rsfs.
///
/// Mounted with a *disabled* lock registry: throughput benches measure
/// the uninstrumented hot path. The lockdep sections of `bench_report`
/// build their own enabled mounts.
pub fn make_rsfs(mode: JournalMode, blocks: u64) -> Rsfs {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(blocks));
    // A quarter-device log keeps the async pipeline off the pressure
    // threshold and out of wrap-forced checkpoints for the bench
    // workloads; the per-op rows see the same format.
    Rsfs::mkfs(&dev, 1024, (blocks / 4).max(64) as u32).expect("mkfs");
    Rsfs::mount_with_registry(dev, mode, sk_ksim::lock::LockRegistry::new_disabled())
        .expect("mount")
}

/// Builds a freshly formatted cext4 behind the legacy→modular shim.
pub fn make_cext4_adapter(blocks: u64) -> LegacyFsAdapter {
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(blocks));
    Cext4::mkfs(&dev, 1024).expect("mkfs");
    let ctx = LegacyCtx::new();
    let fs = Arc::new(Cext4::mount(dev, ctx.clone(), Arc::new(BugKnobs::none())).expect("mount"));
    LegacyFsAdapter::new(Arc::new(cext4_ops(fs)), ctx)
}

/// Counts non-empty, non-comment-only lines of `.rs` files under `dir`.
pub fn count_loc(dir: &Path) -> std::io::Result<u64> {
    let mut total = 0u64;
    if dir.is_file() {
        if dir.extension().map(|e| e == "rs").unwrap_or(false) {
            let text = std::fs::read_to_string(dir)?;
            total += text
                .lines()
                .filter(|l| {
                    let t = l.trim();
                    !t.is_empty() && !t.starts_with("//")
                })
                .count() as u64;
        }
        return Ok(total);
    }
    if dir.is_dir() {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            total += count_loc(&entry.path())?;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_vfs::modular::FileSystem;

    #[test]
    fn fixtures_build_and_serve() {
        let rs = make_rsfs(JournalMode::PerOp, 1024);
        let ino = rs.create(rs.root_ino(), "x").unwrap();
        assert!(rs.getattr(ino).is_ok());
        let cx = make_cext4_adapter(1024);
        let ino = cx.create(cx.root_ino(), "y").unwrap();
        assert!(cx.getattr(ino).is_ok());
    }

    #[test]
    fn loc_counter_counts_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let loc = count_loc(&here).unwrap();
        assert!(loc > 50, "got {loc}");
    }
}
