//! The empirical prevention study: §2's table, measured.
//!
//! Usage: `tab_prevention_study [instances_per_spec]` (default 5). Every
//! bug class in the catalog is instantiated and driven through the roadmap
//! pipelines (see `sk-faultgen`); the corpus-weighted result is compared
//! against the paper's 42/35/23.

use sk_faultgen::run_study;

fn main() {
    let instances: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("running the prevention study ({instances} trials per bug class)...\n");
    let report = run_study(instances);

    println!("== Per-class pipeline verification ==\n");
    println!(
        "{:<26} {:<9} {:<15} {:<15} trials",
        "bug class", "CWE", "measured", "expected"
    );
    println!("{:-<26} {:-<9} {:-<15} {:-<15} ------", "", "", "", "");
    for r in &report.specs {
        println!(
            "{:<26} {:<9} {:<15} {:<15} {}",
            r.name,
            r.cwe,
            format!("{:?}", r.measured),
            format!("{:?}", r.expected),
            r.trials
        );
        if let Some(note) = r.note {
            println!("    note: {note}");
        }
    }

    let (ty, fun, other) = report.percentages();
    println!(
        "\n== Corpus-weighted prevention table ({} records) ==\n",
        report.total
    );
    println!("{:<38} {:>7} {:>7}   paper", "category", "count", "pct");
    println!("{:-<38} {:->7} {:->7}   -----", "", "", "");
    println!(
        "{:<38} {:>7} {:>6.1}%   ~42%",
        "type + ownership safety (steps 2-3)", report.type_ownership, ty
    );
    println!(
        "{:<38} {:>7} {:>6.1}%   ~35%",
        "functional correctness (step 4)", report.functional, fun
    );
    println!(
        "{:<38} {:>7} {:>6.1}%   ~23%",
        "other causes", report.other, other
    );

    if report.mismatches.is_empty() {
        println!("\nall pipeline measurements agree with the paper's categorization");
    } else {
        println!("\nMISMATCHES:");
        for m in &report.mismatches {
            println!("  {m}");
        }
        std::process::exit(1);
    }
    println!(
        "\nJSON: {{\"total\":{},\"type_ownership\":{},\"functional\":{},\"other\":{}}}",
        report.total, report.type_ownership, report.functional, report.other
    );
}
