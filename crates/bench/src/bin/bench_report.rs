//! Benchmark report: measures the lock-striped buffer cache, the
//! sharded dcache, group commit, and vectored IO (`BENCH_storage.json`),
//! plus both socket-layer generations over clean and adversarial links
//! (`BENCH_net.json`), for EXPERIMENTS.md.
//!
//! Usage: `bench_report [--shards 1,8] [--threads N] [--out PATH]
//! [--net-out PATH]`
//!
//! Two kinds of numbers, clearly separated in the output:
//!
//! - **wall-clock** (`*_wall_ns`, `ops_per_sec`): real multi-threaded
//!   execution, the contention ablation — shard counts from `--shards`
//!   run the identical workload on one cache;
//! - **simulated** (`*_sim_ns`): deterministic device-model time from
//!   [`sk_ksim::time::SimClock`], which isolates seek/transfer effects
//!   (group-commit barrier counts, vectored-extent coalescing) from
//!   host noise.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use serde_json::Value;
use sk_bench::{make_cext4_adapter, make_rsfs};
use sk_fs_safe::rsfs::JournalMode;
use sk_ksim::block::{BlockDevice, RamDisk, BLOCK_SIZE};
use sk_ksim::buffer::BufferCache;
use sk_ksim::time::SimClock;
use sk_vfs::dcache::Dcache;
use sk_vfs::modular::{BatchOp, FileSystem};
use sk_vfs::ring::{Ring, RingReactor, RingThrottle};

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<String, Value>>(),
    )
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

/// Minimum wall time over `runs` repetitions. For short benchmarks every
/// perturbation (scheduler preemption, a neighbouring build) only ever
/// *adds* time, so the minimum is the lowest-variance estimator of the
/// code's own cost; a median of few samples still swings by 30% run to
/// run on a shared machine.
///
/// Every row in the report stamps which estimator produced it (and, for
/// the slow-flush sections, the modelled device flush latency): numbers
/// from different estimators are not comparable run to run, and an
/// unstamped row is exactly how a stale "140k" ends up next to a fresh
/// "132k" in the prose with no way to tell which methodology moved.
fn best_wall_ns(runs: usize, mut f: impl FnMut()) -> u64 {
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .min()
        .expect("at least one run")
}

/// Metadata-churn workload over one shared buffer cache, repeated for
/// each shard count: every op is a `getblk` miss (insert + LRU eviction
/// under the shard's exclusive lock) on a per-thread block range. This is
/// the path a create/delete storm drives; with one stripe all threads
/// serialize on a single write lock, with N stripes they don't.
fn bench_buffer_cache(shard_counts: &[usize], threads: usize) -> Value {
    const OPS_PER_THREAD: usize = 6_000;
    const RANGE_PER_THREAD: u64 = 512;
    let mut rows = Vec::new();
    for &shards in shard_counts {
        // Two variants per shard count. "evicting": capacity far below the
        // working set, so every op inserts and evicts under the shard's
        // write lock — the lock-contention worst case. "resident": capacity
        // covers the working set and a warm-up pass pre-faults it, so the
        // steady state is all hits — the read-lock fast path the hit
        // counter was previously never exercising.
        for resident in [false, true] {
            let dev: Arc<dyn BlockDevice> =
                Arc::new(RamDisk::new(threads as u64 * RANGE_PER_THREAD + 8));
            let capacity = if resident {
                threads * RANGE_PER_THREAD as usize + 64
            } else {
                64
            };
            let cache = Arc::new(BufferCache::with_shards(dev, capacity, shards));
            if resident {
                for blk in 0..threads as u64 * RANGE_PER_THREAD {
                    cache.getblk(blk).unwrap();
                }
            }
            let wall_ns = best_wall_ns(3, || {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let cache = Arc::clone(&cache);
                    handles.push(std::thread::spawn(move || {
                        let base = t as u64 * RANGE_PER_THREAD;
                        for i in 0..OPS_PER_THREAD {
                            let blk = base + (i as u64 % RANGE_PER_THREAD);
                            let buf = cache.getblk(blk).unwrap();
                            std::hint::black_box(buf.read(|d| d[0]));
                        }
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
            });
            let total_ops = (threads * OPS_PER_THREAD) as f64;
            let s = cache.stats();
            let variant = if resident { "resident" } else { "evicting" };
            rows.push(obj(vec![
                ("estimator", Value::String("min-of-3".into())),
                ("variant", Value::String(variant.to_string())),
                ("shards", num(shards as f64)),
                ("threads", num(threads as f64)),
                ("capacity", num(capacity as f64)),
                ("total_ops", num(total_ops)),
                ("wall_ns", num(wall_ns as f64)),
                ("ops_per_sec", num(total_ops / (wall_ns as f64 / 1e9))),
                ("hits", num(s.hits as f64)),
                ("misses", num(s.misses as f64)),
                ("evictions", num(s.evictions as f64)),
            ]));
            println!(
                "buffer_cache shards={shards} {variant:<8}: {:>8.0}k ops/s ({} threads, \
                 {} hits / {} misses)",
                total_ops / (wall_ns as f64 / 1e9) / 1e3,
                threads,
                s.hits,
                s.misses
            );
        }
    }
    Value::Array(rows)
}

/// Same ablation for the dcache: path-component lookups are short
/// critical sections on a Mutex, so striping is the whole ballgame.
fn bench_dcache(shard_counts: &[usize], threads: usize) -> Value {
    const OPS_PER_THREAD: usize = 20_000;
    const NAMES_PER_THREAD: u64 = 32;
    let mut rows = Vec::new();
    for &shards in shard_counts {
        let dcache = Arc::new(Dcache::with_shards(
            threads * NAMES_PER_THREAD as usize,
            shards,
        ));
        for t in 0..threads as u64 {
            for i in 0..NAMES_PER_THREAD {
                dcache.insert(t, &format!("n{i}"), t * 100 + i);
            }
        }
        let wall_ns = best_wall_ns(3, || {
            let mut handles = Vec::new();
            for t in 0..threads as u64 {
                let dcache = Arc::clone(&dcache);
                handles.push(std::thread::spawn(move || {
                    let names: Vec<String> =
                        (0..NAMES_PER_THREAD).map(|i| format!("n{i}")).collect();
                    for i in 0..OPS_PER_THREAD {
                        let name = &names[(i * 13) % NAMES_PER_THREAD as usize];
                        std::hint::black_box(dcache.get(t, name));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        let total_ops = (threads * OPS_PER_THREAD) as f64;
        rows.push(obj(vec![
            ("estimator", Value::String("min-of-3".into())),
            ("shards", num(shards as f64)),
            ("threads", num(threads as f64)),
            ("total_ops", num(total_ops)),
            ("wall_ns", num(wall_ns as f64)),
            ("ops_per_sec", num(total_ops / (wall_ns as f64 / 1e9))),
        ]));
        println!(
            "dcache       shards={shards}: {:>8.0}k ops/s ({} threads)",
            total_ops / (wall_ns as f64 / 1e9) / 1e3,
            threads
        );
    }
    Value::Array(rows)
}

/// Single-threaded ops/sec per file system — the fs_throughput series
/// (cext4 vs rsfs vs rsfs+journal) in report form.
fn bench_fs_throughput() -> Value {
    const FILES: usize = 128;
    let payload = vec![0xA5u8; 1024];
    let mut rows = Vec::new();
    // The async row ends each run with an fsync so its number includes
    // the deferred commit cost — it is not allowed to win by leaving the
    // running transaction in memory. fsync (commit, no checkpoint) is the
    // durability level the per-op rows pay on every single op.
    let mut run = |label: &str, fs: &dyn FileSystem, fsync_at_end: bool| {
        let root = fs.root_ino();
        // 7 repetitions: the fs rows are short enough that a stray
        // scheduler hiccup would otherwise dominate a short sample.
        let wall_ns = best_wall_ns(7, || {
            for i in 0..FILES {
                let name = format!("f{i}");
                let ino = fs.create(root, &name).unwrap();
                fs.write(ino, 0, &payload).unwrap();
                let mut out = vec![0u8; 1024];
                fs.read(ino, 0, &mut out).unwrap();
                fs.unlink(root, &name).unwrap();
            }
            if fsync_at_end {
                fs.fsync(root).unwrap();
            }
        });
        let ops = (FILES * 4) as f64;
        rows.push(obj(vec![
            ("estimator", Value::String("min-of-7".into())),
            ("device", Value::String("ramdisk".into())),
            ("fs", Value::String(label.to_string())),
            ("ops", num(ops)),
            ("wall_ns", num(wall_ns as f64)),
            ("ops_per_sec", num(ops / (wall_ns as f64 / 1e9))),
        ]));
        println!(
            "fs_throughput {label:<18}: {:>8.1}k ops/s",
            ops / (wall_ns as f64 / 1e9) / 1e3
        );
    };
    run("cext4", &make_cext4_adapter(4096), false);
    run("rsfs", &make_rsfs(JournalMode::None, 4096), false);
    run("rsfs+journal", &make_rsfs(JournalMode::PerOp, 4096), false);
    run(
        "rsfs+journal-async",
        &make_rsfs(JournalMode::Async, 4096),
        true,
    );
    Value::Array(rows)
}

/// Forwarding device whose `flush` costs real wall time — the storage
/// barrier a commit record pays on actual hardware. Group commit exists
/// to amortize exactly this.
struct SlowFlushDevice {
    inner: Arc<RamDisk>,
    flush_cost: std::time::Duration,
}

impl BlockDevice for SlowFlushDevice {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }
    fn read_block(&self, blkno: u64, buf: &mut [u8]) -> sk_ksim::errno::KResult<()> {
        self.inner.read_block(blkno, buf)
    }
    fn write_block(&self, blkno: u64, buf: &[u8]) -> sk_ksim::errno::KResult<()> {
        self.inner.write_block(blkno, buf)
    }
    fn read_blocks(&self, start: u64, count: usize, buf: &mut [u8]) -> sk_ksim::errno::KResult<()> {
        self.inner.read_blocks(start, count, buf)
    }
    fn write_blocks(&self, start: u64, count: usize, buf: &[u8]) -> sk_ksim::errno::KResult<()> {
        self.inner.write_blocks(start, count, buf)
    }
    fn flush(&self) -> sk_ksim::errno::KResult<()> {
        std::thread::sleep(self.flush_cost);
        self.inner.flush()
    }
    fn stats(&self) -> sk_ksim::block::DeviceStats {
        self.inner.stats()
    }
}

/// Group commit under concurrency: T threads write disjoint files through
/// one journaled rsfs on a device with a 50µs flush barrier. Reports both
/// wall time and the journal's own accounting — `batches < commits` is
/// the merge working; `barriers` tracks batches, not commits, which is
/// the whole point.
fn bench_group_commit(thread_counts: &[usize]) -> Value {
    const WRITES_PER_THREAD: usize = 48;
    let mut rows = Vec::new();
    for &threads in thread_counts {
        let ram = Arc::new(RamDisk::new(8192));
        let dev: Arc<dyn BlockDevice> = Arc::new(SlowFlushDevice {
            inner: ram,
            flush_cost: std::time::Duration::from_micros(50),
        });
        sk_fs_safe::rsfs::Rsfs::mkfs(&dev, 1024, 128).expect("mkfs");
        let fs = Arc::new(sk_fs_safe::rsfs::Rsfs::mount(dev, JournalMode::PerOp).expect("mount"));
        let root = fs.root_ino();
        let inos: Vec<u64> = (0..threads)
            .map(|t| fs.create(root, &format!("t{t}")).unwrap())
            .collect();
        let before = fs.journal().unwrap().stats();
        let payload = vec![0x5Au8; 512];
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for &ino in &inos {
            let fs = Arc::clone(&fs);
            let payload = payload.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..WRITES_PER_THREAD {
                    fs.write(ino, (i * 512) as u64, &payload).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let after = fs.journal().unwrap().stats();
        let commits = after.commits - before.commits;
        let batches = after.batches - before.batches;
        let barriers = after.barriers - before.barriers;
        let ns_per_commit = wall_ns as f64 / commits.max(1) as f64;
        rows.push(obj(vec![
            ("estimator", Value::String("single-run".into())),
            ("flush_cost_us", num(50.0)),
            ("threads", num(threads as f64)),
            ("commits", num(commits as f64)),
            ("batches", num(batches as f64)),
            ("merge_factor", num(commits as f64 / batches.max(1) as f64)),
            ("barriers", num(barriers as f64)),
            ("wall_ns", num(wall_ns as f64)),
            ("ns_per_commit", num(ns_per_commit)),
        ]));
        println!(
            "group_commit threads={threads}: {commits} commits in {batches} batches \
             (merge ×{:.2}, {barriers} barriers, {:.0} µs/commit)",
            commits as f64 / batches.max(1) as f64,
            ns_per_commit / 1e3
        );
    }
    Value::Array(rows)
}

/// Commit-latency ablation for the async pipeline: the identical
/// create+write sequence on a device with a 50µs flush barrier, once in
/// per-op mode (every op pays the barrier before returning) and once in
/// async mode (ops stage into the running transaction; the only barriers
/// are log-pressure commits and the final fsync). The row records both
/// the op-path latency and the price of the durability point itself.
fn bench_async_commit() -> Value {
    const OPS: usize = 192;
    let mut rows = Vec::new();
    for (label, mode) in [
        ("per-op", JournalMode::PerOp),
        ("async", JournalMode::Async),
    ] {
        // Min-of-7 like every other fs row (a fresh fs per repetition —
        // the workload is a create storm, so it cannot re-run in place);
        // the reported fsync cost and journal accounting come from the
        // same repetition that produced the minimum, so the row stays
        // internally consistent.
        let mut best: Option<(u64, u64, sk_fs_safe::journal::JournalStats)> = None;
        for _ in 0..7 {
            let ram = Arc::new(RamDisk::new(8192));
            let dev: Arc<dyn BlockDevice> = Arc::new(SlowFlushDevice {
                inner: ram,
                flush_cost: std::time::Duration::from_micros(50),
            });
            sk_fs_safe::rsfs::Rsfs::mkfs(&dev, 1024, 128).expect("mkfs");
            let fs = sk_fs_safe::rsfs::Rsfs::mount(dev, mode).expect("mount");
            let root = fs.root_ino();
            let payload = vec![0x5Au8; 256];
            let t0 = Instant::now();
            let mut last = root;
            for i in 0..OPS {
                let ino = fs.create(root, &format!("f{i}")).unwrap();
                fs.write(ino, 0, &payload).unwrap();
                last = ino;
            }
            let op_wall_ns = t0.elapsed().as_nanos() as u64;
            let t1 = Instant::now();
            fs.fsync(last).unwrap();
            let fsync_ns = t1.elapsed().as_nanos() as u64;
            let stats = fs.journal().unwrap().stats();
            if best.as_ref().is_none_or(|(w, _, _)| op_wall_ns < *w) {
                best = Some((op_wall_ns, fsync_ns, stats));
            }
        }
        let (op_wall_ns, fsync_ns, stats) = best.expect("at least one repetition");
        let total_ops = (OPS * 2) as f64;
        let ns_per_op = op_wall_ns as f64 / total_ops;
        rows.push(obj(vec![
            ("estimator", Value::String("min-of-7".into())),
            ("flush_cost_us", num(50.0)),
            ("mode", Value::String(label.to_string())),
            ("ops", num(total_ops)),
            ("op_path_wall_ns", num(op_wall_ns as f64)),
            ("ns_per_op", num(ns_per_op)),
            ("fsync_ns", num(fsync_ns as f64)),
            ("barriers", num(stats.barriers as f64)),
            ("batches", num(stats.batches as f64)),
            ("stages", num(stats.stages as f64)),
            ("pressure_commits", num(stats.pressure_commits as f64)),
        ]));
        println!(
            "async_commit {label:<7}: {:.1} µs/op on the op path, fsync {:.0} µs \
             ({} barriers, {} batches, {} staged, {} pressure commits)",
            ns_per_op / 1e3,
            fsync_ns as f64 / 1e3,
            stats.barriers,
            stats.batches,
            stats.stages,
            stats.pressure_commits
        );
    }
    Value::Array(rows)
}

/// One op of the mixed ring workload: per 8-op cycle, one create, three
/// writes, two reads, one unlink, one fsync. All data ops target the
/// client's pre-made base file, so a client can keep a window of SQEs in
/// flight without data dependencies between them. The unlink targets the
/// file created in the cycle *before last* (12 ops earlier — beyond the
/// in-flight window), so its create has completed before the unlink is
/// even submitted: with N work-stealing reactors, batches execute out of
/// submission order, and a shorter gap would race an unlink past its own
/// create. The first cycle (and each repetition's last created file,
/// which the driver cleans up untimed) substitutes a read. `run` keys
/// names so repetitions of the min-of-N estimator never collide.
fn ring_workload_op(run: usize, client: usize, base: u64, dir: u64, k: usize) -> BatchOp {
    match k % 8 {
        0 => BatchOp::Create {
            dir,
            name: format!("r{run}c{client}o{k}"),
        },
        4 if k >= 12 => BatchOp::Unlink {
            dir,
            name: format!("r{run}c{client}o{}", k - 12),
        },
        7 => BatchOp::Fsync { ino: base },
        2 | 4 | 6 => BatchOp::Read {
            ino: base,
            off: ((k % 4) * 1024) as u64,
            buf: vec![0u8; 1024],
        },
        _ => BatchOp::Write {
            ino: base,
            off: ((k % 4) * 1024) as u64,
            data: vec![client as u8; 1024],
        },
    }
}

/// Names `ring_workload_op` leaves behind after a full `ops`-op run —
/// the tail creates whose unlink cycle never came. Unlinked between
/// repetitions, off the clock.
fn ring_workload_leftovers(run: usize, client: usize, ops: usize) -> Vec<String> {
    (0..ops)
        .filter(|k| k % 8 == 0 && k + 12 >= ops)
        .map(|k| format!("r{run}c{client}o{k}"))
        .collect()
}

fn latency_row(mut lats_ns: Vec<u64>) -> (f64, f64, f64) {
    lats_ns.sort_unstable();
    let pick = |q: f64| lats_ns[((lats_ns.len() - 1) as f64 * q) as usize] as f64 / 1e3;
    let mean = lats_ns.iter().sum::<u64>() as f64 / lats_ns.len() as f64 / 1e3;
    (pick(0.5), pick(0.99), mean)
}

/// The tentpole measurement: typed submission/completion rings vs
/// per-call ingestion — the identical mixed create/write/read/fsync
/// stream from 128 concurrent clients, swept over reactors × ring
/// depth. Each client keeps a window of 8 SQEs in flight; op latency is
/// measured submit→CQE *including* any time blocked on a full ring,
/// which is exactly what a caller observes — structural backpressure
/// shows up as p99, not as a dropped sample. The per-call row runs the
/// same 128 threads calling the `FileSystem` methods directly: that is
/// the baseline the ring has to beat. Every row is min-of-7 (the ring
/// and reactor pool stay up across repetitions; each repetition keys
/// its file names by run index and cleans its leftovers off the clock),
/// and the reported percentiles come from the same repetition that
/// produced the minimum wall time.
fn bench_ring_throughput(reactor_counts: &[usize], depths: &[usize]) -> Value {
    const CLIENTS: usize = 128;
    const OPS_EACH: usize = 64;
    const WINDOW: usize = 8;
    const RUNS: usize = 7;
    let mut rows = Vec::new();

    let setup = || {
        let fs = Arc::new(make_rsfs(JournalMode::Async, 16384));
        let root = fs.root_ino();
        // Each client works in its own directory: name ops (create/
        // unlink) serialize on the directory inode's op stripe, so
        // funneling all 128 clients through the root would pin ~25% of
        // the stream to one stripe no matter how many reactors run.
        let dirs: Vec<u64> = (0..CLIENTS)
            .map(|c| fs.mkdir(root, &format!("d{c}")).unwrap())
            .collect();
        let bases: Vec<u64> = (0..CLIENTS)
            .map(|c| fs.create(dirs[c], &format!("base{c}")).unwrap())
            .collect();
        fs.sync().unwrap();
        (fs, dirs, bases)
    };
    let total_ops = (CLIENTS * OPS_EACH) as f64;

    // Per-call baseline: direct trait calls, one thread per client.
    let (fs, dirs, bases) = setup();
    let mut best: Option<(u64, Vec<u64>)> = None;
    for run in 0..RUNS {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let fs = Arc::clone(&fs);
                let base = bases[c];
                let dir = dirs[c];
                std::thread::spawn(move || {
                    let mut lats = Vec::with_capacity(OPS_EACH);
                    for k in 0..OPS_EACH {
                        let t = Instant::now();
                        match ring_workload_op(run, c, base, dir, k) {
                            BatchOp::Create { dir, name } => {
                                fs.create(dir, &name).unwrap();
                            }
                            BatchOp::Unlink { dir, name } => {
                                fs.unlink(dir, &name).unwrap();
                            }
                            BatchOp::Fsync { ino } => fs.fsync(ino).unwrap(),
                            BatchOp::Read { ino, off, mut buf } => {
                                fs.read(ino, off, &mut buf).unwrap();
                            }
                            BatchOp::Write { ino, off, data } => {
                                fs.write(ino, off, &data).unwrap();
                            }
                        }
                        lats.push(t.elapsed().as_nanos() as u64);
                    }
                    lats
                })
            })
            .collect();
        let mut lats = Vec::new();
        for h in handles {
            lats.extend(h.join().unwrap());
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        for (c, &dir) in dirs.iter().enumerate() {
            for name in ring_workload_leftovers(run, c, OPS_EACH) {
                fs.unlink(dir, &name).unwrap();
            }
        }
        if best.as_ref().is_none_or(|(w, _)| wall_ns < *w) {
            best = Some((wall_ns, lats));
        }
    }
    let (wall_ns, lats) = best.expect("at least one repetition");
    let baseline_ops_per_sec = total_ops / (wall_ns as f64 / 1e9);
    let (p50_us, p99_us, mean_us) = latency_row(lats);
    rows.push(obj(vec![
        ("estimator", Value::String("min-of-7".into())),
        ("device", Value::String("ramdisk".into())),
        ("mode", Value::String("per-call".into())),
        ("clients", num(CLIENTS as f64)),
        ("ops", num(total_ops)),
        ("wall_ns", num(wall_ns as f64)),
        ("ops_per_sec", num(baseline_ops_per_sec)),
        ("p50_us", num(p50_us)),
        ("p99_us", num(p99_us)),
        ("mean_us", num(mean_us)),
    ]));
    println!(
        "ring_throughput per-call : {:>8.1}k ops/s, p99 {p99_us:.0} µs ({CLIENTS} clients)",
        baseline_ops_per_sec / 1e3
    );

    for &reactors in reactor_counts {
        for &depth in depths {
            let (fs, dirs, bases) = setup();
            let ring = Arc::new(Ring::new(fs.lock_registry(), depth));
            let fs_dyn: Arc<dyn FileSystem> = Arc::clone(&fs) as Arc<dyn FileSystem>;
            let pressure_fs = Arc::clone(&fs);
            let relieve_fs = Arc::clone(&fs);
            let pool = RingReactor::spawn_pool(
                Arc::clone(&ring),
                fs_dyn,
                Some(Arc::new(RingThrottle {
                    pressure: Box::new(move || {
                        pressure_fs.journal().map_or(0.0, |j| j.log_pressure())
                    }),
                    relieve: Box::new(move || {
                        let _ = relieve_fs.commit_running();
                        let _ = relieve_fs.checkpoint(usize::MAX);
                    }),
                    threshold: 0.8,
                })),
                reactors,
            );
            let mut best: Option<(u64, Vec<u64>)> = None;
            for run in 0..RUNS {
                let t0 = Instant::now();
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|c| {
                        let ring = Arc::clone(&ring);
                        let base = bases[c];
                        let dir = dirs[c];
                        std::thread::spawn(move || {
                            let mut lats = Vec::with_capacity(OPS_EACH);
                            let mut inflight = std::collections::VecDeque::new();
                            for k in 0..OPS_EACH {
                                if inflight.len() == WINDOW {
                                    let (ticket, t): (u64, Instant) = inflight.pop_front().unwrap();
                                    ring.wait(ticket);
                                    lats.push(t.elapsed().as_nanos() as u64);
                                }
                                let t = Instant::now();
                                let ticket = ring
                                    .submit(ring_workload_op(run, c, base, dir, k))
                                    .expect("ring live");
                                inflight.push_back((ticket, t));
                            }
                            for (ticket, t) in inflight {
                                ring.wait(ticket);
                                lats.push(t.elapsed().as_nanos() as u64);
                            }
                            lats
                        })
                    })
                    .collect();
                let mut lats = Vec::new();
                for h in handles {
                    lats.extend(h.join().unwrap());
                }
                let wall_ns = t0.elapsed().as_nanos() as u64;
                for (c, &dir) in dirs.iter().enumerate() {
                    for name in ring_workload_leftovers(run, c, OPS_EACH) {
                        fs.unlink(dir, &name).unwrap();
                    }
                }
                if best.as_ref().is_none_or(|(w, _)| wall_ns < *w) {
                    best = Some((wall_ns, lats));
                }
            }
            for r in pool {
                r.join();
            }
            let (wall_ns, lats) = best.expect("at least one repetition");
            let stats = ring.stats();
            let ops_per_sec = total_ops / (wall_ns as f64 / 1e9);
            let (p50_us, p99_us, mean_us) = latency_row(lats);
            // Ring counters accumulate over all repetitions; the batch
            // grain is a property of the configuration, not of one run.
            let avg_batch = stats.completed as f64 / stats.batches.max(1) as f64;
            rows.push(obj(vec![
                ("estimator", Value::String("min-of-7".into())),
                ("device", Value::String("ramdisk".into())),
                ("mode", Value::String("ring".into())),
                ("reactors", num(reactors as f64)),
                ("depth", num(depth as f64)),
                ("clients", num(CLIENTS as f64)),
                ("ops", num(total_ops)),
                ("wall_ns", num(wall_ns as f64)),
                ("ops_per_sec", num(ops_per_sec)),
                ("vs_per_call", num(ops_per_sec / baseline_ops_per_sec)),
                ("p50_us", num(p50_us)),
                ("p99_us", num(p99_us)),
                ("mean_us", num(mean_us)),
                ("batches", num(stats.batches as f64)),
                ("avg_batch_ops", num(avg_batch)),
                ("sq_full_blocks", num(stats.sq_full_blocks as f64)),
                ("throttle_stalls", num(stats.throttle_stalls as f64)),
            ]));
            println!(
                "ring_throughput reactors={reactors} depth={depth:<4}: {:>8.1}k ops/s \
                 (×{:.2} vs per-call), p50 {p50_us:.0} µs, p99 {p99_us:.0} µs, \
                 avg batch {avg_batch:.1} ops",
                ops_per_sec / 1e3,
                ops_per_sec / baseline_ops_per_sec
            );
        }
    }
    Value::Array(rows)
}

/// Vectored IO on a seeking device, in deterministic simulated time: 64
/// scattered single-block writes vs the same bytes as one coalesced
/// extent via `write_blocks`.
fn bench_vectored_io() -> Value {
    let scattered_sim_ns = {
        let clock = Arc::new(SimClock::new());
        let mut disk = RamDisk::with_geometry(512, BLOCK_SIZE, Arc::clone(&clock));
        disk.set_seek_model(1_000);
        let payload = vec![7u8; BLOCK_SIZE];
        let t0 = clock.now_ns();
        for i in 0..64u64 {
            // Alternate ends of the disk: every write pays a seek.
            let blk = if i % 2 == 0 { i } else { 400 + i };
            disk.write_block(blk, &payload).unwrap();
        }
        clock.now_ns() - t0
    };
    let coalesced_sim_ns = {
        let clock = Arc::new(SimClock::new());
        let mut disk = RamDisk::with_geometry(512, BLOCK_SIZE, Arc::clone(&clock));
        disk.set_seek_model(1_000);
        let payload = vec![7u8; BLOCK_SIZE * 64];
        let t0 = clock.now_ns();
        disk.write_blocks(8, 64, &payload).unwrap();
        clock.now_ns() - t0
    };
    println!(
        "vectored_io: scattered {scattered_sim_ns} ns sim, coalesced {coalesced_sim_ns} ns sim \
         (×{:.1})",
        scattered_sim_ns as f64 / coalesced_sim_ns.max(1) as f64
    );
    obj(vec![
        ("scattered_sim_ns", num(scattered_sim_ns as f64)),
        ("coalesced_sim_ns", num(coalesced_sim_ns as f64)),
        (
            "speedup",
            num(scattered_sim_ns as f64 / coalesced_sim_ns.max(1) as f64),
        ),
    ])
}

/// The lockdep section: the eight-writer storage stress re-run with the
/// whole-system lock registry live (buffer shards, journal classes, the
/// per-op lock, inode locks), reporting the acquires-after graph the run
/// built, the cycle count, and the top contended classes. Any ordering
/// finding fails the report with a nonzero exit — this is the CI gate
/// against new lock-order bugs on the storage hot path.
/// Blackout-window measurement for the live-replacement protocol: for
/// each workload thread count, a mixed read/write/stat workload hammers
/// the VFS while two back-to-back [`Migrator`] swaps run (cext4 → rsfs,
/// then rsfs → a fresh cext4). Reported per row: the gate-closed window
/// in µs per swap (single-shot wall clock — a swap is not repeatable on
/// the same state), ops completed, and `failed_ops`, which the drift
/// gate pins to zero: a blackout is a *stall*, never an error. Workload
/// seeds derive from the one stamped engine seed.
fn bench_hot_swap(thread_counts: &[usize]) -> Value {
    use sk_core::modularity::Registry;
    use sk_ksim::scenario::{subsys, ScenarioEngine};
    use sk_vfs::migrate::Migrator;
    use sk_vfs::path::{Vfs, FS_INTERFACE};

    const ENGINE_SEED: u64 = 42;
    const FILES_PER_DIR: usize = 24;

    let mut rows = Vec::new();
    for &threads in thread_counts {
        let engine = ScenarioEngine::new(ENGINE_SEED);
        let ws = engine.stream(subsys::WORKLOAD);

        let registry = Registry::new();
        registry
            .register::<dyn FileSystem>(
                FS_INTERFACE,
                "cext4",
                Arc::new(make_cext4_adapter(8192)) as Arc<dyn FileSystem>,
            )
            .expect("register");
        let vfs = Arc::new(Vfs::mount(&registry).expect("mount vfs"));
        for d in 0..2 {
            vfs.mkdir(&format!("/d{d}")).unwrap();
            for f in 0..FILES_PER_DIR {
                let path = format!("/d{d}/f{f}");
                vfs.create(&path).unwrap();
                vfs.write_file(&path, 0, &vec![0xA5u8; 256]).unwrap();
            }
        }

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut workers = Vec::new();
        for _ in 0..threads {
            let vfs = Arc::clone(&vfs);
            let stop = Arc::clone(&stop);
            let mut x = ws.gen_u64() | 1;
            workers.push(std::thread::spawn(move || {
                let mut ops = 0u64;
                let mut failed = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let path = format!("/d{}/f{}", x % 2, (x >> 8) as usize % FILES_PER_DIR);
                    let r = match x % 4 {
                        0 => vfs.write_file(&path, 0, &x.to_le_bytes()).map(|_| ()),
                        1 => vfs.stat(&path).map(|_| ()),
                        _ => vfs.read_file(&path).map(|_| ()),
                    };
                    if r.is_err() {
                        failed += 1;
                    }
                    ops += 1;
                }
                (ops, failed)
            }));
        }

        std::thread::sleep(std::time::Duration::from_millis(10));
        let fwd = Migrator::new(&vfs, &registry)
            .swap("rsfs", Arc::new(make_rsfs(JournalMode::PerOp, 8192)))
            .expect("forward swap");
        std::thread::sleep(std::time::Duration::from_millis(10));
        let back = Migrator::new(&vfs, &registry)
            .swap(
                "cext4",
                Arc::new(make_cext4_adapter(8192)) as Arc<dyn FileSystem>,
            )
            .expect("backward swap");
        std::thread::sleep(std::time::Duration::from_millis(10));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);

        let (mut ops, mut failed) = (0u64, 0u64);
        for w in workers {
            let (o, f) = w.join().unwrap();
            ops += o;
            failed += f;
        }
        let us = |ns: u64| ns as f64 / 1_000.0;
        rows.push(obj(vec![
            ("threads", num(threads as f64)),
            ("swaps", num(2.0)),
            ("ops_completed", num(ops as f64)),
            ("failed_ops", num(failed as f64)),
            ("blackout_us_forward", num(us(fwd.blackout_ns))),
            ("blackout_us_backward", num(us(back.blackout_ns))),
            (
                "blackout_us_max",
                num(us(fwd.blackout_ns.max(back.blackout_ns))),
            ),
            (
                "blocked_ops",
                num((fwd.blocked_ops + back.blocked_ops) as f64),
            ),
            (
                "copied_files",
                num((fwd.copied_files + back.copied_files) as f64),
            ),
            (
                "remapped_dentries",
                num((fwd.remapped_dentries + back.remapped_dentries) as f64),
            ),
        ]));
        println!(
            "hot_swap threads={threads}: blackout fwd {:.0}us / back {:.0}us, \
             {ops} ops, {failed} failed",
            us(fwd.blackout_ns),
            us(back.blackout_ns)
        );
    }
    obj(vec![
        ("engine_seed", num(ENGINE_SEED as f64)),
        ("estimator", Value::String("single_shot_wall".into())),
        ("per_threads", Value::Array(rows)),
    ])
}

fn bench_lockdep(threads: usize) -> Value {
    const FILES_PER_THREAD: usize = 24;
    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(16384));
    sk_fs_safe::rsfs::Rsfs::mkfs(&dev, 1024, 128).expect("mkfs");
    let fs = Arc::new(sk_fs_safe::rsfs::Rsfs::mount(dev, JournalMode::PerOp).expect("mount"));
    let root = fs.root_ino();
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            for i in 0..FILES_PER_THREAD {
                let name = format!("t{t}f{i}");
                let ino = fs.create(root, &name).unwrap();
                fs.write(ino, 0, &vec![(t + i) as u8; 700]).unwrap();
                let mut buf = vec![0u8; 700];
                fs.read(ino, 0, &mut buf).unwrap();
                if i % 2 == 0 {
                    fs.unlink(root, &name).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    fs.sync().unwrap();
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let reg = fs.lock_registry();
    let violations = reg.violations();
    let mut stats = reg.class_stats();
    stats.sort_by_key(|s| std::cmp::Reverse((s.contended, s.acquisitions)));
    let top: Vec<Value> = stats
        .iter()
        .take(5)
        .map(|s| {
            obj(vec![
                ("class", Value::String(s.name.to_string())),
                ("acquisitions", num(s.acquisitions as f64)),
                ("contended", num(s.contended as f64)),
                ("held_ns", num(s.held_ns as f64)),
            ])
        })
        .collect();
    let edges: Vec<Value> = reg
        .edges()
        .iter()
        .map(|(a, b)| Value::String(format!("{a} -> {b}")))
        .collect();
    println!(
        "lockdep: {} classes, {} edges, {} cycles, {} violations ({threads} threads)",
        reg.class_count(),
        edges.len(),
        reg.cycles_found(),
        violations.len(),
    );
    for s in stats.iter().take(5) {
        println!(
            "  contention {:<14} {:>8} acq {:>6} contended {:>12} ns held",
            s.name, s.acquisitions, s.contended, s.held_ns
        );
    }
    if !violations.is_empty() {
        eprintln!("lockdep violations on the storage hot path: {violations:#?}");
        std::process::exit(1);
    }
    obj(vec![
        ("threads", num(threads as f64)),
        ("files_per_thread", num(FILES_PER_THREAD as f64)),
        ("wall_ns", num(wall_ns as f64)),
        ("classes", num(reg.class_count() as f64)),
        ("edges_observed", num(edges.len() as f64)),
        ("cycles_found", num(reg.cycles_found() as f64)),
        ("violations", num(violations.len() as f64)),
        ("acquires_after_edges", Value::Array(edges)),
        ("top_contention", Value::Array(top)),
    ])
}

/// The §4.4 crash-consistency check in report form: a fixed
/// create→write→sync schedule runs on each file-system generation over a
/// `CrashDevice`; every flush-barrier interval is exploded into
/// post-crash images under each [`CrashPolicy`] and every image is
/// recovered and judged. The same section exercises the disk fault
/// model: injected-fault counters (`io_errors`, `torn_writes`,
/// `corrupt_reads`) from an adversarial [`FaultyDisk`] run, and the
/// journal's abort behavior when a commit record write fails.
mod crashbench {
    use super::{num, obj, Value};
    use sk_core::spec::crash::{crash_images, CrashPolicy};
    use sk_core::spec::Refines;
    use sk_fs_legacy::{BugKnobs, Cext4};
    use sk_fs_safe::rsfs::{JournalMode, Rsfs};
    use sk_ksim::block::{
        BlockDevice, CrashDevice, DeviceStats, DiskFaultConfig, FaultyDisk, PendingWrite, RamDisk,
        BLOCK_SIZE,
    };
    use sk_ksim::errno::{Errno, KResult};
    use sk_legacy::LegacyCtx;
    use sk_vfs::modular::FileSystem;
    use std::sync::{Arc, Mutex};

    /// Captures the pending-write set at each flush barrier.
    struct Tap {
        inner: Arc<CrashDevice<Arc<RamDisk>>>,
        intervals: Mutex<Vec<Vec<PendingWrite>>>,
    }

    impl BlockDevice for Tap {
        fn num_blocks(&self) -> u64 {
            self.inner.num_blocks()
        }
        fn block_size(&self) -> usize {
            self.inner.block_size()
        }
        fn read_block(&self, blkno: u64, buf: &mut [u8]) -> KResult<()> {
            self.inner.read_block(blkno, buf)
        }
        fn write_block(&self, blkno: u64, buf: &[u8]) -> KResult<()> {
            self.inner.write_block(blkno, buf)
        }
        fn flush(&self) -> KResult<()> {
            self.intervals
                .lock()
                .unwrap()
                .push(self.inner.pending_writes());
            self.inner.flush()
        }
        fn stats(&self) -> DeviceStats {
            self.inner.stats()
        }
    }

    fn tapped_device() -> (Arc<RamDisk>, Arc<Tap>) {
        let ram = Arc::new(RamDisk::new(2048));
        let crash = Arc::new(CrashDevice::new(Arc::clone(&ram)));
        let tap = Arc::new(Tap {
            inner: crash,
            intervals: Mutex::new(Vec::new()),
        });
        (ram, tap)
    }

    fn policy_name(p: CrashPolicy) -> &'static str {
        match p {
            CrashPolicy::Prefixes => "prefixes",
            CrashPolicy::Subsets => "subsets",
            CrashPolicy::Torn => "torn",
        }
    }

    /// Explodes every barrier interval under `policy` and feeds each
    /// image to `judge`; returns (images_checked, failures).
    fn enumerate(
        base: Vec<u8>,
        intervals: &[Vec<PendingWrite>],
        policy: CrashPolicy,
        mut judge: impl FnMut(&[u8]) -> Result<(), String>,
    ) -> (usize, usize) {
        let mut checked = 0;
        let mut failures = 0;
        let mut applied = base;
        for interval in intervals {
            for img in crash_images(&applied, interval, BLOCK_SIZE, policy) {
                checked += 1;
                if judge(&img).is_err() {
                    failures += 1;
                }
            }
            for w in interval {
                let off = w.blkno as usize * BLOCK_SIZE;
                applied[off..off + BLOCK_SIZE].copy_from_slice(&w.data);
            }
        }
        (checked, failures)
    }

    /// rsfs judge: the image must mount, recover to a state the schedule
    /// passed through, and pass fsck.
    fn judge_rsfs(img: &[u8], models: &[sk_vfs::spec::FsModel]) -> Result<(), String> {
        let scratch = Arc::new(RamDisk::new(2048));
        scratch.restore(img).map_err(|e| e.to_string())?;
        let dev: Arc<dyn BlockDevice> = scratch;
        let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).map_err(|e| e.to_string())?;
        let m = fs.abstraction();
        if !models.contains(&m) {
            return Err("off-history state".into());
        }
        let report = sk_fs_safe::fsck(&*dev).map_err(|e| e.to_string())?;
        if report.is_clean() {
            Ok(())
        } else {
            Err(format!("{:?}", report.findings))
        }
    }

    /// cext4 judge (no journal, so a weak promise): the image either
    /// mounts and a bounded cycle-guarded walk terminates, or is refused
    /// with a clean errno.
    fn judge_cext4(img: &[u8]) -> Result<(), String> {
        let scratch = Arc::new(RamDisk::new(2048));
        scratch.restore(img).map_err(|e| e.to_string())?;
        let dev: Arc<dyn BlockDevice> = scratch;
        let fs = match Cext4::mount(dev, LegacyCtx::new(), Arc::new(BugKnobs::none())) {
            Ok(fs) => fs,
            Err(_) => return Ok(()),
        };
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![fs.root_ino()];
        let mut steps = 0usize;
        while let Some(dir) = stack.pop() {
            if !seen.insert(dir) {
                continue;
            }
            steps += 1;
            if steps > 10_000 {
                return Err("tree walk did not terminate".into());
            }
            if let Ok(entries) = fs.readdir_inner(dir) {
                for (_, ino) in entries {
                    stack.push(ino);
                }
            }
        }
        Ok(())
    }

    pub fn bench_crash_consistency() -> Value {
        let policies = [
            CrashPolicy::Prefixes,
            CrashPolicy::Subsets,
            CrashPolicy::Torn,
        ];
        let mut rows = Vec::new();

        for policy in policies {
            // rsfs+journal: create → write → sync (commit, commit,
            // checkpoint barriers), judged against the op history.
            let (ram, tap) = tapped_device();
            let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
            Rsfs::mkfs(&tap_dyn, 128, 64).expect("mkfs");
            let base = ram.snapshot();
            tap.intervals.lock().unwrap().clear();
            let fs = Rsfs::mount(tap_dyn, JournalMode::PerOp).expect("mount");
            let mut models = vec![fs.abstraction()];
            let ino = fs.create(fs.root_ino(), "bench").unwrap();
            models.push(fs.abstraction());
            fs.write(ino, 0, &vec![0x5Au8; BLOCK_SIZE + 100]).unwrap();
            models.push(fs.abstraction());
            fs.sync().unwrap();
            let intervals = tap.intervals.lock().unwrap().clone();
            let (checked, failures) =
                enumerate(base, &intervals, policy, |img| judge_rsfs(img, &models));
            println!(
                "crash_consistency rsfs+journal {:<8}: {checked} images, {failures} failures",
                policy_name(policy)
            );
            rows.push(obj(vec![
                ("fs", Value::String("rsfs+journal".into())),
                ("policy", Value::String(policy_name(policy).into())),
                ("barrier_intervals", num(intervals.len() as f64)),
                ("images_checked", num(checked as f64)),
                ("recovery_failures", num(failures as f64)),
            ]));

            // cext4: the same schedule shape, held to the weak judge.
            let (ram, tap) = tapped_device();
            let tap_dyn: Arc<dyn BlockDevice> = Arc::clone(&tap) as Arc<dyn BlockDevice>;
            Cext4::mkfs(&tap_dyn, 128).expect("mkfs");
            let base = ram.snapshot();
            tap.intervals.lock().unwrap().clear();
            let fs =
                Cext4::mount(tap_dyn, LegacyCtx::new(), Arc::new(BugKnobs::none())).expect("mount");
            let root = fs.root_ino();
            let p = fs.create_errptr(root, "bench", 0o100644).check().unwrap();
            let ino = fs
                .ctx()
                .vp_take::<sk_vfs::inode::InodeNo>(p, "bench")
                .unwrap();
            fs.write_range(ino, 0, &vec![0x5Au8; BLOCK_SIZE + 100])
                .unwrap();
            fs.sync_inner().unwrap();
            let intervals = tap.intervals.lock().unwrap().clone();
            let (checked, failures) = enumerate(base, &intervals, policy, judge_cext4);
            println!(
                "crash_consistency cext4        {:<8}: {checked} images, {failures} failures",
                policy_name(policy)
            );
            rows.push(obj(vec![
                ("fs", Value::String("cext4".into())),
                ("policy", Value::String(policy_name(policy).into())),
                ("barrier_intervals", num(intervals.len() as f64)),
                ("images_checked", num(checked as f64)),
                ("recovery_failures", num(failures as f64)),
            ]));
        }

        // Adversarial disk-fault soak: raw FaultyDisk IO at the
        // adversarial rates, reporting the injected-fault counters.
        let faulty = FaultyDisk::new(RamDisk::new(256), DiskFaultConfig::adversarial(), 0xD15C);
        let payload = vec![0xA5u8; BLOCK_SIZE];
        let mut ok_ops = 0u64;
        let mut failed_ops = 0u64;
        for i in 0..2_000u64 {
            let blk = i % 256;
            let r = if i % 3 == 0 {
                let mut buf = vec![0u8; BLOCK_SIZE];
                faulty.read_block(blk, &mut buf)
            } else if i % 17 == 0 {
                faulty.flush()
            } else {
                faulty.write_block(blk, &payload)
            };
            match r {
                Ok(()) => ok_ops += 1,
                Err(_) => failed_ops += 1,
            }
        }
        let inj = faulty.injected();
        println!(
            "disk_faults: {ok_ops} ok / {failed_ops} failed ops, {} EIO, {} torn, {} corrupt",
            inj.io_errors, inj.torn_writes, inj.corrupt_reads
        );
        let disk_faults = obj(vec![
            ("ops_ok", num(ok_ops as f64)),
            ("ops_failed", num(failed_ops as f64)),
            ("injected_io_errors", num(inj.io_errors as f64)),
            ("injected_torn_writes", num(inj.torn_writes as f64)),
            ("injected_corrupt_reads", num(inj.corrupt_reads as f64)),
        ]);

        // Journal abort under a mid-commit write error: the op fails, the
        // journal wedges read-only, and remount recovers the prefix.
        let faulty = Arc::new(FaultyDisk::new(
            RamDisk::new(1024),
            DiskFaultConfig::default(),
            7,
        ));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
        Rsfs::mkfs(&dev, 128, 64).expect("mkfs");
        let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).expect("mount");
        fs.create(fs.root_ino(), "a").unwrap();
        faulty.fail_nth_write(0);
        let op_failed = fs.create(fs.root_ino(), "b").is_err();
        let aborted = fs.journal().map(|j| j.is_aborted()).unwrap_or(false);
        let erofs = fs.create(fs.root_ino(), "c") == Err(Errno::EROFS);
        drop(fs);
        let fs = Rsfs::mount(dev, JournalMode::PerOp).expect("remount");
        let recovered = fs.lookup(fs.root_ino(), "a").is_ok()
            && fs.lookup(fs.root_ino(), "b") == Err(Errno::ENOENT);
        println!(
            "journal_abort: op_failed={op_failed} aborted={aborted} erofs={erofs} \
             remount_recovered={recovered}"
        );
        let journal_abort = obj(vec![
            ("op_failed", Value::Bool(op_failed)),
            ("journal_aborted", Value::Bool(aborted)),
            ("subsequent_op_erofs", Value::Bool(erofs)),
            ("remount_recovers_prefix", Value::Bool(recovered)),
        ]);

        obj(vec![
            ("enumeration", Value::Array(rows)),
            ("disk_faults", disk_faults),
            ("journal_abort", journal_abort),
        ])
    }
}

/// The netstack soak in report form: one socket-layer generation pushes a
/// fixed byte stream over a link profile; the row records how hard the
/// TCP hardening had to work to get it across.
mod netbench {
    use super::{num, obj, Value};
    use sk_core::modularity::Registry;
    use sk_ksim::scenario::ScenarioEngine;
    use sk_ksim::time::SimClock;
    use sk_legacy::LegacyCtx;
    use sk_netstack::fault::{FaultConfig, FaultyLink};
    use sk_netstack::legacy_stack::LegacyStack;
    use sk_netstack::modular_stack::{register_families, ModularStack};
    use sk_netstack::packet::proto;
    use sk_netstack::tcp::{TcpCounters, DEFAULT_RTO_NS};
    use sk_netstack::wire::Side;
    use std::sync::Arc;
    use std::time::Instant;

    /// The least common denominator of the two socket layers — only
    /// socket creation differs between generations.
    trait NetStack {
        fn tcp_socket(&self, port: u16) -> u64;
        fn listen(&self, fd: u64);
        fn listen_backlog(&self, fd: u64, backlog: usize);
        fn accept(&self, fd: u64) -> Option<u64>;
        fn connect(&self, fd: u64, port: u16);
        fn try_send(&self, fd: u64, dst: u16, data: &[u8]) -> bool;
        fn recv(&self, fd: u64) -> Vec<u8>;
        fn pump(&self);
        fn tick(&self);
        fn conn_failed(&self, fd: u64) -> bool;
        fn counters(&self, fd: u64) -> TcpCounters;
    }

    impl NetStack for LegacyStack {
        fn tcp_socket(&self, port: u16) -> u64 {
            self.socket(proto::TCP, port).unwrap()
        }
        fn listen(&self, fd: u64) {
            LegacyStack::listen(self, fd).unwrap()
        }
        fn listen_backlog(&self, fd: u64, backlog: usize) {
            LegacyStack::listen_backlog(self, fd, backlog).unwrap()
        }
        fn accept(&self, fd: u64) -> Option<u64> {
            LegacyStack::accept(self, fd).unwrap()
        }
        fn connect(&self, fd: u64, port: u16) {
            LegacyStack::connect(self, fd, port).unwrap()
        }
        fn try_send(&self, fd: u64, dst: u16, data: &[u8]) -> bool {
            LegacyStack::send(self, fd, dst, data).is_ok()
        }
        fn recv(&self, fd: u64) -> Vec<u8> {
            LegacyStack::recv(self, fd).unwrap_or_default()
        }
        fn pump(&self) {
            LegacyStack::pump(self).unwrap();
        }
        fn tick(&self) {
            LegacyStack::tick(self)
        }
        fn conn_failed(&self, fd: u64) -> bool {
            LegacyStack::conn_failed(self, fd).unwrap_or(false)
        }
        fn counters(&self, fd: u64) -> TcpCounters {
            self.tcp_counters(fd).unwrap_or_default()
        }
    }

    impl NetStack for ModularStack {
        fn tcp_socket(&self, port: u16) -> u64 {
            self.socket("tcp", port).unwrap()
        }
        fn listen(&self, fd: u64) {
            ModularStack::listen(self, fd).unwrap()
        }
        fn listen_backlog(&self, fd: u64, backlog: usize) {
            ModularStack::listen_backlog(self, fd, backlog).unwrap()
        }
        fn accept(&self, fd: u64) -> Option<u64> {
            ModularStack::accept(self, fd).unwrap()
        }
        fn connect(&self, fd: u64, port: u16) {
            ModularStack::connect(self, fd, port).unwrap()
        }
        fn try_send(&self, fd: u64, dst: u16, data: &[u8]) -> bool {
            ModularStack::send(self, fd, dst, data).is_ok()
        }
        fn recv(&self, fd: u64) -> Vec<u8> {
            ModularStack::recv(self, fd).unwrap_or_default()
        }
        fn pump(&self) {
            ModularStack::pump(self).unwrap();
        }
        fn tick(&self) {
            ModularStack::tick(self)
        }
        fn conn_failed(&self, fd: u64) -> bool {
            ModularStack::conn_failed(self, fd).unwrap_or(false)
        }
        fn counters(&self, fd: u64) -> TcpCounters {
            self.tcp_counters(fd).unwrap_or_default()
        }
    }

    // Large enough that the clean run takes ~10ms of wall time: the
    // CI drift gate compares wall-clock throughput against the
    // committed baseline, and sub-millisecond samples are pure noise.
    const STREAM_BYTES: usize = 2 * 1024 * 1024;
    const CHUNK: usize = 4096;
    const SEED: u64 = 42;

    fn drive<S: NetStack>(
        generation: &str,
        profile: &str,
        cfg: FaultConfig,
        client: &S,
        server: &S,
        clock: &SimClock,
        link: &FaultyLink,
    ) -> Value {
        let sfd = server.tcp_socket(80);
        server.listen(sfd);
        let cfd = client.tcp_socket(5000);
        client.connect(cfd, 80);

        let chunk: Vec<u8> = (0..CHUNK).map(|i| (i * 31) as u8).collect();
        let mut conn: Option<u64> = None;
        let mut submitted = 0usize;
        let mut delivered = 0usize;
        let mut rounds = 0u64;
        let mut failed = false;
        let t0 = Instant::now();
        for round in 0..200_000u64 {
            rounds = round + 1;
            client.pump();
            server.pump();
            if conn.is_none() {
                conn = server.accept(sfd);
            }
            if submitted < STREAM_BYTES && client.try_send(cfd, 80, &chunk) {
                submitted += chunk.len();
            }
            if let Some(c) = conn {
                delivered += server.recv(c).len();
            }
            if delivered >= STREAM_BYTES {
                break;
            }
            if client.conn_failed(cfd) || conn.is_some_and(|c| server.conn_failed(c)) {
                failed = true;
                break;
            }
            clock.advance(DEFAULT_RTO_NS / 4);
            client.tick();
            server.tick();
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let c = client.counters(cfd);
        let s = conn.map(|c| server.counters(c)).unwrap_or_default();
        let ls = link.stats();
        println!(
            "netstack {generation:<7} {profile:<7}: {delivered} B in {rounds} rounds, \
             {:.1} MB/s wall, {} retx, {} link drops{}",
            delivered as f64 / (wall_ns as f64 / 1e9) / 1e6,
            c.retransmits,
            ls.dropped,
            if failed { ", FAILED" } else { "" }
        );
        obj(vec![
            ("generation", Value::String(generation.to_string())),
            ("link", Value::String(profile.to_string())),
            ("drop_rate", num(cfg.drop)),
            ("bytes", num(delivered as f64)),
            ("rounds", num(rounds as f64)),
            ("wall_ns", num(wall_ns as f64)),
            (
                "throughput_mb_s",
                num(delivered as f64 / (wall_ns as f64 / 1e9) / 1e6),
            ),
            ("retransmits", num(c.retransmits as f64)),
            ("dup_acks_dropped", num(c.dup_acks_dropped as f64)),
            ("ooo_buffered", num(s.ooo_buffered as f64)),
            ("ooo_purged", num(s.ooo_purged as f64)),
            ("link_sent", num(ls.sent as f64)),
            ("link_dropped", num(ls.dropped as f64)),
            ("link_duplicated", num(ls.duplicated as f64)),
            ("link_reordered", num(ls.reordered as f64)),
            ("link_corrupted", num(ls.corrupted as f64)),
            ("engine_seed", num(link.engine().seed() as f64)),
            ("engine_trace_events", num(link.engine().trace_len() as f64)),
            ("completed", Value::Bool(!failed)),
        ])
    }

    /// Verdict of one many-connection run, compared across generations.
    struct ManyOutcome {
        accepted: usize,
        failed: usize,
        delivered: usize,
        row: Value,
    }

    const MANY_PAYLOAD: usize = 1000; // one full segment per connection
    const WAVE: usize = 500; // connects launched per round

    /// Server-scale driver: `conns` concurrent clients against ONE
    /// listener, staggered connect waves, one segment of payload each.
    /// All latency/throughput figures are SIM time (deterministic under
    /// the engine seed); wall_ns is the host-side cost of the run and is
    /// the only nondeterministic field.
    fn drive_many<S: NetStack>(
        generation: &str,
        (profile, cfg): (&str, FaultConfig),
        conns: usize,
        client: &S,
        server: &S,
        clock: &SimClock,
        link: &FaultyLink,
    ) -> ManyOutcome {
        let sfd = server.tcp_socket(80);
        server.listen_backlog(sfd, conns);
        let payload: Vec<u8> = (0..MANY_PAYLOAD).map(|i| (i * 13) as u8).collect();

        let mut launched = 0usize;
        let mut clients: Vec<u64> = Vec::with_capacity(conns);
        let mut connect_ns: Vec<u64> = Vec::with_capacity(conns);
        // Clients whose handshake has not completed (send not yet accepted).
        let mut pending: Vec<usize> = Vec::new();
        let mut handshake_ns: Vec<u64> = Vec::with_capacity(conns);
        let mut failed = 0usize;
        // Accepted server-side connections still short of the full payload.
        let mut active: Vec<(u64, usize)> = Vec::new();
        let mut accepted = 0usize;
        let mut last_accept_ns = 0u64;
        let mut delivered = 0usize;
        let mut done = 0usize;

        let t0 = Instant::now();
        for _round in 0..6000u64 {
            // Staggered connect wave: client ports 2000.. are unique.
            for _ in 0..WAVE {
                if launched >= conns {
                    break;
                }
                let fd = client.tcp_socket(2000 + launched as u16);
                client.connect(fd, 80);
                clients.push(fd);
                connect_ns.push(clock.now_ns());
                pending.push(launched);
                launched += 1;
            }
            client.pump();
            server.pump();
            while let Some(c) = server.accept(sfd) {
                active.push((c, 0));
                accepted += 1;
                last_accept_ns = clock.now_ns();
            }
            // One payload per client, submitted as soon as the handshake
            // completes (the first accepted send marks completion).
            pending.retain(|&i| {
                if client.conn_failed(clients[i]) {
                    failed += 1;
                    return false;
                }
                if client.try_send(clients[i], 80, &payload) {
                    handshake_ns.push(clock.now_ns() - connect_ns[i]);
                    return false;
                }
                true
            });
            active.retain_mut(|(c, got)| {
                let data = server.recv(*c);
                *got += data.len();
                delivered += data.len();
                if *got >= MANY_PAYLOAD {
                    done += 1;
                    return false;
                }
                true
            });
            if launched == conns && pending.is_empty() && done + failed >= conns {
                break;
            }
            clock.advance(DEFAULT_RTO_NS / 2);
            client.tick();
            server.tick();
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let sim_ns = clock.now_ns().max(1);
        handshake_ns.sort_unstable();
        let pct = |p: usize| -> f64 {
            if handshake_ns.is_empty() {
                return 0.0;
            }
            let idx = (handshake_ns.len() * p / 100).min(handshake_ns.len() - 1);
            handshake_ns[idx] as f64
        };
        let conns_per_sec = if last_accept_ns > 0 {
            accepted as f64 / (last_accept_ns as f64 / 1e9)
        } else {
            0.0
        };
        let goodput = delivered as f64 / (sim_ns as f64 / 1e9) / 1e6;
        let completed = done == conns && failed == 0;
        let ls = link.stats();
        println!(
            "netstack {generation:<7} {profile:<7} {conns:>6} conns: \
             {accepted} accepted, {done} complete, {failed} failed, \
             {conns_per_sec:.0} conns/s, p99 handshake {:.1} ms, \
             {goodput:.1} MB/s goodput (sim), {:.2}s wall",
            pct(99) / 1e6,
            wall_ns as f64 / 1e9,
        );
        let row = obj(vec![
            ("generation", Value::String(generation.to_string())),
            ("link", Value::String(profile.to_string())),
            ("drop_rate", num(cfg.drop)),
            ("conns", num(conns as f64)),
            ("accepted", num(accepted as f64)),
            ("completed_conns", num(done as f64)),
            ("failed_conns", num(failed as f64)),
            ("bytes", num(delivered as f64)),
            ("conns_per_sec_sim", num(conns_per_sec)),
            ("handshake_p50_ns", num(pct(50))),
            ("handshake_p99_ns", num(pct(99))),
            ("goodput_mb_s_sim", num(goodput)),
            ("sim_ns", num(sim_ns as f64)),
            ("wall_ns", num(wall_ns as f64)),
            ("link_sent", num(ls.sent as f64)),
            ("link_dropped", num(ls.dropped as f64)),
            ("engine_seed", num(link.engine().seed() as f64)),
            ("engine_trace_events", num(link.engine().trace_len() as f64)),
            ("completed", Value::Bool(completed)),
        ]);
        ManyOutcome {
            accepted,
            failed,
            delivered,
            row,
        }
    }

    /// Server-scale sections: {1k, 10k} connections × {0, 5, 20}% loss,
    /// both generations per cell under the same engine seed. The verdict
    /// tuple (accepted, failed, delivered) must agree across generations
    /// for every cell — a divergence is stamped into the row and printed.
    pub fn bench_many(conn_counts: &[usize]) -> Value {
        let profiles = [
            ("clean", FaultConfig::default()),
            (
                "lossy5",
                FaultConfig {
                    drop: 0.05,
                    ..FaultConfig::default()
                },
            ),
            (
                "lossy20",
                FaultConfig {
                    drop: 0.20,
                    ..FaultConfig::default()
                },
            ),
        ];
        let mut rows = Vec::new();
        for &conns in conn_counts {
            if conns == 0 {
                continue;
            }
            for (name, cfg) in profiles {
                let clock = Arc::new(SimClock::new());
                let engine = ScenarioEngine::with_clock(SEED, Arc::clone(&clock));
                let link = Arc::new(FaultyLink::on_engine(cfg, &engine));
                let a =
                    LegacyStack::new(LegacyCtx::new(), Side::A, link.clone(), Arc::clone(&clock));
                let b =
                    LegacyStack::new(LegacyCtx::new(), Side::B, link.clone(), Arc::clone(&clock));
                let legacy = drive_many("legacy", (name, cfg), conns, &a, &b, &clock, &link);

                let clock = Arc::new(SimClock::new());
                let engine = ScenarioEngine::with_clock(SEED, Arc::clone(&clock));
                let link = Arc::new(FaultyLink::on_engine(cfg, &engine));
                let registry = Arc::new(Registry::new());
                register_families(&registry).unwrap();
                let a = ModularStack::new(
                    Arc::clone(&registry),
                    Side::A,
                    link.clone(),
                    Arc::clone(&clock),
                );
                let b = ModularStack::new(registry, Side::B, link.clone(), Arc::clone(&clock));
                let modular = drive_many("modular", (name, cfg), conns, &a, &b, &clock, &link);

                let verdicts_match = (legacy.accepted, legacy.failed, legacy.delivered)
                    == (modular.accepted, modular.failed, modular.delivered);
                if !verdicts_match {
                    println!(
                        "  !! generations diverged at {conns} conns / {name}: \
                         legacy ({}, {}, {}) vs modular ({}, {}, {})",
                        legacy.accepted,
                        legacy.failed,
                        legacy.delivered,
                        modular.accepted,
                        modular.failed,
                        modular.delivered
                    );
                }
                for mut outcome in [legacy, modular] {
                    if let Value::Object(ref mut map) = outcome.row {
                        map.insert("verdicts_match".to_string(), Value::Bool(verdicts_match));
                    }
                    rows.push(outcome.row);
                }
            }
        }
        Value::Array(rows)
    }

    /// Both generations × {clean, lossy20} — the adversarial profile is
    /// the soak link from `tests/netstack_props.rs`.
    pub fn bench_netstack() -> Value {
        let profiles = [
            ("clean", FaultConfig::default()),
            ("lossy20", FaultConfig::adversarial(DEFAULT_RTO_NS / 4)),
        ];
        let mut rows = Vec::new();
        for (name, cfg) in profiles {
            // Both generations run over an engine-seeded link: the stamped
            // engine seed replays the exact fault schedule of any row.
            let clock = Arc::new(SimClock::new());
            let engine = ScenarioEngine::with_clock(SEED, Arc::clone(&clock));
            let link = Arc::new(FaultyLink::on_engine(cfg, &engine));
            let a = LegacyStack::new(LegacyCtx::new(), Side::A, link.clone(), Arc::clone(&clock));
            let b = LegacyStack::new(LegacyCtx::new(), Side::B, link.clone(), Arc::clone(&clock));
            rows.push(drive("legacy", name, cfg, &a, &b, &clock, &link));

            let clock = Arc::new(SimClock::new());
            let engine = ScenarioEngine::with_clock(SEED, Arc::clone(&clock));
            let link = Arc::new(FaultyLink::on_engine(cfg, &engine));
            let registry = Arc::new(Registry::new());
            register_families(&registry).unwrap();
            let a = ModularStack::new(
                Arc::clone(&registry),
                Side::A,
                link.clone(),
                Arc::clone(&clock),
            );
            let b = ModularStack::new(registry, Side::B, link.clone(), Arc::clone(&clock));
            rows.push(drive("modular", name, cfg, &a, &b, &clock, &link));
        }
        Value::Array(rows)
    }
}

struct Args {
    shards: Vec<usize>,
    threads: usize,
    out: String,
    net_out: String,
    lockdep_only: bool,
    net_only: bool,
    ring_only: bool,
    net_conns: Vec<usize>,
}

fn parse_args() -> Args {
    let mut args_out = Args {
        shards: vec![1usize, 8],
        threads: 8,
        out: "BENCH_storage.json".to_string(),
        net_out: "BENCH_net.json".to_string(),
        lockdep_only: false,
        net_only: false,
        ring_only: false,
        net_conns: vec![1000, 10_000],
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--lockdep" => {
                args_out.lockdep_only = true;
                i += 1;
            }
            "--net-only" => {
                args_out.net_only = true;
                i += 1;
            }
            "--ring-only" => {
                args_out.ring_only = true;
                i += 1;
            }
            "--shards" if i + 1 < args.len() => {
                args_out.shards = args[i + 1]
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                args_out.threads = args[i + 1].parse().unwrap_or(8);
                i += 2;
            }
            // Connection counts for the server-scale sections; `--net-conns 0`
            // skips them (CI uses this for the fast drift check).
            "--net-conns" if i + 1 < args.len() => {
                args_out.net_conns = args[i + 1]
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .filter(|&n| n > 0)
                    .collect();
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                args_out.out = args[i + 1].clone();
                i += 2;
            }
            "--net-out" if i + 1 < args.len() => {
                args_out.net_out = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args_out
}

fn write_net_report(net_out: &str, net_conns: &[usize]) {
    println!("== netstack benchmark report ==\n");
    let net_report = obj(vec![
        (
            "meta",
            obj(vec![
                ("stream_bytes", num((128 * 1024) as f64)),
                // The scenario-engine seed every link row runs under;
                // replaying with this seed reproduces the exact fault
                // schedule (see DESIGN.md §15).
                ("engine_seed", num(42.0)),
            ]),
        ),
        ("soak", netbench::bench_netstack()),
        ("many_conns", netbench::bench_many(net_conns)),
    ]);
    let json = serde_json::to_string(&net_report).expect("serialize");
    std::fs::write(net_out, &json).expect("write net report");
    println!("\nwrote {net_out}");
}

fn main() {
    let Args {
        shards,
        threads,
        out,
        net_out,
        lockdep_only,
        net_only,
        ring_only,
        net_conns,
    } = parse_args();
    if lockdep_only {
        // CI mode: just the lockdep stress — exits nonzero on any
        // ordering finding, prints the graph summary.
        println!("== lockdep stress ({threads} threads) ==\n");
        bench_lockdep(threads);
        return;
    }
    if net_only {
        // CI mode: regenerate only the netstack report (the bench-drift
        // check compares its single-stream rows against the committed
        // baseline).
        write_net_report(&net_out, &net_conns);
        return;
    }
    if ring_only {
        // CI mode: just the reactors × depth ring sweep — the drift
        // check reads its rows from the written report; everything else
        // in the file is omitted so the step stays fast.
        println!("== ring throughput sweep ==\n");
        let report = obj(vec![(
            "ring_throughput",
            bench_ring_throughput(&[1, 2, 4, 8], &[32, 256, 1024]),
        )]);
        let json = serde_json::to_string(&report).expect("serialize");
        std::fs::write(&out, &json).expect("write report");
        println!("\nwrote {out}");
        return;
    }
    println!("== storage-path benchmark report (shards {shards:?}, {threads} threads) ==\n");

    // Verify rsfs state survives the concurrent group-commit run: a quick
    // correctness canary so throughput numbers are never from a broken fs.
    {
        let fs = Arc::new(make_rsfs(JournalMode::PerOp, 4096));
        let ino = fs.create(fs.root_ino(), "canary").unwrap();
        fs.write(ino, 0, b"canary").unwrap();
        let mut buf = vec![0u8; 6];
        assert_eq!(fs.read(ino, 0, &mut buf).unwrap(), 6);
        assert_eq!(&buf, b"canary");
    }

    let report = obj(vec![
        (
            "meta",
            obj(vec![
                ("threads", num(threads as f64)),
                (
                    "shard_counts",
                    Value::Array(shards.iter().map(|&s| num(s as f64)).collect()),
                ),
            ]),
        ),
        ("buffer_cache_scaling", bench_buffer_cache(&shards, threads)),
        ("dcache_scaling", bench_dcache(&shards, threads)),
        ("fs_throughput", bench_fs_throughput()),
        ("group_commit", bench_group_commit(&[1, threads.max(2)])),
        ("async_commit", bench_async_commit()),
        (
            "ring_throughput",
            bench_ring_throughput(&[1, 2, 4, 8], &[32, 256, 1024]),
        ),
        ("vectored_io", bench_vectored_io()),
        ("crash_consistency", crashbench::bench_crash_consistency()),
        ("hot_swap", bench_hot_swap(&[1, 2, 4, 8])),
        ("lockdep", bench_lockdep(threads)),
    ]);

    let json = serde_json::to_string(&report).expect("serialize");
    std::fs::write(&out, &json).expect("write report");
    println!("\nwrote {out}\n");

    write_net_report(&net_out, &net_conns);
}
