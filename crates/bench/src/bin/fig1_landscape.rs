//! Figure 1: "Our vision and the current state of systems."
//!
//! The paper's Figure 1 places operating systems on a plane of code size
//! (tens of millions → thousands of lines) versus safety level (no
//! guarantees → type safety → ownership safety → functional verification),
//! with an arrow for the proposed incremental path. This binary reprints
//! that landscape (sizes from each system's published reports) and then
//! *measures* this workspace's own crates from source and places them on
//! the same axes — the reproduction's instance of "Safe Linux,
//! incremental progress".

use std::path::Path;

use sk_bench::count_loc;

fn main() {
    println!("== Figure 1: safety level vs code size ==\n");
    println!("{:<14} {:>12}  safety level", "system", "LoC");
    println!("{:-<14} {:->12}  {:-<24}", "", "", "");
    // Published/approximate sizes, as in the paper's Figure 1 bands.
    let landscape: &[(&str, u64, &str)] = &[
        ("Linux", 27_800_000, "no guarantees"),
        ("FreeBSD", 7_900_000, "no guarantees"),
        ("Singularity", 300_000, "type safety"),
        ("Biscuit", 58_000, "type safety"),
        ("Theseus", 38_000, "ownership safety"),
        ("RedLeaf", 30_000, "ownership safety"),
        ("seL4", 10_000, "functional verification"),
        ("Hyperkernel", 7_000, "functional verification"),
    ];
    for (name, loc, level) in landscape {
        println!("{name:<14} {loc:>12}  {level}");
    }

    println!("\n-- this workspace (measured from source) --\n");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let crates: &[(&str, &str)] = &[
        (
            "crates/ksim",
            "substrate (simulated kernel: block, cache, elevator, workqueue)",
        ),
        ("crates/legacy", "no guarantees (the C idiom, emulated)"),
        ("crates/fs-legacy", "no guarantees (Step 0 baseline)"),
        ("crates/core", "the incremental-safety framework"),
        ("crates/vfs", "modular interfaces (Step 1)"),
        (
            "crates/fs-safe",
            "ownership safety + checked refinement (Steps 2-4)",
        ),
        ("crates/netstack", "Step 0 and Steps 1-2, side by side"),
        ("crates/cvedb", "bug-study analysis"),
        ("crates/faultgen", "prevention study"),
        ("crates/bench", "harness"),
    ];
    let mut rows = Vec::new();
    let mut total = 0;
    for (dir, level) in crates {
        let loc = count_loc(&root.join(dir)).unwrap_or(0);
        total += loc;
        rows.push((*dir, loc, *level));
    }
    for (dir, loc, level) in &rows {
        println!("{dir:<18} {loc:>9}  {level}");
    }
    println!("{:-<18} {:->9}", "", "");
    println!("{:<18} {total:>9}  (workspace total)", "all crates");
    println!(
        "\nThe incremental-progress arrow: the same VFS workload runs on \
         cext4 (no guarantees) and on rsfs (ownership-safe, refinement-\n\
         checked) behind one interface handle — see \
         examples/incremental_migration.rs."
    );

    // Machine-readable output for EXPERIMENTS.md.
    let json: Vec<String> = landscape
        .iter()
        .map(|(n, l, s)| format!("{{\"system\":\"{n}\",\"loc\":{l},\"safety\":\"{s}\"}}"))
        .chain(
            rows.iter()
                .map(|(n, l, s)| format!("{{\"system\":\"{n}\",\"loc\":{l},\"safety\":\"{s}\"}}")),
        )
        .collect();
    println!("\nJSON: [{}]", json.join(","));
}
