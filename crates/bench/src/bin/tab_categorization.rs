//! The §2 CVE categorization table.
//!
//! "Among the 1475 total CVEs we examined, roughly 42% CVEs could be
//! prevented with compile-time type and ownership safety, and an
//! additional 35% with functional correctness verification."

use sk_cvedb::categorize::categorize;
use sk_cvedb::dataset::{Dataset, CWE_MIX};
use sk_cvedb::figures::subsystem_shares;

fn main() {
    let ds = Dataset::build();
    let s = categorize(&ds);
    let (ty, fun, other) = s.percentages();
    println!("== Table: CVE categorization by prevention step (2010-2020 corpus) ==\n");
    println!("{:<38} {:>7} {:>7}   paper", "category", "count", "pct");
    println!("{:-<38} {:->7} {:->7}   -----", "", "", "");
    println!(
        "{:<38} {:>7} {:>6.1}%   ~42%",
        "type + ownership safety (steps 2-3)", s.type_ownership, ty
    );
    println!(
        "{:<38} {:>7} {:>6.1}%   ~35%",
        "functional correctness (step 4)", s.functional, fun
    );
    println!(
        "{:<38} {:>7} {:>6.1}%   ~23%",
        "other causes", s.other, other
    );
    println!("{:-<38} {:->7} {:->7}", "", "", "");
    println!("{:<38} {:>7} {:>6.1}%", "total", s.total, 100.0);

    println!("\n-- CWE composition of the corpus --\n");
    for (cwe, permille) in CWE_MIX {
        let n = ds.corpus().iter().filter(|c| c.cwe == cwe).count();
        println!(
            "{cwe:<10} {:>5} records ({:.1}%)  -> {:?}",
            n,
            permille as f64 / 10.0,
            sk_cvedb::categorize_cwe(cwe)
        );
    }
    println!("\n-- per-subsystem shares (related work: Chou et al., Palix et al.) --\n");
    for (subsystem, n, share) in subsystem_shares(&ds) {
        println!("{subsystem:<14} {n:>5}  ({:.1}%)", share * 100.0);
    }

    println!(
        "\nJSON: {{\"total\":{},\"type_ownership\":{},\"functional\":{},\"other\":{}}}",
        s.total, s.type_ownership, s.functional, s.other
    );
}
