//! Figure 2: the Linux bug study (2a, 2b, 2c).
//!
//! Usage: `fig2_bugs [2a|2b|2c|all]` (default: all). Prints each figure as
//! an ASCII chart plus a JSON series for machine checking. The dataset is
//! generated, calibrated to the paper's published aggregates — see
//! `sk-cvedb` and DESIGN.md §2 for the substitution argument.

use sk_cvedb::dataset::Dataset;
use sk_cvedb::figures::{fig2a, fig2b, fig2c, render_bars};

fn print_2a(ds: &Dataset) {
    println!("== Figure 2a: new Linux CVEs reported each year ==\n");
    let series = fig2a(ds);
    let rows: Vec<(String, f64)> = series
        .iter()
        .map(|&(y, n)| (y.to_string(), f64::from(n)))
        .collect();
    print!("{}", render_bars(&rows, 48));
    let json: Vec<String> = series.iter().map(|(y, n)| format!("[{y},{n}]")).collect();
    println!("\nJSON: [{}]\n", json.join(","));
}

fn print_2b(ds: &Dataset) {
    println!("== Figure 2b: CDF of ext4 CVE report latency (years after 2008 release) ==\n");
    let cdf = fig2b(ds);
    for (y, frac) in &cdf {
        let bar = "#".repeat((frac * 40.0).round() as usize);
        println!("<= {y:>2} yr | {bar} {frac:.2}");
    }
    let at_6 = cdf
        .iter()
        .find(|(y, _)| *y == 6)
        .map(|(_, f)| *f)
        .unwrap_or(0.0);
    println!(
        "\n  -> {:.0}% of ext4 CVEs were reported 7+ years after release \
         (paper: 50%)",
        (1.0 - at_6) * 100.0
    );
    let json: Vec<String> = cdf.iter().map(|(y, f)| format!("[{y},{f:.4}]")).collect();
    println!("JSON: [{}]\n", json.join(","));
}

fn print_2c(ds: &Dataset) {
    println!("== Figure 2c: new bug patches per LoC per year ==\n");
    let points = fig2c(ds);
    for fs in ["overlayfs", "ext4", "btrfs"] {
        println!("{fs}:");
        let rows: Vec<(String, f64)> = points
            .iter()
            .filter(|p| p.fs == fs)
            .map(|p| {
                (
                    format!("year {:>2}", p.year_since_release),
                    p.bugs_per_loc * 100.0,
                )
            })
            .collect();
        print!("{}", render_bars(&rows, 40));
        println!();
    }
    let tail = points
        .iter()
        .filter(|p| p.fs == "ext4" && p.year_since_release >= 10)
        .map(|p| p.bugs_per_loc * 100.0)
        .fold(0.0f64, f64::max);
    println!(
        "  -> ext4 still accrues {tail:.2}% bugs per LoC per year a decade \
         in (paper: ~0.5%)"
    );
    let json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"fs\":\"{}\",\"year\":{},\"bugs_per_loc\":{:.5}}}",
                p.fs, p.year_since_release, p.bugs_per_loc
            )
        })
        .collect();
    println!("JSON: [{}]", json.join(","));
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let ds = Dataset::build();
    match which.as_str() {
        "2a" => print_2a(&ds),
        "2b" => print_2b(&ds),
        "2c" => print_2c(&ds),
        _ => {
            print_2a(&ds);
            print_2b(&ds);
            print_2c(&ds);
        }
    }
}
