//! Ablation — the caching design choices DESIGN.md calls out.
//!
//! Two knobs the kernel-side layers add on top of the file systems:
//!
//! - **dentry cache**: path resolution of a 4-deep path with the dcache
//!   warm versus deliberately cleared before every walk;
//! - **buffer cache capacity**: a random-read workload over a 64-block
//!   file with the cache sized to hold 1/4, 1/2, and 2× the working set —
//!   the crossover from miss-dominated to hit-dominated is the shape to
//!   look for.

use std::sync::Arc;

use criterion::{criterion_group, BenchmarkId, Criterion};
use sk_core::modularity::Registry;
use sk_fs_safe::rsfs::{JournalMode, Rsfs};
use sk_ksim::block::{BlockDevice, RamDisk};
use sk_ksim::buffer::BufferCache;
use sk_vfs::modular::FileSystem;
use sk_vfs::path::{Vfs, FS_INTERFACE};

fn bench_dcache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_ablation/dcache");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4096));
    Rsfs::mkfs(&dev, 256, 64).expect("mkfs");
    let fs = Rsfs::mount(dev, JournalMode::None).expect("mount");
    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(FS_INTERFACE, "rsfs", Arc::new(fs) as Arc<dyn FileSystem>)
        .expect("register");
    let vfs = Vfs::mount(&registry).expect("vfs");
    vfs.mkdir("/a").unwrap();
    vfs.mkdir("/a/b").unwrap();
    vfs.mkdir("/a/b/c").unwrap();
    vfs.create("/a/b/c/leaf").unwrap();

    group.bench_function("warm", |b| {
        b.iter(|| vfs.resolve(std::hint::black_box("/a/b/c/leaf")).unwrap())
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            vfs.dcache().clear();
            vfs.resolve(std::hint::black_box("/a/b/c/leaf")).unwrap()
        })
    });
    group.finish();
}

fn bench_buffer_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_ablation/buffer_capacity");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    // Working set: 64 blocks touched in a fixed pseudo-random order.
    let order: Vec<u64> = (0..256u64).map(|i| (i * 37) % 64).collect();
    for capacity in [16usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &cap| {
                let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(128));
                let cache = BufferCache::new(dev, cap);
                let mut sink = 0u64;
                b.iter(|| {
                    for &blk in &order {
                        let buf = cache.bread(blk).unwrap();
                        sink = sink.wrapping_add(buf.read(|d| u64::from(d[0])));
                    }
                    std::hint::black_box(sink)
                })
            },
        );
    }
    group.finish();
}

/// Readahead on a *seeking* device with two interleaved sequential
/// streams: without prefetch the head ping-pongs between the streams on
/// every read; with prefetch each visit amortizes the travel over `depth`
/// blocks. The quantity of interest is **simulated device time**, which is
/// fully deterministic — Criterion's statistics degenerate on
/// zero-variance samples, so this measurement is computed once and
/// printed.
fn report_readahead_simulated() {
    use sk_ksim::time::SimClock;

    println!("\n== cache_ablation/readahead_simulated (deterministic device time) ==");
    for depth in [0usize, 8] {
        let clock = Arc::new(SimClock::new());
        let mut disk = RamDisk::with_geometry(2048, 4096, Arc::clone(&clock));
        disk.set_seek_model(1_000);
        let cache = BufferCache::new(Arc::new(disk) as Arc<dyn BlockDevice>, 64);
        cache.set_readahead(depth);
        let t0 = clock.now_ns();
        // Two far-apart sequential streams, interleaved.
        for i in 0..64u64 {
            cache.bread(i).unwrap();
            cache.bread(1000 + i).unwrap();
        }
        let ns = clock.now_ns() - t0;
        println!(
            "readahead depth {depth}: {:.2} ms simulated ({} prefetches)",
            ns as f64 / 1e6,
            cache.stats().readaheads
        );
    }
}

/// Elevator vs FIFO dispatch on a seeking device — also deterministic
/// simulated time, printed rather than sampled.
fn report_elevator_simulated() {
    use sk_ksim::elevator::ElevatorDevice;
    use sk_ksim::time::SimClock;

    println!("\n== cache_ablation/elevator_simulated (deterministic device time) ==");
    let order: Vec<u64> = (0..128u64).map(|i| (i * 53) % 256).collect();
    let payload = vec![1u8; 4096];

    let clock = Arc::new(SimClock::new());
    let mut disk = RamDisk::with_geometry(256, 4096, Arc::clone(&clock));
    disk.set_seek_model(1_000);
    for &blk in &order {
        disk.write_block(blk, &payload).unwrap();
    }
    println!(
        "fifo dispatch:     {:.2} ms simulated",
        clock.now_ns() as f64 / 1e6
    );

    let clock = Arc::new(SimClock::new());
    let mut disk = RamDisk::with_geometry(256, 4096, Arc::clone(&clock));
    disk.set_seek_model(1_000);
    let elev = ElevatorDevice::new(disk, 512);
    for &blk in &order {
        elev.write_block(blk, &payload).unwrap();
    }
    elev.flush().unwrap();
    println!(
        "elevator dispatch: {:.2} ms simulated\n",
        clock.now_ns() as f64 / 1e6
    );
}

criterion_group!(benches, bench_dcache, bench_buffer_capacity);

fn main() {
    report_readahead_simulated();
    report_elevator_simulated();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
