//! Table C — the three §4.3 ownership-sharing models against copying
//! message passing.
//!
//! "We propose interfaces that are semantically equivalent to message
//! passing interfaces but share memory for performance reasons."
//!
//! The callee computes a checksum over the buffer (so the bytes are really
//! touched); the *transfer* mechanism varies:
//!
//! - `message_copy` — the strict message-passing baseline: the payload
//!   is cloned across the boundary.
//! - `model1_owned` — ownership passes ([`Owned`]); no copy, callee
//!   frees. (Allocation is inside the loop for both
//!   this and the copy case, so they are comparable.)
//! - `model2_exclusive` — exclusive loan; caller keeps the buffer.
//! - `model3_shared` — shared read-only loan; zero transfer cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sk_core::ownership::{Exclusive, Owned, Shared};

fn checksum(data: &[u8]) -> u64 {
    data.iter().fold(0u64, |acc, &b| {
        acc.wrapping_mul(31).wrapping_add(u64::from(b))
    })
}

// The "callee module" for each model.
fn callee_copy(data: Vec<u8>) -> u64 {
    checksum(&data)
}
fn callee_owned(data: Owned<Vec<u8>>) -> u64 {
    checksum(&data)
    // Dropped here: model 1's "the callee must free the memory".
}
fn callee_exclusive(mut data: Exclusive<'_, Vec<u8>>) -> u64 {
    data[0] = data[0].wrapping_add(1); // Exercise the mutate right.
    checksum(&data)
}
fn callee_shared(data: Shared<'_, Vec<u8>>) -> u64 {
    checksum(&data)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ownership_models");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        let payload = vec![0xA5u8; size];

        // Both allocation-bearing cases produce the source buffer inside
        // the loop; the difference is the boundary: message passing copies
        // it, model 1 moves it.
        group.bench_with_input(BenchmarkId::new("message_copy", size), &size, |b, _| {
            b.iter(|| {
                let src = payload.clone();
                let msg = src.clone(); // The copy IS the boundary cost.
                let sum = callee_copy(std::hint::black_box(msg));
                drop(src); // The caller still owns (and must free) its copy.
                sum
            })
        });

        group.bench_with_input(BenchmarkId::new("model1_owned", size), &size, |b, _| {
            b.iter(|| {
                let src = payload.clone();
                // No byte copy: ownership moves; the callee frees.
                callee_owned(std::hint::black_box(Owned::new(src)))
            })
        });

        group.bench_with_input(BenchmarkId::new("model2_exclusive", size), &size, |b, _| {
            let mut buf = payload.clone();
            b.iter(|| callee_exclusive(Exclusive::new(std::hint::black_box(&mut buf))))
        });

        group.bench_with_input(BenchmarkId::new("model3_shared", size), &size, |b, _| {
            let buf = payload.clone();
            b.iter(|| callee_shared(Shared::new(std::hint::black_box(&buf))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
