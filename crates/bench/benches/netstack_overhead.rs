//! Table E — modularizing the socket layer (§4.1).
//!
//! The paper flags the socket layer as hard to modularize and worries the
//! modular interface costs performance. This bench runs the same TCP echo
//! round trip (send → pump → receive → reply → pump → receive) on:
//!
//! - `legacy`  — the coupled stack (`void *` protinfo, direct casts);
//! - `modular` — the typed stack (trait dispatch through the registry).
//!
//! Plus the `poll` fast path, where the legacy stack's "generic code
//! assumes TCP" coupling is exactly one cast cheaper — the optimization
//! the paper says modularity may cost.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use sk_core::modularity::Registry;
use sk_ksim::time::SimClock;
use sk_legacy::LegacyCtx;
use sk_netstack::legacy_stack::LegacyStack;
use sk_netstack::modular_stack::{register_families, ModularStack};
use sk_netstack::packet::proto;
use sk_netstack::wire::{Side, Wire};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("netstack_overhead");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    // Legacy pair, established connection.
    let wire = Arc::new(Wire::new());
    let clock = Arc::new(SimClock::new());
    let la = LegacyStack::new(LegacyCtx::new(), Side::A, wire.clone(), Arc::clone(&clock));
    let lb = LegacyStack::new(LegacyCtx::new(), Side::B, wire.clone(), Arc::clone(&clock));
    let lserver = lb.socket(proto::TCP, 80).unwrap();
    lb.listen(lserver).unwrap();
    let lclient = la.socket(proto::TCP, 1234).unwrap();
    la.connect(lclient, 80).unwrap();
    for _ in 0..4 {
        la.pump().unwrap();
        lb.pump().unwrap();
    }

    group.bench_function("legacy_echo_roundtrip", |b| {
        b.iter(|| {
            la.send(lclient, 80, b"ping").unwrap();
            lb.pump().unwrap();
            let got = lb.recv(lserver).unwrap();
            lb.send(lserver, 1234, &got).unwrap();
            la.pump().unwrap();
            lb.pump().unwrap();
            la.recv(lclient).unwrap()
        })
    });

    group.bench_function("legacy_poll", |b| {
        b.iter(|| la.poll(std::hint::black_box(lclient)).unwrap())
    });

    // Modular pair, established connection.
    let registry = Arc::new(Registry::new());
    register_families(&registry).unwrap();
    let wire2 = Arc::new(Wire::new());
    let ma = ModularStack::new(
        Arc::clone(&registry),
        Side::A,
        wire2.clone(),
        Arc::clone(&clock),
    );
    let mb = ModularStack::new(registry, Side::B, wire2, Arc::clone(&clock));
    let mserver = mb.socket("tcp", 80).unwrap();
    mb.listen(mserver).unwrap();
    let mclient = ma.socket("tcp", 1234).unwrap();
    ma.connect(mclient, 80).unwrap();
    for _ in 0..4 {
        ma.pump().unwrap();
        mb.pump().unwrap();
    }

    group.bench_function("modular_echo_roundtrip", |b| {
        b.iter(|| {
            ma.send(mclient, 80, b"ping").unwrap();
            mb.pump().unwrap();
            let got = mb.recv(mserver).unwrap();
            mb.send(mserver, 1234, &got).unwrap();
            ma.pump().unwrap();
            mb.pump().unwrap();
            ma.recv(mclient).unwrap()
        })
    });

    group.bench_function("modular_poll", |b| {
        b.iter(|| ma.poll(std::hint::black_box(mclient)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
