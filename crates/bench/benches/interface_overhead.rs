//! Table B — the cost ladder of the roadmap steps (§3's "modular
//! interfaces … can result in performance cost", §4.3's "nontrivial
//! performance cost" concern, §4.4's checking overhead).
//!
//! One operation (`getattr` on a cached inode) dispatched through each
//! regime:
//!
//! - `direct` — concrete `Rsfs` method call (no roadmap).
//! - `dyn_trait` — `Arc<dyn FileSystem>` virtual call (Step 1's
//!   interface, statically wired).
//! - `registry_handle` — `InterfaceHandle` dispatch (Step 1 with hot
//!   replacement: one `RwLock` read + `Arc` clone).
//! - `boundary_counted` — plus a shim `Boundary` crossing counter.
//! - `boundary_checked` — plus ownership-contract validation.
//! - `refinement_checked` — plus Step 4's per-op abstraction + relation
//!   check (the expensive one, by design).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use sk_bench::make_rsfs;
use sk_core::modularity::Registry;
use sk_core::ownership::{Access, ContractTracker};
use sk_core::shim::Boundary;
use sk_core::spec::{RefinementChecker, Refines};
use sk_fs_safe::rsfs::{JournalMode, Rsfs};
use sk_vfs::modular::{fs_abstraction, FileSystem};
use sk_vfs::spec::FsModel;

struct Abstracted<'a>(&'a dyn FileSystem);
impl Refines<FsModel> for Abstracted<'_> {
    fn abstraction(&self) -> FsModel {
        fs_abstraction(self.0)
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("interface_overhead");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));

    let fs = make_rsfs(JournalMode::None, 2048);
    let ino = fs.create(fs.root_ino(), "probe").expect("create");
    fs.write(ino, 0, b"x").expect("write");

    group.bench_function("direct", |b| {
        b.iter(|| fs.getattr(std::hint::black_box(ino)).unwrap())
    });

    let dyn_fs: Arc<dyn FileSystem> = Arc::new(make_rsfs(JournalMode::None, 2048));
    let dino = dyn_fs.create(dyn_fs.root_ino(), "probe").expect("create");
    group.bench_function("dyn_trait", |b| {
        b.iter(|| dyn_fs.getattr(std::hint::black_box(dino)).unwrap())
    });

    let registry = Registry::new();
    registry
        .register::<dyn FileSystem>(
            "vfs.filesystem",
            "rsfs",
            Arc::new(make_rsfs(JournalMode::None, 2048)) as Arc<dyn FileSystem>,
        )
        .expect("register");
    let handle = registry
        .subscribe::<dyn FileSystem>("vfs.filesystem")
        .expect("subscribe");
    let hino = handle
        .get()
        .create(handle.get().root_ino(), "probe")
        .expect("create");
    group.bench_function("registry_handle", |b| {
        b.iter(|| handle.get().getattr(std::hint::black_box(hino)).unwrap())
    });

    let boundary = Boundary::new("bench");
    group.bench_function("boundary_counted", |b| {
        b.iter(|| boundary.cross(|| handle.get().getattr(std::hint::black_box(hino)).unwrap()))
    });

    let tracker = Arc::new(ContractTracker::new());
    let obj = tracker.register("vfs");
    let checked = Boundary::with_tracker("bench-checked", Arc::clone(&tracker));
    group.bench_function("boundary_checked", |b| {
        b.iter(|| {
            checked
                .cross_checked(
                    |t| t.access(obj, "vfs", Access::Read),
                    || handle.get().getattr(std::hint::black_box(hino)),
                )
                .unwrap()
        })
    });

    // Refinement checking walks the tree on both sides of the op; price it
    // on a small tree so the comparison is apples-to-apples per call.
    let spec_fs: Rsfs = make_rsfs(JournalMode::None, 2048);
    let sino = spec_fs.create(spec_fs.root_ino(), "probe").expect("create");
    group.bench_function("refinement_checked", |b| {
        b.iter(|| {
            let mut sys = Abstracted(&spec_fs);
            let mut chk: RefinementChecker<FsModel> = RefinementChecker::new();
            chk.step(
                &mut sys,
                "getattr",
                |s| s.0.getattr(std::hint::black_box(sino)).unwrap(),
                |pre, post, _| pre == post,
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
