//! Table D — the Bento/RedLeaf performance claim: the safe file system is
//! "performance-competitive" with the legacy one.
//!
//! Per-operation cost of create / write(4 KiB) / read(4 KiB) / rename /
//! unlink on:
//!
//! - `cext4` — the Step-0 baseline, reached through the legacy shim
//!   (exactly how the migration example mounts it);
//! - `rsfs` — the safe file system, journal off (apples-to-apples
//!   with cext4, which has no journal);
//! - `rsfs_journal` — the safe file system with per-op atomic commits —
//!   the durability upgrade's price.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sk_bench::{make_cext4_adapter, make_rsfs};
use sk_fs_safe::rsfs::JournalMode;
use sk_vfs::modular::FileSystem;

fn bench_fs(c: &mut Criterion, label: &str, fs: &dyn FileSystem) {
    let mut group = c.benchmark_group(format!("fs_throughput/{label}"));
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(900));
    let root = fs.root_ino();
    let payload = vec![0x5Au8; 4096];

    // NOTE: a pure `create` benchmark would exhaust the inode table under
    // Criterion's iteration counts; creation cost is measured as the
    // create+unlink pair below (the unlink half is priced separately by
    // subtracting nothing — both halves appear in Table D's analysis).
    let ino = fs.create(root, "bench_file").unwrap();
    let mut off = 0u64;
    group.bench_function(BenchmarkId::from_parameter("write_4k"), |b| {
        b.iter(|| {
            // Cycle within the first 16 blocks to stay in cache and bounds.
            off = (off + 4096) % (16 * 4096);
            fs.write(ino, off, &payload).unwrap()
        })
    });

    let mut buf = vec![0u8; 4096];
    group.bench_function(BenchmarkId::from_parameter("read_4k"), |b| {
        b.iter(|| fs.read(ino, 0, &mut buf).unwrap())
    });

    fs.create(root, "r0").unwrap();
    let mut r = 0u64;
    group.bench_function(BenchmarkId::from_parameter("rename"), |b| {
        b.iter(|| {
            let from = format!("r{r}");
            r += 1;
            let to = format!("r{r}");
            fs.rename(root, &from, root, &to).unwrap()
        })
    });

    let mut u = 0u64;
    group.bench_function(BenchmarkId::from_parameter("create_unlink"), |b| {
        b.iter(|| {
            u += 1;
            let name = format!("u{u}");
            fs.create(root, &name).unwrap();
            fs.unlink(root, &name).unwrap()
        })
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    let cext4 = make_cext4_adapter(8192);
    bench_fs(c, "cext4", &cext4);
    let rsfs = make_rsfs(JournalMode::None, 8192);
    bench_fs(c, "rsfs", &rsfs);
    let rsfs_j = make_rsfs(JournalMode::PerOp, 8192);
    bench_fs(c, "rsfs_journal", &rsfs_j);
}

criterion_group!(benches, bench);
criterion_main!(benches);
