//! Table F — the price of shim layers (§4.4: "this type of shim layer is
//! needed between every incremental boundary").
//!
//! The same `getattr` + 4 KiB write pair, crossing:
//!
//! - `boundaries_0` — rsfs called directly;
//! - `boundaries_1` — rsfs exported through the legacy ops table
//!   (`export_legacy`): safe callee, legacy caller — one marshalling shim;
//! - `boundaries_2` — that export re-adapted back to the modular interface
//!   (`LegacyFsAdapter`): two shims, both marshalling directions — the
//!   worst case of a half-migrated kernel;
//! - `boundaries_2_validated` — two shims plus the axiomatic device model
//!   validating every block IO underneath the file system.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use sk_core::spec::AxiomaticDevice;
use sk_fs_safe::rsfs::{JournalMode, Rsfs};
use sk_ksim::block::{BlockDevice, RamDisk};
use sk_legacy::LegacyCtx;
use sk_vfs::modular::FileSystem;
use sk_vfs::shim::{export_legacy, LegacyFsAdapter};

fn rsfs_on(dev: Arc<dyn BlockDevice>) -> Rsfs {
    Rsfs::mkfs(&dev, 1024, 64).expect("mkfs");
    Rsfs::mount(dev, JournalMode::None).expect("mount")
}

fn drive(c: &mut Criterion, label: &str, fs: &dyn FileSystem) {
    let root = fs.root_ino();
    let ino = fs.create(root, "probe").unwrap();
    let payload = vec![1u8; 4096];
    let mut group = c.benchmark_group("shim_overhead");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(800));
    group.bench_function(format!("{label}/getattr"), |b| {
        b.iter(|| fs.getattr(std::hint::black_box(ino)).unwrap())
    });
    group.bench_function(format!("{label}/write_4k"), |b| {
        b.iter(|| fs.write(ino, 0, &payload).unwrap())
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    // 0 boundaries.
    let fs0 = rsfs_on(Arc::new(RamDisk::new(4096)));
    drive(c, "boundaries_0", &fs0);

    // 1 boundary: safe fs behind the legacy ops table, then used through
    // the adapter's modular face (the adapter itself is boundary #1's
    // counter; the ops table is the marshalling layer being priced).
    let ctx = LegacyCtx::new();
    let fs1: Arc<dyn FileSystem> = Arc::new(rsfs_on(Arc::new(RamDisk::new(4096))));
    let ops = Arc::new(export_legacy(Arc::clone(&fs1), &ctx));
    let one = LegacyFsAdapter::new(ops, ctx.clone());
    drive(c, "boundaries_2", &one);

    // 2 boundaries + axiom validation on the device underneath.
    let axio: Arc<dyn BlockDevice> = Arc::new(AxiomaticDevice::new(
        Arc::new(RamDisk::new(4096)) as Arc<dyn BlockDevice>
    ));
    let fs2: Arc<dyn FileSystem> = Arc::new(rsfs_on(axio));
    let ctx2 = LegacyCtx::new();
    let ops2 = Arc::new(export_legacy(Arc::clone(&fs2), &ctx2));
    let two = LegacyFsAdapter::new(ops2, ctx2);
    drive(c, "boundaries_2_validated", &two);
}

criterion_group!(benches, bench);
criterion_main!(benches);
