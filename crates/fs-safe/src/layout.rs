//! On-disk layout of rsfs.
//!
//! ```text
//! block 0                superblock (v2: includes journal geometry)
//! block 1                block bitmap
//! block 2                inode bitmap
//! blocks 3 .. 3+T        inode table (64-byte inodes)
//! blocks 3+T .. J        data
//! blocks J .. end        journal region (see `journal`)
//! ```
//!
//! The inode and dirent formats match the cext4 family (nine direct
//! pointers + one single-indirect; packed `(ino, len, name)` records), but
//! the implementation here is written in the safe idiom: every decode is
//! bounds-checked and corruption reports `EUCLEAN` instead of reading on.

use sk_ksim::errno::{Errno, KResult};

/// rsfs magic number.
pub const MAGIC: u32 = 0x5258_5346; // "RXSF"

/// Block size.
pub const BLOCK_SIZE: usize = 4096;

/// Bytes per on-disk inode.
pub const INODE_SIZE: usize = 64;

/// Inodes per inode-table block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;

/// Direct pointers per inode.
pub const NDIRECT: usize = 9;

/// Entries in the single-indirect block.
pub const NINDIRECT: usize = BLOCK_SIZE / 4;

/// Maximum file size.
pub const MAX_FILE_SIZE: u64 = ((NDIRECT + NINDIRECT) * BLOCK_SIZE) as u64;

/// Superblock block number.
pub const SB_BLOCK: u64 = 0;
/// Block bitmap block number.
pub const BLOCK_BITMAP: u64 = 1;
/// Inode bitmap block number.
pub const INODE_BITMAP: u64 = 2;
/// First inode-table block.
pub const INODE_TABLE: u64 = 3;

/// Root inode number.
pub const ROOT_INO: u64 = 1;

/// Inode mode: free slot.
pub const MODE_FREE: u16 = 0;
/// Inode mode: regular file.
pub const MODE_REG: u16 = 1;
/// Inode mode: directory.
pub const MODE_DIR: u16 = 2;

/// Parsed rsfs superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Magic; must equal [`MAGIC`].
    pub magic: u32,
    /// Total device blocks.
    pub total_blocks: u32,
    /// Inode count.
    pub inode_count: u32,
    /// First data block.
    pub data_start: u32,
    /// First journal block.
    pub journal_start: u32,
    /// Journal length in blocks (including the journal superblock).
    pub journal_blocks: u32,
}

impl Superblock {
    /// Designs a layout: `journal_blocks` are carved off the end.
    pub fn design(total_blocks: u64, inode_count: u32, journal_blocks: u32) -> KResult<Superblock> {
        let table_blocks = (inode_count as usize).div_ceil(INODES_PER_BLOCK) as u64;
        let data_start = INODE_TABLE + table_blocks;
        let journal_start = total_blocks
            .checked_sub(u64::from(journal_blocks))
            .ok_or(Errno::EINVAL)?;
        if journal_blocks < 8
            || journal_start <= data_start + 1
            || total_blocks > (BLOCK_SIZE * 8) as u64
        {
            return Err(Errno::EINVAL);
        }
        Ok(Superblock {
            magic: MAGIC,
            total_blocks: total_blocks as u32,
            inode_count,
            data_start: data_start as u32,
            journal_start: journal_start as u32,
            journal_blocks,
        })
    }

    /// Serializes into a block image.
    pub fn encode(&self, block: &mut [u8]) {
        block[0..4].copy_from_slice(&self.magic.to_le_bytes());
        block[4..8].copy_from_slice(&self.total_blocks.to_le_bytes());
        block[8..12].copy_from_slice(&self.inode_count.to_le_bytes());
        block[12..16].copy_from_slice(&self.data_start.to_le_bytes());
        block[16..20].copy_from_slice(&self.journal_start.to_le_bytes());
        block[20..24].copy_from_slice(&self.journal_blocks.to_le_bytes());
    }

    /// Parses a block image, verifying the magic and internal consistency.
    pub fn decode(block: &[u8]) -> KResult<Superblock> {
        if block.len() < 24 {
            return Err(Errno::EINVAL);
        }
        let sb = Superblock {
            magic: u32::from_le_bytes(block[0..4].try_into().expect("4 bytes")),
            total_blocks: u32::from_le_bytes(block[4..8].try_into().expect("4 bytes")),
            inode_count: u32::from_le_bytes(block[8..12].try_into().expect("4 bytes")),
            data_start: u32::from_le_bytes(block[12..16].try_into().expect("4 bytes")),
            journal_start: u32::from_le_bytes(block[16..20].try_into().expect("4 bytes")),
            journal_blocks: u32::from_le_bytes(block[20..24].try_into().expect("4 bytes")),
        };
        if sb.magic != MAGIC {
            return Err(Errno::EUCLEAN);
        }
        if sb.journal_start + sb.journal_blocks != sb.total_blocks
            || sb.data_start >= sb.journal_start
        {
            return Err(Errno::EUCLEAN);
        }
        Ok(sb)
    }
}

/// Parsed on-disk inode (same wire format as the cext4 family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskInode {
    /// Mode.
    pub mode: u16,
    /// Link count.
    pub nlink: u16,
    /// Size in bytes.
    pub size: u64,
    /// Modification time.
    pub mtime: u64,
    /// Direct pointers.
    pub direct: [u32; NDIRECT],
    /// Single-indirect pointer.
    pub indirect: u32,
}

impl DiskInode {
    /// A zeroed inode.
    pub fn empty() -> DiskInode {
        DiskInode {
            mode: MODE_FREE,
            nlink: 0,
            size: 0,
            mtime: 0,
            direct: [0; NDIRECT],
            indirect: 0,
        }
    }

    /// Serializes into a 64-byte slot.
    pub fn encode(&self, slot: &mut [u8]) {
        slot[0..2].copy_from_slice(&self.mode.to_le_bytes());
        slot[2..4].copy_from_slice(&self.nlink.to_le_bytes());
        slot[4..8].fill(0);
        slot[8..16].copy_from_slice(&self.size.to_le_bytes());
        slot[16..24].copy_from_slice(&self.mtime.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            let o = 24 + i * 4;
            slot[o..o + 4].copy_from_slice(&d.to_le_bytes());
        }
        slot[60..64].copy_from_slice(&self.indirect.to_le_bytes());
    }

    /// Parses a 64-byte slot.
    pub fn decode(slot: &[u8]) -> KResult<DiskInode> {
        if slot.len() < INODE_SIZE {
            return Err(Errno::EUCLEAN);
        }
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            let o = 24 + i * 4;
            *d = u32::from_le_bytes(slot[o..o + 4].try_into().expect("4 bytes"));
        }
        Ok(DiskInode {
            mode: u16::from_le_bytes(slot[0..2].try_into().expect("2 bytes")),
            nlink: u16::from_le_bytes(slot[2..4].try_into().expect("2 bytes")),
            size: u64::from_le_bytes(slot[8..16].try_into().expect("8 bytes")),
            mtime: u64::from_le_bytes(slot[16..24].try_into().expect("8 bytes")),
            direct,
            indirect: u32::from_le_bytes(slot[60..64].try_into().expect("4 bytes")),
        })
    }
}

/// Appends a directory entry record.
pub fn dirent_encode(out: &mut Vec<u8>, ino: u64, name: &str) {
    debug_assert!(name.len() <= 255);
    out.extend_from_slice(&(ino as u32).to_le_bytes());
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
}

/// Parses directory content; every read is bounds-checked.
pub fn dirent_parse(content: &[u8]) -> KResult<Vec<(u64, String)>> {
    let mut entries = Vec::new();
    let mut off = 0usize;
    while off < content.len() {
        let header = content.get(off..off + 5).ok_or(Errno::EUCLEAN)?;
        let ino = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as u64;
        let nlen = header[4] as usize;
        off += 5;
        let name_bytes = content.get(off..off + nlen).ok_or(Errno::EUCLEAN)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| Errno::EUCLEAN)?
            .to_string();
        off += nlen;
        if ino != 0 {
            entries.push((ino, name));
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip_with_journal() {
        let sb = Superblock::design(1024, 256, 64).unwrap();
        assert_eq!(sb.journal_start, 1024 - 64);
        let mut blk = vec![0u8; BLOCK_SIZE];
        sb.encode(&mut blk);
        assert_eq!(Superblock::decode(&blk).unwrap(), sb);
    }

    #[test]
    fn superblock_rejects_inconsistency() {
        let sb = Superblock::design(1024, 256, 64).unwrap();
        let mut blk = vec![0u8; BLOCK_SIZE];
        sb.encode(&mut blk);
        // Corrupt the journal length.
        blk[20] = 0xFF;
        assert_eq!(Superblock::decode(&blk), Err(Errno::EUCLEAN));
    }

    #[test]
    fn design_requires_minimum_journal() {
        assert_eq!(Superblock::design(1024, 64, 4), Err(Errno::EINVAL));
        assert!(Superblock::design(1024, 64, 8).is_ok());
    }

    #[test]
    fn inode_roundtrip() {
        let mut di = DiskInode::empty();
        di.mode = MODE_DIR;
        di.size = 99;
        di.direct[3] = 17;
        di.indirect = 1000;
        let mut slot = vec![0u8; INODE_SIZE];
        di.encode(&mut slot);
        assert_eq!(DiskInode::decode(&slot).unwrap(), di);
        assert_eq!(DiskInode::decode(&slot[..10]), Err(Errno::EUCLEAN));
    }

    #[test]
    fn dirent_parse_is_strict() {
        let mut content = Vec::new();
        dirent_encode(&mut content, 7, "name");
        assert_eq!(
            dirent_parse(&content).unwrap(),
            vec![(7, "name".to_string())]
        );
        // Truncated record: EUCLEAN, never an over-read.
        assert_eq!(dirent_parse(&content[..6]), Err(Errno::EUCLEAN));
        // Invalid UTF-8: EUCLEAN.
        let mut bad = Vec::new();
        bad.extend_from_slice(&7u32.to_le_bytes());
        bad.push(2);
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(dirent_parse(&bad), Err(Errno::EUCLEAN));
    }
}
