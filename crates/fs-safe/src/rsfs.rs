//! The rsfs implementation.
//!
//! Written in the roadmap idiom end to end: no type erasure, `KResult`
//! errors, checked arithmetic ([`sk_core::typesafe::ovf`]), disciplined
//! `i_lock`/`i_size` updates, and — when journaling is on — every mutating
//! operation staged in a transaction overlay and committed atomically via the
//! write-ahead [`Journal`].
//!
//! The type implements [`FileSystem`] (so it drops into the Step-1
//! registry behind the VFS) and [`Refines<FsModel>`] (so the Step-4
//! refinement checker can interpret it as the abstract map-of-paths model
//! after every operation).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sk_core::spec::Refines;
use sk_core::typesafe::ovf;
use sk_ksim::block::BlockDevice;
use sk_ksim::buffer::{BhFlag, BufferCache};
use sk_ksim::errno::{Errno, KResult};
use sk_ksim::lock::{LockRegistry, TrackedMutex, TrackedMutexGuard};
use sk_vfs::inode::{Attr, FileType, Inode, InodeNo};
use sk_vfs::modular::{
    fs_abstraction, validate_name, BatchOp, BatchReply, DirEntry, FileSystem, StatFs, WriteCtx,
};
use sk_vfs::spec::FsModel;

use crate::journal::Journal;
use crate::layout::{
    dirent_encode, dirent_parse, DiskInode, Superblock, BLOCK_BITMAP, BLOCK_SIZE, INODES_PER_BLOCK,
    INODE_BITMAP, INODE_SIZE, INODE_TABLE, MAX_FILE_SIZE, MODE_DIR, MODE_FREE, MODE_REG, NDIRECT,
    NINDIRECT, ROOT_INO, SB_BLOCK,
};

/// Whether rsfs journals its writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalMode {
    /// No journal: writes go through the buffer cache, durable at `sync`.
    /// Crash consistency is best-effort (the benchmark baseline).
    None,
    /// Every operation commits one atomic transaction (data journaling
    /// with deferred, flusher-driven checkpoint) — the crash-checked
    /// configuration.
    PerOp,
    /// Operations *stage* into the journal's running transaction and
    /// return without a flush barrier; durability arrives at the
    /// kupdate-style timer commit, under log pressure, or at an explicit
    /// `fsync`/`sync`. Crash contract: recovery lands on a prefix of the
    /// operation history that includes everything fsync'd before the
    /// crash.
    Async,
}

/// The typed write context rsfs threads from `write_begin` to
/// `write_end` — the Step-2 replacement for cext4's `WriteFsdata` void
/// pointer.
#[derive(Debug, PartialEq, Eq)]
struct RsfsWriteCtx {
    ino: InodeNo,
    off: u64,
    len: usize,
}

/// Default op-lock stripe count for [`Rsfs::mount`]. One stripe is the
/// old global-lock build ([`Rsfs::mount_with_stripes`] exposes it for
/// the equivalence suites).
pub const DEFAULT_OP_STRIPES: usize = 16;

/// Inode-cache shard count (same striping idiom as the buffer cache).
const ICACHE_SHARDS: usize = 8;

/// The safe, journaled file system.
pub struct Rsfs {
    cache: Arc<BufferCache>,
    journal: Option<Journal>,
    /// The mount's journal mode; decides whether `Txn::commit` waits for
    /// the journal barrier (`PerOp`) or stages into the running
    /// transaction (`Async`).
    mode: JournalMode,
    sb: Superblock,
    /// Per-inode-striped op locks serializing the *staging* phase of
    /// mutating operations: ops on files hashing to different stripes
    /// stage into the journal's running transaction concurrently. The
    /// journal append itself happens outside these locks so concurrent
    /// operations merge into one group commit. Sleepable whole-op
    /// locks: staging reads blocks through the cache, so they
    /// legitimately span device I/O (lockdep class `rsfs.op`, io-ok,
    /// ranked by stripe index — multi-stripe ops acquire in fixed
    /// ascending order and lockdep enforces it).
    op_stripes: Vec<TrackedMutex<()>>,
    /// Serializes allocator state (the block and inode bitmaps) across
    /// stripes: taken lazily at a transaction's first bitmap touch and
    /// held through publish, so concurrent stripes never lose each
    /// other's bitmap bits and journal token order matches publish
    /// order for the bitmap blocks. Class `rsfs.alloc`, io-ok. To keep
    /// `stripe → alloc` the only ordering between the classes, a
    /// transaction already holding this lock only ever *trylocks*
    /// further stripes ([`Txn::try_cover`]).
    alloc_lock: TrackedMutex<()>,
    /// One publish lock per inode-table block (class `rsfs.inopub`,
    /// ranked by table-block index). Inode updates are staged as slot
    /// deltas ([`Txn::inode_updates`]) because the table packs
    /// [`INODES_PER_BLOCK`] inodes per block — whole-block staging
    /// under per-inode stripes would lose concurrent neighbors' slots.
    /// Commit holds the locks for every table block it touches from
    /// `begin_op` through publish, so token order equals publish order
    /// for table blocks and each journaled whole-block image contains
    /// exactly the slot updates of smaller-token transactions.
    inopub_locks: Vec<TrackedMutex<()>>,
    /// Pin counts for cache buffers with journaled images the checkpoint
    /// has not yet retired (`BhFlag::Delay` holders). One pin per
    /// (transaction, block), taken at publish and released by the
    /// journal's retire hook, so cache writeback and eviction stay away
    /// from a block's home location for as long as the journal owns it —
    /// checkpoint is the sole home writer. Shared (`Arc`) with the hook
    /// closure installed at mount.
    delay_pins: Arc<Mutex<HashMap<u64, usize>>>,
    lock_registry: Arc<LockRegistry>,
    icache: Vec<Mutex<HashMap<InodeNo, Arc<Inode>>>>,
    op_counter: AtomicU64,
}

/// A staged transaction: an overlay of pending block images plus
/// slot-level inode updates. Mutating operations build it with
/// [`Txn::begin`], which holds the op-lock stripes of every inode the
/// operation mutates so staging is serializable per stripe; read-only
/// paths use [`Txn::new`].
struct Txn<'a> {
    fs: &'a Rsfs,
    writes: BTreeMap<u64, Vec<u8>>,
    /// Staged on-disk inodes, by number. Kept slot-level (not as block
    /// images in `writes`) because the inode table packs
    /// [`INODES_PER_BLOCK`] inodes per block: whole-block staging under
    /// per-inode stripes would clobber concurrent neighbors' slots.
    /// Merged into the *current* table-block content at commit, under
    /// the per-table-block publish locks.
    inode_updates: BTreeMap<InodeNo, DiskInode>,
    /// Held op-lock stripes, ascending by stripe index.
    stripes: Vec<(usize, TrackedMutexGuard<'a, ()>)>,
    /// The allocator lock, taken lazily at the first bitmap touch
    /// ([`Txn::ensure_alloc`]) and held through publish.
    alloc_guard: Option<TrackedMutexGuard<'a, ()>>,
    /// Batch staging only ([`Rsfs::submit_batch`]): the prior overlay
    /// state of everything the current op has touched, first touch only
    /// (`None` = not previously in the overlay). [`Txn::op_scope`]
    /// restores these on op failure, so one misbehaving op rolls back
    /// without cloning the whole accumulated overlay.
    undo: Option<TxnUndo>,
}

/// Per-op first-touch undo records for [`Txn::op_scope`].
#[derive(Default)]
struct TxnUndo {
    blocks: Vec<(u64, Option<Vec<u8>>)>,
    inodes: Vec<(InodeNo, Option<DiskInode>)>,
}

impl<'a> Txn<'a> {
    fn empty(fs: &'a Rsfs) -> Txn<'a> {
        Txn {
            fs,
            writes: BTreeMap::new(),
            inode_updates: BTreeMap::new(),
            stripes: Vec::new(),
            alloc_guard: None,
            undo: None,
        }
    }

    fn new(fs: &'a Rsfs) -> Txn<'a> {
        Txn::empty(fs)
    }

    /// Starts a mutating transaction covering `inos`: takes their op-lock
    /// stripes in ascending index order so staging (and the commit-order
    /// token) is serialized against other mutations of the same files.
    fn begin(fs: &'a Rsfs, inos: &[InodeNo]) -> Txn<'a> {
        let mut idx: Vec<usize> = inos.iter().map(|&i| fs.stripe_of(i)).collect();
        idx.sort_unstable();
        idx.dedup();
        let mut txn = Txn::empty(fs);
        txn.stripes = idx
            .into_iter()
            .map(|s| (s, fs.op_stripes[s].lock()))
            .collect();
        txn
    }

    /// The deterministic fallback when optimistic stripe extension keeps
    /// losing races: take every stripe, ascending.
    fn begin_all(fs: &'a Rsfs) -> Txn<'a> {
        let mut txn = Txn::empty(fs);
        txn.stripes = (0..fs.op_stripes.len())
            .map(|s| (s, fs.op_stripes[s].lock()))
            .collect();
        txn
    }

    fn holds_stripe(&self, s: usize) -> bool {
        self.stripes.iter().any(|(i, _)| *i == s)
    }

    /// Whether every inode in `inos` already has its stripe held.
    fn covers(&self, inos: &[InodeNo]) -> bool {
        inos.iter()
            .all(|&i| self.holds_stripe(self.fs.stripe_of(i)))
    }

    /// Tries to extend the held stripe set to cover `inos` without
    /// breaking the fixed ascending acquisition order. A stripe above
    /// every held index may be taken blocking (that *is* the order) —
    /// unless the allocator lock is already held, in which case blocking
    /// on a stripe could deadlock against that stripe's holder waiting
    /// on the allocator. Everything else is a trylock, which lockdep
    /// exempts from ordering because it cannot block. Returns false if a
    /// needed stripe could not be taken; the caller must drop (or flush)
    /// the transaction and re-begin with the full set.
    fn try_cover(&mut self, inos: &[InodeNo]) -> bool {
        let mut need: Vec<usize> = inos
            .iter()
            .map(|&i| self.fs.stripe_of(i))
            .filter(|&s| !self.holds_stripe(s))
            .collect();
        need.sort_unstable();
        need.dedup();
        for s in need {
            let above_all = self.stripes.last().is_none_or(|(i, _)| s > *i);
            let guard = if above_all && self.alloc_guard.is_none() {
                self.fs.op_stripes[s].lock()
            } else {
                match self.fs.op_stripes[s].try_lock() {
                    Some(g) => g,
                    None => return false,
                }
            };
            let at = self.stripes.partition_point(|(i, _)| *i < s);
            self.stripes.insert(at, (s, guard));
        }
        true
    }

    /// Takes the allocator lock if this transaction does not hold it yet.
    /// Blocking here is safe: `stripe → alloc` is the global order, and
    /// alloc holders never block on a stripe (see [`Txn::try_cover`]).
    fn ensure_alloc(&mut self) {
        if self.alloc_guard.is_none() {
            self.alloc_guard = Some(self.fs.alloc_lock.lock());
        }
    }

    /// Runs `f` as one isolated operation of a batch: every overlay
    /// write it makes is recorded, and rolled back if `f` fails — a
    /// failed op leaves no partial state in the chunk while successful
    /// neighbors keep theirs.
    fn op_scope<R>(&mut self, f: impl FnOnce(&mut Self) -> KResult<R>) -> KResult<R> {
        self.undo = Some(TxnUndo::default());
        let r = f(self);
        let undo = self.undo.take().unwrap_or_default();
        if r.is_err() {
            for (blkno, prior) in undo.blocks.into_iter().rev() {
                match prior {
                    Some(img) => {
                        self.writes.insert(blkno, img);
                    }
                    None => {
                        self.writes.remove(&blkno);
                    }
                }
            }
            for (ino, prior) in undo.inodes.into_iter().rev() {
                match prior {
                    Some(di) => {
                        self.inode_updates.insert(ino, di);
                    }
                    None => {
                        self.inode_updates.remove(&ino);
                    }
                }
            }
        }
        r
    }

    /// Reads a block through the overlay.
    fn read(&self, blkno: u64) -> KResult<Vec<u8>> {
        if let Some(data) = self.writes.get(&blkno) {
            return Ok(data.clone());
        }
        let buf = self.fs.cache.bread(blkno)?;
        Ok(buf.read(|d| d.to_vec()))
    }

    /// Stages a full-block write.
    fn write(&mut self, blkno: u64, data: Vec<u8>) {
        debug_assert_eq!(data.len(), BLOCK_SIZE);
        if let Some(undo) = &mut self.undo {
            if !undo.blocks.iter().any(|(b, _)| *b == blkno) {
                undo.blocks.push((blkno, self.writes.get(&blkno).cloned()));
            }
        }
        self.writes.insert(blkno, data);
    }

    /// Commits the staged writes atomically.
    ///
    /// With a journal, this is the jbd2-style group-commit path:
    /// 1. still holding the op lock, join the open transaction (fixing
    ///    this operation's place in the global commit order) and publish
    ///    the new images into the buffer cache, `Dirty | Delay` — visible
    ///    to readers, pinned against writeback;
    /// 2. release the op lock and hand the images to the journal, where
    ///    concurrent committers merge into one batch with one barrier.
    ///
    /// The pins stay until the deferred *checkpoint* retires the
    /// transaction (the journal's retire hook drops them): the home
    /// locations are written exclusively by the checkpoint, so cache
    /// writeback can never race it into regressing a home block past a
    /// newer committed image.
    ///
    /// Distinct inode-table blocks touched by staged inode updates,
    /// ascending (BTreeMap keys are already sorted).
    fn table_blocks(&self) -> Vec<u64> {
        let mut blks: Vec<u64> = self
            .inode_updates
            .keys()
            .map(|&ino| INODE_TABLE + ino / INODES_PER_BLOCK as u64)
            .collect();
        blks.dedup();
        blks
    }

    /// Blocks this transaction would journal: staged block images plus
    /// one whole-block image per touched inode-table block. The batch
    /// path cuts chunks against this, so a chunk never outgrows one
    /// journal record.
    fn staged_blocks(&self) -> usize {
        self.writes.len() + self.table_blocks().len()
    }

    /// Without a journal the images just dirty the cache.
    fn commit(mut self) -> KResult<()> {
        if self.writes.is_empty() && self.inode_updates.is_empty() {
            return Ok(());
        }
        // Merge the slot-level inode updates into whole-block images
        // under the per-table-block publish locks (ascending, so the
        // ranked `rsfs.inopub` class stays ordered). The locks are held
        // from before `begin_op` until after publish: for any two
        // transactions touching the same table block, lock order fixes
        // token order *and* publish order *and* whose slots each merged
        // image contains — a journaled image at token t holds exactly
        // the slot updates of transactions with tokens ≤ t, so recovery
        // to any token prefix is consistent.
        let tblks = self.table_blocks();
        let mut pub_guards: Vec<TrackedMutexGuard<'_, ()>> = Vec::with_capacity(tblks.len());
        for &blk in &tblks {
            pub_guards.push(self.fs.inopub_locks[(blk - INODE_TABLE) as usize].lock());
        }
        let mut table_imgs: Vec<(u64, Vec<u8>)> = Vec::with_capacity(tblks.len());
        for &blk in &tblks {
            let buf = self.fs.cache.bread(blk)?;
            let mut img = buf.read(|d| d.to_vec());
            for (&ino, di) in &self.inode_updates {
                if INODE_TABLE + ino / INODES_PER_BLOCK as u64 == blk {
                    let slot = (ino % INODES_PER_BLOCK as u64) as usize * INODE_SIZE;
                    di.encode(&mut img[slot..slot + INODE_SIZE]);
                }
            }
            table_imgs.push((blk, img));
        }
        let journal = match &self.fs.journal {
            Some(j) => j,
            None => {
                for (blkno, data) in &self.writes {
                    let buf = self.fs.cache.getblk(*blkno)?;
                    buf.write(|d| d.copy_from_slice(data));
                }
                for (blkno, data) in &table_imgs {
                    let buf = self.fs.cache.getblk(*blkno)?;
                    buf.write(|d| d.copy_from_slice(data));
                }
                return Ok(());
            }
        };
        // The overlay is handed to the journal by move: the cache will
        // hold the published images, so no copy is needed here.
        let mut list: Vec<(u64, Vec<u8>)> = core::mem::take(&mut self.writes).into_iter().collect();
        list.extend(table_imgs);
        let handle = journal.begin_op();
        // Publish to the cache under the stripe/alloc/publish locks,
        // pinned with Delay: readers see the new state immediately,
        // writeback cannot leak it to home locations before the journal
        // record is durable.
        let mut pinned: Vec<u64> = Vec::with_capacity(list.len());
        let mut apply_err = None;
        {
            let mut pins = self.fs.delay_pins.lock();
            for (blkno, data) in &list {
                match self.fs.cache.getblk(*blkno) {
                    Ok(buf) => {
                        buf.write(|d| d.copy_from_slice(data));
                        buf.set_flag(BhFlag::Delay);
                        *pins.entry(*blkno).or_insert(0) += 1;
                        pinned.push(*blkno);
                    }
                    Err(e) => {
                        apply_err = Some(e);
                        break;
                    }
                }
            }
        }
        // Staging is published; later operations may now take the
        // locks, observe this state, and race into the same commit
        // batch.
        drop(pub_guards);
        self.stripes.clear();
        self.alloc_guard = None;
        let res = match apply_err {
            Some(e) => {
                drop(handle); // abort the join so the leader can proceed
                Err(e)
            }
            // PerOp waits for the batch barrier; Async enters the running
            // transaction and returns — durability comes from the timer
            // commit, log pressure, or an fsync.
            None if self.fs.mode == JournalMode::Async => handle.stage(list),
            None => handle.commit(list),
        };
        if let Err(e) = res {
            // The transaction is not durable and must not be observable
            // — and must never reach its home locations. Discard our own
            // pins (clearing Dirty so writeback cannot push the failed
            // images), drain what *is* durable to the homes, then drop
            // our blocks from the cache so reads refetch committed
            // device state.
            self.fs.unpin_discard(&pinned);
            let _ = journal.checkpoint_all();
            // A block still Delay-pinned after our unpin is shared with
            // an earlier committed-but-uncheckpointed transaction; the
            // publish above clobbered its buffer with our failed image,
            // and `invalidate_blocks` below deliberately spares pinned
            // buffers, so that image would stay visible to readers.
            // Roll the buffer content back to the journal's newest
            // committed image for the block.
            for blkno in &pinned {
                if let Some(buf) = self.fs.cache.peek(*blkno) {
                    if buf.test_flag(BhFlag::Delay) {
                        if let Some(img) = journal.committed_image(*blkno) {
                            buf.write(|d| d.copy_from_slice(&img));
                        }
                    }
                }
            }
            self.fs.cache.invalidate_blocks(&pinned);
            return Err(e);
        }
        // Success: the Delay pins stay until the checkpoint retires the
        // batch — the journal's retire hook releases them.
        Ok(())
    }

    // --- transactional metadata helpers -----------------------------------

    fn inode_loc(&self, ino: InodeNo) -> KResult<(u64, usize)> {
        if ino == 0 || ino >= u64::from(self.fs.sb.inode_count) {
            return Err(Errno::EINVAL);
        }
        let blk = INODE_TABLE + ino / INODES_PER_BLOCK as u64;
        let slot = ovf::to_usize(ino % INODES_PER_BLOCK as u64)? * INODE_SIZE;
        Ok((blk, slot))
    }

    fn read_inode(&self, ino: InodeNo) -> KResult<DiskInode> {
        let (blk, slot) = self.inode_loc(ino)?;
        if let Some(di) = self.inode_updates.get(&ino) {
            return Ok(*di);
        }
        // Hot path: decode in place from the cache buffer, no block clone.
        let buf = self.fs.cache.bread(blk)?;
        buf.read(|d| DiskInode::decode(&d[slot..slot + INODE_SIZE]))
    }

    fn write_inode(&mut self, ino: InodeNo, di: &DiskInode) -> KResult<()> {
        self.inode_loc(ino)?; // range check only; staged slot-level
        if let Some(undo) = &mut self.undo {
            if !undo.inodes.iter().any(|(i, _)| *i == ino) {
                undo.inodes
                    .push((ino, self.inode_updates.get(&ino).copied()));
            }
        }
        self.inode_updates.insert(ino, *di);
        Ok(())
    }

    fn bitmap_alloc(&mut self, bitmap_blk: u64, limit: u64, first: u64) -> KResult<u64> {
        self.ensure_alloc();
        let mut data = self.read(bitmap_blk)?;
        for i in first..limit {
            let (byte, bit) = ((i / 8) as usize, (i % 8) as u8);
            if data[byte] & (1 << bit) == 0 {
                data[byte] |= 1 << bit;
                self.write(bitmap_blk, data);
                return Ok(i);
            }
        }
        Err(Errno::ENOSPC)
    }

    fn bitmap_free(&mut self, bitmap_blk: u64, index: u64) -> KResult<()> {
        self.ensure_alloc();
        let mut data = self.read(bitmap_blk)?;
        let (byte, bit) = ((index / 8) as usize, (index % 8) as u8);
        data[byte] &= !(1 << bit);
        self.write(bitmap_blk, data);
        Ok(())
    }

    fn balloc(&mut self) -> KResult<u64> {
        let blk = self.bitmap_alloc(
            BLOCK_BITMAP,
            u64::from(self.fs.sb.journal_start),
            u64::from(self.fs.sb.data_start),
        )?;
        // Fresh blocks start zeroed in the overlay.
        self.write(blk, vec![0u8; BLOCK_SIZE]);
        Ok(blk)
    }

    fn bfree(&mut self, blk: u64) -> KResult<()> {
        self.bitmap_free(BLOCK_BITMAP, blk)
    }

    fn ialloc(&mut self, mode: u16) -> KResult<InodeNo> {
        let ino = self.bitmap_alloc(INODE_BITMAP, u64::from(self.fs.sb.inode_count), 2)?;
        let mut di = DiskInode::empty();
        di.mode = mode;
        di.nlink = 1;
        di.mtime = self.fs.tick();
        self.write_inode(ino, &di)?;
        Ok(ino)
    }

    fn ifree(&mut self, ino: InodeNo) -> KResult<()> {
        self.write_inode(ino, &DiskInode::empty())?;
        self.bitmap_free(INODE_BITMAP, ino)?;
        self.fs.icache_shard(ino).lock().remove(&ino);
        Ok(())
    }

    /// Maps file block `fblk`, allocating when `alloc`.
    fn bmap(&mut self, ino: InodeNo, fblk: u64, alloc: bool) -> KResult<u64> {
        let mut di = self.read_inode(ino)?;
        if (fblk as usize) < NDIRECT {
            let slot = fblk as usize;
            if di.direct[slot] == 0 && alloc {
                di.direct[slot] = ovf::to_u32(self.balloc()?)?;
                self.write_inode(ino, &di)?;
            }
            return Ok(u64::from(di.direct[slot]));
        }
        let idx = ovf::to_usize(ovf::sub(fblk, NDIRECT as u64)?)?;
        if idx >= NINDIRECT {
            return Err(Errno::EFBIG);
        }
        if di.indirect == 0 {
            if !alloc {
                return Ok(0);
            }
            di.indirect = ovf::to_u32(self.balloc()?)?;
            self.write_inode(ino, &di)?;
        }
        let iblk = u64::from(di.indirect);
        let mut idata = self.read(iblk)?;
        let existing = u32::from_le_bytes(idata[idx * 4..idx * 4 + 4].try_into().expect("4"));
        if existing != 0 || !alloc {
            return Ok(u64::from(existing));
        }
        let fresh = ovf::to_u32(self.balloc()?)?;
        idata[idx * 4..idx * 4 + 4].copy_from_slice(&fresh.to_le_bytes());
        self.write(iblk, idata);
        Ok(u64::from(fresh))
    }

    /// Writes `data` at `off` into `ino`, updating size.
    fn write_range(&mut self, ino: InodeNo, off: u64, data: &[u8]) -> KResult<usize> {
        let di = self.read_inode(ino)?;
        if di.mode == MODE_FREE {
            return Err(Errno::ENOENT);
        }
        let end = ovf::add(off, data.len() as u64)?;
        if end > MAX_FILE_SIZE {
            return Err(Errno::EFBIG);
        }
        let mut done = 0usize;
        while done < data.len() {
            let pos = ovf::add(off, done as u64)?;
            let fblk = pos / BLOCK_SIZE as u64;
            let inblk = ovf::to_usize(pos % BLOCK_SIZE as u64)?;
            let n = (BLOCK_SIZE - inblk).min(data.len() - done);
            let dblk = self.bmap(ino, fblk, true)?;
            let mut block = if inblk == 0 && n == BLOCK_SIZE {
                vec![0u8; BLOCK_SIZE]
            } else {
                self.read(dblk)?
            };
            block[inblk..inblk + n].copy_from_slice(&data[done..done + n]);
            self.write(dblk, block);
            done += n;
        }
        let mut di = self.read_inode(ino)?;
        if end > di.size {
            di.size = end;
        }
        di.mtime = self.fs.tick();
        self.write_inode(ino, &di)?;
        Ok(done)
    }

    /// Reads a file range through the overlay. Blocks outside the overlay
    /// are copied straight out of the cache buffer (no per-block clone —
    /// this is the hot read path).
    fn read_range(&mut self, ino: InodeNo, off: u64, buf: &mut [u8]) -> KResult<usize> {
        let di = self.read_inode(ino)?;
        if di.mode == MODE_FREE {
            return Err(Errno::ENOENT);
        }
        if off >= di.size {
            return Ok(0);
        }
        let want = ovf::to_usize((buf.len() as u64).min(ovf::sub(di.size, off)?))?;
        let mut done = 0usize;
        while done < want {
            let pos = ovf::add(off, done as u64)?;
            let fblk = pos / BLOCK_SIZE as u64;
            let inblk = ovf::to_usize(pos % BLOCK_SIZE as u64)?;
            let n = (BLOCK_SIZE - inblk).min(want - done);
            let dblk = self.bmap(ino, fblk, false)?;
            if dblk == 0 {
                buf[done..done + n].fill(0);
            } else if let Some(data) = self.writes.get(&dblk) {
                buf[done..done + n].copy_from_slice(&data[inblk..inblk + n]);
            } else {
                let cached = self.fs.cache.bread(dblk)?;
                cached.read(|d| buf[done..done + n].copy_from_slice(&d[inblk..inblk + n]));
            }
            done += n;
        }
        Ok(done)
    }

    fn dir_content(&mut self, dir: InodeNo) -> KResult<Vec<u8>> {
        let di = self.read_inode(dir)?;
        if di.mode != MODE_DIR {
            return Err(Errno::ENOTDIR);
        }
        let mut content = vec![0u8; ovf::to_usize(di.size)?];
        self.read_range(dir, 0, &mut content)?;
        Ok(content)
    }

    /// Frees blocks beyond `new_size` and zeroes the dropped tail of the
    /// last kept block.
    fn shrink_blocks(&mut self, ino: InodeNo, new_size: u64) -> KResult<()> {
        let keep_blocks = new_size.div_ceil(BLOCK_SIZE as u64);
        if !new_size.is_multiple_of(BLOCK_SIZE as u64) {
            let last_fblk = new_size / BLOCK_SIZE as u64;
            let dblk = self.bmap(ino, last_fblk, false)?;
            if dblk != 0 {
                let cut = ovf::to_usize(new_size % BLOCK_SIZE as u64)?;
                let mut data = self.read(dblk)?;
                data[cut..].fill(0);
                self.write(dblk, data);
            }
        }
        let mut di = self.read_inode(ino)?;
        for slot in 0..NDIRECT {
            if (slot as u64) >= keep_blocks && di.direct[slot] != 0 {
                self.bfree(u64::from(di.direct[slot]))?;
                di.direct[slot] = 0;
            }
        }
        if di.indirect != 0 {
            let iblk = u64::from(di.indirect);
            let mut idata = self.read(iblk)?;
            let mut any_left = false;
            for i in 0..NINDIRECT {
                let e = u32::from_le_bytes(idata[i * 4..i * 4 + 4].try_into().expect("4"));
                if e == 0 {
                    continue;
                }
                let fblk = (NDIRECT + i) as u64;
                if fblk >= keep_blocks {
                    self.bfree(u64::from(e))?;
                    idata[i * 4..i * 4 + 4].fill(0);
                } else {
                    any_left = true;
                }
            }
            self.write(iblk, idata);
            if !any_left {
                self.bfree(iblk)?;
                di.indirect = 0;
            }
        }
        di.size = new_size;
        di.mtime = self.fs.tick();
        self.write_inode(ino, &di)
    }

    fn dir_set_content(&mut self, dir: InodeNo, content: &[u8]) -> KResult<()> {
        let di = self.read_inode(dir)?;
        let old_size = di.size;
        let mut zeroed = di;
        zeroed.size = 0;
        self.write_inode(dir, &zeroed)?;
        if !content.is_empty() {
            self.write_range(dir, 0, content)?;
        }
        if old_size as usize > content.len() {
            self.shrink_blocks(dir, content.len() as u64)?;
        }
        Ok(())
    }

    fn dir_lookup(&mut self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        let content = self.dir_content(dir)?;
        dirent_parse(&content)?
            .into_iter()
            .find(|(_, n)| n == name)
            .map(|(ino, _)| ino)
            .ok_or(Errno::ENOENT)
    }

    fn dir_add(&mut self, dir: InodeNo, name: &str, ino: InodeNo) -> KResult<()> {
        let di = self.read_inode(dir)?;
        let mut entry = Vec::with_capacity(5 + name.len());
        dirent_encode(&mut entry, ino, name);
        self.write_range(dir, di.size, &entry).map(|_| ())
    }

    fn dir_remove(&mut self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        let content = self.dir_content(dir)?;
        let entries = dirent_parse(&content)?;
        let mut found = None;
        let mut rebuilt = Vec::new();
        for (ino, n) in entries {
            if n == name && found.is_none() {
                found = Some(ino);
            } else {
                dirent_encode(&mut rebuilt, ino, &n);
            }
        }
        let victim = found.ok_or(Errno::ENOENT)?;
        self.dir_set_content(dir, &rebuilt)?;
        Ok(victim)
    }
}

impl Rsfs {
    /// Formats `dev`: superblock, bitmaps, inode table, root directory,
    /// and journal region.
    pub fn mkfs(dev: &Arc<dyn BlockDevice>, inode_count: u32, journal_blocks: u32) -> KResult<()> {
        let sb = Superblock::design(dev.num_blocks(), inode_count, journal_blocks)?;
        let bs = dev.block_size();
        let mut blk = vec![0u8; bs];
        sb.encode(&mut blk);
        dev.write_block(SB_BLOCK, &blk)?;

        let mut bitmap = vec![0u8; bs];
        for b in 0..sb.data_start as usize {
            bitmap[b / 8] |= 1 << (b % 8);
        }
        // The journal region is outside the allocatable range by
        // construction (balloc stops at journal_start), but mark it used
        // anyway so statfs counts it out.
        for b in sb.journal_start..sb.total_blocks {
            let b = b as usize;
            bitmap[b / 8] |= 1 << (b % 8);
        }
        dev.write_block(BLOCK_BITMAP, &bitmap)?;

        let mut ibitmap = vec![0u8; bs];
        ibitmap[0] |= 0b11;
        dev.write_block(INODE_BITMAP, &ibitmap)?;

        // One vectored extent zeroes the whole inode table (single seek).
        let table_blocks = (inode_count as usize).div_ceil(INODES_PER_BLOCK) as u64;
        let zeros = vec![0u8; bs * table_blocks as usize];
        dev.write_blocks(INODE_TABLE, table_blocks as usize, &zeros)?;
        let mut root = DiskInode::empty();
        root.mode = MODE_DIR;
        root.nlink = 1;
        let mut tblk = vec![0u8; bs];
        let slot = (ROOT_INO as usize % INODES_PER_BLOCK) * INODE_SIZE;
        root.encode(&mut tblk[slot..slot + INODE_SIZE]);
        dev.write_block(INODE_TABLE, &tblk)?;

        Journal::format(dev, u64::from(sb.journal_start), u64::from(journal_blocks))?;
        dev.flush()
    }

    /// Recovers (replaying any committed transaction) and mounts, with
    /// lockdep enabled.
    pub fn mount(dev: Arc<dyn BlockDevice>, mode: JournalMode) -> KResult<Rsfs> {
        // One registry for the whole mounted system: the journal's
        // commit/space locks, the buffer cache's shards and head
        // mutexes, the op lock, and the generic inode locks all report
        // into a single acquires-after graph.
        Self::mount_with_registry(dev, mode, LockRegistry::new())
    }

    /// [`Rsfs::mount`] with a caller-supplied lock registry. Benchmarks
    /// pass [`LockRegistry::new_disabled`] to measure the uninstrumented
    /// hot path: the acquires-after graph is a debugging facility, and an
    /// enabled registry serializes every tracked acquisition on one
    /// registry mutex — instrumentation cost, not op-path cost.
    pub fn mount_with_registry(
        dev: Arc<dyn BlockDevice>,
        mode: JournalMode,
        lock_registry: Arc<LockRegistry>,
    ) -> KResult<Rsfs> {
        Self::mount_with_stripes(dev, mode, lock_registry, DEFAULT_OP_STRIPES)
    }

    /// [`Rsfs::mount_with_registry`] with an explicit op-lock stripe
    /// count. `1` is the old global-lock build — the equivalence suites
    /// run the same seeded workload against 1 and N stripes and assert
    /// equal post-recovery state.
    pub fn mount_with_stripes(
        dev: Arc<dyn BlockDevice>,
        mode: JournalMode,
        lock_registry: Arc<LockRegistry>,
        op_stripes: usize,
    ) -> KResult<Rsfs> {
        let mut blk = vec![0u8; dev.block_size()];
        dev.read_block(SB_BLOCK, &mut blk)?;
        let sb = Superblock::decode(&blk)?;
        let jstart = u64::from(sb.journal_start);
        let jblocks = u64::from(sb.journal_blocks);
        // Always run recovery at mount, as ext4 does.
        Journal::recover(&dev, jstart, jblocks)?;
        let journal = match mode {
            JournalMode::PerOp | JournalMode::Async => Some(Journal::open_with_registry(
                Arc::clone(&dev),
                jstart,
                jblocks,
                Arc::clone(&lock_registry),
            )?),
            JournalMode::None => None,
        };
        let cache = Arc::new(BufferCache::with_registry(
            dev,
            256,
            8,
            Arc::clone(&lock_registry),
        ));
        let delay_pins: Arc<Mutex<HashMap<u64, usize>>> = Arc::new(Mutex::new(HashMap::new()));
        if let Some(j) = &journal {
            // Checkpoint retirement releases the Delay pins taken at
            // publish: a buffer whose last pin drops is clean — the
            // checkpoint just wrote its exact image home (had a newer
            // committed or in-flight image existed, its pin would still
            // be held and the checkpoint would have skipped the block).
            let pins = Arc::clone(&delay_pins);
            let cache_for_hook = Arc::clone(&cache);
            j.set_retire_hook(move |blknos| {
                let mut pins = pins.lock();
                for blkno in blknos {
                    let Some(count) = pins.get_mut(blkno) else {
                        continue;
                    };
                    *count -= 1;
                    if *count == 0 {
                        pins.remove(blkno);
                        if let Some(buf) = cache_for_hook.peek(*blkno) {
                            buf.clear_flag(BhFlag::Delay);
                            buf.clear_flag(BhFlag::Dirty);
                        }
                    }
                }
            });
        }
        let table_blocks = (sb.inode_count as usize).div_ceil(INODES_PER_BLOCK);
        Ok(Rsfs {
            cache,
            journal,
            mode,
            sb,
            op_stripes: (0..op_stripes.max(1))
                .map(|i| TrackedMutex::new_ranked_io_ok(&lock_registry, "rsfs.op", i as u64, ()))
                .collect(),
            alloc_lock: TrackedMutex::new_io_ok(&lock_registry, "rsfs.alloc", ()),
            inopub_locks: (0..table_blocks)
                .map(|i| {
                    TrackedMutex::new_ranked_io_ok(&lock_registry, "rsfs.inopub", i as u64, ())
                })
                .collect(),
            delay_pins,
            lock_registry,
            icache: (0..ICACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            op_counter: AtomicU64::new(1),
        })
    }

    fn tick(&self) -> u64 {
        self.op_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Op-lock stripe for an inode — the buffer cache's multiplicative
    /// hash, so adjacent inode numbers spread across stripes.
    fn stripe_of(&self, ino: InodeNo) -> usize {
        (ino.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.op_stripes.len()
    }

    /// Inode-cache shard for an inode (same hash, independent count).
    fn icache_shard(&self, ino: InodeNo) -> &Mutex<HashMap<InodeNo, Arc<Inode>>> {
        &self.icache[(ino.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.icache.len()]
    }

    /// Failed-commit cleanup: drops one Delay pin per listed block, and
    /// for a buffer whose pin count reaches zero clears `Dirty` along
    /// with `Delay` — its content is the failed transaction's image,
    /// which must never be written back.
    fn unpin_discard(&self, blknos: &[u64]) {
        if blknos.is_empty() {
            return;
        }
        let mut pins = self.delay_pins.lock();
        for blkno in blknos {
            if let Some(count) = pins.get_mut(blkno) {
                *count -= 1;
                if *count == 0 {
                    pins.remove(blkno);
                    if let Some(buf) = self.cache.peek(*blkno) {
                        buf.clear_flag(BhFlag::Delay);
                        buf.clear_flag(BhFlag::Dirty);
                    }
                }
            }
        }
    }

    /// The journal (when mounted with [`JournalMode::PerOp`] or
    /// [`JournalMode::Async`]).
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Commits the journal's running transaction and waits for its
    /// barrier — the durability point for [`JournalMode::Async`] staged
    /// operations. This is the kupdate-style timer target: hang it off a
    /// [`sk_ksim::workqueue::WorkQueue::queue_periodic`] tick (or a
    /// `Flusher` hook) so staged operations become durable within one
    /// commit interval even without fsync. A no-op when nothing is
    /// staged, and under [`JournalMode::PerOp`]/[`JournalMode::None`].
    pub fn commit_running(&self) -> KResult<()> {
        match &self.journal {
            Some(j) => j.commit_running(),
            None => Ok(()),
        }
    }

    /// The buffer cache (stats; shareable with a `Flusher`).
    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }

    /// Checkpoints up to `max_txns` committed transactions to their home
    /// locations. The deferred-checkpoint drain: hang this off a
    /// [`sk_ksim::workqueue::Flusher`] hook (with an `Arc<Rsfs>`) so the
    /// writeback daemon retires journal space in the background.
    pub fn checkpoint(&self, max_txns: usize) -> KResult<usize> {
        match &self.journal {
            Some(j) => j.checkpoint(max_txns),
            None => Ok(0),
        }
    }

    /// The lock registry backing the generic inodes — test suites assert it
    /// stays violation-free (rsfs is disciplined).
    pub fn lock_registry(&self) -> &Arc<LockRegistry> {
        &self.lock_registry
    }

    /// The generic in-memory inode shared with VFS.
    pub fn vfs_inode(&self, ino: InodeNo) -> KResult<Arc<Inode>> {
        if let Some(i) = self.icache_shard(ino).lock().get(&ino) {
            return Ok(Arc::clone(i));
        }
        let txn = Txn::new(self);
        let di = txn.read_inode(ino)?;
        if di.mode == MODE_FREE {
            return Err(Errno::ENOENT);
        }
        let ftype = if di.mode == MODE_DIR {
            FileType::Directory
        } else {
            FileType::Regular
        };
        let inode = Inode::new(Arc::clone(&self.lock_registry), ino, ftype);
        inode.set_size(di.size);
        let mut shard = self.icache_shard(ino).lock();
        Ok(Arc::clone(shard.entry(ino).or_insert(inode)))
    }

    /// Largest write (bytes) that fits one transaction, leaving slack for
    /// metadata blocks.
    fn max_txn_data(&self) -> usize {
        match &self.journal {
            Some(j) => j.capacity().saturating_sub(8).max(1) * BLOCK_SIZE,
            None => usize::MAX,
        }
    }

    /// Publishes one batch chunk ([`Rsfs::submit_batch`]): commits the
    /// staging transaction (one journal member — the chunk's atomicity
    /// grain), then propagates `i_size` for every file it wrote. On
    /// commit failure, every reply in the chunk that would have claimed
    /// success is rewritten to the commit error — an op is only
    /// acknowledged once its chunk is in the running transaction.
    fn flush_chunk(
        &self,
        txn: Option<Txn<'_>>,
        chunk: &mut Vec<usize>,
        replies: &mut [BatchReply],
        sized: &mut Vec<InodeNo>,
    ) {
        let res = match txn {
            Some(t) => t.commit(),
            None => Ok(()),
        };
        match res {
            Ok(()) => {
                sized.sort_unstable();
                sized.dedup();
                for ino in sized.drain(..) {
                    if let Ok(vi) = self.vfs_inode(ino) {
                        let t = Txn::new(self);
                        if let Ok(di) = t.read_inode(ino) {
                            vi.set_size(di.size);
                        }
                    }
                }
            }
            Err(e) => {
                for &i in chunk.iter() {
                    if replies[i].result().is_ok() {
                        fail_reply(&mut replies[i], e);
                    }
                }
                sized.clear();
            }
        }
        chunk.clear();
    }

    /// Begins a transaction covering `dir`'s stripe *and* the stripe of
    /// the inode `name` currently resolves to (unlink/rmdir need both:
    /// the dentry lives under the directory's stripe, the victim's
    /// blocks and slot under its own). The victim is found by an
    /// optimistic probe, locked, and implicitly re-verified: each retry
    /// re-resolves under the freshly held locks, and a bounded number
    /// of lost races falls back to locking every stripe.
    fn txn_for_victim(&self, dir: InodeNo, name: &str) -> KResult<Txn<'_>> {
        let mut want: Vec<InodeNo> = vec![dir];
        for _ in 0..8 {
            let mut txn = Txn::begin(self, &want);
            let victim = txn.dir_lookup(dir, name)?;
            if txn.covers(&[victim]) || txn.try_cover(&[victim]) {
                return Ok(txn);
            }
            want = vec![dir, victim];
        }
        Ok(Txn::begin_all(self))
    }

    /// Batch staging: makes the open chunk's transaction cover `need`,
    /// preferring optimistic extension ([`Txn::try_cover`]); when a
    /// contended out-of-order stripe blocks extension, the open chunk is
    /// flushed (dropping its stripes) and a fresh transaction begins
    /// with the full set.
    fn cover_for_batch<'a>(
        &'a self,
        txn: &mut Option<Txn<'a>>,
        need: &[InodeNo],
        chunk: &mut Vec<usize>,
        replies: &mut [BatchReply],
        sized: &mut Vec<InodeNo>,
    ) {
        if let Some(t) = txn.as_mut() {
            if t.covers(need) || t.try_cover(need) {
                return;
            }
            self.flush_chunk(txn.take(), chunk, replies, sized);
        }
        *txn = Some(Txn::begin(self, need));
    }
}

/// Rewrites a reply's result to `e`, keeping any returned buffer — used
/// when a chunk commit retroactively fails its staged ops.
fn fail_reply(r: &mut BatchReply, e: Errno) {
    match r {
        BatchReply::Create(res) => *res = Err(e),
        BatchReply::Write { result, .. } | BatchReply::Read { result, .. } => *result = Err(e),
        BatchReply::Fsync(res) | BatchReply::Unlink(res) => *res = Err(e),
    }
}

impl FileSystem for Rsfs {
    fn fs_name(&self) -> &'static str {
        "rsfs"
    }

    fn root_ino(&self) -> InodeNo {
        ROOT_INO
    }

    fn lookup(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        validate_name(name)?;
        let mut txn = Txn::new(self);
        txn.dir_lookup(dir, name)
    }

    fn getattr(&self, ino: InodeNo) -> KResult<Attr> {
        let txn = Txn::new(self);
        let di = txn.read_inode(ino)?;
        if di.mode == MODE_FREE {
            return Err(Errno::ENOENT);
        }
        Ok(Attr {
            ino,
            ftype: if di.mode == MODE_DIR {
                FileType::Directory
            } else {
                FileType::Regular
            },
            size: di.size,
            nlink: u32::from(di.nlink),
            mtime_ns: di.mtime,
        })
    }

    fn create(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        validate_name(name)?;
        let mut txn = Txn::begin(self, &[dir]);
        match txn.dir_lookup(dir, name) {
            Ok(_) => return Err(Errno::EEXIST),
            Err(Errno::ENOENT) => {}
            Err(e) => return Err(e),
        }
        let ino = txn.ialloc(MODE_REG)?;
        txn.dir_add(dir, name, ino)?;
        txn.commit()?;
        Ok(ino)
    }

    fn mkdir(&self, dir: InodeNo, name: &str) -> KResult<InodeNo> {
        validate_name(name)?;
        let mut txn = Txn::begin(self, &[dir]);
        match txn.dir_lookup(dir, name) {
            Ok(_) => return Err(Errno::EEXIST),
            Err(Errno::ENOENT) => {}
            Err(e) => return Err(e),
        }
        let ino = txn.ialloc(MODE_DIR)?;
        txn.dir_add(dir, name, ino)?;
        txn.commit()?;
        Ok(ino)
    }

    fn unlink(&self, dir: InodeNo, name: &str) -> KResult<()> {
        validate_name(name)?;
        let mut txn = self.txn_for_victim(dir, name)?;
        let victim = txn.dir_lookup(dir, name)?;
        let di = txn.read_inode(victim)?;
        if di.mode == MODE_DIR {
            return Err(Errno::EISDIR);
        }
        txn.dir_remove(dir, name)?;
        txn.shrink_blocks(victim, 0)?;
        txn.ifree(victim)?;
        txn.commit()
    }

    fn rmdir(&self, dir: InodeNo, name: &str) -> KResult<()> {
        validate_name(name)?;
        let mut txn = self.txn_for_victim(dir, name)?;
        let victim = txn.dir_lookup(dir, name)?;
        let di = txn.read_inode(victim)?;
        if di.mode != MODE_DIR {
            return Err(Errno::ENOTDIR);
        }
        let content = txn.dir_content(victim)?;
        if !dirent_parse(&content)?.is_empty() {
            return Err(Errno::ENOTEMPTY);
        }
        txn.dir_remove(dir, name)?;
        txn.shrink_blocks(victim, 0)?;
        txn.ifree(victim)?;
        txn.commit()
    }

    fn read(&self, ino: InodeNo, off: u64, buf: &mut [u8]) -> KResult<usize> {
        let mut txn = Txn::new(self);
        let di = txn.read_inode(ino)?;
        if di.mode == MODE_DIR {
            return Err(Errno::EISDIR);
        }
        txn.read_range(ino, off, buf)
    }

    fn write(&self, ino: InodeNo, off: u64, data: &[u8]) -> KResult<usize> {
        {
            let probe = Txn::new(self);
            let di = probe.read_inode(ino)?;
            if di.mode == MODE_DIR {
                return Err(Errno::EISDIR);
            }
        }
        // Chunk oversized writes into successive atomic transactions.
        // Each chunk takes the op lock itself (Txn::begin) and releases
        // it once staged, so concurrent writers interleave per chunk and
        // group-commit can batch them.
        let chunk = self.max_txn_data();
        let mut done = 0usize;
        while done < data.len() {
            let n = chunk.min(data.len() - done);
            let mut txn = Txn::begin(self, &[ino]);
            txn.write_range(ino, ovf::add(off, done as u64)?, &data[done..done + n])?;
            txn.commit()?;
            done += n;
        }
        if data.is_empty() {
            return Ok(0);
        }
        // Disciplined i_size propagation to the shared generic inode.
        if let Ok(vi) = self.vfs_inode(ino) {
            let txn = Txn::new(self);
            let di = txn.read_inode(ino)?;
            vi.set_size(di.size);
        }
        Ok(done)
    }

    fn write_begin(&self, ino: InodeNo, off: u64, len: usize) -> KResult<WriteCtx> {
        // The typed replacement for cext4's `void *` fsdata: the context
        // is validated up front and travels in a move-only token. A
        // mismatched consumer gets a *checked* failure (EINVAL), never a
        // reinterpretation.
        let txn = Txn::new(self);
        let di = txn.read_inode(ino)?;
        if di.mode != MODE_REG {
            return Err(Errno::EISDIR);
        }
        if ovf::add(off, len as u64)? > MAX_FILE_SIZE {
            return Err(Errno::EFBIG);
        }
        Ok(sk_core::typesafe::Token::new(Box::new(RsfsWriteCtx {
            ino,
            off,
            len,
        })))
    }

    fn write_end(&self, ino: InodeNo, off: u64, data: &[u8], ctx: WriteCtx) -> KResult<usize> {
        let boxed = ctx.consume();
        let wc = boxed
            .downcast::<RsfsWriteCtx>()
            .map_err(|_| Errno::EINVAL)?;
        if wc.ino != ino || wc.off != off || wc.len != data.len() {
            return Err(Errno::EINVAL);
        }
        self.write(ino, off, data)
    }

    fn readdir(&self, dir: InodeNo) -> KResult<Vec<DirEntry>> {
        let mut txn = Txn::new(self);
        let content = txn.dir_content(dir)?;
        Ok(dirent_parse(&content)?
            .into_iter()
            .map(|(ino, name)| DirEntry { name, ino })
            .collect())
    }

    fn rename(
        &self,
        olddir: InodeNo,
        oldname: &str,
        newdir: InodeNo,
        newname: &str,
    ) -> KResult<()> {
        validate_name(oldname)?;
        validate_name(newname)?;
        // Stripe set: both directories, plus the existing target inode
        // if the destination name is taken (its blocks and slot are
        // freed below). The target is probed, locked, and re-verified
        // on retry; persistent races fall back to every stripe. The
        // source inode needs no stripe — its slot is not written, and
        // its dentry is covered by the directories' stripes.
        let mut want: Vec<InodeNo> = vec![olddir, newdir];
        let mut ready = None;
        for _ in 0..8 {
            let mut t = Txn::begin(self, &want);
            match t.dir_lookup(newdir, newname) {
                Ok(existing) if !t.covers(&[existing]) => {
                    if t.try_cover(&[existing]) {
                        ready = Some(t);
                        break;
                    }
                    want = vec![olddir, newdir, existing];
                }
                _ => {
                    ready = Some(t);
                    break;
                }
            }
        }
        let mut txn = ready.unwrap_or_else(|| Txn::begin_all(self));
        let src = txn.dir_lookup(olddir, oldname)?;
        if olddir == newdir && oldname == newname {
            return Ok(());
        }
        let src_di = txn.read_inode(src)?;
        match txn.dir_lookup(newdir, newname) {
            Ok(existing) => {
                let tgt_di = txn.read_inode(existing)?;
                if src_di.mode == MODE_REG {
                    if tgt_di.mode == MODE_DIR {
                        return Err(Errno::EISDIR);
                    }
                } else {
                    if tgt_di.mode != MODE_DIR {
                        return Err(Errno::ENOTDIR);
                    }
                    let content = txn.dir_content(existing)?;
                    if !dirent_parse(&content)?.is_empty() {
                        return Err(Errno::ENOTEMPTY);
                    }
                }
                txn.dir_remove(newdir, newname)?;
                txn.shrink_blocks(existing, 0)?;
                txn.ifree(existing)?;
            }
            Err(Errno::ENOENT) => {}
            Err(e) => return Err(e),
        }
        txn.dir_remove(olddir, oldname)?;
        txn.dir_add(newdir, newname, src)?;
        txn.commit()
    }

    fn truncate(&self, ino: InodeNo, size: u64) -> KResult<()> {
        if size > MAX_FILE_SIZE {
            return Err(Errno::EFBIG);
        }
        let mut txn = Txn::begin(self, &[ino]);
        let di = txn.read_inode(ino)?;
        if di.mode != MODE_REG {
            return Err(Errno::EISDIR);
        }
        if size < di.size {
            txn.shrink_blocks(ino, size)?;
        } else {
            let mut di = di;
            di.size = size;
            di.mtime = self.tick();
            txn.write_inode(ino, &di)?;
        }
        txn.commit()?;
        if let Ok(vi) = self.vfs_inode(ino) {
            vi.set_size(size);
        }
        Ok(())
    }

    fn fsync(&self, ino: InodeNo) -> KResult<()> {
        // Validate the inode, then commit the running transaction and
        // wait for its barrier. Like ext4, fsync is a *global* durability
        // point: the journal's token order means this file's staged
        // writes cannot become durable without every operation staged
        // before them, so committing the whole running transaction is
        // both correct and the cheapest sound choice. Under PerOp every
        // acknowledged op is already durable and this is a no-op; without
        // a journal, fall back to writing the whole cache back.
        let txn = Txn::new(self);
        let di = txn.read_inode(ino)?;
        if di.mode == MODE_FREE {
            return Err(Errno::ENOENT);
        }
        drop(txn);
        match &self.journal {
            Some(j) => j.commit_running(),
            None => self.cache.sync_all(),
        }
    }

    fn sync(&self) -> KResult<()> {
        // With a journal: commit the running transaction (Async staged
        // ops become durable), drain deferred checkpoints so home
        // locations catch up with every committed transaction, then
        // write back whatever the cache still holds dirty. Without one,
        // the cache is the only copy — push it all out.
        if let Some(j) = &self.journal {
            j.commit_running()?;
            j.checkpoint_all()?;
        }
        self.cache.sync_all()
    }

    fn quiesce_for_handoff(&self) -> KResult<()> {
        // `sync` commits the running transaction and drains every
        // deferred checkpoint; the checkpoint retire hook releases
        // delayed-durability pins as their transactions reach home
        // locations. A pin still held afterwards means some dirty state
        // is pinned in the cache with this generation as its only
        // writer — handing off now would strand it, so refuse and let
        // the migrator abort with the workload intact.
        self.sync()?;
        if !self.delay_pins.lock().is_empty() {
            return Err(Errno::EBUSY);
        }
        Ok(())
    }

    fn statfs(&self) -> KResult<StatFs> {
        let txn = Txn::new(self);
        let bitmap = txn.read(BLOCK_BITMAP)?;
        let blocks_free = (u64::from(self.sb.data_start)..u64::from(self.sb.journal_start))
            .filter(|i| bitmap[(i / 8) as usize] & (1 << (i % 8)) == 0)
            .count() as u64;
        let ibitmap = txn.read(INODE_BITMAP)?;
        let inodes_free = (0..u64::from(self.sb.inode_count))
            .filter(|i| ibitmap[(i / 8) as usize] & (1 << (i % 8)) == 0)
            .count() as u64;
        Ok(StatFs {
            blocks_total: u64::from(self.sb.journal_start) - u64::from(self.sb.data_start),
            blocks_free,
            inodes_total: u64::from(self.sb.inode_count) - 2,
            inodes_free,
        })
    }

    /// Batch staging — the ring's fast path.
    ///
    /// The per-call interface pays one op-lock acquisition, one journal
    /// join, and one overlay per operation. Here the batch is cut into
    /// *chunks*: each chunk holds the op lock once, stages every op into
    /// a single shared overlay (metadata blocks touched by several ops —
    /// directory, inode table, bitmaps — are staged once, not once per
    /// op), and enters the journal as **one** member, so recovery sees
    /// each chunk atomically and every recovered state is a
    /// chunk-boundary prefix of the submission order — a valid op-order
    /// prefix.
    ///
    /// Contract details:
    ///
    /// - A failed op rolls back its own overlay writes ([`Txn::op_scope`])
    ///   and fails alone; its neighbors stay staged.
    /// - If the *chunk commit* fails (journal abort, `EROFS`), every op
    ///   staged in that chunk is retroactively failed in its reply —
    ///   acknowledgment is only truthful once the chunk has entered the
    ///   running transaction.
    /// - [`BatchOp::Fsync`] is a durability point for everything earlier
    ///   in the batch (and, by token order, everything staged before it).
    ///   All fsyncs in a batch *coalesce*: the covering commit runs once,
    ///   after the last chunk is staged and before any CQE is posted, so
    ///   N fsync SQEs cost one barrier instead of N — legal because a
    ///   CQE's durability promise is a floor, and every fsync's covered
    ///   prefix is a subset of what the batch-end commit makes durable.
    /// - Chunks are cut before the overlay could outgrow one journal
    ///   record, so a batch never trips the `ENOSPC` oversize check.
    fn submit_batch(&self, ops: Vec<BatchOp>) -> Vec<BatchReply> {
        // Same metadata slack as max_txn_data: cut the chunk while every
        // op's worst-case block touch still fits the record.
        let chunk_blocks = match &self.journal {
            Some(j) => j.capacity().saturating_sub(8).max(1),
            None => usize::MAX,
        };
        let mut replies: Vec<BatchReply> = Vec::with_capacity(ops.len());
        // Indices (into `replies`) of ops staged in — or reading through —
        // the open chunk; rewritten to the commit error if it fails.
        let mut chunk: Vec<usize> = Vec::new();
        // Files written in the open chunk, for i_size propagation.
        let mut sized: Vec<InodeNo> = Vec::new();
        // Reply indices of validated fsyncs awaiting the batch-end
        // covering commit.
        let mut fsyncs: Vec<usize> = Vec::new();
        let mut txn: Option<Txn<'_>> = None;

        for op in ops {
            let idx = replies.len();
            match op {
                BatchOp::Fsync { ino } => {
                    // Validate now (through the open chunk, so a
                    // same-batch create is visible); the covering commit
                    // is deferred to batch end, where all the batch's
                    // fsyncs share one barrier.
                    let r = match &mut txn {
                        Some(t) => t.op_scope(|t| {
                            let di = t.read_inode(ino)?;
                            if di.mode == MODE_FREE {
                                return Err(Errno::ENOENT);
                            }
                            Ok(())
                        }),
                        None => (|| {
                            let t = Txn::new(self);
                            let di = t.read_inode(ino)?;
                            if di.mode == MODE_FREE {
                                return Err(Errno::ENOENT);
                            }
                            Ok(())
                        })(),
                    };
                    if r.is_ok() {
                        if txn.is_some() {
                            // Chunk-tainted: the inode it validated is
                            // only real if the chunk commits.
                            chunk.push(idx);
                        }
                        fsyncs.push(idx);
                    }
                    replies.push(BatchReply::Fsync(r));
                }
                BatchOp::Create { dir, name } => {
                    self.cover_for_batch(&mut txn, &[dir], &mut chunk, &mut replies, &mut sized);
                    let t = txn.as_mut().expect("cover_for_batch leaves a txn");
                    let r = t.op_scope(|t| {
                        validate_name(&name)?;
                        match t.dir_lookup(dir, &name) {
                            Ok(_) => return Err(Errno::EEXIST),
                            Err(Errno::ENOENT) => {}
                            Err(e) => return Err(e),
                        }
                        let ino = t.ialloc(MODE_REG)?;
                        t.dir_add(dir, &name, ino)?;
                        Ok(ino)
                    });
                    if r.is_ok() {
                        chunk.push(idx);
                    }
                    replies.push(BatchReply::Create(r));
                }
                BatchOp::Unlink { dir, name } => {
                    // Probe the victim under the directory's stripe,
                    // then extend coverage to the victim's stripe —
                    // retrying (bounded) when the optimistic extension
                    // loses a race, with an all-stripes fallback.
                    let mut want: Vec<InodeNo> = vec![dir];
                    let mut attempts = 0;
                    let r = loop {
                        self.cover_for_batch(&mut txn, &want, &mut chunk, &mut replies, &mut sized);
                        let t = txn.as_mut().expect("cover_for_batch leaves a txn");
                        let probe = t.op_scope(|t| {
                            validate_name(&name)?;
                            t.dir_lookup(dir, &name)
                        });
                        let victim = match probe {
                            Ok(v) => v,
                            Err(e) => break Err(e),
                        };
                        if t.covers(&[victim]) || t.try_cover(&[victim]) {
                            break t.op_scope(|t| {
                                let di = t.read_inode(victim)?;
                                if di.mode == MODE_DIR {
                                    return Err(Errno::EISDIR);
                                }
                                t.dir_remove(dir, &name)?;
                                t.shrink_blocks(victim, 0)?;
                                t.ifree(victim)
                            });
                        }
                        attempts += 1;
                        if attempts < 8 {
                            want = vec![dir, victim];
                        } else {
                            self.flush_chunk(txn.take(), &mut chunk, &mut replies, &mut sized);
                            txn = Some(Txn::begin_all(self));
                        }
                    };
                    if r.is_ok() {
                        chunk.push(idx);
                    }
                    replies.push(BatchReply::Unlink(r));
                }
                BatchOp::Write { ino, off, data } => {
                    if data.len() > self.max_txn_data() {
                        // Oversized write: flush the chunk (releasing the
                        // op lock), then take the per-call path, which
                        // chunks the data itself.
                        self.flush_chunk(txn.take(), &mut chunk, &mut replies, &mut sized);
                        let result = self.write(ino, off, &data);
                        replies.push(BatchReply::Write { result, buf: data });
                    } else {
                        self.cover_for_batch(
                            &mut txn,
                            &[ino],
                            &mut chunk,
                            &mut replies,
                            &mut sized,
                        );
                        let t = txn.as_mut().expect("cover_for_batch leaves a txn");
                        let r = t.op_scope(|t| {
                            let di = t.read_inode(ino)?;
                            if di.mode == MODE_DIR {
                                return Err(Errno::EISDIR);
                            }
                            t.write_range(ino, off, &data)
                        });
                        if r.is_ok() {
                            chunk.push(idx);
                            sized.push(ino);
                        }
                        replies.push(BatchReply::Write {
                            result: r,
                            buf: data,
                        });
                    }
                }
                BatchOp::Read { ino, off, mut buf } => {
                    let result = match &mut txn {
                        // A chunk is open: read through its overlay so the
                        // batch observes its own earlier writes. The read
                        // is chunk-tainted — if the chunk's commit fails,
                        // what it saw never existed.
                        Some(t) => {
                            let r = t.op_scope(|t| {
                                let di = t.read_inode(ino)?;
                                if di.mode == MODE_DIR {
                                    return Err(Errno::EISDIR);
                                }
                                t.read_range(ino, off, &mut buf)
                            });
                            if r.is_ok() {
                                chunk.push(idx);
                            }
                            r
                        }
                        // No open chunk: committed state only, no taint.
                        None => self.read(ino, off, &mut buf),
                    };
                    replies.push(BatchReply::Read { result, buf });
                }
            }
            if txn
                .as_ref()
                .is_some_and(|t| t.staged_blocks() >= chunk_blocks)
            {
                self.flush_chunk(txn.take(), &mut chunk, &mut replies, &mut sized);
            }
        }
        self.flush_chunk(txn.take(), &mut chunk, &mut replies, &mut sized);
        if !fsyncs.is_empty() {
            // The coalesced durability point: one commit covers every
            // fsync in the batch, and it runs before any CQE is posted.
            let res = match &self.journal {
                Some(j) => j.commit_running(),
                None => self.cache.sync_all(),
            };
            if let Err(e) = res {
                for &i in &fsyncs {
                    if replies[i].result().is_ok() {
                        fail_reply(&mut replies[i], e);
                    }
                }
            }
        }
        replies
    }
}

impl Refines<FsModel> for Rsfs {
    fn abstraction(&self) -> FsModel {
        fs_abstraction(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sk_ksim::block::RamDisk;

    fn mount(mode: JournalMode) -> Rsfs {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(1024));
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        Rsfs::mount(dev, mode).unwrap()
    }

    #[test]
    fn flusher_hook_drains_deferred_checkpoints() {
        use sk_ksim::time::SimClock;
        use sk_ksim::workqueue::{Flusher, WorkQueue};

        let clock = Arc::new(SimClock::new());
        let ram = Arc::new(sk_ksim::block::RamDisk::with_geometry(
            1024,
            BLOCK_SIZE,
            Arc::clone(&clock),
        ));
        let dev: Arc<dyn BlockDevice> = ram;
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        let fs = Arc::new(Rsfs::mount(dev, JournalMode::PerOp).unwrap());

        let wq = WorkQueue::new(Arc::clone(&clock));
        let flusher = Flusher::new(Arc::clone(fs.cache()), Arc::clone(&wq), 1_000);
        let hooked = Arc::clone(&fs);
        flusher.add_hook(move || hooked.checkpoint(usize::MAX).map(|_| ()));
        flusher.start();

        let ino = fs.create(ROOT_INO, "bg").unwrap();
        fs.write(ino, 0, b"background-drain").unwrap();
        let j = fs.journal().unwrap();
        assert!(
            j.pending_checkpoints() > 0,
            "commits deferred, not checkpointed"
        );

        clock.advance(1_000);
        assert!(wq.pump() >= 1);
        assert_eq!(
            j.pending_checkpoints(),
            0,
            "the writeback daemon drained them"
        );
        assert!(j.stats().checkpoints >= 1);
    }

    /// Journaled blocks belong to the checkpoint until it retires them:
    /// cache writeback must never write their homes (Delay pins hold
    /// from publish to retire), and after the checkpoint has written the
    /// homes itself the buffers are clean, so writeback still has
    /// nothing to do. This single-writer discipline is what makes the
    /// checkpoint's newer-image skip race-free.
    #[test]
    fn writeback_never_touches_journaled_homes() {
        let fs = mount(JournalMode::PerOp);
        let ino = fs.create(ROOT_INO, "pinned").unwrap();
        fs.write(ino, 0, b"not yet home").unwrap();
        fs.cache().sync_all().unwrap();
        assert_eq!(
            fs.cache().stats().writebacks,
            0,
            "every journaled block stays Delay-pinned until checkpoint"
        );
        assert!(fs.journal().unwrap().pending_checkpoints() > 0);
        fs.checkpoint(usize::MAX).unwrap();
        fs.cache().sync_all().unwrap();
        assert_eq!(
            fs.cache().stats().writebacks,
            0,
            "checkpoint wrote the homes and retired the pins; nothing left dirty"
        );
        // Reads still see the data, and the checkpointed image is sound.
        let mut buf = vec![0u8; 16];
        let n = fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"not yet home");
    }

    #[test]
    fn create_write_read_roundtrip() {
        for mode in [JournalMode::PerOp, JournalMode::None] {
            let fs = mount(mode);
            let ino = fs.create(ROOT_INO, "f.txt").unwrap();
            assert_eq!(fs.write(ino, 0, b"hello rsfs").unwrap(), 10);
            let mut buf = vec![0u8; 32];
            let n = fs.read(ino, 0, &mut buf).unwrap();
            assert_eq!(&buf[..n], b"hello rsfs");
            let attr = fs.getattr(ino).unwrap();
            assert_eq!(attr.size, 10);
            assert_eq!(attr.ftype, FileType::Regular);
        }
    }

    #[test]
    fn lookup_and_readdir() {
        let fs = mount(JournalMode::PerOp);
        let a = fs.create(ROOT_INO, "a").unwrap();
        let d = fs.mkdir(ROOT_INO, "d").unwrap();
        assert_eq!(fs.lookup(ROOT_INO, "a").unwrap(), a);
        assert_eq!(fs.lookup(ROOT_INO, "d").unwrap(), d);
        assert_eq!(fs.lookup(ROOT_INO, "x"), Err(Errno::ENOENT));
        let mut names: Vec<String> = fs
            .readdir(ROOT_INO)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        names.sort();
        assert_eq!(names, vec!["a", "d"]);
    }

    #[test]
    fn large_file_spans_indirect() {
        let fs = mount(JournalMode::PerOp);
        let ino = fs.create(ROOT_INO, "big").unwrap();
        let data: Vec<u8> = (0..(12 * BLOCK_SIZE)).map(|i| (i % 251) as u8).collect();
        assert_eq!(fs.write(ino, 0, &data).unwrap(), data.len());
        let mut out = vec![0u8; data.len()];
        assert_eq!(fs.read(ino, 0, &mut out).unwrap(), data.len());
        assert_eq!(out, data);
    }

    #[test]
    fn oversized_write_is_chunked_into_transactions() {
        let fs = mount(JournalMode::PerOp);
        let ino = fs.create(ROOT_INO, "huge").unwrap();
        let commits_before = fs.journal().unwrap().stats().commits;
        // Larger than one transaction's data budget.
        let data = vec![7u8; fs.max_txn_data() + BLOCK_SIZE];
        fs.write(ino, 0, &data).unwrap();
        let commits_after = fs.journal().unwrap().stats().commits;
        assert!(commits_after - commits_before >= 2, "chunked into >=2 txns");
        let mut out = vec![0u8; data.len()];
        fs.read(ino, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unlink_reclaims_space() {
        let fs = mount(JournalMode::PerOp);
        let before = fs.statfs().unwrap();
        let ino = fs.create(ROOT_INO, "f").unwrap();
        fs.write(ino, 0, &vec![1u8; 3 * BLOCK_SIZE]).unwrap();
        fs.unlink(ROOT_INO, "f").unwrap();
        let after = fs.statfs().unwrap();
        assert_eq!(before.blocks_free, after.blocks_free);
        assert_eq!(before.inodes_free, after.inodes_free);
    }

    #[test]
    fn rename_moves_and_replaces() {
        let fs = mount(JournalMode::PerOp);
        let a = fs.create(ROOT_INO, "a").unwrap();
        fs.write(a, 0, b"content-a").unwrap();
        let b = fs.create(ROOT_INO, "b").unwrap();
        fs.write(b, 0, b"content-b").unwrap();
        fs.rename(ROOT_INO, "a", ROOT_INO, "b").unwrap();
        assert_eq!(fs.lookup(ROOT_INO, "a"), Err(Errno::ENOENT));
        let ino = fs.lookup(ROOT_INO, "b").unwrap();
        let mut buf = vec![0u8; 16];
        let n = fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"content-a");
    }

    #[test]
    fn directory_tree_operations() {
        let fs = mount(JournalMode::PerOp);
        let d1 = fs.mkdir(ROOT_INO, "d1").unwrap();
        let d2 = fs.mkdir(d1, "d2").unwrap();
        let f = fs.create(d2, "leaf").unwrap();
        fs.write(f, 0, b"deep").unwrap();
        assert_eq!(fs.rmdir(ROOT_INO, "d1"), Err(Errno::ENOTEMPTY));
        assert_eq!(fs.rmdir(d1, "d2"), Err(Errno::ENOTEMPTY));
        fs.unlink(d2, "leaf").unwrap();
        fs.rmdir(d1, "d2").unwrap();
        fs.rmdir(ROOT_INO, "d1").unwrap();
        assert!(fs.readdir(ROOT_INO).unwrap().is_empty());
    }

    #[test]
    fn truncate_semantics_match_model() {
        let fs = mount(JournalMode::PerOp);
        let ino = fs.create(ROOT_INO, "t").unwrap();
        fs.write(ino, 0, b"abcdef").unwrap();
        fs.truncate(ino, 3).unwrap();
        fs.truncate(ino, 6).unwrap();
        let mut buf = vec![0u8; 6];
        fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc\0\0\0");
    }

    #[test]
    fn refinement_abstraction_matches_model_ops() {
        let fs = mount(JournalMode::PerOp);
        let mut model = FsModel::new();
        let d = fs.mkdir(ROOT_INO, "dir").unwrap();
        model = model.mkdir("/dir").unwrap();
        let f = fs.create(d, "file").unwrap();
        model = model.create("/dir/file").unwrap();
        fs.write(f, 2, b"xyz").unwrap();
        model = model.write("/dir/file", 2, b"xyz").unwrap();
        assert_eq!(fs.abstraction(), model);
        fs.rename(ROOT_INO, "dir", ROOT_INO, "moved").unwrap();
        model = model.rename("/dir", "/moved").unwrap();
        assert_eq!(fs.abstraction(), model);
    }

    #[test]
    fn rsfs_is_lock_disciplined() {
        let fs = mount(JournalMode::PerOp);
        let ino = fs.create(ROOT_INO, "f").unwrap();
        fs.write(ino, 0, b"data").unwrap();
        fs.truncate(ino, 2).unwrap();
        assert!(
            fs.lock_registry().violations().is_empty(),
            "the safe file system never touches i_size without i_lock"
        );
    }

    #[test]
    fn durability_across_remount() {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(1024));
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        {
            let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).unwrap();
            let ino = fs.create(ROOT_INO, "persist").unwrap();
            fs.write(ino, 0, b"durable").unwrap();
            // No explicit sync: PerOp journaling is durable per operation.
        }
        let fs2 = Rsfs::mount(dev, JournalMode::PerOp).unwrap();
        let ino = fs2.lookup(ROOT_INO, "persist").unwrap();
        let mut buf = vec![0u8; 16];
        let n = fs2.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"durable");
    }

    #[test]
    fn unjournaled_mode_requires_sync_for_durability() {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(1024));
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        {
            let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::None).unwrap();
            let ino = fs.create(ROOT_INO, "v").unwrap();
            fs.write(ino, 0, b"volatile").unwrap();
            fs.sync().unwrap();
        }
        let fs2 = Rsfs::mount(dev, JournalMode::None).unwrap();
        assert!(fs2.lookup(ROOT_INO, "v").is_ok());
    }

    #[test]
    fn name_validation_enforced() {
        let fs = mount(JournalMode::PerOp);
        assert_eq!(fs.create(ROOT_INO, ""), Err(Errno::EINVAL));
        assert_eq!(fs.create(ROOT_INO, "a/b"), Err(Errno::EINVAL));
        assert_eq!(fs.create(ROOT_INO, ".."), Err(Errno::EINVAL));
    }

    #[test]
    fn model1_write_owned_consumes_the_buffer() {
        use sk_core::ownership::Owned;
        let fs = mount(JournalMode::PerOp);
        let ino = fs.create(ROOT_INO, "f").unwrap();
        let payload = Owned::new(vec![5u8; 1000]);
        // Ownership passes into the file system; the callee frees.
        assert_eq!(fs.write_owned(ino, 0, payload).unwrap(), 1000);
        // (Using `payload` here would not compile: the caller gave it up.)
        let mut buf = vec![0u8; 1000];
        assert_eq!(fs.read(ino, 0, &mut buf).unwrap(), 1000);
        assert!(buf.iter().all(|&b| b == 5));
    }

    #[test]
    fn typed_write_begin_end_pairing() {
        let fs = mount(JournalMode::PerOp);
        let ino = fs.create(ROOT_INO, "f").unwrap();
        let ctx = fs.write_begin(ino, 2, 3).unwrap();
        assert_eq!(fs.write_end(ino, 2, b"abc", ctx).unwrap(), 3);
        let mut buf = vec![0u8; 5];
        fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"\0\0abc");
    }

    #[test]
    fn typed_write_end_rejects_mismatched_context() {
        let fs = mount(JournalMode::PerOp);
        let a = fs.create(ROOT_INO, "a").unwrap();
        let b = fs.create(ROOT_INO, "b").unwrap();
        // Context minted for `a`, presented for `b`: a *checked* EINVAL,
        // never a reinterpretation (contrast cext4's wrong-cast knob).
        let ctx = fs.write_begin(a, 0, 3).unwrap();
        assert_eq!(fs.write_end(b, 0, b"abc", ctx), Err(Errno::EINVAL));
        // Wrong payload type inside the token: also checked.
        let alien: WriteCtx =
            sk_core::typesafe::Token::new(Box::new(42u32) as Box<dyn std::any::Any + Send>);
        assert_eq!(fs.write_end(a, 0, b"abc", alien), Err(Errno::EINVAL));
        // The file was never touched by the refused attempts.
        assert_eq!(fs.getattr(a).unwrap().size, 0);
        assert_eq!(fs.getattr(b).unwrap().size, 0);
    }

    #[test]
    fn typed_write_begin_validates_bounds_eagerly() {
        let fs = mount(JournalMode::PerOp);
        let ino = fs.create(ROOT_INO, "f").unwrap();
        assert_eq!(
            fs.write_begin(ino, MAX_FILE_SIZE, 1).unwrap_err(),
            Errno::EFBIG
        );
        let d = fs.mkdir(ROOT_INO, "d").unwrap();
        assert_eq!(fs.write_begin(d, 0, 1).unwrap_err(), Errno::EISDIR);
    }

    #[test]
    fn enospc_when_inodes_exhausted() {
        let fs = mount(JournalMode::PerOp);
        let mut made = 0;
        loop {
            match fs.create(ROOT_INO, &format!("f{made}")) {
                Ok(_) => made += 1,
                Err(Errno::ENOSPC) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(made < 1000, "should run out of inodes");
        }
        assert_eq!(made, 126, "128 inodes minus reserved and root");
        // Freeing one makes room again.
        fs.unlink(ROOT_INO, "f0").unwrap();
        assert!(fs.create(ROOT_INO, "again").is_ok());
    }

    /// End-to-end journal abort: a disk error during a commit's record
    /// write must fail that operation, wedge the journal read-only
    /// (ext4-style abort), and leave the durable prefix fully
    /// recoverable at remount — never silently lose acknowledged ops.
    #[test]
    fn write_error_mid_commit_aborts_and_remount_recovers_prefix() {
        use sk_ksim::block::{DiskFaultConfig, FaultyDisk};

        let faulty = Arc::new(FaultyDisk::new(
            RamDisk::new(1024),
            DiskFaultConfig::default(),
            7,
        ));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).unwrap();

        // Op 1 commits cleanly: acknowledged, durable in the log.
        fs.create(ROOT_INO, "a").unwrap();

        // The next device write is op 2's journal record: fail it.
        faulty.fail_nth_write(0);
        assert_eq!(fs.create(ROOT_INO, "b"), Err(Errno::EIO));

        // The journal is wedged: further mutations and checkpoints are
        // refused rather than risk replaying past the log gap.
        let j = fs.journal().unwrap();
        assert!(j.is_aborted());
        assert_eq!(fs.create(ROOT_INO, "c"), Err(Errno::EROFS));
        assert_eq!(fs.checkpoint(usize::MAX), Err(Errno::EROFS));

        // Reads of acknowledged state still work on the wedged mount.
        assert!(fs.lookup(ROOT_INO, "a").is_ok());

        // "Reboot": remount the surviving media. Recovery replays the
        // durable prefix — the acknowledged op is there, the failed and
        // refused ones are not, and fsck finds nothing stranded.
        drop(fs);
        let fs2 = Rsfs::mount(Arc::clone(&dev), JournalMode::PerOp).unwrap();
        assert!(fs2.lookup(ROOT_INO, "a").is_ok());
        assert_eq!(fs2.lookup(ROOT_INO, "b"), Err(Errno::ENOENT));
        assert_eq!(fs2.lookup(ROOT_INO, "c"), Err(Errno::ENOENT));
        assert!(!fs2.journal().unwrap().is_aborted());
        drop(fs2);
        let report = crate::fsck::fsck(dev.as_ref()).unwrap();
        assert!(report.is_clean(), "findings: {:?}", report.findings);
    }

    /// Async mode decouples acknowledgment from durability: staged ops
    /// cost no barrier, vanish if never committed, and become durable at
    /// the fsync durability point.
    #[test]
    fn async_ops_are_durable_only_after_fsync() {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(1024));
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        {
            let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::Async).unwrap();
            let ino = fs.create(ROOT_INO, "lost").unwrap();
            fs.write(ino, 0, b"never synced").unwrap();
            let j = fs.journal().unwrap();
            assert!(j.stats().stages >= 2, "ops staged, not committed");
            assert_eq!(j.stats().batches, 0);
            assert_eq!(j.stats().barriers, 0, "op path is barrier-free");
            // Readers see the staged state immediately.
            assert!(fs.lookup(ROOT_INO, "lost").is_ok());
            // Dropped without fsync: the staged ops were never durable.
        }
        {
            let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::Async).unwrap();
            assert_eq!(fs.lookup(ROOT_INO, "lost"), Err(Errno::ENOENT));
            let ino = fs.create(ROOT_INO, "kept").unwrap();
            fs.write(ino, 0, b"synced").unwrap();
            fs.fsync(ino).unwrap();
            let j = fs.journal().unwrap();
            assert_eq!(j.staged_ops(), 0);
            assert!(j.stats().batches >= 1, "fsync committed the running txn");
            // fsync of a never-allocated inode is checked.
            assert_eq!(fs.fsync(77), Err(Errno::ENOENT));
        }
        let fs = Rsfs::mount(dev, JournalMode::Async).unwrap();
        let ino = fs.lookup(ROOT_INO, "kept").unwrap();
        let mut buf = vec![0u8; 16];
        let n = fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"synced");
    }

    /// The kupdate-style timer: a periodic workqueue tick commits the
    /// running transaction and drains checkpoints, so staged ops become
    /// durable within one interval even without any fsync.
    #[test]
    fn kupdate_timer_commit_makes_staged_ops_durable() {
        use sk_ksim::time::SimClock;
        use sk_ksim::workqueue::WorkQueue;

        let clock = Arc::new(SimClock::new());
        let ram = Arc::new(sk_ksim::block::RamDisk::with_geometry(
            1024,
            BLOCK_SIZE,
            Arc::clone(&clock),
        ));
        let dev: Arc<dyn BlockDevice> = ram;
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        let fs = Arc::new(Rsfs::mount(Arc::clone(&dev), JournalMode::Async).unwrap());

        let wq = WorkQueue::new(Arc::clone(&clock));
        let timer_fs = Arc::clone(&fs);
        wq.queue_periodic("journal.kupdate", 5_000, move || {
            let _ = timer_fs.commit_running();
            let _ = timer_fs.checkpoint(usize::MAX);
        });

        let ino = fs.create(ROOT_INO, "timed").unwrap();
        fs.write(ino, 0, b"interval").unwrap();
        let j = fs.journal().unwrap();
        assert_eq!(j.stats().batches, 0, "nothing committed before the tick");

        clock.advance(5_000);
        assert!(wq.pump() >= 1);
        assert!(j.stats().batches >= 1, "timer committed the running txn");
        assert_eq!(j.staged_ops(), 0);
        assert_eq!(j.pending_checkpoints(), 0, "tick also drained checkpoints");

        // The data is now durable without any explicit sync in the op path.
        drop(fs);
        let fs2 = Rsfs::mount(dev, JournalMode::Async).unwrap();
        let ino = fs2.lookup(ROOT_INO, "timed").unwrap();
        let mut buf = vec![0u8; 16];
        let n = fs2.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"interval");
    }

    /// Log pressure commits the running transaction from the op path
    /// itself: staging never grows the running txn past one record.
    #[test]
    fn log_pressure_bounds_the_running_transaction() {
        let fs = mount(JournalMode::Async);
        // Each create/write stages a handful of blocks; capacity is 61
        // (64 journal blocks), so a few dozen ops must trip at least one
        // pressure commit without any fsync or timer.
        for i in 0..40 {
            let ino = fs.create(ROOT_INO, &format!("p{i}")).unwrap();
            fs.write(ino, 0, b"fill").unwrap();
        }
        let j = fs.journal().unwrap();
        assert!(j.stats().pressure_commits >= 1, "stats: {:?}", j.stats());
        // And the running txn never exceeds record capacity.
        assert!(j.staged_ops() <= j.capacity());
    }

    /// The revert-fails test for async staging: when the journal aborts,
    /// a failed stage un-publishes cleanly — no partial writes leak into
    /// the next mount's commits (satellite of the async-commit issue).
    #[test]
    fn failed_async_stage_leaves_no_partial_writes_for_later_commits() {
        use sk_ksim::block::{DiskFaultConfig, FaultyDisk};

        let faulty = Arc::new(FaultyDisk::new(
            RamDisk::new(1024),
            DiskFaultConfig::default(),
            11,
        ));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&faulty) as Arc<dyn BlockDevice>;
        Rsfs::mkfs(&dev, 128, 64).unwrap();
        let fs = Rsfs::mount(Arc::clone(&dev), JournalMode::Async).unwrap();

        // Op "a" staged and made durable at an fsync barrier.
        let a = fs.create(ROOT_INO, "a").unwrap();
        fs.fsync(a).unwrap();

        // Op "b" staged; its commit (the next fsync's record write) fails,
        // aborting the journal — "b" was acknowledged as staged only, and
        // its durability point reports the loss.
        fs.create(ROOT_INO, "b").unwrap();
        faulty.fail_nth_write(0);
        assert_eq!(fs.fsync(a), Err(Errno::EROFS));
        assert!(fs.journal().unwrap().is_aborted());

        // Op "c" now fails at stage time (EROFS) *after* having published
        // its images — the revert path must un-publish them.
        assert_eq!(fs.create(ROOT_INO, "c"), Err(Errno::EROFS));

        // Remount: only the fsync'd prefix survived; the failed and
        // refused ops left nothing behind.
        drop(fs);
        let fs2 = Rsfs::mount(Arc::clone(&dev), JournalMode::Async).unwrap();
        assert!(fs2.lookup(ROOT_INO, "a").is_ok());
        assert_eq!(fs2.lookup(ROOT_INO, "b"), Err(Errno::ENOENT));
        assert_eq!(fs2.lookup(ROOT_INO, "c"), Err(Errno::ENOENT));

        // The next mount's commits are unaffected: no partial writes from
        // the reverted ops ride along with "d".
        let d = fs2.create(ROOT_INO, "d").unwrap();
        fs2.fsync(d).unwrap();
        drop(fs2);
        let fs3 = Rsfs::mount(Arc::clone(&dev), JournalMode::Async).unwrap();
        assert!(fs3.lookup(ROOT_INO, "d").is_ok());
        assert_eq!(fs3.lookup(ROOT_INO, "b"), Err(Errno::ENOENT));
        assert_eq!(fs3.lookup(ROOT_INO, "c"), Err(Errno::ENOENT));
        drop(fs3);
        let report = crate::fsck::fsck(dev.as_ref()).unwrap();
        assert!(report.is_clean(), "findings: {:?}", report.findings);
    }
}
